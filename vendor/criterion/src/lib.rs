//! Minimal, dependency-free stand-in for the `criterion` benchmarking crate.
//!
//! The build environment has no network access, so this vendored crate keeps the nine
//! `[[bench]]` targets compiling and runnable with the `criterion` API subset they
//! use: [`Criterion::benchmark_group`], group tuning knobs
//! ([`BenchmarkGroup::sample_size`] and friends), [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`] and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! It measures wall-clock time with `std::time::Instant` and prints a short
//! mean/min/max summary per benchmark — no statistics, plots or HTML reports. Swap in
//! the real crate (same manifest line, crates.io source) when network access exists.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Entry point handed to benchmark functions.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep runs quick: the real criterion defaults to 100 samples plus warm-up.
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.sample_size;
        println!("benchmark group: {name}");
        BenchmarkGroup { criterion: self, name, sample_size }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_benchmark(&id.into(), sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing tuning parameters.
pub struct BenchmarkGroup<'a> {
    #[allow(dead_code)]
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Accepted for API compatibility; this stub does no warm-up.
    pub fn warm_up_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; this stub times exactly `sample_size` runs.
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_benchmark(&id, self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher { samples: Vec::with_capacity(sample_size), target: sample_size };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {id}: no samples recorded");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().expect("non-empty");
    let max = bencher.samples.iter().max().expect("non-empty");
    println!(
        "  {id}: mean {mean:?} (min {min:?}, max {max:?}, {} samples)",
        bencher.samples.len()
    );
}

/// Times closures; handed to the function passed to `bench_function`.
pub struct Bencher {
    samples: Vec<Duration>,
    target: usize,
}

impl Bencher {
    /// Runs `routine` `sample_size` times, recording the wall-clock time of each run.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.target {
            let start = Instant::now();
            let value = routine();
            self.samples.push(start.elapsed());
            drop(std::hint::black_box(value));
        }
    }
}

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Collects benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a bench target from one or more group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes `--bench` (and possibly filters); ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_records_requested_sample_count() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("demo");
        group.sample_size(3).warm_up_time(Duration::from_millis(1)).measurement_time(Duration::from_millis(1));
        let mut runs = 0;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        assert_eq!(runs, 3);
    }
}
