//! Minimal, dependency-free stand-in for the `criterion` benchmarking crate.
//!
//! The build environment has no network access, so this vendored crate keeps the nine
//! `[[bench]]` targets compiling and runnable with the `criterion` API subset they
//! use: [`Criterion::benchmark_group`], group tuning knobs
//! ([`BenchmarkGroup::sample_size`] and friends), [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`] and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! It measures wall-clock time with `std::time::Instant` and prints a short
//! mean/min/max summary per benchmark — no statistics, plots or HTML reports. Swap in
//! the real crate (same manifest line, crates.io source) when network access exists.
//!
//! Two environment variables tune the stub for CI baseline tracking:
//!
//! * `VFLASH_BENCH_SMOKE=1` caps every benchmark at a single sample, so all bench
//!   targets can run as a smoke test in seconds.
//! * `VFLASH_BENCH_JSON=<path>` merges each benchmark's mean wall-clock time into a
//!   flat JSON map `{"bench id": nanos, ...}` at that path. Each bench target process
//!   re-reads and rewrites the file, so one `cargo bench --workspace` run accumulates
//!   every target's results into a single baseline file that future PRs can diff.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Entry point handed to benchmark functions.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep runs quick: the real criterion defaults to 100 samples plus warm-up.
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.sample_size;
        println!("benchmark group: {name}");
        BenchmarkGroup { criterion: self, name, sample_size }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_benchmark(&id.into(), sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing tuning parameters.
pub struct BenchmarkGroup<'a> {
    #[allow(dead_code)]
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Accepted for API compatibility; this stub does no warm-up.
    pub fn warm_up_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; this stub times exactly `sample_size` runs.
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_benchmark(&id, self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Whether `VFLASH_BENCH_SMOKE` is set, capping benchmarks at one sample. Bench
/// targets that shrink their own workload in smoke mode should consult this too, so
/// there is exactly one parsing rule for the variable.
pub fn smoke_mode() -> bool {
    std::env::var("VFLASH_BENCH_SMOKE").map(|v| v != "0" && !v.is_empty()).unwrap_or(false)
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let sample_size = if smoke_mode() { 1 } else { sample_size };
    let mut bencher = Bencher { samples: Vec::with_capacity(sample_size), target: sample_size };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {id}: no samples recorded");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().expect("non-empty");
    let max = bencher.samples.iter().max().expect("non-empty");
    println!(
        "  {id}: mean {mean:?} (min {min:?}, max {max:?}, {} samples)",
        bencher.samples.len()
    );
    if let Ok(path) = std::env::var("VFLASH_BENCH_JSON") {
        if !path.is_empty() {
            if let Err(error) = baseline::record(&path, id, mean.as_nanos() as u64) {
                eprintln!("  {id}: failed to update {path}: {error}");
            }
        }
    }
}

mod baseline {
    //! Accumulation of benchmark means into a flat `{"bench": nanos}` JSON map.

    use std::collections::BTreeMap;
    use std::io;

    /// Merges `(id, nanos)` into the JSON map at `path`, creating it if needed.
    ///
    /// Bench ids are sanitised into the parser's key alphabet (quotes, commas,
    /// colons, braces and backslashes become `_`), so no id can corrupt the file
    /// and poison later merges of the same `cargo bench` run.
    pub(crate) fn record(path: &str, id: &str, nanos: u64) -> io::Result<()> {
        let mut map = match std::fs::read_to_string(path) {
            Ok(contents) => parse(&contents)
                .ok_or_else(|| io::Error::other(format!("{path} is not a flat JSON map")))?,
            Err(error) if error.kind() == io::ErrorKind::NotFound => BTreeMap::new(),
            Err(error) => return Err(error),
        };
        map.insert(sanitize(id), nanos);
        std::fs::write(path, render(&map))
    }

    /// Replaces every character the flat-map format reserves with `_`.
    pub(crate) fn sanitize(id: &str) -> String {
        id.chars()
            .map(|c| match c {
                '"' | ',' | ':' | '{' | '}' | '\\' => '_',
                c if c.is_control() => '_',
                c => c,
            })
            .collect()
    }

    /// Parses the subset of JSON the stub writes: one flat map of string keys to
    /// non-negative integers.
    pub(crate) fn parse(contents: &str) -> Option<BTreeMap<String, u64>> {
        let inner = contents.trim().strip_prefix('{')?.strip_suffix('}')?.trim();
        let mut map = BTreeMap::new();
        if inner.is_empty() {
            return Some(map);
        }
        for entry in inner.split(',') {
            let (key, value) = entry.split_once(':')?;
            let key = key.trim().strip_prefix('"')?.strip_suffix('"')?;
            let value: u64 = value.trim().parse().ok()?;
            map.insert(key.to_string(), value);
        }
        Some(map)
    }

    pub(crate) fn render(map: &BTreeMap<String, u64>) -> String {
        let mut out = String::from("{\n");
        for (index, (key, value)) in map.iter().enumerate() {
            let comma = if index + 1 < map.len() { "," } else { "" };
            out.push_str(&format!("  \"{key}\": {value}{comma}\n"));
        }
        out.push('}');
        out.push('\n');
        out
    }
}

/// Times closures; handed to the function passed to `bench_function`.
pub struct Bencher {
    samples: Vec<Duration>,
    target: usize,
}

impl Bencher {
    /// Runs `routine` `sample_size` times, recording the wall-clock time of each run.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.target {
            let start = Instant::now();
            let value = routine();
            self.samples.push(start.elapsed());
            drop(std::hint::black_box(value));
        }
    }
}

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Collects benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a bench target from one or more group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes `--bench` (and possibly filters); ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_records_requested_sample_count() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("demo");
        group.sample_size(3).warm_up_time(Duration::from_millis(1)).measurement_time(Duration::from_millis(1));
        let mut runs = 0;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        assert_eq!(runs, 3);
    }

    #[test]
    fn baseline_round_trips() {
        let mut map = std::collections::BTreeMap::new();
        map.insert("fig12/web/16KiB".to_string(), 123_456u64);
        map.insert("throughput/grid_serial".to_string(), 9u64);
        let rendered = baseline::render(&map);
        assert_eq!(baseline::parse(&rendered), Some(map));
        assert_eq!(baseline::parse("{}").map(|m| m.len()), Some(0));
        assert!(baseline::parse("not json").is_none());
    }

    #[test]
    fn baseline_ids_with_reserved_characters_are_sanitised() {
        assert_eq!(baseline::sanitize("fig13/ratio 2:1"), "fig13/ratio 2_1");
        assert_eq!(baseline::sanitize("grid, 4 chips"), "grid_ 4 chips");
        assert_eq!(baseline::sanitize(r#"a"b\c"#), "a_b_c");
        let mut map = std::collections::BTreeMap::new();
        map.insert(baseline::sanitize("x:y,z"), 7u64);
        let rendered = baseline::render(&map);
        assert_eq!(baseline::parse(&rendered), Some(map), "sanitised keys round-trip");
    }

    #[test]
    fn baseline_record_merges_across_calls() {
        let path = std::env::temp_dir().join(format!("vflash_bench_{}.json", std::process::id()));
        let path = path.to_str().unwrap().to_string();
        std::fs::remove_file(&path).ok();
        baseline::record(&path, "a", 1).unwrap();
        baseline::record(&path, "b", 2).unwrap();
        baseline::record(&path, "a", 3).unwrap();
        let map = baseline::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(map.get("a"), Some(&3));
        assert_eq!(map.get("b"), Some(&2));
    }
}
