//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this vendored crate provides the
//! small API subset the workspace actually uses, with `rand 0.8` signatures:
//!
//! * [`RngCore`] / [`Rng`] (with `gen`, `gen_bool`, `gen_range` over half-open and
//!   inclusive ranges),
//! * [`SeedableRng::seed_from_u64`],
//! * [`rngs::StdRng`], a deterministic xoshiro256\*\* generator.
//!
//! The generator is **not** cryptographically secure — it only needs to be a
//! statistically sound, seed-reproducible source for workload synthesis.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Samples uniformly from `[low, high)` (or `[low, high]` when `inclusive`).
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span_end = if inclusive {
                    (high as u128).wrapping_add(1)
                } else {
                    high as u128
                };
                let span = span_end.wrapping_sub(low as u128);
                assert!(span > 0, "cannot sample from an empty range");
                // Build a 128-bit word so even u64::MAX-wide spans stay unbiased
                // enough for simulation purposes (modulo bias < 2^-64).
                let word = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                (low as u128).wrapping_add(word % span) as Self
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, _inclusive: bool) -> Self {
        assert!(low < high, "cannot sample from an empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, _inclusive: bool) -> Self {
        assert!(low < high, "cannot sample from an empty range");
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        low + unit * (high - low)
    }
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_uniform(rng, low, high, true)
    }
}

/// Types that [`Rng::gen`] can produce from raw random bits.
pub trait Standard: Sized {
    /// Produces a value from the generator's next bits.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability must be in [0, 1]");
        f64::from_rng(self) < p
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose output is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256\*\* generator, seeded via SplitMix64.
    ///
    /// Drop-in stand-in for `rand::rngs::StdRng`; equal seeds give equal streams.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                state: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [ref mut s0, ref mut s1, ref mut s2, ref mut s3] = self.state;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = *s1 << 17;
            *s2 ^= *s0;
            *s3 ^= *s1;
            *s1 ^= *s2;
            *s0 ^= *s3;
            *s2 ^= t;
            *s3 = s3.rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.gen::<u64>()).collect::<Vec<_>>(),
            (0..8).map(|_| b.gen::<u64>()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u32 = rng.gen_range(5..=7);
            assert!((5..=7).contains(&w));
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn integer_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        let min = *counts.iter().min().unwrap() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(max / min < 1.1, "too skewed: {counts:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate was {rate}");
    }
}
