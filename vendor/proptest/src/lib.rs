//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this vendored crate implements the
//! subset of proptest the workspace test-suites use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]` inner
//!   attribute) expanding each `fn name(arg in strategy, ..) { body }` item into a
//!   `#[test]` that runs the body over many generated cases,
//! * [`Strategy`](strategy::Strategy) with `prop_map`/`boxed`, [`Just`](strategy::Just),
//!   integer/float range strategies, tuple strategies, [`collection::vec`], `any::<T>()`
//!   and the [`prop_oneof!`] union macro,
//! * [`prop_assert!`] / [`prop_assert_eq!`] returning
//!   [`TestCaseError`](test_runner::TestCaseError) instead of panicking mid-case.
//!
//! **No shrinking** is performed: a failing case reports its generated inputs and
//! panics immediately. That is enough for deterministic CI; failures print the full
//! input so they can be turned into focused regression tests.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy so heterogeneous strategies can be unioned.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.generate(rng)))
        }
    }

    /// A strategy that always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased strategy; see [`Strategy::boxed`].
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice between several boxed strategies; built by [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `options`.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let index = rng.rng.gen_range(0..self.options.len());
            self.options[index].generate(rng)
        }
    }

    impl<T: rand::SampleUniform + 'static> Strategy for Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    /// Strategy for `any::<T>()`.
    pub struct Any<T>(PhantomData<T>);

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.rng.gen()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.rng.gen()
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full range of values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `Vec`s of values from `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(!size.is_empty(), "vec strategy needs a non-empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Case execution: configuration, RNG and failure reporting.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// How a test case failed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The case rejected/failed with the given message.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure with the given reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(reason) => write!(f, "{reason}"),
            }
        }
    }

    /// Configuration for a [`proptest!`](crate::proptest) block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real proptest defaults to 256; 128 keeps the suite quick while
            // still exploring a useful amount of the input space every run.
            ProptestConfig { cases: 128 }
        }
    }

    /// The RNG handed to strategies. Deterministic: equal binaries explore equal cases.
    pub struct TestRng {
        pub(crate) rng: StdRng,
    }

    impl TestRng {
        /// A deterministic generator; `salt` varies the stream per test function.
        pub fn deterministic(salt: u64) -> Self {
            TestRng { rng: StdRng::seed_from_u64(0xA11C_E5EE_D000_0001 ^ salt) }
        }
    }
}

/// Common imports for proptest-based tests.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a proptest case, returning a
/// [`TestCaseError`](test_runner::TestCaseError) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Asserts inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }` becomes a
/// `#[test]` running `body` over many generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                // Salt the RNG with the test name so sibling tests explore
                // different corners of a shared strategy.
                let salt = stringify!($name)
                    .bytes()
                    .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
                    });
                let mut rng = $crate::test_runner::TestRng::deterministic(salt);
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(error) = outcome {
                        panic!(
                            "proptest case {case} of {} failed: {error}\n  inputs: {inputs}",
                            stringify!($name),
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, f in 0.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.5..2.5).contains(&f));
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![Just(1u32), (5u32..8).prop_map(|x| x * 2)]) {
            prop_assert!(v == 1 || (10..16).contains(&v), "unexpected value {v}");
        }

        #[test]
        fn vec_respects_size(items in crate::collection::vec(0u8..4, 2..6)) {
            prop_assert!((2..6).contains(&items.len()));
            prop_assert!(items.iter().all(|&b| b < 4));
        }

        #[test]
        fn tuples_and_any(pair in (0u64..10, any::<bool>())) {
            let (n, _flag) = pair;
            prop_assert!(n < 10);
        }
    }

    #[test]
    fn prop_assert_produces_err() {
        fn inner() -> Result<(), TestCaseError> {
            prop_assert_eq!(1 + 1, 3, "math broke");
            Ok(())
        }
        assert_eq!(inner(), Err(TestCaseError::fail("math broke")));
    }
}
