#!/usr/bin/env python3
"""Compare two bench baselines and fail on regressions beyond a threshold.

Usage:
    bench_compare.py BASELINE.json CURRENT.json [--threshold PCT] \
        [--group-threshold GROUP=PCT ...]

Both files are the {"bench id": mean_nanos} maps the vendored criterion writes
via VFLASH_BENCH_JSON. The script prints a per-bench delta table and exits
non-zero when any bench regressed by more than its threshold.

Thresholds are resolved per bench *group* (the prefix before the first "/" in
the bench id, e.g. "throughput" for "throughput/grid_serial"):

1. a `--group-threshold GROUP=PCT` flag for the bench's group, if given;
2. a built-in per-group default (see GROUP_THRESHOLDS below) — the replay
   engine's `throughput` and `open_loop` groups are the repo's hot paths and
   get a tighter 15% gate;
3. the global `--threshold` (default 25%, also settable via the
   BENCH_REGRESSION_THRESHOLD environment variable — the CLI flag wins).

Benches present in only one file are reported (as "new" or "removed") but never
fail the gate: adding or retiring a bench target is not a regression. Smoke-mode
runs take a single sample, so the global default threshold is deliberately
loose; lower it once real criterion statistics replace the vendored stub.
"""

import argparse
import json
import os
import sys

# Per-group regression gates tighter than the global default. The replay
# engine's grid benches are what the performance work of this repo optimises;
# a 15% slide there is a real regression even under single-sample smoke noise.
GROUP_THRESHOLDS = {
    "throughput": 15.0,
    "open_loop": 15.0,
    # The fault model's retry ladder and remap path ride the replay hot loop,
    # but the group is new and its smoke timings have no history yet — gate it
    # loosely for now and tighten once a few baselines have accumulated.
    "faults": 20.0,
    # The kv group runs the whole LSM stack (WAL framing, bloom probes,
    # compaction merges) per sample, so its wall-clock variance is the highest
    # of any target; gate it looser than the replay hot paths.
    "kv": 20.0,
    # Same full-stack variance as kv: each sample is a complete LSM run, three
    # of them (serial, batched, batched-ppb).
    "kv_batch": 20.0,
    # Each fleet sample replays the whole stripe-width sweep (1-8 devices per
    # cell), so one sample aggregates many runs; new group, no history yet.
    "fleet": 20.0,
}


def load(path):
    try:
        with open(path) as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        sys.exit(f"bench_compare: cannot read {path}: {error}")
    if not isinstance(data, dict) or not all(
        isinstance(value, (int, float)) for value in data.values()
    ):
        sys.exit(f"bench_compare: {path} is not a {{bench: nanos}} map")
    return data


def parse_group_thresholds(pairs):
    overrides = {}
    for pair in pairs or []:
        group, sep, pct = pair.partition("=")
        if not sep or not group:
            sys.exit(
                f"bench_compare: --group-threshold expects GROUP=PCT, got {pair!r}"
            )
        try:
            overrides[group] = float(pct)
        except ValueError:
            sys.exit(f"bench_compare: not a percentage in {pair!r}")
    return overrides


def format_nanos(nanos):
    if nanos >= 1e9:
        return f"{nanos / 1e9:.2f}s"
    if nanos >= 1e6:
        return f"{nanos / 1e6:.2f}ms"
    if nanos >= 1e3:
        return f"{nanos / 1e3:.2f}us"
    return f"{nanos:.0f}ns"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--threshold",
        type=float,
        default=float(os.environ.get("BENCH_REGRESSION_THRESHOLD", "25")),
        help="maximum tolerated slowdown in percent for groups without a "
        "per-group gate (default 25, or $BENCH_REGRESSION_THRESHOLD)",
    )
    parser.add_argument(
        "--group-threshold",
        action="append",
        metavar="GROUP=PCT",
        help="override the gate for one bench group (repeatable); wins over "
        "both the built-in per-group defaults and --threshold",
    )
    args = parser.parse_args()
    overrides = parse_group_thresholds(args.group_threshold)

    def threshold_for(bench):
        group = bench.split("/")[0]
        if group in overrides:
            return overrides[group]
        return GROUP_THRESHOLDS.get(group, args.threshold)

    baseline = load(args.baseline)
    current = load(args.current)

    rows = []
    regressions = []
    new_benches = []
    removed_benches = []
    for bench in sorted(set(baseline) | set(current)):
        old = baseline.get(bench)
        new = current.get(bench)
        if old is None:
            # Absent from the cached baseline: a freshly added bench. Reported
            # but never gated — the first run of a new bench has nothing to
            # regress against, and failing here would punish adding coverage.
            rows.append((bench, "-", format_nanos(new), "new (not gated)"))
            new_benches.append(bench)
            continue
        if new is None:
            rows.append((bench, format_nanos(old), "-", "removed (not gated)"))
            removed_benches.append(bench)
            continue
        if old <= 0:
            rows.append((bench, format_nanos(old), format_nanos(new), "skipped (zero base)"))
            continue
        delta = (new - old) / old * 100.0
        gate = threshold_for(bench)
        status = f"{delta:+.1f}%"
        if delta > gate:
            status += f"  REGRESSION (> {gate:g}%)"
            regressions.append((bench, delta, gate))
        rows.append((bench, format_nanos(old), format_nanos(new), status))

    name_width = max((len(row[0]) for row in rows), default=5)
    print(f"{'bench':<{name_width}}  {'baseline':>10}  {'current':>10}  delta")
    for bench, old, new, status in rows:
        print(f"{bench:<{name_width}}  {old:>10}  {new:>10}  {status}")

    gates = {bench.split("/")[0]: threshold_for(bench) for bench in baseline}
    tightened = sorted(
        f"{group} {gate:g}%" for group, gate in gates.items() if gate != args.threshold
    )
    if tightened:
        print(f"\nper-group gates: {', '.join(tightened)} (others {args.threshold:g}%)")

    if new_benches:
        # Name the whole groups that are new (e.g. a freshly added bench target
        # like `burst`) separately from new cases inside existing groups, so the
        # CI log makes "this target has no baseline yet" obvious at a glance.
        baseline_groups = {bench.split("/")[0] for bench in baseline}
        new_groups = sorted(
            {bench.split("/")[0] for bench in new_benches} - baseline_groups
        )
        if new_groups:
            print(
                f"\n{len(new_groups)} new bench target(s) with no cached baseline, "
                f"not gated: {', '.join(new_groups)}"
            )
        print(
            f"\n{len(new_benches)} bench(es) absent from the cached baseline, "
            f"reported as new and not gated: {', '.join(new_benches)}"
        )
    if removed_benches:
        print(
            f"{len(removed_benches)} bench(es) no longer present, not gated: "
            f"{', '.join(removed_benches)}"
        )
    if regressions:
        print(
            f"\n{len(regressions)} bench(es) regressed beyond their gate:",
            file=sys.stderr,
        )
        for bench, delta, gate in regressions:
            print(f"  {bench}: {delta:+.1f}% (gate {gate:g}%)", file=sys.stderr)
        return 1
    print("\nno bench regressed beyond its gate")
    return 0


if __name__ == "__main__":
    sys.exit(main())
