//! Summary statistics of a trace.

use std::collections::HashMap;

use crate::request::{IoOp, IoRequest};

/// Aggregate statistics describing a workload.
///
/// The fields the PPB strategy is sensitive to are the *re-access* measures: how often
/// a logical region is read again after being written (`reread_fraction`), which is
/// exactly the behaviour that makes fast pages valuable.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceStats {
    /// Number of read requests.
    pub reads: u64,
    /// Number of write requests.
    pub writes: u64,
    /// Total bytes read.
    pub read_bytes: u64,
    /// Total bytes written.
    pub write_bytes: u64,
    /// Mean request size in bytes across all requests.
    pub mean_request_bytes: f64,
    /// Number of distinct 4 KiB-aligned logical regions touched.
    pub unique_regions: u64,
    /// Fraction of requests whose 4 KiB region had been accessed before (temporal
    /// locality / re-access skew), in `[0, 1]`.
    pub reread_fraction: f64,
    /// Fraction of requests whose offset immediately follows the previous request
    /// (sequentiality), in `[0, 1]`.
    pub sequential_fraction: f64,
}

impl TraceStats {
    /// Computes statistics over a request slice.
    pub fn from_requests(requests: &[IoRequest]) -> TraceStats {
        const REGION: u64 = 4096;
        let mut stats = TraceStats::default();
        if requests.is_empty() {
            return stats;
        }
        let mut seen: HashMap<u64, u64> = HashMap::new();
        let mut reaccesses = 0u64;
        let mut sequential = 0u64;
        let mut previous_end: Option<u64> = None;
        let mut total_bytes = 0u64;

        for req in requests {
            match req.op {
                IoOp::Read => {
                    stats.reads += 1;
                    stats.read_bytes += u64::from(req.length);
                }
                IoOp::Write => {
                    stats.writes += 1;
                    stats.write_bytes += u64::from(req.length);
                }
            }
            total_bytes += u64::from(req.length);
            let region = req.offset / REGION;
            let count = seen.entry(region).or_insert(0);
            if *count > 0 {
                reaccesses += 1;
            }
            *count += 1;
            if previous_end == Some(req.offset) {
                sequential += 1;
            }
            previous_end = Some(req.offset + u64::from(req.length));
        }

        let total = requests.len() as u64;
        stats.mean_request_bytes = total_bytes as f64 / total as f64;
        stats.unique_regions = seen.len() as u64;
        stats.reread_fraction = reaccesses as f64 / total as f64;
        stats.sequential_fraction = sequential as f64 / total as f64;
        stats
    }

    /// Total number of requests.
    pub fn total_requests(&self) -> u64 {
        self.reads + self.writes
    }

    /// Read share of the request count, in `[0, 1]` (zero for an empty trace).
    pub fn read_ratio(&self) -> f64 {
        let total = self.total_requests();
        if total == 0 {
            0.0
        } else {
            self.reads as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(at: u64, op: IoOp, offset: u64, length: u32) -> IoRequest {
        IoRequest::new(at, op, offset, length)
    }

    #[test]
    fn empty_trace_has_zero_stats() {
        let stats = TraceStats::from_requests(&[]);
        assert_eq!(stats.total_requests(), 0);
        assert_eq!(stats.read_ratio(), 0.0);
    }

    #[test]
    fn counts_and_bytes_split_by_direction() {
        let reqs = [
            req(0, IoOp::Write, 0, 4096),
            req(1, IoOp::Read, 0, 8192),
            req(2, IoOp::Read, 8192, 4096),
        ];
        let stats = TraceStats::from_requests(&reqs);
        assert_eq!(stats.reads, 2);
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.read_bytes, 12288);
        assert_eq!(stats.write_bytes, 4096);
        assert!((stats.read_ratio() - 2.0 / 3.0).abs() < 1e-12);
        assert!((stats.mean_request_bytes - 16384.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn reread_fraction_detects_temporal_locality() {
        let reqs = [
            req(0, IoOp::Write, 0, 4096),
            req(1, IoOp::Read, 0, 4096),
            req(2, IoOp::Read, 0, 4096),
            req(3, IoOp::Read, 40960, 4096),
        ];
        let stats = TraceStats::from_requests(&reqs);
        assert_eq!(stats.unique_regions, 2);
        assert!((stats.reread_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sequential_fraction_detects_streams() {
        let reqs = [
            req(0, IoOp::Read, 0, 4096),
            req(1, IoOp::Read, 4096, 4096),
            req(2, IoOp::Read, 8192, 4096),
            req(3, IoOp::Read, 1_000_000, 4096),
        ];
        let stats = TraceStats::from_requests(&reqs);
        assert!((stats.sequential_fraction - 0.5).abs() < 1e-12);
    }
}
