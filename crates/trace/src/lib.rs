//! # vflash-trace
//!
//! Block-level I/O workloads for driving the flash simulator.
//!
//! The paper evaluates the PPB strategy with two enterprise traces collected by
//! Microsoft Research Cambridge: a *media server* trace and a *web/SQL server* trace.
//! Those traces are not redistributable, so this crate provides two things:
//!
//! * [`msr`] — a parser for the MSR-Cambridge CSV format, so the original traces can
//!   be dropped in when available, and
//! * [`synthetic`] — seeded synthetic generators ([`synthetic::media_server`],
//!   [`synthetic::web_sql_server`]) that reproduce the statistical character the PPB
//!   mechanism is sensitive to: request-size mix, read/write ratio, sequentiality and
//!   — most importantly — the skew of re-access frequency (hot/cold behaviour).
//!
//! A workload is just a [`Trace`]: an ordered list of [`IoRequest`]s plus derived
//! [`TraceStats`].
//!
//! # Example
//!
//! ```
//! use vflash_trace::{synthetic, IoOp};
//!
//! let trace = synthetic::web_sql_server(synthetic::SyntheticConfig {
//!     requests: 1_000,
//!     seed: 7,
//!     ..Default::default()
//! });
//! assert_eq!(trace.len(), 1_000);
//! let stats = trace.stats();
//! assert!(stats.reads + stats.writes == 1_000);
//! assert!(trace.iter().any(|r| r.op == IoOp::Read));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod msr;
pub mod synthetic;

mod request;
mod stats;
mod zipf;

pub use request::{IoOp, IoRequest, Trace};
pub use stats::TraceStats;
pub use zipf::Zipf;
