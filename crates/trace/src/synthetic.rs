//! Seeded synthetic workload generators.
//!
//! These generators stand in for the MSR-Cambridge *media server* and *web/SQL
//! server* traces used in the paper's evaluation (the originals are not
//! redistributable). They reproduce the workload properties the PPB strategy actually
//! responds to:
//!
//! * **media server** — large, mostly sequential reads of write-once-read-many
//!   content, occasional sequential ingest of new files, a small frequently-updated
//!   metadata region. Low write traffic, moderate re-read skew.
//! * **web/SQL server** — small random requests, strongly Zipf-skewed hot set that is
//!   both updated and re-read (hot / iron-hot data), a frequently-read-and-written
//!   metadata region, plus occasional cold backup streams that are written once and
//!   rarely read again (icy-cold data).
//!
//! Every generator is deterministic given the [`SyntheticConfig::seed`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::request::{IoOp, IoRequest, Trace};
use crate::zipf::Zipf;

const KIB: u64 = 1024;
const MIB: u64 = 1024 * 1024;

/// How the generators space request arrival timestamps.
///
/// The arrival clock is what open-loop replay drives the simulator with, so these
/// knobs let a generated trace *target an offered rate* instead of inheriting the
/// historic fixed gap range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalModel {
    /// Independent uniform inter-arrival gaps in `[min_nanos, max_nanos)`. The
    /// default (`20 µs – 200 µs`) reproduces the pre-open-loop generators
    /// byte-for-byte at equal seeds.
    UniformGap {
        /// Smallest inter-arrival gap in nanoseconds.
        min_nanos: u64,
        /// Largest inter-arrival gap in nanoseconds (exclusive); must exceed
        /// `min_nanos`.
        max_nanos: u64,
    },
    /// Target a mean offered rate: gaps are drawn uniformly from
    /// `[mean/2, 3·mean/2)` where `mean = 1e9 / iops`, so the trace's
    /// [`offered_iops`](crate::Trace::offered_iops) converges to `iops` while
    /// arrivals stay jittered (no lock-step periodicity).
    MeanRate {
        /// Target mean arrival rate in requests per second (must be positive
        /// and finite).
        iops: f64,
    },
}

impl ArrivalModel {
    fn gap_range(self) -> (u64, u64) {
        match self {
            ArrivalModel::UniformGap { min_nanos, max_nanos } => {
                assert!(min_nanos < max_nanos, "arrival gap range must be non-empty");
                (min_nanos, max_nanos)
            }
            ArrivalModel::MeanRate { iops } => {
                assert!(
                    iops.is_finite() && iops > 0.0,
                    "target arrival rate must be positive and finite"
                );
                let mean = (1e9 / iops).max(1.0) as u64;
                (mean / 2, (mean / 2 + mean).max(mean / 2 + 1))
            }
        }
    }
}

impl Default for ArrivalModel {
    fn default() -> Self {
        ArrivalModel::UniformGap { min_nanos: 20_000, max_nanos: 200_000 }
    }
}

/// Shared knobs for the synthetic generators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticConfig {
    /// Number of requests to generate.
    pub requests: usize,
    /// RNG seed; equal seeds give byte-identical traces.
    pub seed: u64,
    /// Size of the logical address space the workload touches, in bytes. Keep this
    /// below the simulated device's usable capacity.
    pub working_set_bytes: u64,
    /// How arrival timestamps are spaced; the default reproduces the historic
    /// 20–200 µs uniform gaps exactly.
    pub arrival: ArrivalModel,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            requests: 50_000,
            seed: 42,
            working_set_bytes: 256 * MIB,
            arrival: ArrivalModel::default(),
        }
    }
}

/// Parameters for the generic [`skewed`] generator, used for ablations and custom
/// scenarios.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkewedParams {
    /// Fraction of requests that are reads, in `[0, 1]`.
    pub read_ratio: f64,
    /// Zipf exponent of the popularity skew (0 = uniform).
    pub zipf_exponent: f64,
    /// Smallest request size in bytes.
    pub min_request_bytes: u32,
    /// Largest request size in bytes.
    pub max_request_bytes: u32,
    /// Granularity at which popularity is assigned, in bytes (the "item" size of the
    /// Zipf distribution).
    pub region_bytes: u64,
}

impl Default for SkewedParams {
    fn default() -> Self {
        SkewedParams {
            read_ratio: 0.6,
            zipf_exponent: 1.0,
            min_request_bytes: 4 * KIB as u32,
            max_request_bytes: 16 * KIB as u32,
            region_bytes: 16 * KIB,
        }
    }
}

fn advance_clock(rng: &mut StdRng, now: &mut u64, gap: (u64, u64)) -> u64 {
    // Inter-arrival gap drawn from the configured arrival model. Closed-loop replay
    // only cares about the ordering, but open-loop replay issues requests at these
    // timestamps, so the spacing determines the offered load.
    *now += rng.gen_range(gap.0..gap.1);
    *now
}

/// Generic Zipf-skewed random workload.
///
/// # Panics
///
/// Panics if the parameters are degenerate (zero-sized working set, zero requests,
/// `min_request_bytes > max_request_bytes`, or a read ratio outside `[0, 1]`).
pub fn skewed(config: SyntheticConfig, params: SkewedParams) -> Trace {
    assert!(config.requests > 0, "requests must be positive");
    assert!(config.working_set_bytes >= params.region_bytes, "working set smaller than one region");
    assert!(params.min_request_bytes > 0, "min_request_bytes must be positive");
    assert!(
        params.min_request_bytes <= params.max_request_bytes,
        "min_request_bytes must not exceed max_request_bytes"
    );
    assert!(
        (0.0..=1.0).contains(&params.read_ratio),
        "read_ratio must be within [0, 1]"
    );

    let mut rng = StdRng::seed_from_u64(config.seed);
    let gap = config.arrival.gap_range();
    let regions = (config.working_set_bytes / params.region_bytes).max(1) as usize;
    let zipf = Zipf::new(regions, params.zipf_exponent);
    let mut now = 0u64;
    let mut requests = Vec::with_capacity(config.requests);

    for _ in 0..config.requests {
        let region = zipf.sample(&mut rng) as u64;
        let offset = region * params.region_bytes;
        let length = if params.min_request_bytes == params.max_request_bytes {
            params.min_request_bytes
        } else {
            rng.gen_range(params.min_request_bytes..=params.max_request_bytes)
        };
        let op = if rng.gen_bool(params.read_ratio) { IoOp::Read } else { IoOp::Write };
        let at = advance_clock(&mut rng, &mut now, gap);
        requests.push(IoRequest::new(at, op, offset, length));
    }

    Trace::new("skewed", requests)
}

/// Synthetic stand-in for the MSR media-server trace.
///
/// The address space is carved into "media files" of 4 MiB. Most requests stream a
/// popular file sequentially in 64–256 KiB reads; around 8% of requests ingest new
/// content with sequential writes, and a small metadata region at the front of the
/// address space receives frequent 4 KiB reads and writes.
pub fn media_server(config: SyntheticConfig) -> Trace {
    assert!(config.requests > 0, "requests must be positive");
    const FILE_BYTES: u64 = 4 * MIB;
    const METADATA_BYTES: u64 = MIB;

    let mut rng = StdRng::seed_from_u64(config.seed);
    let gap = config.arrival.gap_range();
    let data_bytes = config.working_set_bytes.saturating_sub(METADATA_BYTES).max(FILE_BYTES);
    let files = (data_bytes / FILE_BYTES).max(1) as usize;
    let popularity = Zipf::new(files, 0.9);
    let mut now = 0u64;
    let mut requests = Vec::with_capacity(config.requests);
    // Per-file streaming cursor so consecutive reads of the same file are sequential.
    let mut cursors = vec![0u64; files];

    while requests.len() < config.requests {
        let roll: f64 = rng.gen();
        let at = advance_clock(&mut rng, &mut now, gap);
        if roll < 0.04 {
            // Metadata read or write: small, extremely hot.
            let offset = rng.gen_range(0..METADATA_BYTES / (4 * KIB)) * 4 * KIB;
            let op = if rng.gen_bool(0.5) { IoOp::Read } else { IoOp::Write };
            requests.push(IoRequest::new(at, op, offset, 4 * KIB as u32));
        } else if roll < 0.055 {
            // Ingest: write a whole new file sequentially in 256 KiB chunks. The event
            // probability is low because each event emits a burst of 16 write requests.
            let file = rng.gen_range(0..files) as u64;
            let base = METADATA_BYTES + file * FILE_BYTES;
            let chunk = 256 * KIB;
            let mut written = 0;
            while written < FILE_BYTES && requests.len() < config.requests {
                let at = advance_clock(&mut rng, &mut now, gap);
                requests.push(IoRequest::new(at, IoOp::Write, base + written, chunk as u32));
                written += chunk;
            }
            cursors[file as usize] = 0;
        } else {
            // Streaming read of a popular file.
            let file = popularity.sample(&mut rng);
            let base = METADATA_BYTES + file as u64 * FILE_BYTES;
            let chunk = *[64 * KIB, 128 * KIB, 256 * KIB]
                .get(rng.gen_range(0..3))
                .expect("chunk table is non-empty");
            let cursor = cursors[file];
            let offset = base + cursor;
            cursors[file] = (cursor + chunk) % FILE_BYTES;
            requests.push(IoRequest::new(at, IoOp::Read, offset, chunk as u32));
        }
    }

    requests.truncate(config.requests);
    Trace::new("media-server", requests)
}

/// Synthetic stand-in for the MSR web/SQL-server trace.
///
/// The address space is carved into the data classes an enterprise web/SQL server
/// actually stores (the same classes the paper uses to motivate its four hotness
/// levels):
///
/// * a small **metadata** region — small requests, frequently read *and* written,
/// * a **temp/cache** region — small requests, frequently written, almost never read,
/// * a **table** region — Zipf-popular database pages, read-dominant with occasional
///   small updates,
/// * an **asset** region — write-once-read-many content served with larger requests
///   and strong popularity skew,
/// * a **backup** region — sequential bulk writes that are essentially never read.
pub fn web_sql_server(config: SyntheticConfig) -> Trace {
    assert!(config.requests > 0, "requests must be positive");
    const METADATA_BYTES: u64 = 2 * MIB;
    const REGION: u64 = 8 * KIB;

    let mut rng = StdRng::seed_from_u64(config.seed);
    let gap = config.arrival.gap_range();
    let data_bytes = config.working_set_bytes.saturating_sub(METADATA_BYTES).max(4 * REGION);
    // Split the data space: 15% temp, 25% tables, 45% assets, 15% backups.
    let temp_bytes = data_bytes * 15 / 100;
    let table_bytes = data_bytes * 25 / 100;
    let asset_bytes = data_bytes * 45 / 100;
    let backup_bytes = data_bytes - temp_bytes - table_bytes - asset_bytes;
    let temp_base = METADATA_BYTES;
    let table_base = temp_base + temp_bytes;
    let asset_base = table_base + table_bytes;
    let backup_base = asset_base + asset_bytes;

    let temp_popularity = Zipf::new((temp_bytes / REGION).max(1) as usize, 0.8);
    let table_popularity = Zipf::new((table_bytes / REGION).max(1) as usize, 1.1);
    let asset_popularity = Zipf::new((asset_bytes / (64 * KIB)).max(1) as usize, 1.0);

    let mut now = 0u64;
    let mut requests = Vec::with_capacity(config.requests);
    let mut backup_cursor = 0u64;

    while requests.len() < config.requests {
        let roll: f64 = rng.gen();
        let at = advance_clock(&mut rng, &mut now, gap);
        if roll < 0.10 {
            // Metadata: small, frequently read and written (iron-hot behaviour).
            let offset = rng.gen_range(0..METADATA_BYTES / (4 * KIB)) * 4 * KIB;
            let op = if rng.gen_bool(0.55) { IoOp::Read } else { IoOp::Write };
            requests.push(IoRequest::new(at, op, offset, 4 * KIB as u32));
        } else if roll < 0.35 {
            // Temp/cache files: small, frequently overwritten, rarely read back
            // (hot behaviour).
            let region = temp_popularity.sample(&mut rng) as u64;
            let offset = temp_base + region * REGION;
            let op = if rng.gen_bool(0.92) { IoOp::Write } else { IoOp::Read };
            requests.push(IoRequest::new(at, op, offset, 8 * KIB as u32));
        } else if roll < 0.70 {
            // Database tables: Zipf-popular pages, read-dominant with small updates.
            let region = table_popularity.sample(&mut rng) as u64;
            let offset = table_base + region * REGION;
            let op = if rng.gen_bool(0.80) { IoOp::Read } else { IoOp::Write };
            let size = *[4 * KIB, 8 * KIB].get(rng.gen_range(0..2)).expect("non-empty") as u32;
            requests.push(IoRequest::new(at, op, offset, size));
        } else if roll < 0.90 {
            // Served assets: write-once-read-many, larger requests, strong popularity
            // skew (cold behaviour — the popular ones deserve fast pages).
            let chunk = asset_popularity.sample(&mut rng) as u64;
            let offset = asset_base + chunk * 64 * KIB;
            let op = if rng.gen_bool(0.95) { IoOp::Read } else { IoOp::Write };
            requests.push(IoRequest::new(at, op, offset, 64 * KIB as u32));
        } else {
            // Backups: sequential bulk writes, essentially never read (icy-cold).
            let offset = backup_base + (backup_cursor % backup_bytes.max(64 * KIB));
            backup_cursor += 64 * KIB;
            requests.push(IoRequest::new(at, IoOp::Write, offset, 64 * KIB as u32));
        }
    }

    requests.truncate(config.requests);
    Trace::new("web-sql-server", requests)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_per_seed() {
        let config = SyntheticConfig { requests: 2_000, seed: 9, ..Default::default() };
        assert_eq!(media_server(config), media_server(config));
        assert_eq!(web_sql_server(config), web_sql_server(config));
        let other_seed = SyntheticConfig { seed: 10, ..config };
        assert_ne!(web_sql_server(config), web_sql_server(other_seed));
    }

    #[test]
    fn generators_respect_request_count_and_working_set() {
        let config = SyntheticConfig {
            requests: 3_000,
            seed: 1,
            working_set_bytes: 64 * MIB,
            ..Default::default()
        };
        for trace in [media_server(config), web_sql_server(config), skewed(config, SkewedParams::default())] {
            assert_eq!(trace.len(), 3_000, "{} wrong length", trace.name());
            for req in &trace {
                assert!(
                    req.offset < config.working_set_bytes,
                    "{} escaped the working set: offset {}",
                    trace.name(),
                    req.offset
                );
                assert!(req.length > 0);
            }
        }
    }

    #[test]
    fn media_server_is_read_dominant_and_sequential() {
        let trace = media_server(SyntheticConfig { requests: 20_000, seed: 3, ..Default::default() });
        let stats = trace.stats();
        assert!(stats.read_ratio() > 0.6, "read ratio was {}", stats.read_ratio());
        assert!(stats.mean_request_bytes > 32.0 * KIB as f64);
    }

    #[test]
    fn web_sql_server_is_small_random_and_reread_heavy() {
        let trace = web_sql_server(SyntheticConfig { requests: 20_000, seed: 3, ..Default::default() });
        let stats = trace.stats();
        assert!(stats.mean_request_bytes < 32.0 * KIB as f64);
        assert!(stats.reread_fraction > 0.5, "reread fraction was {}", stats.reread_fraction);
        assert!(stats.read_ratio() > 0.4 && stats.read_ratio() < 0.8);
    }

    #[test]
    fn web_trace_has_more_locality_than_uniform_skewed() {
        let config = SyntheticConfig { requests: 10_000, seed: 11, ..Default::default() };
        let uniform = skewed(
            config,
            SkewedParams { zipf_exponent: 0.0, ..SkewedParams::default() },
        );
        let web = web_sql_server(config);
        assert!(web.stats().reread_fraction > uniform.stats().reread_fraction);
    }

    #[test]
    fn timestamps_are_monotonically_increasing() {
        let trace = web_sql_server(SyntheticConfig { requests: 5_000, seed: 2, ..Default::default() });
        let mut last = 0;
        for req in &trace {
            assert!(req.at_nanos >= last);
            last = req.at_nanos;
        }
    }

    #[test]
    fn mean_rate_arrival_model_targets_the_offered_rate() {
        let target = 25_000.0; // 25k IOPS -> 40 µs mean gap
        let config = SyntheticConfig {
            requests: 20_000,
            seed: 5,
            arrival: ArrivalModel::MeanRate { iops: target },
            ..Default::default()
        };
        let trace = web_sql_server(config);
        let offered = trace.offered_iops();
        assert!(
            (offered - target).abs() / target < 0.05,
            "offered rate {offered:.0} should be within 5% of the {target:.0} target"
        );
        // The default model is untouched: equal seeds still give the historic trace.
        let default_cfg = SyntheticConfig { requests: 20_000, seed: 5, ..Default::default() };
        assert_ne!(web_sql_server(default_cfg), trace);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn mean_rate_rejects_non_positive_rates() {
        let config = SyntheticConfig {
            requests: 10,
            arrival: ArrivalModel::MeanRate { iops: 0.0 },
            ..Default::default()
        };
        let _ = media_server(config);
    }

    #[test]
    #[should_panic(expected = "read_ratio")]
    fn skewed_rejects_bad_read_ratio() {
        let _ = skewed(
            SyntheticConfig::default(),
            SkewedParams { read_ratio: 1.5, ..SkewedParams::default() },
        );
    }
}
