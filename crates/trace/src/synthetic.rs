//! Seeded synthetic workload generators.
//!
//! These generators stand in for the MSR-Cambridge *media server* and *web/SQL
//! server* traces used in the paper's evaluation (the originals are not
//! redistributable). They reproduce the workload properties the PPB strategy actually
//! responds to:
//!
//! * **media server** — large, mostly sequential reads of write-once-read-many
//!   content, occasional sequential ingest of new files, a small frequently-updated
//!   metadata region. Low write traffic, moderate re-read skew.
//! * **web/SQL server** — small random requests, strongly Zipf-skewed hot set that is
//!   both updated and re-read (hot / iron-hot data), a frequently-read-and-written
//!   metadata region, plus occasional cold backup streams that are written once and
//!   rarely read again (icy-cold data).
//!
//! Every generator is deterministic given the [`SyntheticConfig::seed`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::request::{IoOp, IoRequest, Trace};
use crate::zipf::Zipf;

const KIB: u64 = 1024;
const MIB: u64 = 1024 * 1024;

/// Upper truncation of the bounded Pareto gap distribution, as a multiple of its
/// minimum gap: samples live in `[L, 1000·L]`, so a single gap can stall the
/// arrival clock for at most three decades — heavy-tailed, but bounded.
const PARETO_BOUND_RATIO: f64 = 1_000.0;

/// How many inter-arrival gaps the heavy-tailed models draw per refill of their
/// batch buffer. Large enough to amortise the per-call sampling overhead, small
/// enough that short traces don't waste most of a batch.
const ARRIVAL_BATCH: usize = 256;

/// Seed salt for the dedicated arrival RNG the heavy-tailed models draw from.
/// XORed with [`SyntheticConfig::seed`] so the arrival stream is decorrelated
/// from the content stream while staying a pure function of the seed.
const ARRIVAL_STREAM_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// How the generators space request arrival timestamps.
///
/// The arrival clock is what open-loop replay drives the simulator with, so these
/// knobs let a generated trace *target an offered rate* — and, with the
/// heavy-tailed variants, a *burstiness* — instead of inheriting the historic
/// fixed gap range. [`ArrivalModel::Pareto`] and [`ArrivalModel::OnOffBurst`]
/// keep the configured mean rate while concentrating arrivals into bursts, which
/// is what stresses queueing delay and spreads the latency tail in open-loop
/// replay.
///
/// All variants are deterministic: equal seeds give byte-identical traces, and
/// the two historic variants consume the generator RNG exactly as they did
/// before the heavy-tailed variants existed, so default traces are byte-stable.
/// The heavy-tailed variants instead draw their gaps in batches from a
/// *dedicated* arrival RNG (seeded from the trace seed), which keeps the
/// content stream — ops, offsets, lengths — independent of the arrival model:
/// two heavy-tailed traces with the same seed touch the same addresses in the
/// same order and differ only in their timestamps.
///
/// # Example
///
/// A heavy-tailed trace holds the same mean rate as a uniform one — the mass
/// just moves into bursts:
///
/// ```
/// use vflash_trace::synthetic::{self, ArrivalModel, SyntheticConfig};
///
/// let mean_iops = 20_000.0;
/// let bursty = synthetic::web_sql_server(SyntheticConfig {
///     requests: 20_000,
///     arrival: ArrivalModel::Pareto { shape: 1.5, mean_iops },
///     ..Default::default()
/// });
/// let offered = bursty.offered_iops();
/// assert!((offered - mean_iops).abs() / mean_iops < 0.15);
/// // Determinism: the same configuration reproduces the same trace.
/// let again = synthetic::web_sql_server(SyntheticConfig {
///     requests: 20_000,
///     arrival: ArrivalModel::Pareto { shape: 1.5, mean_iops },
///     ..Default::default()
/// });
/// assert_eq!(bursty, again);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalModel {
    /// Independent uniform inter-arrival gaps in `[min_nanos, max_nanos)`. The
    /// default (`20 µs – 200 µs`) reproduces the pre-open-loop generators
    /// byte-for-byte at equal seeds.
    UniformGap {
        /// Smallest inter-arrival gap in nanoseconds.
        min_nanos: u64,
        /// Largest inter-arrival gap in nanoseconds (exclusive); must exceed
        /// `min_nanos`.
        max_nanos: u64,
    },
    /// Target a mean offered rate: gaps are drawn uniformly from
    /// `[mean/2, 3·mean/2)` where `mean = 1e9 / iops`, so the trace's
    /// [`offered_iops`](crate::Trace::offered_iops) converges to `iops` while
    /// arrivals stay jittered (no lock-step periodicity).
    MeanRate {
        /// Target mean arrival rate in requests per second (must be positive
        /// and finite).
        iops: f64,
    },
    /// Heavy-tailed inter-arrival gaps from a **bounded Pareto** distribution
    /// whose scale is solved so the mean gap equals `1e9 / mean_iops` exactly
    /// (the truncation at 1000× the minimum gap is folded into
    /// the closed-form mean, so no rate drifts in). Smaller shapes are heavier:
    /// most gaps shrink towards the minimum (dense bursts) while rare gaps grow
    /// up to three decades (long lulls) — the classic self-similar arrival
    /// pattern enterprise traces show.
    Pareto {
        /// Pareto tail exponent α; must exceed 1 and be finite. Shapes in
        /// `(1, 2]` are strongly bursty, larger shapes approach the jittered
        /// uniform gap.
        shape: f64,
        /// Target mean arrival rate in requests per second (positive, finite).
        mean_iops: f64,
    },
    /// MMPP-style on/off phases: `burst_len` requests arrive back-to-back at
    /// `burst_iops` (jittered uniform gaps), then the source goes idle. The
    /// idle gap is solved so the overall mean rate is **exactly**
    /// `(1 - idle_fraction) · burst_iops` (see [`ArrivalModel::mean_iops`]);
    /// the share of the arrival clock spent idle approaches `idle_fraction`
    /// as `burst_len` grows (at small burst lengths the idle gap also absorbs
    /// the on-gap its request would have used, so the idle share runs higher).
    OnOffBurst {
        /// Arrival rate *inside* a burst, in requests per second (positive,
        /// finite). This is the instantaneous load the device must absorb.
        burst_iops: f64,
        /// Fraction of the arrival clock spent idle between bursts, in
        /// `[0, 1)`. `0.0` degenerates to a constant `burst_iops` stream.
        idle_fraction: f64,
        /// Requests per on-phase (at least 1).
        burst_len: u32,
    },
}

impl ArrivalModel {
    /// The mean arrival rate this model targets, in requests per second.
    ///
    /// For [`ArrivalModel::UniformGap`] this is the reciprocal of the mean gap;
    /// for the rate-targeting variants it is the configured rate (bounded-Pareto
    /// truncation is already folded into the scale, and the on/off idle time is
    /// part of the cycle accounting), so a long trace's
    /// [`offered_iops`](crate::Trace::offered_iops) converges to this value.
    pub fn mean_iops(self) -> f64 {
        match self {
            ArrivalModel::UniformGap { min_nanos, max_nanos } => {
                2e9 / (min_nanos + max_nanos) as f64
            }
            ArrivalModel::MeanRate { iops } => iops,
            ArrivalModel::Pareto { mean_iops, .. } => mean_iops,
            ArrivalModel::OnOffBurst { burst_iops, idle_fraction, .. } => {
                (1.0 - idle_fraction) * burst_iops
            }
        }
    }

    /// A short label for experiment reports (e.g. `uniform`, `pareto(a=1.5)`,
    /// `onoff(90% idle)`).
    pub fn label(self) -> String {
        match self {
            ArrivalModel::UniformGap { .. } => "uniform".to_string(),
            ArrivalModel::MeanRate { .. } => "mean-rate".to_string(),
            ArrivalModel::Pareto { shape, .. } => format!("pareto(a={shape})"),
            ArrivalModel::OnOffBurst { idle_fraction, burst_len, .. } => {
                format!("onoff({:.0}% idle, {burst_len}/burst)", idle_fraction * 100.0)
            }
        }
    }

    /// Builds the stateful gap sampler, validating the parameters.
    ///
    /// # Panics
    ///
    /// Panics if the model's parameters are degenerate (empty gap range,
    /// non-positive rate, Pareto shape at or below 1, idle fraction outside
    /// `[0, 1)`, or a zero burst length).
    pub fn sampler(self) -> ArrivalSampler {
        let kind = match self {
            ArrivalModel::UniformGap { min_nanos, max_nanos } => {
                assert!(min_nanos < max_nanos, "arrival gap range must be non-empty");
                SamplerKind::Uniform { min_nanos, max_nanos }
            }
            ArrivalModel::MeanRate { iops } => {
                assert!(
                    iops.is_finite() && iops > 0.0,
                    "target arrival rate must be positive and finite"
                );
                let mean = (1e9 / iops).max(1.0) as u64;
                SamplerKind::Uniform {
                    min_nanos: mean / 2,
                    max_nanos: (mean / 2 + mean).max(mean / 2 + 1),
                }
            }
            ArrivalModel::Pareto { shape, mean_iops } => {
                assert!(
                    shape.is_finite() && shape > 1.0,
                    "pareto shape must be finite and exceed 1"
                );
                assert!(
                    mean_iops.is_finite() && mean_iops > 0.0,
                    "target arrival rate must be positive and finite"
                );
                // Bounded Pareto on [L, R·L] with tail exponent α. Solve the
                // scale L so the closed-form mean equals the target mean gap:
                //   E = L · α/(α−1) · (1 − R^(1−α)) / (1 − R^(−α))
                let r = PARETO_BOUND_RATIO;
                let mean_gap = 1e9 / mean_iops;
                let mean_over_scale = shape / (shape - 1.0) * (1.0 - r.powf(1.0 - shape))
                    / (1.0 - r.powf(-shape));
                SamplerKind::Pareto {
                    scale: mean_gap / mean_over_scale,
                    inv_shape: 1.0 / shape,
                    // CDF mass below the truncation point: inverse-transform
                    // sampling with u scaled by this hits [L, R·L] exactly.
                    truncated_mass: 1.0 - r.powf(-shape),
                }
            }
            ArrivalModel::OnOffBurst { burst_iops, idle_fraction, burst_len } => {
                assert!(
                    burst_iops.is_finite() && burst_iops > 0.0,
                    "burst arrival rate must be positive and finite"
                );
                assert!(
                    (0.0..1.0).contains(&idle_fraction),
                    "idle fraction must be within [0, 1)"
                );
                assert!(burst_len >= 1, "burst length must be at least 1");
                let on_gap = (1e9 / burst_iops).max(1.0) as u64;
                // One cycle = `burst_len` on-gaps + 1 idle gap carrying
                // `burst_len + 1` requests. Solve the idle gap so the cycle's
                // mean rate is (1 − idle_fraction) · burst_iops.
                let cycle_requests = f64::from(burst_len) + 1.0;
                let idle_gap = (1e9 / burst_iops
                    * (cycle_requests / (1.0 - idle_fraction) - f64::from(burst_len)))
                    .max(1.0) as u64;
                SamplerKind::OnOff {
                    on_min: on_gap / 2,
                    on_max: (on_gap / 2 + on_gap).max(on_gap / 2 + 1),
                    idle_min: idle_gap / 2,
                    idle_max: (idle_gap / 2 + idle_gap).max(idle_gap / 2 + 1),
                    burst_len,
                    left_in_burst: burst_len,
                }
            }
        };
        ArrivalSampler { kind }
    }
}

impl Default for ArrivalModel {
    fn default() -> Self {
        ArrivalModel::UniformGap { min_nanos: 20_000, max_nanos: 200_000 }
    }
}

impl std::fmt::Display for ArrivalModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// The stateful inter-arrival gap sampler compiled from an [`ArrivalModel`]
/// via [`ArrivalModel::sampler`].
///
/// The uniform variant draws `rng.gen_range(min..max)` exactly like the
/// pre-heavy-tail generators did, so [`ArrivalModel::UniformGap`] and
/// [`ArrivalModel::MeanRate`] traces stay byte-identical across this refactor
/// (locked down by the golden-fingerprint test below). The heavy-tailed
/// variants are where [`ArrivalSampler::fill`] pays off: the generators refill
/// a gap buffer in `ARRIVAL_BATCH`-sized batches so the distribution
/// parameters are resolved once per batch instead of once per request.
#[derive(Debug, Clone)]
pub struct ArrivalSampler {
    kind: SamplerKind,
}

/// The per-variant sampling state behind [`ArrivalSampler`].
#[derive(Debug, Clone)]
enum SamplerKind {
    Uniform {
        min_nanos: u64,
        max_nanos: u64,
    },
    Pareto {
        /// The minimum gap L (nanoseconds).
        scale: f64,
        /// 1/α, precomputed for the inverse CDF.
        inv_shape: f64,
        /// `1 − R^(−α)`: the untruncated CDF mass kept by the bound.
        truncated_mass: f64,
    },
    OnOff {
        on_min: u64,
        on_max: u64,
        idle_min: u64,
        idle_max: u64,
        burst_len: u32,
        left_in_burst: u32,
    },
}

impl ArrivalSampler {
    /// Draws the next inter-arrival gap in nanoseconds (at least 1).
    pub fn next_gap(&mut self, rng: &mut StdRng) -> u64 {
        match &mut self.kind {
            SamplerKind::Uniform { min_nanos, max_nanos } => {
                rng.gen_range(*min_nanos..*max_nanos)
            }
            SamplerKind::Pareto { scale, inv_shape, truncated_mass } => {
                // Inverse CDF of the bounded Pareto: u ∈ [0, 1) maps onto
                // [L, R·L) monotonically.
                let u: f64 = rng.gen();
                let gap = *scale / (1.0 - u * *truncated_mass).powf(*inv_shape);
                (gap.round() as u64).max(1)
            }
            SamplerKind::OnOff {
                on_min,
                on_max,
                idle_min,
                idle_max,
                burst_len,
                left_in_burst,
            } => {
                if *left_in_burst == 0 {
                    *left_in_burst = *burst_len;
                    rng.gen_range(*idle_min..*idle_max)
                } else {
                    *left_in_burst -= 1;
                    rng.gen_range(*on_min..*on_max)
                }
            }
        }
    }

    /// Fills `gaps` with consecutive inter-arrival gaps, exactly as if
    /// [`ArrivalSampler::next_gap`] had been called `gaps.len()` times with the
    /// same RNG — the batch is purely an amortisation of the per-draw overhead
    /// (one variant dispatch and one parameter load per batch instead of per
    /// gap), never a different random stream.
    pub fn fill(&mut self, gaps: &mut [u64], rng: &mut StdRng) {
        match &mut self.kind {
            SamplerKind::Uniform { min_nanos, max_nanos } => {
                let (min, max) = (*min_nanos, *max_nanos);
                for gap in gaps {
                    *gap = rng.gen_range(min..max);
                }
            }
            SamplerKind::Pareto { scale, inv_shape, truncated_mass } => {
                let (scale, inv_shape, mass) = (*scale, *inv_shape, *truncated_mass);
                for gap in gaps {
                    let u: f64 = rng.gen();
                    let raw = scale / (1.0 - u * mass).powf(inv_shape);
                    *gap = (raw.round() as u64).max(1);
                }
            }
            SamplerKind::OnOff {
                on_min,
                on_max,
                idle_min,
                idle_max,
                burst_len,
                left_in_burst,
            } => {
                let (on_min, on_max) = (*on_min, *on_max);
                let (idle_min, idle_max) = (*idle_min, *idle_max);
                let burst = *burst_len;
                let mut left = *left_in_burst;
                for gap in gaps {
                    if left == 0 {
                        left = burst;
                        *gap = rng.gen_range(idle_min..idle_max);
                    } else {
                        left -= 1;
                        *gap = rng.gen_range(on_min..on_max);
                    }
                }
                *left_in_burst = left;
            }
        }
    }
}

/// The arrival clock the generators advance per request: either inline draws
/// off the shared content RNG (the historic, byte-stable path) or batched
/// draws off a dedicated arrival RNG (the heavy-tailed path).
enum ArrivalClock {
    /// [`ArrivalModel::UniformGap`] / [`ArrivalModel::MeanRate`]: each gap is
    /// drawn inline from the generator's shared RNG, preserving the historic
    /// RNG consumption byte-for-byte.
    Inline(ArrivalSampler),
    /// [`ArrivalModel::Pareto`] / [`ArrivalModel::OnOffBurst`]: gaps come from
    /// a dedicated arrival RNG, refilled [`ARRIVAL_BATCH`] at a time via
    /// [`ArrivalSampler::fill`]. The content stream never sees these draws.
    Batched {
        sampler: ArrivalSampler,
        rng: Box<StdRng>,
        gaps: Box<[u64; ARRIVAL_BATCH]>,
        next: usize,
    },
}

impl ArrivalClock {
    fn new(model: ArrivalModel, seed: u64) -> Self {
        let sampler = model.sampler();
        match model {
            ArrivalModel::UniformGap { .. } | ArrivalModel::MeanRate { .. } => {
                ArrivalClock::Inline(sampler)
            }
            ArrivalModel::Pareto { .. } | ArrivalModel::OnOffBurst { .. } => {
                ArrivalClock::Batched {
                    sampler,
                    rng: Box::new(StdRng::seed_from_u64(seed ^ ARRIVAL_STREAM_SALT)),
                    gaps: Box::new([0; ARRIVAL_BATCH]),
                    // Start exhausted so the first gap triggers a refill.
                    next: ARRIVAL_BATCH,
                }
            }
        }
    }

    fn next_gap(&mut self, shared_rng: &mut StdRng) -> u64 {
        match self {
            ArrivalClock::Inline(sampler) => sampler.next_gap(shared_rng),
            ArrivalClock::Batched { sampler, rng, gaps, next } => {
                if *next == ARRIVAL_BATCH {
                    sampler.fill(&mut gaps[..], rng);
                    *next = 0;
                }
                let gap = gaps[*next];
                *next += 1;
                gap
            }
        }
    }
}

/// Shared knobs for the synthetic generators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticConfig {
    /// Number of requests to generate.
    pub requests: usize,
    /// RNG seed; equal seeds give byte-identical traces.
    pub seed: u64,
    /// Size of the logical address space the workload touches, in bytes. Keep this
    /// below the simulated device's usable capacity.
    pub working_set_bytes: u64,
    /// How arrival timestamps are spaced; the default reproduces the historic
    /// 20–200 µs uniform gaps exactly.
    pub arrival: ArrivalModel,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            requests: 50_000,
            seed: 42,
            working_set_bytes: 256 * MIB,
            arrival: ArrivalModel::default(),
        }
    }
}

/// Parameters for the generic [`skewed`] generator, used for ablations and custom
/// scenarios.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkewedParams {
    /// Fraction of requests that are reads, in `[0, 1]`.
    pub read_ratio: f64,
    /// Zipf exponent of the popularity skew (0 = uniform).
    pub zipf_exponent: f64,
    /// Smallest request size in bytes.
    pub min_request_bytes: u32,
    /// Largest request size in bytes.
    pub max_request_bytes: u32,
    /// Granularity at which popularity is assigned, in bytes (the "item" size of the
    /// Zipf distribution).
    pub region_bytes: u64,
}

impl Default for SkewedParams {
    fn default() -> Self {
        SkewedParams {
            read_ratio: 0.6,
            zipf_exponent: 1.0,
            min_request_bytes: 4 * KIB as u32,
            max_request_bytes: 16 * KIB as u32,
            region_bytes: 16 * KIB,
        }
    }
}

fn advance_clock(rng: &mut StdRng, now: &mut u64, arrivals: &mut ArrivalClock) -> u64 {
    // Inter-arrival gap drawn from the configured arrival model. Closed-loop replay
    // only cares about the ordering, but open-loop replay issues requests at these
    // timestamps, so the spacing determines the offered load — and, for the
    // heavy-tailed models, the burstiness.
    *now += arrivals.next_gap(rng);
    *now
}

/// Generic Zipf-skewed random workload.
///
/// # Panics
///
/// Panics if the parameters are degenerate (zero-sized working set, zero requests,
/// `min_request_bytes > max_request_bytes`, or a read ratio outside `[0, 1]`).
pub fn skewed(config: SyntheticConfig, params: SkewedParams) -> Trace {
    assert!(config.requests > 0, "requests must be positive");
    assert!(config.working_set_bytes >= params.region_bytes, "working set smaller than one region");
    assert!(params.min_request_bytes > 0, "min_request_bytes must be positive");
    assert!(
        params.min_request_bytes <= params.max_request_bytes,
        "min_request_bytes must not exceed max_request_bytes"
    );
    assert!(
        (0.0..=1.0).contains(&params.read_ratio),
        "read_ratio must be within [0, 1]"
    );

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut arrivals = ArrivalClock::new(config.arrival, config.seed);
    let regions = (config.working_set_bytes / params.region_bytes).max(1) as usize;
    let zipf = Zipf::new(regions, params.zipf_exponent);
    let mut now = 0u64;
    let mut requests = Vec::with_capacity(config.requests);

    for _ in 0..config.requests {
        let region = zipf.sample(&mut rng) as u64;
        let offset = region * params.region_bytes;
        let length = if params.min_request_bytes == params.max_request_bytes {
            params.min_request_bytes
        } else {
            rng.gen_range(params.min_request_bytes..=params.max_request_bytes)
        };
        let op = if rng.gen_bool(params.read_ratio) { IoOp::Read } else { IoOp::Write };
        let at = advance_clock(&mut rng, &mut now, &mut arrivals);
        requests.push(IoRequest::new(at, op, offset, length));
    }

    Trace::new("skewed", requests)
}

/// Synthetic stand-in for the MSR media-server trace.
///
/// The address space is carved into "media files" of 4 MiB. Most requests stream a
/// popular file sequentially in 64–256 KiB reads; around 8% of requests ingest new
/// content with sequential writes, and a small metadata region at the front of the
/// address space receives frequent 4 KiB reads and writes.
pub fn media_server(config: SyntheticConfig) -> Trace {
    assert!(config.requests > 0, "requests must be positive");
    const FILE_BYTES: u64 = 4 * MIB;
    const METADATA_BYTES: u64 = MIB;

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut arrivals = ArrivalClock::new(config.arrival, config.seed);
    let data_bytes = config.working_set_bytes.saturating_sub(METADATA_BYTES).max(FILE_BYTES);
    let files = (data_bytes / FILE_BYTES).max(1) as usize;
    let popularity = Zipf::new(files, 0.9);
    let mut now = 0u64;
    let mut requests = Vec::with_capacity(config.requests);
    // Per-file streaming cursor so consecutive reads of the same file are sequential.
    let mut cursors = vec![0u64; files];

    while requests.len() < config.requests {
        let roll: f64 = rng.gen();
        let at = advance_clock(&mut rng, &mut now, &mut arrivals);
        if roll < 0.04 {
            // Metadata read or write: small, extremely hot.
            let offset = rng.gen_range(0..METADATA_BYTES / (4 * KIB)) * 4 * KIB;
            let op = if rng.gen_bool(0.5) { IoOp::Read } else { IoOp::Write };
            requests.push(IoRequest::new(at, op, offset, 4 * KIB as u32));
        } else if roll < 0.055 {
            // Ingest: write a whole new file sequentially in 256 KiB chunks. The event
            // probability is low because each event emits a burst of 16 write requests.
            let file = rng.gen_range(0..files) as u64;
            let base = METADATA_BYTES + file * FILE_BYTES;
            let chunk = 256 * KIB;
            let mut written = 0;
            while written < FILE_BYTES && requests.len() < config.requests {
                let at = advance_clock(&mut rng, &mut now, &mut arrivals);
                requests.push(IoRequest::new(at, IoOp::Write, base + written, chunk as u32));
                written += chunk;
            }
            cursors[file as usize] = 0;
        } else {
            // Streaming read of a popular file.
            let file = popularity.sample(&mut rng);
            let base = METADATA_BYTES + file as u64 * FILE_BYTES;
            let chunk = *[64 * KIB, 128 * KIB, 256 * KIB]
                .get(rng.gen_range(0..3))
                .expect("chunk table is non-empty");
            let cursor = cursors[file];
            let offset = base + cursor;
            cursors[file] = (cursor + chunk) % FILE_BYTES;
            requests.push(IoRequest::new(at, IoOp::Read, offset, chunk as u32));
        }
    }

    requests.truncate(config.requests);
    Trace::new("media-server", requests)
}

/// Synthetic stand-in for the MSR web/SQL-server trace.
///
/// The address space is carved into the data classes an enterprise web/SQL server
/// actually stores (the same classes the paper uses to motivate its four hotness
/// levels):
///
/// * a small **metadata** region — small requests, frequently read *and* written,
/// * a **temp/cache** region — small requests, frequently written, almost never read,
/// * a **table** region — Zipf-popular database pages, read-dominant with occasional
///   small updates,
/// * an **asset** region — write-once-read-many content served with larger requests
///   and strong popularity skew,
/// * a **backup** region — sequential bulk writes that are essentially never read.
pub fn web_sql_server(config: SyntheticConfig) -> Trace {
    assert!(config.requests > 0, "requests must be positive");
    const METADATA_BYTES: u64 = 2 * MIB;
    const REGION: u64 = 8 * KIB;

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut arrivals = ArrivalClock::new(config.arrival, config.seed);
    let data_bytes = config.working_set_bytes.saturating_sub(METADATA_BYTES).max(4 * REGION);
    // Split the data space: 15% temp, 25% tables, 45% assets, 15% backups.
    let temp_bytes = data_bytes * 15 / 100;
    let table_bytes = data_bytes * 25 / 100;
    let asset_bytes = data_bytes * 45 / 100;
    let backup_bytes = data_bytes - temp_bytes - table_bytes - asset_bytes;
    let temp_base = METADATA_BYTES;
    let table_base = temp_base + temp_bytes;
    let asset_base = table_base + table_bytes;
    let backup_base = asset_base + asset_bytes;

    let temp_popularity = Zipf::new((temp_bytes / REGION).max(1) as usize, 0.8);
    let table_popularity = Zipf::new((table_bytes / REGION).max(1) as usize, 1.1);
    let asset_popularity = Zipf::new((asset_bytes / (64 * KIB)).max(1) as usize, 1.0);

    let mut now = 0u64;
    let mut requests = Vec::with_capacity(config.requests);
    let mut backup_cursor = 0u64;

    while requests.len() < config.requests {
        let roll: f64 = rng.gen();
        let at = advance_clock(&mut rng, &mut now, &mut arrivals);
        if roll < 0.10 {
            // Metadata: small, frequently read and written (iron-hot behaviour).
            let offset = rng.gen_range(0..METADATA_BYTES / (4 * KIB)) * 4 * KIB;
            let op = if rng.gen_bool(0.55) { IoOp::Read } else { IoOp::Write };
            requests.push(IoRequest::new(at, op, offset, 4 * KIB as u32));
        } else if roll < 0.35 {
            // Temp/cache files: small, frequently overwritten, rarely read back
            // (hot behaviour).
            let region = temp_popularity.sample(&mut rng) as u64;
            let offset = temp_base + region * REGION;
            let op = if rng.gen_bool(0.92) { IoOp::Write } else { IoOp::Read };
            requests.push(IoRequest::new(at, op, offset, 8 * KIB as u32));
        } else if roll < 0.70 {
            // Database tables: Zipf-popular pages, read-dominant with small updates.
            let region = table_popularity.sample(&mut rng) as u64;
            let offset = table_base + region * REGION;
            let op = if rng.gen_bool(0.80) { IoOp::Read } else { IoOp::Write };
            let size = *[4 * KIB, 8 * KIB].get(rng.gen_range(0..2)).expect("non-empty") as u32;
            requests.push(IoRequest::new(at, op, offset, size));
        } else if roll < 0.90 {
            // Served assets: write-once-read-many, larger requests, strong popularity
            // skew (cold behaviour — the popular ones deserve fast pages).
            let chunk = asset_popularity.sample(&mut rng) as u64;
            let offset = asset_base + chunk * 64 * KIB;
            let op = if rng.gen_bool(0.95) { IoOp::Read } else { IoOp::Write };
            requests.push(IoRequest::new(at, op, offset, 64 * KIB as u32));
        } else {
            // Backups: sequential bulk writes, essentially never read (icy-cold).
            let offset = backup_base + (backup_cursor % backup_bytes.max(64 * KIB));
            backup_cursor += 64 * KIB;
            requests.push(IoRequest::new(at, IoOp::Write, offset, 64 * KIB as u32));
        }
    }

    requests.truncate(config.requests);
    Trace::new("web-sql-server", requests)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_per_seed() {
        let config = SyntheticConfig { requests: 2_000, seed: 9, ..Default::default() };
        assert_eq!(media_server(config), media_server(config));
        assert_eq!(web_sql_server(config), web_sql_server(config));
        let other_seed = SyntheticConfig { seed: 10, ..config };
        assert_ne!(web_sql_server(config), web_sql_server(other_seed));
    }

    #[test]
    fn generators_respect_request_count_and_working_set() {
        let config = SyntheticConfig {
            requests: 3_000,
            seed: 1,
            working_set_bytes: 64 * MIB,
            ..Default::default()
        };
        for trace in [media_server(config), web_sql_server(config), skewed(config, SkewedParams::default())] {
            assert_eq!(trace.len(), 3_000, "{} wrong length", trace.name());
            for req in &trace {
                assert!(
                    req.offset < config.working_set_bytes,
                    "{} escaped the working set: offset {}",
                    trace.name(),
                    req.offset
                );
                assert!(req.length > 0);
            }
        }
    }

    #[test]
    fn media_server_is_read_dominant_and_sequential() {
        let trace = media_server(SyntheticConfig { requests: 20_000, seed: 3, ..Default::default() });
        let stats = trace.stats();
        assert!(stats.read_ratio() > 0.6, "read ratio was {}", stats.read_ratio());
        assert!(stats.mean_request_bytes > 32.0 * KIB as f64);
    }

    #[test]
    fn web_sql_server_is_small_random_and_reread_heavy() {
        let trace = web_sql_server(SyntheticConfig { requests: 20_000, seed: 3, ..Default::default() });
        let stats = trace.stats();
        assert!(stats.mean_request_bytes < 32.0 * KIB as f64);
        assert!(stats.reread_fraction > 0.5, "reread fraction was {}", stats.reread_fraction);
        assert!(stats.read_ratio() > 0.4 && stats.read_ratio() < 0.8);
    }

    #[test]
    fn web_trace_has_more_locality_than_uniform_skewed() {
        let config = SyntheticConfig { requests: 10_000, seed: 11, ..Default::default() };
        let uniform = skewed(
            config,
            SkewedParams { zipf_exponent: 0.0, ..SkewedParams::default() },
        );
        let web = web_sql_server(config);
        assert!(web.stats().reread_fraction > uniform.stats().reread_fraction);
    }

    #[test]
    fn timestamps_are_monotonically_increasing() {
        let trace = web_sql_server(SyntheticConfig { requests: 5_000, seed: 2, ..Default::default() });
        let mut last = 0;
        for req in &trace {
            assert!(req.at_nanos >= last);
            last = req.at_nanos;
        }
    }

    #[test]
    fn mean_rate_arrival_model_targets_the_offered_rate() {
        let target = 25_000.0; // 25k IOPS -> 40 µs mean gap
        let config = SyntheticConfig {
            requests: 20_000,
            seed: 5,
            arrival: ArrivalModel::MeanRate { iops: target },
            ..Default::default()
        };
        let trace = web_sql_server(config);
        let offered = trace.offered_iops();
        assert!(
            (offered - target).abs() / target < 0.05,
            "offered rate {offered:.0} should be within 5% of the {target:.0} target"
        );
        // The default model is untouched: equal seeds still give the historic trace.
        let default_cfg = SyntheticConfig { requests: 20_000, seed: 5, ..Default::default() };
        assert_ne!(web_sql_server(default_cfg), trace);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn mean_rate_rejects_non_positive_rates() {
        let config = SyntheticConfig {
            requests: 10,
            arrival: ArrivalModel::MeanRate { iops: 0.0 },
            ..Default::default()
        };
        let _ = media_server(config);
    }

    /// FNV-style fold of every request field, order-sensitive: any change to a
    /// single timestamp, op, offset or length changes the fingerprint.
    fn fingerprint(trace: &Trace) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |value: u64| {
            hash ^= value;
            hash = hash.wrapping_mul(0x100_0000_01b3);
        };
        for request in trace {
            mix(request.at_nanos);
            mix(match request.op {
                IoOp::Read => 1,
                IoOp::Write => 2,
            });
            mix(request.offset);
            mix(u64::from(request.length));
        }
        mix(trace.len() as u64);
        hash
    }

    /// The default [`ArrivalModel`] must keep producing the PR 4 traces
    /// byte-for-byte: these fingerprints were computed with the pre-heavy-tail
    /// generators (uniform 20–200 µs gaps drawn straight off the shared RNG) and
    /// lock the refactor onto the exact same RNG consumption.
    #[test]
    fn default_arrival_output_is_byte_identical_to_pre_heavy_tail_traces() {
        let config = SyntheticConfig {
            requests: 5_000,
            seed: 42,
            working_set_bytes: 64 * MIB,
            ..Default::default()
        };
        assert_eq!(fingerprint(&media_server(config)), 0x2d73_7419_803a_b776);
        assert_eq!(fingerprint(&web_sql_server(config)), 0xd0c6_5209_31e0_1496);
        assert_eq!(
            fingerprint(&skewed(config, SkewedParams::default())),
            0x9eb9_5907_2cb2_1c82
        );
    }

    #[test]
    fn fill_matches_repeated_next_gap_draws() {
        for model in [
            ArrivalModel::default(),
            ArrivalModel::MeanRate { iops: 30_000.0 },
            ArrivalModel::Pareto { shape: 1.4, mean_iops: 30_000.0 },
            ArrivalModel::OnOffBurst { burst_iops: 1e5, idle_fraction: 0.8, burst_len: 7 },
        ] {
            // Deliberately not a multiple of the burst length, so the on/off
            // phase state must survive across the fill boundary.
            let mut batch = vec![0u64; 1_000];
            let mut batch_rng = StdRng::seed_from_u64(99);
            model.sampler().fill(&mut batch, &mut batch_rng);

            let mut single_rng = StdRng::seed_from_u64(99);
            let mut sampler = model.sampler();
            let singles: Vec<u64> =
                (0..1_000).map(|_| sampler.next_gap(&mut single_rng)).collect();
            assert_eq!(batch, singles, "{model}: fill diverged from next_gap");
        }
    }

    #[test]
    fn heavy_tailed_arrivals_leave_the_content_stream_untouched() {
        // The dedicated arrival RNG means two heavy-tailed models at the same
        // seed generate the same requests — only the timestamps differ.
        let base = SyntheticConfig { requests: 5_000, seed: 13, ..Default::default() };
        let pareto = web_sql_server(SyntheticConfig {
            arrival: ArrivalModel::Pareto { shape: 1.5, mean_iops: 20_000.0 },
            ..base
        });
        let onoff = web_sql_server(SyntheticConfig {
            arrival: ArrivalModel::OnOffBurst {
                burst_iops: 1e5,
                idle_fraction: 0.75,
                burst_len: 32,
            },
            ..base
        });
        assert_ne!(pareto, onoff, "timestamps must differ across models");
        for (a, b) in pareto.requests().iter().zip(onoff.requests()) {
            assert_eq!((a.op, a.offset, a.length), (b.op, b.offset, b.length));
        }
    }

    #[test]
    fn heavy_tailed_models_preserve_the_configured_mean_rate() {
        let target = 30_000.0;
        for arrival in [
            ArrivalModel::Pareto { shape: 1.5, mean_iops: target },
            ArrivalModel::Pareto { shape: 2.5, mean_iops: target },
            ArrivalModel::OnOffBurst { burst_iops: 4.0 * target, idle_fraction: 0.75, burst_len: 64 },
        ] {
            let config = SyntheticConfig {
                requests: 30_000,
                seed: 17,
                arrival,
                ..Default::default()
            };
            let trace = web_sql_server(config);
            let offered = trace.offered_iops();
            assert!(
                (offered - target).abs() / target < 0.15,
                "{arrival}: offered rate {offered:.0} drifted from the {target:.0} target"
            );
        }
    }

    #[test]
    fn heavy_tailed_models_are_deterministic_and_seed_sensitive() {
        let config = SyntheticConfig {
            requests: 2_000,
            seed: 5,
            arrival: ArrivalModel::OnOffBurst { burst_iops: 1e5, idle_fraction: 0.9, burst_len: 32 },
            ..Default::default()
        };
        assert_eq!(media_server(config), media_server(config));
        assert_ne!(media_server(config), media_server(SyntheticConfig { seed: 6, ..config }));
    }

    #[test]
    fn pareto_concentrates_gaps_below_the_uniform_median() {
        // Heavy tail at equal mean: most gaps are much smaller than the mean
        // (bursts), compensated by rare huge gaps (lulls). The uniform model's
        // gaps cluster around the mean instead.
        let target = 25_000.0;
        let gaps = |arrival: ArrivalModel| -> Vec<u64> {
            let trace = web_sql_server(SyntheticConfig {
                requests: 20_000,
                seed: 3,
                arrival,
                ..Default::default()
            });
            trace
                .requests()
                .windows(2)
                .map(|pair| pair[1].at_nanos - pair[0].at_nanos)
                .collect()
        };
        let median = |mut values: Vec<u64>| -> u64 {
            values.sort_unstable();
            values[values.len() / 2]
        };
        let uniform_median = median(gaps(ArrivalModel::MeanRate { iops: target }));
        let pareto_median = median(gaps(ArrivalModel::Pareto { shape: 1.3, mean_iops: target }));
        assert!(
            pareto_median * 2 < uniform_median,
            "pareto median gap {pareto_median} should sit far below uniform {uniform_median}"
        );
    }

    #[test]
    fn onoff_idle_gaps_dwarf_burst_gaps() {
        let trace = web_sql_server(SyntheticConfig {
            requests: 5_000,
            seed: 9,
            arrival: ArrivalModel::OnOffBurst { burst_iops: 2e5, idle_fraction: 0.9, burst_len: 100 },
            ..Default::default()
        });
        let mut gaps: Vec<u64> = trace
            .requests()
            .windows(2)
            .map(|pair| pair[1].at_nanos - pair[0].at_nanos)
            .collect();
        gaps.sort_unstable();
        // One gap in 101 is an idle gap (~1% of the population), so the top
        // half-percent is guaranteed to be idle time.
        let p50 = gaps[gaps.len() / 2];
        let p995 = gaps[gaps.len() * 995 / 1000];
        assert!(
            p995 > p50 * 20,
            "idle gaps (p99.5 {p995}) should dwarf in-burst gaps (p50 {p50})"
        );
    }

    #[test]
    fn arrival_model_mean_iops_and_labels_cover_every_variant() {
        let models = [
            ArrivalModel::default(),
            ArrivalModel::MeanRate { iops: 1_000.0 },
            ArrivalModel::Pareto { shape: 1.5, mean_iops: 2_000.0 },
            ArrivalModel::OnOffBurst { burst_iops: 10_000.0, idle_fraction: 0.8, burst_len: 16 },
        ];
        for model in models {
            assert!(model.mean_iops() > 0.0, "{model}: mean rate must be positive");
            assert!(!model.label().is_empty());
        }
        assert_eq!(models[1].mean_iops(), 1_000.0);
        assert_eq!(models[2].mean_iops(), 2_000.0);
        assert!((models[3].mean_iops() - 2_000.0).abs() < 1e-9);
        // Default uniform gap 20–200 µs has a 110 µs mean gap.
        assert!((models[0].mean_iops() - 1e9 / 110_000.0).abs() < 1.0);
        let labels: std::collections::HashSet<String> =
            models.iter().map(|model| model.label()).collect();
        assert_eq!(labels.len(), models.len(), "labels must be distinct");
    }

    #[test]
    #[should_panic(expected = "shape must be finite and exceed 1")]
    fn pareto_rejects_shapes_at_or_below_one() {
        let config = SyntheticConfig {
            requests: 10,
            arrival: ArrivalModel::Pareto { shape: 1.0, mean_iops: 1_000.0 },
            ..Default::default()
        };
        let _ = media_server(config);
    }

    #[test]
    #[should_panic(expected = "idle fraction")]
    fn onoff_rejects_idle_fraction_of_one() {
        let config = SyntheticConfig {
            requests: 10,
            arrival: ArrivalModel::OnOffBurst {
                burst_iops: 1_000.0,
                idle_fraction: 1.0,
                burst_len: 8,
            },
            ..Default::default()
        };
        let _ = media_server(config);
    }

    #[test]
    #[should_panic(expected = "burst length")]
    fn onoff_rejects_zero_burst_len() {
        let config = SyntheticConfig {
            requests: 10,
            arrival: ArrivalModel::OnOffBurst {
                burst_iops: 1_000.0,
                idle_fraction: 0.5,
                burst_len: 0,
            },
            ..Default::default()
        };
        let _ = media_server(config);
    }

    #[test]
    #[should_panic(expected = "read_ratio")]
    fn skewed_rejects_bad_read_ratio() {
        let _ = skewed(
            SyntheticConfig::default(),
            SkewedParams { read_ratio: 1.5, ..SkewedParams::default() },
        );
    }
}
