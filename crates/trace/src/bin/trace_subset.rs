//! `trace-subset`: cut a tractable slice out of an MSR-Cambridge trace file.
//!
//! Streams the input line by line in constant memory — multi-GB originals are
//! fine — and writes the matching requests' **original CSV lines** to the output,
//! so the result is itself a valid MSR trace.
//!
//! ```text
//! trace-subset <input.csv> [--first-n N] [--time-window-us START END]
//!              [--lba-range START END] [--output FILE]
//!
//!   --first-n N               keep only the first N matching requests (stops
//!                             reading the input as soon as the quota fills)
//!   --time-window-us S E      keep requests arriving in [S, E) microseconds
//!                             from the file's first request
//!   --lba-range S E           keep requests overlapping byte range [S, E)
//!   --output FILE             write to FILE instead of stdout
//! ```
//!
//! Statistics (lines scanned, requests kept) go to stderr so they never corrupt a
//! piped output.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Write};
use std::process::ExitCode;

use vflash_trace::msr::{subset, SubsetOptions};

struct Args {
    input: String,
    output: Option<String>,
    options: SubsetOptions,
}

enum Parsed {
    Run(Args),
    Help,
}

fn usage() -> &'static str {
    "usage: trace-subset <input.csv> [--first-n N] [--time-window-us START END] \
     [--lba-range START END] [--output FILE]"
}

fn parse_args(args: &[String]) -> Result<Parsed, String> {
    let mut input = None;
    let mut output = None;
    let mut options = SubsetOptions::default();
    let mut iter = args.iter();
    let next_value = |flag: &str, iter: &mut std::slice::Iter<'_, String>| {
        iter.next().cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--first-n" => {
                let n = next_value("--first-n", &mut iter)?;
                options.first_n =
                    Some(n.parse().map_err(|_| format!("bad --first-n value `{n}`"))?);
            }
            "--time-window-us" => {
                let start: u64 = next_value("--time-window-us", &mut iter)?
                    .parse()
                    .map_err(|_| "bad --time-window-us start".to_string())?;
                let end: u64 = next_value("--time-window-us", &mut iter)?
                    .parse()
                    .map_err(|_| "bad --time-window-us end".to_string())?;
                if end <= start {
                    return Err("--time-window-us end must be after start".to_string());
                }
                let window = start
                    .checked_mul(1_000)
                    .zip(end.checked_mul(1_000))
                    .ok_or("--time-window-us value too large (overflows nanoseconds)")?;
                options.time_window_nanos = Some(window);
            }
            "--lba-range" => {
                let start: u64 = next_value("--lba-range", &mut iter)?
                    .parse()
                    .map_err(|_| "bad --lba-range start".to_string())?;
                let end: u64 = next_value("--lba-range", &mut iter)?
                    .parse()
                    .map_err(|_| "bad --lba-range end".to_string())?;
                if end <= start {
                    return Err("--lba-range end must be after start".to_string());
                }
                options.lba_range_bytes = Some((start, end));
            }
            "--output" | "-o" => output = Some(next_value("--output", &mut iter)?),
            "--help" | "-h" => return Ok(Parsed::Help),
            other if input.is_none() && !other.starts_with('-') => {
                input = Some(other.to_string());
            }
            other => return Err(format!("unexpected argument `{other}`\n{}", usage())),
        }
    }
    let input = input.ok_or_else(|| usage().to_string())?;
    Ok(Parsed::Run(Args { input, output, options }))
}

fn run(args: &Args) -> Result<(), String> {
    let file = File::open(&args.input)
        .map_err(|e| format!("cannot open {}: {e}", args.input))?;
    let reader = BufReader::new(file);
    let stats = match &args.output {
        Some(path) => {
            let out = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
            let mut writer = BufWriter::new(out);
            let stats = subset(reader, &mut writer, &args.options)
                .map_err(|e| e.to_string())?;
            writer.flush().map_err(|e| format!("cannot flush {path}: {e}"))?;
            stats
        }
        None => {
            let stdout = io::stdout();
            let mut writer = BufWriter::new(stdout.lock());
            let stats = subset(reader, &mut writer, &args.options)
                .map_err(|e| e.to_string())?;
            writer.flush().map_err(|e| format!("cannot flush stdout: {e}"))?;
            stats
        }
    };
    eprintln!(
        "scanned {} lines ({} requests), kept {}",
        stats.scanned.lines, stats.scanned.requests, stats.kept
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args).and_then(|parsed| match parsed {
        Parsed::Help => {
            println!("{}", usage());
            Ok(())
        }
        Parsed::Run(args) => run(&args),
    }) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::from(2)
        }
    }
}
