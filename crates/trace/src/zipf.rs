//! A small Zipf-distributed sampler.
//!
//! Enterprise block workloads show heavily skewed access popularity: a small set of
//! logical regions receives most of the traffic. The synthetic generators model that
//! skew with a Zipf distribution. Implemented here (inverse-CDF over a precomputed
//! table) rather than pulling in `rand_distr`, keeping the dependency set to the
//! approved list.

use rand::Rng;

/// Zipf distribution over ranks `0..n` with exponent `s`.
///
/// Rank 0 is the most popular item. `s = 0` degenerates to the uniform distribution;
/// `s` around 0.9–1.2 matches measured block-level popularity skew.
///
/// # Example
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use vflash_trace::Zipf;
///
/// let zipf = Zipf::new(1_000, 1.0);
/// let mut rng = StdRng::seed_from_u64(1);
/// let sample = zipf.sample(&mut rng);
/// assert!(sample < 1_000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution table for `n` items with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero, or `s` is negative or not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one item");
        assert!(s.is_finite() && s >= 0.0, "zipf exponent must be finite and non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for value in &mut cdf {
            *value /= total;
        }
        Zipf { cdf }
    }

    /// Number of items in the distribution.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is empty (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `0..n`; smaller ranks are more likely.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).expect("cdf is finite")) {
            Ok(index) => index,
            Err(index) => index.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range() {
        let zipf = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            assert!(zipf.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn low_ranks_dominate_for_positive_exponent() {
        let zipf = Zipf::new(1_000, 1.1);
        let mut rng = StdRng::seed_from_u64(7);
        let mut top_ten = 0;
        let draws = 20_000;
        for _ in 0..draws {
            if zipf.sample(&mut rng) < 10 {
                top_ten += 1;
            }
        }
        // With s = 1.1 over 1000 items the top 10 ranks carry well over 30% of mass.
        assert!(
            top_ten as f64 / draws as f64 > 0.3,
            "top-10 share was only {top_ten}/{draws}"
        );
    }

    #[test]
    fn zero_exponent_is_roughly_uniform() {
        let zipf = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 10];
        for _ in 0..20_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        let min = *counts.iter().min().unwrap() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(max / min < 1.3, "uniform sampling too skewed: {counts:?}");
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_items_rejected() {
        let _ = Zipf::new(0, 1.0);
    }
}
