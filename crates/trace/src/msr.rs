//! Parser for the MSR-Cambridge block trace format.
//!
//! The traces published by Narayanan et al. ("Write Off-Loading: Practical Power
//! Management for Enterprise Storage", TOS 2008) are CSV files with one request per
//! line:
//!
//! ```text
//! Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//! 128166372003061629,mds,0,Read,7014609920,24576,41286
//! ```
//!
//! * `Timestamp` — Windows FILETIME (100 ns ticks since 1601-01-01),
//! * `Type` — `Read` or `Write` (case-insensitive),
//! * `Offset`, `Size` — bytes,
//! * `ResponseTime` — measured service time in microseconds (ignored here; the
//!   simulator computes its own).
//!
//! The real MSR traces cannot be redistributed with this repository; the synthetic
//! generators in [`crate::synthetic`] stand in for them, but this parser lets the
//! original files be used unmodified when available.

use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;

use crate::request::{IoOp, IoRequest, Trace};

/// Error produced while parsing an MSR-Cambridge CSV trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub reason: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid msr trace line {}: {}", self.line, self.reason)
    }
}

impl Error for ParseTraceError {}

/// Parses an MSR-Cambridge CSV trace from a reader.
///
/// The input is consumed **streaming, line by line**, into a single reused buffer:
/// neither the file nor per-line `String`s are materialised, so multi-GB raw traces
/// parse within a constant memory budget (plus the decoded request vector, 24 bytes
/// per request).
///
/// Timestamps are re-based so the first request arrives at time zero. Blank lines are
/// skipped. Requests with zero size are skipped (they occasionally appear in the raw
/// traces and carry no FTL-visible work).
///
/// # Errors
///
/// Returns [`ParseTraceError`] for malformed lines (wrong field count, unparsable
/// numbers, unknown request type) and wraps I/O errors from the reader in the same
/// error with the failing line number.
///
/// # Example
///
/// ```
/// use vflash_trace::msr;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let csv = "\
/// 128166372003061629,mds,0,Read,7014609920,24576,41286
/// 128166372016853766,mds,0,Write,1317441536,8192,1763";
/// let trace = msr::parse(csv.as_bytes(), "mds_0")?;
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.requests()[0].at_nanos, 0);
/// # Ok(())
/// # }
/// ```
pub fn parse<R: BufRead>(reader: R, name: &str) -> Result<Trace, ParseTraceError> {
    parse_filtered(reader, name, &SubsetOptions::default())
}

/// One decoded trace line, before timestamp rebasing.
struct ParsedLine {
    timestamp: u64,
    op: IoOp,
    offset: u64,
    size: u32,
}

/// Parses one non-blank CSV line into its FTL-relevant fields. Returns `None` for
/// zero-size requests (they occasionally appear in the raw traces and carry no
/// FTL-visible work).
fn parse_line(trimmed: &str, line_number: usize) -> Result<Option<ParsedLine>, ParseTraceError> {
    let fields: Vec<&str> = trimmed.split(',').collect();
    if fields.len() < 6 {
        return Err(ParseTraceError {
            line: line_number,
            reason: format!("expected at least 6 comma-separated fields, found {}", fields.len()),
        });
    }
    let timestamp: u64 = fields[0].trim().parse().map_err(|_| ParseTraceError {
        line: line_number,
        reason: format!("bad timestamp `{}`", fields[0]),
    })?;
    let op = match fields[3].trim().to_ascii_lowercase().as_str() {
        "read" | "r" => IoOp::Read,
        "write" | "w" => IoOp::Write,
        other => {
            return Err(ParseTraceError {
                line: line_number,
                reason: format!("unknown request type `{other}`"),
            })
        }
    };
    let offset: u64 = fields[4].trim().parse().map_err(|_| ParseTraceError {
        line: line_number,
        reason: format!("bad offset `{}`", fields[4]),
    })?;
    let size: u64 = fields[5].trim().parse().map_err(|_| ParseTraceError {
        line: line_number,
        reason: format!("bad size `{}`", fields[5]),
    })?;
    if size == 0 {
        return Ok(None);
    }
    let size = u32::try_from(size).map_err(|_| ParseTraceError {
        line: line_number,
        reason: format!("request size {size} does not fit in 32 bits"),
    })?;
    Ok(Some(ParsedLine { timestamp, op, offset, size }))
}

/// Walks a trace stream line by line through one reused buffer, handing each
/// decoded request (with its rebased arrival time and the raw line **including
/// its original line ending**) to `visit`. `visit` returns `false` to stop
/// early — that is what makes [`SubsetOptions::first_n`] constant-*time* on
/// huge files, on top of the constant memory every path here has.
fn scan<R: BufRead>(
    mut reader: R,
    mut visit: impl FnMut(usize, u64, &ParsedLine, &str) -> bool,
) -> Result<ScanStats, ParseTraceError> {
    let mut stats = ScanStats::default();
    let mut first_timestamp: Option<u64> = None;
    let mut line = String::new();
    let mut line_number = 0usize;

    loop {
        line.clear();
        let bytes = reader.read_line(&mut line).map_err(|e| ParseTraceError {
            line: line_number + 1,
            reason: format!("read error: {e}"),
        })?;
        if bytes == 0 {
            break;
        }
        line_number += 1;
        stats.lines = line_number;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let Some(parsed) = parse_line(trimmed, line_number)? else { continue };
        stats.requests += 1;
        // Times are rebased against the first request of the *file* (not of the
        // subset), so a time window means the same thing whatever other filters
        // are active. FILETIME ticks are 100 ns each. The tick-to-nanosecond
        // conversion is checked: a rebased timestamp that does not fit in 64-bit
        // nanoseconds (~584 years of trace) is a corrupt line, and silently
        // saturating it would fold the tail of the trace onto one instant.
        let base = *first_timestamp.get_or_insert(parsed.timestamp);
        let ticks = parsed.timestamp.saturating_sub(base);
        let at_nanos = ticks.checked_mul(100).ok_or_else(|| ParseTraceError {
            line: line_number,
            reason: format!(
                "timestamp {} is {ticks} ticks after the file's first request, which \
                 overflows the 64-bit nanosecond clock",
                parsed.timestamp
            ),
        })?;
        if !visit(line_number, at_nanos, &parsed, &line) {
            break;
        }
    }
    Ok(stats)
}

/// Counters describing one streaming pass over a trace file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScanStats {
    /// Physical lines consumed (including blank and zero-size lines).
    pub lines: usize,
    /// Well-formed, non-zero-size requests seen before any early stop.
    pub requests: usize,
}

/// Filters selecting a subset of a trace. All active filters must match
/// (conjunction); the default matches everything.
///
/// Used by [`parse_filtered`] / [`parse_path_filtered`] (decode the subset into a
/// [`Trace`]) and by [`subset`] (copy the subset's raw lines to a writer, for
/// cutting a small file out of a multi-GB original). Both paths stream in
/// constant memory, and `first_n` additionally stops reading the input as soon as
/// the quota is filled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SubsetOptions {
    /// Keep only the first N matching requests, then stop reading.
    pub first_n: Option<usize>,
    /// Keep requests arriving within `[start, end)` nanoseconds, measured from
    /// the first request of the file (the same rebasing [`parse`] applies).
    pub time_window_nanos: Option<(u64, u64)>,
    /// Keep requests whose byte range `[offset, offset + size)` overlaps this
    /// `[start, end)` range of the logical address space.
    pub lba_range_bytes: Option<(u64, u64)>,
}

impl SubsetOptions {
    /// Keeps only the first `n` matching requests.
    pub fn first_n(n: usize) -> Self {
        SubsetOptions { first_n: Some(n), ..SubsetOptions::default() }
    }

    /// Keeps requests arriving within `[start, end)` ns from the file's start.
    pub fn time_window(start_nanos: u64, end_nanos: u64) -> Self {
        SubsetOptions { time_window_nanos: Some((start_nanos, end_nanos)), ..Default::default() }
    }

    /// Keeps requests overlapping the byte range `[start, end)`.
    pub fn lba_range(start_byte: u64, end_byte: u64) -> Self {
        SubsetOptions { lba_range_bytes: Some((start_byte, end_byte)), ..Default::default() }
    }

    /// Whether a request with the given rebased arrival time and byte extent
    /// passes the time-window and LBA filters (`first_n` is enforced by the
    /// consumers, which count what they keep).
    fn matches(&self, at_nanos: u64, offset: u64, size: u32) -> bool {
        if let Some((start, end)) = self.time_window_nanos {
            if at_nanos < start || at_nanos >= end {
                return false;
            }
        }
        if let Some((start, end)) = self.lba_range_bytes {
            let request_end = offset.saturating_add(u64::from(size));
            if request_end <= start || offset >= end {
                return false;
            }
        }
        true
    }
}

/// Like [`parse`], but keeps only the requests matching `options`. The input is
/// consumed streaming; memory stays proportional to the *kept* subset, and with
/// [`SubsetOptions::first_n`] the reader is dropped as soon as the quota fills.
///
/// # Errors
///
/// Returns [`ParseTraceError`] as [`parse`] does.
pub fn parse_filtered<R: BufRead>(
    reader: R,
    name: &str,
    options: &SubsetOptions,
) -> Result<Trace, ParseTraceError> {
    let mut requests = Vec::new();
    let quota = options.first_n.unwrap_or(usize::MAX);
    scan(reader, |_line, at_nanos, parsed, _raw| {
        if requests.len() >= quota {
            return false;
        }
        if options.matches(at_nanos, parsed.offset, parsed.size) {
            requests.push(IoRequest::new(at_nanos, parsed.op, parsed.offset, parsed.size));
        }
        requests.len() < quota
    })?;
    Ok(Trace::new(name, requests))
}

/// Copies the raw lines of the requests matching `options` from `reader` to
/// `writer`, preserving the original CSV bytes — line endings (`\n` or `\r\n`)
/// and surrounding whitespace included, so the output is a byte-exact subset of
/// the input. Timestamps are *not* rebased in the output: the subset file
/// remains a valid MSR trace whose own rebase happens when it is parsed.
/// Returns how many lines were scanned and kept.
///
/// This is the engine of the `trace-subset` tool: cutting a tractable slice out
/// of a multi-GB MSR-Cambridge file without ever materialising either file.
///
/// # Errors
///
/// Returns [`ParseTraceError`] for malformed input as [`parse`] does, and wraps
/// writer errors with the line number being written.
pub fn subset<R: BufRead, W: Write>(
    reader: R,
    mut writer: W,
    options: &SubsetOptions,
) -> Result<SubsetStats, ParseTraceError> {
    let mut kept = 0usize;
    let quota = options.first_n.unwrap_or(usize::MAX);
    let mut write_error: Option<(usize, std::io::Error)> = None;
    let scanned = scan(reader, |line_number, at_nanos, parsed, raw| {
        if kept >= quota {
            return false;
        }
        if options.matches(at_nanos, parsed.offset, parsed.size) {
            if let Err(error) = writer.write_all(raw.as_bytes()) {
                write_error = Some((line_number, error));
                return false;
            }
            kept += 1;
        }
        kept < quota
    })?;
    if let Some((line, error)) = write_error {
        return Err(ParseTraceError { line, reason: format!("write error: {error}") });
    }
    Ok(SubsetStats { scanned, kept })
}

/// The outcome of one [`subset`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SubsetStats {
    /// What the pass read before stopping.
    pub scanned: ScanStats,
    /// Requests written to the output.
    pub kept: usize,
}

/// Opens an MSR-Cambridge CSV trace file and parses it streaming through a buffered
/// reader; the file is never held in memory as a whole. The trace is named after the
/// file stem (`mds_0.csv` → `"mds_0"`).
///
/// # Errors
///
/// Returns [`ParseTraceError`] with line 0 if the file cannot be opened, and the
/// usual malformed-line errors (with their 1-based line number) from [`parse`].
///
/// # Example
///
/// ```no_run
/// use vflash_trace::msr;
///
/// let trace = msr::parse_path("/traces/mds_0.csv").expect("readable, well-formed trace");
/// println!("{} requests", trace.len());
/// ```
pub fn parse_path<P: AsRef<Path>>(path: P) -> Result<Trace, ParseTraceError> {
    parse_path_filtered(path, &SubsetOptions::default())
}

/// Like [`parse_path`], but keeps only the requests matching `options`. Streams
/// the file through a buffered reader in constant memory (plus the kept subset),
/// and stops reading early once a [`SubsetOptions::first_n`] quota fills — so
/// pulling the first thousand requests out of a multi-GB MSR-Cambridge file costs
/// a few kilobytes of I/O, not a full scan.
///
/// # Errors
///
/// Returns [`ParseTraceError`] as [`parse_path`] does.
pub fn parse_path_filtered<P: AsRef<Path>>(
    path: P,
    options: &SubsetOptions,
) -> Result<Trace, ParseTraceError> {
    let path = path.as_ref();
    let name = path
        .file_stem()
        .map(|stem| stem.to_string_lossy().into_owned())
        .unwrap_or_else(|| "msr-trace".to_string());
    let file = File::open(path).map_err(|e| ParseTraceError {
        line: 0,
        reason: format!("cannot open {}: {e}", path.display()),
    })?;
    parse_filtered(BufReader::new(file), &name, options)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
128166372003061629,mds,0,Read,7014609920,24576,41286
128166372016853766,mds,0,Write,1317441536,8192,1763

128166372026937550,mds,0,READ,1317441536,8192,993
";

    #[test]
    fn parses_well_formed_lines_and_rebases_time() {
        let trace = parse(SAMPLE.as_bytes(), "mds_0").unwrap();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.name(), "mds_0");
        let reqs = trace.requests();
        assert_eq!(reqs[0].at_nanos, 0);
        assert_eq!(reqs[0].op, IoOp::Read);
        assert_eq!(reqs[0].offset, 7014609920);
        assert_eq!(reqs[0].length, 24576);
        // (128166372016853766 - 128166372003061629) ticks * 100 ns
        assert_eq!(reqs[1].at_nanos, 13_792_137 * 100);
        // case-insensitive op parsing
        assert_eq!(reqs[2].op, IoOp::Read);
    }

    #[test]
    fn zero_size_requests_are_skipped() {
        let csv = "1,host,0,Read,0,0,10\n2,host,0,Write,4096,4096,10\n";
        let trace = parse(csv.as_bytes(), "t").unwrap();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.requests()[0].op, IoOp::Write);
    }

    #[test]
    fn malformed_lines_report_line_numbers() {
        let csv = "1,host,0,Read,0,4096,10\nnot,a,valid,line\n";
        let err = parse(csv.as_bytes(), "t").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn unknown_op_is_rejected() {
        let csv = "1,host,0,Trim,0,4096,10\n";
        let err = parse(csv.as_bytes(), "t").unwrap_err();
        assert!(err.reason.contains("unknown request type"));
    }

    #[test]
    fn parse_path_streams_a_file_and_names_it_after_the_stem() {
        let path = std::env::temp_dir().join(format!(
            "vflash_msr_test_{}_{}.csv",
            std::process::id(),
            std::thread::current().name().unwrap_or("t").len(),
        ));
        std::fs::write(&path, SAMPLE).unwrap();
        let trace = parse_path(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(trace.len(), 3);
        assert!(trace.name().starts_with("vflash_msr_test_"));
    }

    #[test]
    fn parse_path_reports_unopenable_files() {
        let err = parse_path("/nonexistent/vflash/msr.csv").unwrap_err();
        assert_eq!(err.line, 0);
        assert!(err.reason.contains("cannot open"));
    }

    #[test]
    fn line_numbers_survive_blank_line_skipping() {
        // The blank line still counts towards line numbering, so a later error
        // points at the physical line of the file.
        let csv = "1,host,0,Read,0,4096,10\n\nbroken\n";
        let err = parse(csv.as_bytes(), "t").unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn first_n_keeps_a_prefix_and_stops_early() {
        let trace = parse_filtered(SAMPLE.as_bytes(), "t", &SubsetOptions::first_n(2)).unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.requests()[1].op, IoOp::Write);
        // A malformed line *after* the quota is never reached.
        let csv = "1,h,0,Read,0,4096,9\nbroken line\n";
        let trace = parse_filtered(csv.as_bytes(), "t", &SubsetOptions::first_n(1)).unwrap();
        assert_eq!(trace.len(), 1);
    }

    #[test]
    fn time_window_is_rebased_against_the_file_start() {
        // Requests at +0, +1379.2137 ms, +2387.5921 ms (FILETIME ticks x 100 ns).
        let window = SubsetOptions::time_window(1_000_000_000, 2_000_000_000);
        let trace = parse_filtered(SAMPLE.as_bytes(), "t", &window).unwrap();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.requests()[0].op, IoOp::Write);
        // The kept request retains its file-relative arrival time.
        assert_eq!(trace.requests()[0].at_nanos, 13_792_137 * 100);
    }

    #[test]
    fn lba_range_keeps_overlapping_requests() {
        let range = SubsetOptions::lba_range(1_317_441_536, 1_317_441_536 + 1);
        let trace = parse_filtered(SAMPLE.as_bytes(), "t", &range).unwrap();
        assert_eq!(trace.len(), 2, "write and re-read of the same offset");
        // A range that starts exactly at a request's end excludes it.
        let disjoint = SubsetOptions::lba_range(7_014_609_920 + 24_576, u64::MAX);
        let trace = parse_filtered(SAMPLE.as_bytes(), "t", &disjoint).unwrap();
        assert_eq!(trace.len(), 0);
    }

    #[test]
    fn filters_conjoin() {
        let options = SubsetOptions {
            first_n: Some(10),
            time_window_nanos: Some((0, u64::MAX)),
            lba_range_bytes: Some((0, 2_000_000_000)),
        };
        let trace = parse_filtered(SAMPLE.as_bytes(), "t", &options).unwrap();
        assert_eq!(trace.len(), 2, "only the two requests below 2 GB match");
    }

    #[test]
    fn subset_echoes_matching_raw_lines_unchanged() {
        let mut out = Vec::new();
        let stats = subset(SAMPLE.as_bytes(), &mut out, &SubsetOptions::first_n(2)).unwrap();
        assert_eq!(stats.kept, 2);
        assert_eq!(stats.scanned.requests, 2, "reading stopped at the quota");
        let text = String::from_utf8(out).unwrap();
        assert_eq!(
            text,
            "128166372003061629,mds,0,Read,7014609920,24576,41286\n\
             128166372016853766,mds,0,Write,1317441536,8192,1763\n",
            "original bytes (timestamps included) are preserved"
        );
        // The subset is itself a parsable MSR trace.
        let reparsed = parse(text.as_bytes(), "sub").unwrap();
        assert_eq!(reparsed.len(), 2);
        assert_eq!(reparsed.requests()[0].at_nanos, 0);
    }

    #[test]
    fn subset_preserves_crlf_line_endings_byte_for_byte() {
        let csv = "1,h,0,Read,0,4096,9\r\n2,h,0,Write,8192,4096,9\r\n";
        let mut out = Vec::new();
        let stats = subset(csv.as_bytes(), &mut out, &SubsetOptions::default()).unwrap();
        assert_eq!(stats.kept, 2);
        assert_eq!(out, csv.as_bytes(), "CRLF input must round-trip byte-exact");
        // A final line without a newline stays without one.
        let csv = "1,h,0,Read,0,4096,9\n2,h,0,Write,8192,4096,9";
        let mut out = Vec::new();
        subset(csv.as_bytes(), &mut out, &SubsetOptions::default()).unwrap();
        assert_eq!(out, csv.as_bytes());
    }

    #[test]
    fn subset_scans_everything_when_unlimited() {
        let mut out = Vec::new();
        let stats = subset(SAMPLE.as_bytes(), &mut out, &SubsetOptions::default()).unwrap();
        assert_eq!(stats.kept, 3);
        assert_eq!(stats.scanned.lines, 4, "blank line counted");
        assert_eq!(stats.scanned.requests, 3);
    }

    #[test]
    fn subset_propagates_malformed_lines() {
        let csv = "1,h,0,Read,0,4096,9\nbroken\n";
        let mut out = Vec::new();
        let err = subset(csv.as_bytes(), &mut out, &SubsetOptions::default()).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn timestamp_overflow_is_a_parse_error_with_line_number() {
        // The second timestamp is u64::MAX ticks; rebased against the first request
        // the tick delta no longer fits in nanoseconds (x100), so the line must be
        // rejected rather than silently saturated onto one instant.
        let csv = format!("1,h,0,Read,0,4096,9\n{},h,0,Write,0,4096,9\n", u64::MAX);
        let err = parse(csv.as_bytes(), "t").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(
            err.reason.contains("overflows"),
            "reason should name the overflow: {}",
            err.reason
        );
        // Rebasing keeps large absolute timestamps fine as long as the *delta* fits.
        let big_base = u64::MAX - 1_000;
        let csv = format!("{big_base},h,0,Read,0,4096,9\n{},h,0,Write,0,4096,9\n", u64::MAX);
        let trace = parse(csv.as_bytes(), "t").unwrap();
        assert_eq!(trace.requests()[1].at_nanos, 1_000 * 100);
    }

    #[test]
    fn bad_numbers_are_rejected() {
        for csv in [
            "abc,host,0,Read,0,4096,10\n",
            "1,host,0,Read,xyz,4096,10\n",
            "1,host,0,Read,0,many,10\n",
        ] {
            assert!(parse(csv.as_bytes(), "t").is_err(), "should reject: {csv}");
        }
    }
}
