//! Parser for the MSR-Cambridge block trace format.
//!
//! The traces published by Narayanan et al. ("Write Off-Loading: Practical Power
//! Management for Enterprise Storage", TOS 2008) are CSV files with one request per
//! line:
//!
//! ```text
//! Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//! 128166372003061629,mds,0,Read,7014609920,24576,41286
//! ```
//!
//! * `Timestamp` — Windows FILETIME (100 ns ticks since 1601-01-01),
//! * `Type` — `Read` or `Write` (case-insensitive),
//! * `Offset`, `Size` — bytes,
//! * `ResponseTime` — measured service time in microseconds (ignored here; the
//!   simulator computes its own).
//!
//! The real MSR traces cannot be redistributed with this repository; the synthetic
//! generators in [`crate::synthetic`] stand in for them, but this parser lets the
//! original files be used unmodified when available.

use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

use crate::request::{IoOp, IoRequest, Trace};

/// Error produced while parsing an MSR-Cambridge CSV trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub reason: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid msr trace line {}: {}", self.line, self.reason)
    }
}

impl Error for ParseTraceError {}

/// Parses an MSR-Cambridge CSV trace from a reader.
///
/// The input is consumed **streaming, line by line**, into a single reused buffer:
/// neither the file nor per-line `String`s are materialised, so multi-GB raw traces
/// parse within a constant memory budget (plus the decoded request vector, 24 bytes
/// per request).
///
/// Timestamps are re-based so the first request arrives at time zero. Blank lines are
/// skipped. Requests with zero size are skipped (they occasionally appear in the raw
/// traces and carry no FTL-visible work).
///
/// # Errors
///
/// Returns [`ParseTraceError`] for malformed lines (wrong field count, unparsable
/// numbers, unknown request type) and wraps I/O errors from the reader in the same
/// error with the failing line number.
///
/// # Example
///
/// ```
/// use vflash_trace::msr;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let csv = "\
/// 128166372003061629,mds,0,Read,7014609920,24576,41286
/// 128166372016853766,mds,0,Write,1317441536,8192,1763";
/// let trace = msr::parse(csv.as_bytes(), "mds_0")?;
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.requests()[0].at_nanos, 0);
/// # Ok(())
/// # }
/// ```
pub fn parse<R: BufRead>(mut reader: R, name: &str) -> Result<Trace, ParseTraceError> {
    let mut requests = Vec::new();
    let mut first_timestamp: Option<u64> = None;
    let mut line = String::new();
    let mut line_number = 0usize;

    loop {
        line.clear();
        let bytes = reader.read_line(&mut line).map_err(|e| ParseTraceError {
            line: line_number + 1,
            reason: format!("read error: {e}"),
        })?;
        if bytes == 0 {
            break;
        }
        line_number += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').collect();
        if fields.len() < 6 {
            return Err(ParseTraceError {
                line: line_number,
                reason: format!("expected at least 6 comma-separated fields, found {}", fields.len()),
            });
        }
        let timestamp: u64 = fields[0].trim().parse().map_err(|_| ParseTraceError {
            line: line_number,
            reason: format!("bad timestamp `{}`", fields[0]),
        })?;
        let op = match fields[3].trim().to_ascii_lowercase().as_str() {
            "read" | "r" => IoOp::Read,
            "write" | "w" => IoOp::Write,
            other => {
                return Err(ParseTraceError {
                    line: line_number,
                    reason: format!("unknown request type `{other}`"),
                })
            }
        };
        let offset: u64 = fields[4].trim().parse().map_err(|_| ParseTraceError {
            line: line_number,
            reason: format!("bad offset `{}`", fields[4]),
        })?;
        let size: u64 = fields[5].trim().parse().map_err(|_| ParseTraceError {
            line: line_number,
            reason: format!("bad size `{}`", fields[5]),
        })?;
        if size == 0 {
            continue;
        }
        let size = u32::try_from(size).map_err(|_| ParseTraceError {
            line: line_number,
            reason: format!("request size {size} does not fit in 32 bits"),
        })?;

        let base = *first_timestamp.get_or_insert(timestamp);
        // FILETIME ticks are 100 ns each.
        let at_nanos = timestamp.saturating_sub(base).saturating_mul(100);
        requests.push(IoRequest::new(at_nanos, op, offset, size));
    }

    Ok(Trace::new(name, requests))
}

/// Opens an MSR-Cambridge CSV trace file and parses it streaming through a buffered
/// reader; the file is never held in memory as a whole. The trace is named after the
/// file stem (`mds_0.csv` → `"mds_0"`).
///
/// # Errors
///
/// Returns [`ParseTraceError`] with line 0 if the file cannot be opened, and the
/// usual malformed-line errors (with their 1-based line number) from [`parse`].
///
/// # Example
///
/// ```no_run
/// use vflash_trace::msr;
///
/// let trace = msr::parse_path("/traces/mds_0.csv").expect("readable, well-formed trace");
/// println!("{} requests", trace.len());
/// ```
pub fn parse_path<P: AsRef<Path>>(path: P) -> Result<Trace, ParseTraceError> {
    let path = path.as_ref();
    let name = path
        .file_stem()
        .map(|stem| stem.to_string_lossy().into_owned())
        .unwrap_or_else(|| "msr-trace".to_string());
    let file = File::open(path).map_err(|e| ParseTraceError {
        line: 0,
        reason: format!("cannot open {}: {e}", path.display()),
    })?;
    parse(BufReader::new(file), &name)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
128166372003061629,mds,0,Read,7014609920,24576,41286
128166372016853766,mds,0,Write,1317441536,8192,1763

128166372026937550,mds,0,READ,1317441536,8192,993
";

    #[test]
    fn parses_well_formed_lines_and_rebases_time() {
        let trace = parse(SAMPLE.as_bytes(), "mds_0").unwrap();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.name(), "mds_0");
        let reqs = trace.requests();
        assert_eq!(reqs[0].at_nanos, 0);
        assert_eq!(reqs[0].op, IoOp::Read);
        assert_eq!(reqs[0].offset, 7014609920);
        assert_eq!(reqs[0].length, 24576);
        // (128166372016853766 - 128166372003061629) ticks * 100 ns
        assert_eq!(reqs[1].at_nanos, 13_792_137 * 100);
        // case-insensitive op parsing
        assert_eq!(reqs[2].op, IoOp::Read);
    }

    #[test]
    fn zero_size_requests_are_skipped() {
        let csv = "1,host,0,Read,0,0,10\n2,host,0,Write,4096,4096,10\n";
        let trace = parse(csv.as_bytes(), "t").unwrap();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.requests()[0].op, IoOp::Write);
    }

    #[test]
    fn malformed_lines_report_line_numbers() {
        let csv = "1,host,0,Read,0,4096,10\nnot,a,valid,line\n";
        let err = parse(csv.as_bytes(), "t").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn unknown_op_is_rejected() {
        let csv = "1,host,0,Trim,0,4096,10\n";
        let err = parse(csv.as_bytes(), "t").unwrap_err();
        assert!(err.reason.contains("unknown request type"));
    }

    #[test]
    fn parse_path_streams_a_file_and_names_it_after_the_stem() {
        let path = std::env::temp_dir().join(format!(
            "vflash_msr_test_{}_{}.csv",
            std::process::id(),
            std::thread::current().name().unwrap_or("t").len(),
        ));
        std::fs::write(&path, SAMPLE).unwrap();
        let trace = parse_path(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(trace.len(), 3);
        assert!(trace.name().starts_with("vflash_msr_test_"));
    }

    #[test]
    fn parse_path_reports_unopenable_files() {
        let err = parse_path("/nonexistent/vflash/msr.csv").unwrap_err();
        assert_eq!(err.line, 0);
        assert!(err.reason.contains("cannot open"));
    }

    #[test]
    fn line_numbers_survive_blank_line_skipping() {
        // The blank line still counts towards line numbering, so a later error
        // points at the physical line of the file.
        let csv = "1,host,0,Read,0,4096,10\n\nbroken\n";
        let err = parse(csv.as_bytes(), "t").unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn bad_numbers_are_rejected() {
        for csv in [
            "abc,host,0,Read,0,4096,10\n",
            "1,host,0,Read,xyz,4096,10\n",
            "1,host,0,Read,0,many,10\n",
        ] {
            assert!(parse(csv.as_bytes(), "t").is_err(), "should reject: {csv}");
        }
    }
}
