//! I/O request and trace containers.

use std::fmt;

use crate::stats::TraceStats;

/// Direction of an I/O request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoOp {
    /// A block read.
    Read,
    /// A block write.
    Write,
}

impl fmt::Display for IoOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IoOp::Read => "read",
            IoOp::Write => "write",
        })
    }
}

/// A single block-level I/O request.
///
/// Offsets and lengths are in bytes, matching the MSR-Cambridge trace format; the FTL
/// converts them into logical page numbers with [`IoRequest::logical_pages`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IoRequest {
    /// Arrival time in nanoseconds from the start of the trace.
    pub at_nanos: u64,
    /// Read or write.
    pub op: IoOp,
    /// Byte offset of the first byte accessed.
    pub offset: u64,
    /// Number of bytes accessed (never zero).
    pub length: u32,
}

impl IoRequest {
    /// Creates a request.
    ///
    /// # Panics
    ///
    /// Panics if `length` is zero: zero-length I/O has no meaning for an FTL and is
    /// always a generator or parser bug.
    pub fn new(at_nanos: u64, op: IoOp, offset: u64, length: u32) -> Self {
        assert!(length > 0, "I/O requests must access at least one byte");
        IoRequest { at_nanos, op, offset, length }
    }

    /// The half-open byte range `[offset, offset + length)` accessed by this request.
    pub fn byte_range(&self) -> std::ops::Range<u64> {
        self.offset..self.offset + u64::from(self.length)
    }

    /// The logical page numbers touched by this request for the given page size.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is zero.
    pub fn logical_pages(&self, page_size: usize) -> std::ops::Range<u64> {
        assert!(page_size > 0, "page size must be positive");
        let page_size = page_size as u64;
        let first = self.offset / page_size;
        let last = (self.offset + u64::from(self.length) - 1) / page_size;
        first..last + 1
    }

    /// Whether the request is smaller than one page — the size-check heuristic the
    /// paper uses as its first-stage hot/cold classifier treats sub-page requests as
    /// hot.
    pub fn is_sub_page(&self, page_size: usize) -> bool {
        (self.length as usize) < page_size
    }
}

/// An ordered sequence of I/O requests.
///
/// Construction goes through [`Trace::new`] (validating time ordering is *not*
/// required — real traces contain ties and minor inversions — but requests must be
/// non-empty length, which [`IoRequest::new`] already enforces).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    name: String,
    requests: Vec<IoRequest>,
}

impl Trace {
    /// Creates a trace from a name and request list.
    pub fn new(name: impl Into<String>, requests: Vec<IoRequest>) -> Self {
        Trace { name: name.into(), requests }
    }

    /// Human-readable name of the workload (e.g. `"media-server"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace contains no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Iterates over the requests in arrival order.
    pub fn iter(&self) -> std::slice::Iter<'_, IoRequest> {
        self.requests.iter()
    }

    /// Borrow the raw request slice.
    pub fn requests(&self) -> &[IoRequest] {
        &self.requests
    }

    /// Computes summary statistics for the trace.
    pub fn stats(&self) -> TraceStats {
        TraceStats::from_requests(&self.requests)
    }

    /// Arrival time of the first request, or `None` for an empty trace.
    pub fn first_arrival_nanos(&self) -> Option<u64> {
        self.requests.first().map(|request| request.at_nanos)
    }

    /// The largest recorded arrival time, or `None` for an empty trace. Real traces
    /// may contain minor timestamp inversions, so this scans rather than trusting
    /// the last entry.
    pub fn last_arrival_nanos(&self) -> Option<u64> {
        self.requests.iter().map(|request| request.at_nanos).max()
    }

    /// The span of the recorded arrival clock: largest arrival minus first arrival.
    /// Zero for traces with fewer than two requests. This is the duration an
    /// open-loop replay offers the trace's load over.
    pub fn arrival_span_nanos(&self) -> u64 {
        match (self.first_arrival_nanos(), self.last_arrival_nanos()) {
            (Some(first), Some(last)) => last.saturating_sub(first),
            _ => 0,
        }
    }

    /// The request rate the trace's timestamps encode (requests per second over the
    /// arrival span), or zero when the span is zero. An open-loop replay at
    /// `rate_scale = 1` offers exactly this rate.
    pub fn offered_iops(&self) -> f64 {
        let span = self.arrival_span_nanos();
        if span == 0 {
            0.0
        } else {
            self.requests.len() as f64 / (span as f64 / 1e9)
        }
    }

    /// Returns a copy of this trace truncated to at most `limit` requests, useful for
    /// keeping benchmark iterations short.
    pub fn truncated(&self, limit: usize) -> Trace {
        Trace {
            name: self.name.clone(),
            requests: self.requests.iter().take(limit).copied().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a IoRequest;
    type IntoIter = std::slice::Iter<'a, IoRequest>;

    fn into_iter(self) -> Self::IntoIter {
        self.requests.iter()
    }
}

impl IntoIterator for Trace {
    type Item = IoRequest;
    type IntoIter = std::vec::IntoIter<IoRequest>;

    fn into_iter(self) -> Self::IntoIter {
        self.requests.into_iter()
    }
}

impl FromIterator<IoRequest> for Trace {
    fn from_iter<T: IntoIterator<Item = IoRequest>>(iter: T) -> Self {
        Trace { name: String::from("unnamed"), requests: iter.into_iter().collect() }
    }
}

impl Extend<IoRequest> for Trace {
    fn extend<T: IntoIterator<Item = IoRequest>>(&mut self, iter: T) {
        self.requests.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_range_and_pages() {
        let req = IoRequest::new(0, IoOp::Write, 16 * 1024, 4 * 1024);
        assert_eq!(req.byte_range(), 16384..20480);
        assert_eq!(req.logical_pages(16 * 1024), 1..2);
        assert_eq!(req.logical_pages(4 * 1024), 4..5);
        assert!(req.is_sub_page(16 * 1024));
        assert!(!req.is_sub_page(4 * 1024));
    }

    #[test]
    fn request_spanning_multiple_pages() {
        let req = IoRequest::new(0, IoOp::Read, 10_000, 40_000);
        // bytes [10000, 50000) with 16 KiB pages -> pages 0..4 (byte 49999 is page 3)
        assert_eq!(req.logical_pages(16 * 1024), 0..4);
    }

    #[test]
    #[should_panic(expected = "at least one byte")]
    fn zero_length_requests_are_rejected() {
        let _ = IoRequest::new(0, IoOp::Read, 0, 0);
    }

    #[test]
    fn trace_collection_traits() {
        let reqs = [
            IoRequest::new(0, IoOp::Write, 0, 4096),
            IoRequest::new(10, IoOp::Read, 0, 4096),
        ];
        let trace: Trace = reqs.iter().copied().collect();
        assert_eq!(trace.len(), 2);
        assert!(!trace.is_empty());
        let mut extended = trace.clone();
        extended.extend([IoRequest::new(20, IoOp::Read, 4096, 4096)]);
        assert_eq!(extended.len(), 3);
        assert_eq!(extended.iter().count(), 3);
        assert_eq!(extended.into_iter().count(), 3);
    }

    #[test]
    fn arrival_accessors_report_span_and_rate() {
        let trace = Trace::new(
            "t",
            vec![
                IoRequest::new(1_000, IoOp::Write, 0, 4096),
                // A minor inversion: the maximum is found anyway.
                IoRequest::new(2_000_000, IoOp::Read, 0, 4096),
                IoRequest::new(1_500_000, IoOp::Read, 4096, 4096),
            ],
        );
        assert_eq!(trace.first_arrival_nanos(), Some(1_000));
        assert_eq!(trace.last_arrival_nanos(), Some(2_000_000));
        assert_eq!(trace.arrival_span_nanos(), 1_999_000);
        // 3 requests over ~2 ms ≈ 1500 req/s.
        assert!((trace.offered_iops() - 3.0 / 1_999_000e-9).abs() < 1e-6);
    }

    #[test]
    fn empty_and_single_request_traces_offer_no_rate() {
        let empty = Trace::new("e", Vec::new());
        assert_eq!(empty.first_arrival_nanos(), None);
        assert_eq!(empty.arrival_span_nanos(), 0);
        assert_eq!(empty.offered_iops(), 0.0);
        let one = Trace::new("o", vec![IoRequest::new(42, IoOp::Read, 0, 4096)]);
        assert_eq!(one.arrival_span_nanos(), 0);
        assert_eq!(one.offered_iops(), 0.0);
    }

    #[test]
    fn truncation_preserves_prefix() {
        let reqs: Vec<_> =
            (0..10).map(|i| IoRequest::new(i, IoOp::Read, i * 4096, 4096)).collect();
        let trace = Trace::new("t", reqs.clone());
        let cut = trace.truncated(3);
        assert_eq!(cut.len(), 3);
        assert_eq!(cut.requests(), &reqs[..3]);
        assert_eq!(cut.name(), "t");
    }
}
