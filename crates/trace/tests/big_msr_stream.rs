//! Streams a generated multi-hundred-MB synthetic MSR file through the subset
//! filters in constant memory.
//!
//! The MSR-Cambridge originals are multi-GB; the reader claims to handle them
//! streaming, but until now it had only ever seen strings of a few lines. This
//! test manufactures a file of a few hundred megabytes (a couple of million
//! requests), runs a **full-scan** filter over it (an LBA range that keeps ~0.1%
//! of the requests — every line must be visited), and checks that
//!
//! 1. the filter keeps exactly the expected requests,
//! 2. a `first_n` subset stops reading after its quota (so it is instant), and
//! 3. on Linux, the process's peak RSS grows by far less than the file size —
//!    i.e. neither the file nor the full request vector was ever materialised.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::PathBuf;

use vflash_trace::msr::{parse_path_filtered, SubsetOptions};
use vflash_trace::IoOp;

/// ~210 MB of trace: 4 M lines x ~53 bytes.
const LINES: u64 = 4_000_000;
/// One request every millisecond (FILETIME is 100 ns ticks).
const TICKS_PER_LINE: u64 = 10_000;
const BASE_TIMESTAMP: u64 = 128_166_372_003_061_629;
/// Logical space the synthetic offsets cycle through (16 GiB).
const SPAN: u64 = 16 << 30;

fn offset_of(line: u64) -> u64 {
    // A coprime stride scatters offsets over the whole span, 4 KiB aligned.
    (line.wrapping_mul(2_654_435_761) % (SPAN / 4096)) * 4096
}

fn generate(path: &PathBuf) -> u64 {
    let mut writer = BufWriter::with_capacity(1 << 20, File::create(path).expect("temp file"));
    let mut bytes = 0u64;
    let mut line = String::with_capacity(80);
    for i in 0..LINES {
        use std::fmt::Write as _;
        line.clear();
        let op = if i % 5 == 0 { "Write" } else { "Read" };
        let timestamp = BASE_TIMESTAMP + i * TICKS_PER_LINE;
        writeln!(line, "{timestamp},src1,0,{op},{},{},120", offset_of(i), 4096 + (i % 2) * 4096)
            .unwrap();
        bytes += line.len() as u64;
        writer.write_all(line.as_bytes()).unwrap();
    }
    writer.flush().unwrap();
    bytes
}

#[cfg(target_os = "linux")]
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|line| line.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

#[test]
fn multi_hundred_mb_file_streams_in_constant_memory() {
    let path = std::env::temp_dir().join(format!("vflash_big_msr_{}.csv", std::process::id()));
    let bytes = generate(&path);
    assert!(bytes >= 200 * 1000 * 1000, "generated only {bytes} bytes; not multi-hundred-MB");

    #[cfg(target_os = "linux")]
    let rss_before = peak_rss_bytes();

    // Full scan: an LBA window of 16 MiB out of 16 GiB keeps ~0.1% of requests,
    // but every one of the 3.6 M lines must be parsed to decide.
    let window = 16 << 20;
    let filter = SubsetOptions::lba_range(0, window);
    let trace = parse_path_filtered(&path, &filter).expect("big file parses");
    let expected = (0..LINES).filter(|&i| offset_of(i) < window).count();
    assert_eq!(trace.len(), expected, "LBA filter kept the wrong subset");
    assert!(trace.len() > 1_000, "window too small to be a meaningful test");
    for request in trace.iter() {
        assert!(request.offset < window);
        assert!(request.at_nanos % 1_000_000 == 0, "arrival times are whole milliseconds");
    }

    // first_n stops reading at the quota: correct prefix, instant even on a
    // multi-hundred-MB file.
    let head = parse_path_filtered(&path, &SubsetOptions::first_n(1_000)).expect("head parses");
    assert_eq!(head.len(), 1_000);
    assert_eq!(head.requests()[0].at_nanos, 0);
    assert_eq!(head.requests()[5].op, IoOp::Write);
    assert_eq!(head.requests()[999].at_nanos, 999 * 1_000_000);

    #[cfg(target_os = "linux")]
    if let (Some(before), Some(after)) = (rss_before, peak_rss_bytes()) {
        let growth = after.saturating_sub(before);
        assert!(
            growth < 64 * 1024 * 1024,
            "peak RSS grew {growth} bytes while streaming a {bytes}-byte file — \
             that is not constant memory"
        );
    }

    std::fs::remove_file(&path).ok();
}
