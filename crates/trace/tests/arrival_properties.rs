//! Property tests for the arrival models: the heavy-tailed variants must hold
//! the configured mean rate across seeds and parameters, and every variant must
//! be deterministic. The byte-identity of the *default* model against the
//! pre-heavy-tail traces is locked by the golden-fingerprint unit test in
//! `synthetic.rs`; here the properties range over the parameter space.

use proptest::prelude::*;

use vflash_trace::synthetic::{self, ArrivalModel, SyntheticConfig};

/// Mean-rate tolerance for the statistical tests. Bounded-Pareto gaps at shapes
/// near 1 have enormous (though finite) variance, so the sample mean of a
/// 30k-request trace wanders a few percent; 25% leaves comfortable slack while
/// still catching any systematic drift (an unfolded truncation alone would bias
/// the rate by >3% at shape 1.2).
const TOLERANCE: f64 = 0.25;

fn offered(arrival: ArrivalModel, seed: u64) -> f64 {
    let trace = synthetic::web_sql_server(SyntheticConfig {
        requests: 30_000,
        seed,
        arrival,
        ..Default::default()
    });
    trace.offered_iops()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Bounded-Pareto arrivals preserve the configured mean IOPS for any shape
    /// and rate.
    #[test]
    fn pareto_preserves_mean_iops(
        shape_tenths in 12u32..30,
        rate in 5_000u32..100_000,
        seed in 0u64..1_000,
    ) {
        let arrival = ArrivalModel::Pareto {
            shape: f64::from(shape_tenths) / 10.0,
            mean_iops: f64::from(rate),
        };
        let observed = offered(arrival, seed);
        let target = arrival.mean_iops();
        prop_assert!(
            (observed - target).abs() / target < TOLERANCE,
            "pareto shape {shape_tenths}/10 at {rate} IOPS: offered {observed:.0}"
        );
    }

    /// On/off arrivals preserve the overall mean `(1 - idle) · burst_iops` for
    /// any duty cycle and burst length.
    #[test]
    fn onoff_preserves_mean_iops(
        burst_rate in 20_000u32..400_000,
        idle_pct in 0u32..95,
        burst_len in 1u32..256,
        seed in 0u64..1_000,
    ) {
        let arrival = ArrivalModel::OnOffBurst {
            burst_iops: f64::from(burst_rate),
            idle_fraction: f64::from(idle_pct) / 100.0,
            burst_len,
        };
        let observed = offered(arrival, seed);
        let target = arrival.mean_iops();
        prop_assert!(
            (observed - target).abs() / target < TOLERANCE,
            "onoff {burst_rate} IOPS, {idle_pct}% idle, burst {burst_len}: offered {observed:.0}"
        );
    }

    /// Every arrival model yields monotone timestamps and is reproducible from
    /// its seed.
    #[test]
    fn arrivals_are_monotone_and_deterministic(
        model_index in 0usize..4,
        seed in 0u64..1_000,
    ) {
        let arrival = [
            ArrivalModel::default(),
            ArrivalModel::MeanRate { iops: 40_000.0 },
            ArrivalModel::Pareto { shape: 1.4, mean_iops: 40_000.0 },
            ArrivalModel::OnOffBurst { burst_iops: 200_000.0, idle_fraction: 0.8, burst_len: 32 },
        ][model_index];
        let config = SyntheticConfig { requests: 2_000, seed, arrival, ..Default::default() };
        let trace = synthetic::media_server(config);
        prop_assert_eq!(&trace, &synthetic::media_server(config));
        let mut last = 0u64;
        for request in &trace {
            prop_assert!(request.at_nanos >= last, "timestamps must never move backwards");
            last = request.at_nanos;
        }
    }
}
