//! Figure 17: web-server write latency, conventional vs PPB, speed difference 2x–5x.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use vflash_sim::experiments::{compare, ExperimentScale, Workload, SPEED_RATIOS};

fn fig17(c: &mut Criterion) {
    let scale = ExperimentScale { requests: 1_500, ..ExperimentScale::quick() };
    let mut group = c.benchmark_group("fig17_web_write_latency");
    group.sample_size(10).warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(3));
    for ratio in SPEED_RATIOS {
        group.bench_function(format!("{ratio}x"), |b| {
            b.iter(|| {
                let comparison = compare(Workload::WebSqlServer, 16 * 1024, ratio, &scale)
                    .expect("experiment runs");
                std::hint::black_box((comparison.baseline.write_time, comparison.variant.write_time))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, fig17);
criterion_main!(benches);
