//! Queue-depth scaling: replay wall-clock cost and achieved (simulated) IOPS of
//! the [`QueuedReplayer`](vflash_sim::QueuedReplayer) at QD ∈ {1, 4, 16, 64} on an
//! 8-chip device.
//!
//! Two things are measured at once:
//!
//! * Criterion times each depth's replay (the event-driven overlay adds a heap
//!   push/pop and a per-op clock merge per request — this bench keeps that
//!   overhead honest relative to the serial replayer), and
//! * the *simulated* achieved IOPS per depth is printed, which is the paper-facing
//!   result: a read-dominant workload on 8 chips should scale well past QD 1.
//!
//! `VFLASH_BENCH_SMOKE=1` (the CI smoke mode) shrinks the trace so the target
//! finishes in seconds.

use criterion::{criterion_group, criterion_main, smoke_mode, Criterion};
use vflash_sim::experiments::{run_conventional_at_depth, ExperimentScale, Workload, QUEUE_DEPTHS};

fn scale() -> ExperimentScale {
    let mut scale = ExperimentScale { chips: 8, ..ExperimentScale::quick() };
    if smoke_mode() {
        scale.requests = 1_000;
        scale.working_set_bytes = 16 * 1024 * 1024;
    }
    scale
}

fn queue_depth(c: &mut Criterion) {
    let scale = scale();
    // Media server: large sequential reads — the read-heavy end of the paper's
    // workloads, where chip-level overlap has the most to offer.
    let trace = Workload::MediaServer.trace(&scale);
    let config = scale.device_config(16 * 1024, 2.0);

    let mut group = c.benchmark_group("queue_depth");
    group.sample_size(if smoke_mode() { 1 } else { 10 });
    let mut achieved = Vec::new();
    for &depth in &QUEUE_DEPTHS {
        group.bench_function(format!("qd{depth}"), |b| {
            b.iter(|| {
                let summary =
                    run_conventional_at_depth(&trace, &config, depth).expect("replay runs");
                std::hint::black_box(summary.request_iops())
            });
        });
        let summary = run_conventional_at_depth(&trace, &config, depth).expect("replay runs");
        achieved.push((depth, summary.request_iops(), summary.read_latency));
    }
    group.finish();

    println!("  simulated achieved IOPS on {} chips (media-server):", scale.chips);
    for (depth, iops, read) in achieved {
        println!(
            "    qd{depth:<3} {iops:>12.0} IOPS   read p50 {} / p99 {} / max {}",
            read.p50, read.p99, read.max
        );
    }
}

criterion_group!(benches, queue_depth);
criterion_main!(benches);
