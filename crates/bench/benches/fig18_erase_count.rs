//! Figure 18: erased-block count, conventional vs PPB, both workloads.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use vflash_sim::experiments::{compare, ExperimentScale, Workload};

fn fig18(c: &mut Criterion) {
    let scale = ExperimentScale { requests: 1_500, ..ExperimentScale::quick() };
    let mut group = c.benchmark_group("fig18_erase_count");
    group.sample_size(10).warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(3));
    for workload in Workload::ALL {
        group.bench_function(workload.label(), |b| {
            b.iter(|| {
                let comparison =
                    compare(workload, 16 * 1024, 2.0, &scale).expect("experiment runs");
                std::hint::black_box((
                    comparison.baseline.erased_blocks,
                    comparison.variant.erased_blocks,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, fig18);
criterion_main!(benches);
