//! Ablation: read enhancement as a function of virtual blocks per physical block
//! (1 = no speed grouping, 2 = the paper's design, 4 = finer grouping).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use vflash_sim::experiments::{ablation_virtual_blocks, ExperimentScale, Workload};

fn ablation(c: &mut Criterion) {
    let scale = ExperimentScale { requests: 1_500, ..ExperimentScale::quick() };
    let mut group = c.benchmark_group("ablation_virtual_blocks");
    group.sample_size(10).warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(5));
    group.bench_function("web-sql-server/1-2-4", |b| {
        b.iter(|| {
            let rows = ablation_virtual_blocks(Workload::WebSqlServer, &scale)
                .expect("experiment runs");
            std::hint::black_box(rows)
        });
    });
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
