//! Figure 14: web-server read latency, conventional vs PPB, speed difference 2x–5x.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use vflash_sim::experiments::{compare, ExperimentScale, Workload, SPEED_RATIOS};

fn fig14(c: &mut Criterion) {
    let scale = ExperimentScale { requests: 1_500, ..ExperimentScale::quick() };
    let mut group = c.benchmark_group("fig14_web_read_latency");
    group.sample_size(10).warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(3));
    for ratio in SPEED_RATIOS {
        group.bench_function(format!("{ratio}x"), |b| {
            b.iter(|| {
                let comparison = compare(Workload::WebSqlServer, 16 * 1024, ratio, &scale)
                    .expect("experiment runs");
                std::hint::black_box((comparison.baseline.read_time, comparison.variant.read_time))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, fig14);
criterion_main!(benches);
