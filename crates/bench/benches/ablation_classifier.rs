//! Ablation: read enhancement as a function of the first-stage hot/cold classifier
//! (size check, two-level LRU, frequency table, multi-hash sketch).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use vflash_sim::experiments::{ablation_classifier, ExperimentScale, Workload};

fn ablation(c: &mut Criterion) {
    let scale = ExperimentScale { requests: 1_500, ..ExperimentScale::quick() };
    let mut group = c.benchmark_group("ablation_classifier");
    group.sample_size(10).warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(5));
    group.bench_function("web-sql-server/all-classifiers", |b| {
        b.iter(|| {
            let rows =
                ablation_classifier(Workload::WebSqlServer, &scale).expect("experiment runs");
            std::hint::black_box(rows)
        });
    });
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
