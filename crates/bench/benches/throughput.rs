//! Throughput of the experiment grid: serial replay versus the multi-threaded
//! [`ParallelRunner`], reported in host requests per second of wall-clock time.
//!
//! This is the bench behind the README's Performance numbers. It replays the full
//! FTL × workload grid on a 4-chip device at (near-)standard scale, once on the
//! calling thread and once fanned out over all available cores, and prints the
//! aggregate requests/sec for both along with the speedup. The per-replay hot path
//! (O(1) free-block allocation, O(candidates) GC victim scans) and the grid-level
//! parallelism both show up here.
//!
//! `VFLASH_BENCH_SMOKE=1` (the CI smoke mode) shrinks the grid so the target
//! finishes in seconds.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, smoke_mode, Criterion};
use vflash_sim::experiments::ExperimentScale;
use vflash_sim::{ExperimentGrid, ParallelRunner};

/// A 4-chip device at standard scale (smoke mode shrinks the trace length so CI
/// stays fast; the geometry is unchanged).
fn grid() -> ExperimentGrid {
    let mut scale = ExperimentScale { chips: 4, ..ExperimentScale::standard() };
    if smoke_mode() {
        scale.requests = 2_000;
        scale.working_set_bytes = 24 * 1024 * 1024;
    }
    ExperimentGrid::full(scale)
}

fn grid_requests(grid: &ExperimentGrid) -> u64 {
    grid.cells().iter().map(|cell| cell.scale.requests as u64).sum()
}

fn requests_per_sec(requests: u64, elapsed: Duration) -> f64 {
    requests as f64 / elapsed.as_secs_f64().max(f64::MIN_POSITIVE)
}

fn throughput(c: &mut Criterion) {
    let grid = grid();
    let requests = grid_requests(&grid);
    let runner = ParallelRunner::with_available_parallelism();
    // run() clamps its workers to the cell count; report what actually runs.
    let threads = runner.threads().min(grid.cells().len());

    // Best (minimum) sample of each mode: the least-interfered-with measurement,
    // matching how throughput is conventionally reported.
    let mut serial_elapsed = Duration::MAX;
    let mut parallel_elapsed = Duration::MAX;

    let mut group = c.benchmark_group("throughput");
    group.sample_size(if smoke_mode() { 1 } else { 3 });
    group.bench_function("grid_serial", |b| {
        b.iter(|| {
            let start = Instant::now();
            let results = ParallelRunner::run_serial(&grid).expect("grid runs");
            serial_elapsed = serial_elapsed.min(start.elapsed());
            results
        });
    });
    // Stable id (no thread count) so BENCH_baseline.json keys stay comparable
    // across machines; the thread count is printed in the summary below.
    group.bench_function("grid_parallel", |b| {
        b.iter(|| {
            let start = Instant::now();
            let results = runner.run(&grid).expect("grid runs");
            parallel_elapsed = parallel_elapsed.min(start.elapsed());
            results
        });
    });
    group.finish();

    let serial = requests_per_sec(requests, serial_elapsed);
    let parallel = requests_per_sec(requests, parallel_elapsed);
    println!("  throughput/serial:   {serial:>12.0} requests/sec ({requests} requests)");
    println!("  throughput/parallel: {parallel:>12.0} requests/sec ({threads} threads)");
    println!("  throughput/speedup:  {:>12.2}x", parallel / serial.max(f64::MIN_POSITIVE));
}

criterion_group!(benches, throughput);
criterion_main!(benches);
