//! Open-loop (arrival-time) replay: wall-clock cost of the
//! [`WorkloadDriver`](vflash_sim::WorkloadDriver) at rate scales spanning the
//! latency-vs-offered-load curve, on an 8-chip device.
//!
//! Two things are measured at once:
//!
//! * Criterion times each rate scale's replay (the open-loop path always runs the
//!   traced event overlay — this bench keeps that overhead honest relative to the
//!   closed-loop replayers), and
//! * the *simulated* offered vs achieved IOPS and the mean queueing delay per
//!   rate are printed, which is the paper-facing result: below the knee the
//!   device keeps up (achieved ≈ offered, delay ≈ 0), past it achieved flattens
//!   at saturation and queueing delay explodes.
//!
//! `VFLASH_BENCH_SMOKE=1` (the CI smoke mode) shrinks the trace so the target
//! finishes in seconds.

use criterion::{criterion_group, criterion_main, smoke_mode, Criterion};
use vflash_sim::experiments::{
    run_conventional_driven, ExperimentScale, Workload, RATE_SCALES,
};
use vflash_sim::ArrivalDiscipline;

fn scale() -> ExperimentScale {
    let mut scale = ExperimentScale { chips: 8, ..ExperimentScale::quick() };
    if smoke_mode() {
        scale.requests = 1_000;
        scale.working_set_bytes = 16 * 1024 * 1024;
    }
    scale
}

fn open_loop(c: &mut Criterion) {
    let scale = scale();
    // Web/SQL server: the small-random end of the paper's workloads, where
    // per-request queueing (not streaming bandwidth) dominates under load.
    let trace = Workload::WebSqlServer.trace(&scale);
    let config = scale.device_config(16 * 1024, 2.0);

    let mut group = c.benchmark_group("open_loop");
    group.sample_size(if smoke_mode() { 1 } else { 10 });
    let mut curve = Vec::new();
    for &rate_scale in &RATE_SCALES {
        let discipline = ArrivalDiscipline::OpenLoop { rate_scale };
        group.bench_function(format!("rate{rate_scale}"), |b| {
            b.iter(|| {
                let summary =
                    run_conventional_driven(&trace, &config, discipline).expect("replay runs");
                std::hint::black_box(summary.request_iops())
            });
        });
        let summary = run_conventional_driven(&trace, &config, discipline).expect("replay runs");
        curve.push((
            rate_scale,
            summary.offered_iops(),
            summary.request_iops(),
            summary.queue_delay.mean,
        ));
    }
    group.finish();

    println!("  simulated offered-load curve on {} chips (web-sql-server):", scale.chips);
    for (rate, offered, achieved, delay) in curve {
        println!(
            "    x{rate:<4} {offered:>12.0} offered {achieved:>12.0} achieved IOPS   \
             mean queue delay {delay}"
        );
    }
}

criterion_group!(benches, open_loop);
criterion_main!(benches);
