//! Batched KV submission: the same LSM workload on a 4-chip device, serial
//! (`io_depth = 1`, every page charged its scalar latency in sequence) versus
//! batched (`io_depth = 16`, multi-page flush/compaction/scan extents
//! submitted through `submit_batch` and charged the chip-parallel makespan).
//!
//! Reported alongside wall-clock: the simulated device time spent in flushes
//! and compactions for each mode — the batched path must win by a wide margin
//! on a multi-chip geometry — and the compaction-stall percentiles, which is
//! where the application feels the difference.
//!
//! `VFLASH_BENCH_SMOKE=1` (the CI smoke mode) shrinks the run so the target
//! finishes in seconds.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, smoke_mode, Criterion};
use vflash_ftl::{ConventionalFtl, FtlConfig};
use vflash_kv::workload::{run_kv_workload, KvRunSummary, KvWorkloadConfig};
use vflash_kv::{FlashStore, KvConfig};
use vflash_nand::NandDevice;
use vflash_ppb::{PpbConfig, PpbFtl};

const CHIPS: usize = 4;
const BATCH_DEPTH: usize = 16;

fn workload() -> KvWorkloadConfig {
    let base = if smoke_mode() {
        KvWorkloadConfig::smoke()
    } else {
        KvWorkloadConfig::default()
    };
    KvWorkloadConfig { device_chips: CHIPS, ..base }
}

fn kv_config(io_depth: usize) -> KvConfig {
    KvConfig { io_depth, ..KvConfig::default() }
}

fn run_conventional(workload: &KvWorkloadConfig, io_depth: usize) -> KvRunSummary {
    let ftl =
        ConventionalFtl::new(NandDevice::new(workload.device_config()), FtlConfig::default())
            .expect("valid ftl");
    run_kv_workload(FlashStore::new(ftl), kv_config(io_depth), workload)
        .expect("kv run succeeds")
}

fn run_ppb(workload: &KvWorkloadConfig, io_depth: usize) -> KvRunSummary {
    let ftl = PpbFtl::new(NandDevice::new(workload.device_config()), PpbConfig::default())
        .expect("valid ftl");
    run_kv_workload(FlashStore::new(ftl), kv_config(io_depth), workload)
        .expect("kv run succeeds")
}

fn report(label: &str, summary: &KvRunSummary, elapsed: Duration) {
    println!(
        "  kv_batch/{label}: wall {:.2}s, flush+compaction {:.3}s device \
         ({} batches, {} pages), stall p99 {:?} p99.9 {:?}",
        elapsed.as_secs_f64(),
        (summary.flush_time + summary.compaction_time).as_secs_f64(),
        summary.batched_submissions,
        summary.batched_pages,
        summary.compaction_stall.p99,
        summary.compaction_stall.p999,
    );
}

fn kv_batch(c: &mut Criterion) {
    let workload = workload();
    let mut serial: Option<(KvRunSummary, Duration)> = None;
    let mut batched: Option<(KvRunSummary, Duration)> = None;
    let mut batched_ppb: Option<(KvRunSummary, Duration)> = None;

    let mut group = c.benchmark_group("kv_batch");
    group.sample_size(if smoke_mode() { 1 } else { 3 });
    group.bench_function("lsm_serial_conventional", |b| {
        b.iter(|| {
            let start = Instant::now();
            let summary = run_conventional(&workload, 1);
            serial = Some((summary, start.elapsed()));
        });
    });
    group.bench_function("lsm_batched_conventional", |b| {
        b.iter(|| {
            let start = Instant::now();
            let summary = run_conventional(&workload, BATCH_DEPTH);
            batched = Some((summary, start.elapsed()));
        });
    });
    group.bench_function("lsm_batched_ppb", |b| {
        b.iter(|| {
            let start = Instant::now();
            let summary = run_ppb(&workload, BATCH_DEPTH);
            batched_ppb = Some((summary, start.elapsed()));
        });
    });
    group.finish();

    if let (Some((serial, serial_wall)), Some((batched, batched_wall))) =
        (serial.as_ref(), batched.as_ref())
    {
        report("serial  (conventional, depth 1)", serial, *serial_wall);
        report(&format!("batched (conventional, depth {BATCH_DEPTH})"), batched, *batched_wall);
        let serial_device = serial.flush_time + serial.compaction_time;
        let batched_device = batched.flush_time + batched.compaction_time;
        if batched_device > vflash_nand::Nanos::ZERO {
            println!(
                "  kv_batch/speedup: {CHIPS}-chip flush+compaction device time {:.2}x lower batched",
                serial_device.as_secs_f64() / batched_device.as_secs_f64(),
            );
        }
    }
    if let Some((ppb, wall)) = batched_ppb.as_ref() {
        report(&format!("batched (ppb, depth {BATCH_DEPTH})"), ppb, *wall);
    }
}

criterion_group!(benches, kv_batch);
criterion_main!(benches);
