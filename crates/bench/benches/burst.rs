//! Burstiness sweep: wall-clock cost of open-loop replay under each
//! fixed-mean-rate arrival model of the
//! [`burst_axis`](vflash_sim::experiments::burst_axis), on an 8-chip device.
//!
//! Two things are measured at once:
//!
//! * Criterion times each arrival model's replay (heavy-tailed gap sampling and
//!   the deeper outstanding-request heap must not make trace generation or the
//!   open-loop overlay measurably slower than the uniform baseline), and
//! * the *simulated* tail — p99.9 read latency, peak backlog and busy-arrival
//!   fraction per model — is printed, which is the paper-facing result: at one
//!   mean rate, burstiness alone spreads the tail.
//!
//! `VFLASH_BENCH_SMOKE=1` (the CI smoke mode) shrinks the trace so the target
//! finishes in seconds.

use criterion::{criterion_group, criterion_main, smoke_mode, Criterion};
use vflash_sim::experiments::{
    burst_axis, burst_sweep_mean_iops, run_conventional_driven, ExperimentScale, Workload,
};
use vflash_sim::ArrivalDiscipline;

fn scale() -> ExperimentScale {
    let mut scale = ExperimentScale { chips: 8, ..ExperimentScale::quick() };
    if smoke_mode() {
        scale.requests = 1_000;
        scale.working_set_bytes = 16 * 1024 * 1024;
    }
    scale
}

fn burst(c: &mut Criterion) {
    let scale = scale();
    // Web/SQL server: small random requests, the workload whose tail queueing
    // shapes. Every row offers the same mean rate (half of saturation).
    let mean_iops =
        burst_sweep_mean_iops(Workload::WebSqlServer, &scale).expect("saturation probe runs");
    let config = scale.device_config(16 * 1024, 2.0);
    let discipline = ArrivalDiscipline::OpenLoop { rate_scale: 1.0 };

    let mut group = c.benchmark_group("burst");
    group.sample_size(if smoke_mode() { 1 } else { 10 });
    let mut curve = Vec::new();
    for arrival in burst_axis(mean_iops) {
        let trace = Workload::WebSqlServer.trace_with_arrival(&scale, arrival);
        group.bench_function(arrival.label(), |b| {
            b.iter(|| {
                let summary =
                    run_conventional_driven(&trace, &config, discipline).expect("replay runs");
                std::hint::black_box(summary.read_latency.p999)
            });
        });
        let summary = run_conventional_driven(&trace, &config, discipline).expect("replay runs");
        curve.push((
            arrival.label(),
            summary.read_latency.p999,
            summary.peak_queue_depth,
            summary.busy_arrival_fraction(),
        ));
    }
    group.finish();

    println!(
        "  simulated burstiness curve on {} chips (web-sql-server, {mean_iops:.0} IOPS mean):",
        scale.chips
    );
    for (label, p999, peak, busy) in curve {
        println!(
            "    {label:<28} read p99.9 {p999}   peak backlog {peak:>5}   \
             busy arrivals {:>5.1}%",
            busy * 100.0
        );
    }
}

criterion_group!(benches, burst);
criterion_main!(benches);
