//! Figure 15: write performance enhancement of PPB over the conventional FTL, for
//! both workloads and both page sizes at a 2x speed difference.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use vflash_sim::experiments::{compare, ExperimentScale, Workload, PAGE_SIZES};

fn fig15(c: &mut Criterion) {
    let scale = ExperimentScale { requests: 1_500, ..ExperimentScale::quick() };
    let mut group = c.benchmark_group("fig15_write_enhancement");
    group.sample_size(10).warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(3));
    for workload in Workload::ALL {
        for &page_size in &PAGE_SIZES {
            let id = format!("{}/{}KiB", workload.label(), page_size / 1024);
            group.bench_function(id, |b| {
                b.iter(|| {
                    let comparison = compare(workload, page_size, 2.0, &scale)
                        .expect("experiment runs");
                    std::hint::black_box(comparison.write_enhancement_pct())
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig15);
criterion_main!(benches);
