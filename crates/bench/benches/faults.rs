//! Reliability: replay under the NAND fault model (read-retry ladder plus
//! bad-block remapping) and the end-of-life probe.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use vflash_sim::experiments::{fault_lifetime, fault_sweep, ExperimentScale};

fn faults(c: &mut Criterion) {
    let scale = ExperimentScale { requests: 1_500, ..ExperimentScale::quick() };
    let mut group = c.benchmark_group("faults");
    group.sample_size(10).warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(3));
    group.bench_function("sweep", |b| {
        b.iter(|| {
            let rows = fault_sweep(&scale).expect("fault sweep runs");
            std::hint::black_box(
                rows.iter()
                    .map(|row| row.conventional.retried_reads + row.ppb.retried_reads)
                    .sum::<u64>(),
            )
        });
    });
    group.bench_function("lifetime", |b| {
        b.iter(|| {
            let rows = fault_lifetime(&scale).expect("lifetime probe runs");
            std::hint::black_box(rows.iter().map(|row| row.writes_completed).sum::<u64>())
        });
    });
    group.finish();
}

criterion_group!(benches, faults);
criterion_main!(benches);
