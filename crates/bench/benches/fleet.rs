//! Host tier: the fleet sweep (striped keyspace over 1–8 devices, open loop)
//! through the same grid path the `experiments` binary's fleet section uses.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use vflash_fleet::run_fleet_cell;
use vflash_sim::experiments::ExperimentScale;
use vflash_sim::{ExperimentGrid, ParallelRunner};

fn fleet(c: &mut Criterion) {
    let scale = ExperimentScale { requests: 800, ..ExperimentScale::quick() };
    let grid = ExperimentGrid::fleet_sweep(scale);
    let mut group = c.benchmark_group("fleet");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("sweep", |b| {
        b.iter(|| {
            let rows =
                ParallelRunner::run_serial_map(&grid, run_fleet_cell).expect("fleet sweep runs");
            std::hint::black_box(rows.iter().map(|row| row.summary.host_requests).sum::<u64>())
        });
    });
    group.finish();
}

criterion_group!(benches, fleet);
criterion_main!(benches);
