//! Regenerates every figure of the paper's evaluation section.
//!
//! ```text
//! cargo run --release -p vflash-bench --bin experiments                # all figures
//! cargo run --release -p vflash-bench --bin experiments -- fig13       # one figure
//! cargo run --release -p vflash-bench --bin experiments -- qd          # queue-depth sweep
//! cargo run --release -p vflash-bench --bin experiments -- openloop    # offered-load sweep
//! cargo run --release -p vflash-bench --bin experiments -- burst       # burstiness sweep
//! cargo run --release -p vflash-bench --bin experiments -- faults      # fault/reliability sweep
//! cargo run --release -p vflash-bench --bin experiments -- fleet       # multi-device host tier
//! cargo run --release -p vflash-bench --bin experiments -- ppb_sensitivity  # warm-up/threshold sweep
//! cargo run --release -p vflash-bench --bin experiments -- lsm         # KV/LSM store comparison
//! cargo run --release -p vflash-bench --bin experiments -- --quick     # smaller scale
//! cargo run --release -p vflash-bench --bin experiments -- --trace mds_0.csv
//!                                      # real MSR-Cambridge trace through the same sweeps
//! ```

use std::error::Error;

use vflash_bench::{
    format_burst_rows, format_enhancement_rows, format_erase_rows, format_fault_rows,
    format_fleet_rows, format_kv_activity, format_kv_batching_rows, format_kv_rows,
    format_latency_sweep, format_lifetime_rows, format_policy_erase_rows,
    format_ppb_sensitivity_rows, format_queue_depth_rows, format_rate_scale_rows,
};
use vflash_fleet::run_fleet_grid;
use vflash_ftl::{ConventionalFtl, FtlConfig};
use vflash_kv::workload::{compare_conventional_vs_ppb, run_kv_workload, KvWorkloadConfig};
use vflash_kv::{FlashStore, KvConfig};
use vflash_nand::{NandConfig, NandDevice};
use vflash_sim::experiments::{
    ablation_classifier, ablation_virtual_blocks, burst_sweep_at, burst_sweep_mean_iops,
    enhancement_rows, erase_count_by_policy, fault_lifetime, fault_sweep, ppb_sensitivity_sweep,
    queue_depth_sweep, rate_scale_sweep, rate_scale_sweep_for_trace, read_latency_sweep,
    read_latency_sweep_for_trace, write_latency_sweep, write_latency_sweep_for_trace,
    EraseCountRow, ExperimentScale, GcPolicy, Workload, FLEET_SIZES,
};
use vflash_sim::{Comparison, ExperimentGrid, ParallelRunner};
use vflash_trace::msr::{self, SubsetOptions};
use vflash_trace::Trace;

fn print_table1(scale: &ExperimentScale) {
    let config: NandConfig = scale.device_config(16 * 1024, 2.0);
    println!("== Table 1: experimental parameters (scaled; paper values in brackets) ==");
    println!(
        "flash size            {:>8.2} GB   [64 GB]",
        config.capacity_bytes() as f64 / 1e9
    );
    println!("page size              {:>8} KB   [16 KB]", config.page_size_bytes() / 1024);
    println!("pages per block        {:>8}      [384]", config.pages_per_block());
    println!(
        "page write latency     {:>8} us   [600 us]",
        config.program_latency().as_micros_f64()
    );
    println!(
        "page read latency      {:>8} us   [49 us]",
        config.read_latency().as_micros_f64()
    );
    println!("data transfer rate     {:>8} MB/s [533 MB/s]", config.transfer_rate_mb_s());
    println!(
        "block erase time       {:>8} ms   [4 ms]",
        config.erase_latency().as_millis_f64()
    );
    println!("trace requests         {:>8}", scale.requests);
    println!();
}

fn fig12(scale: &ExperimentScale) -> Result<(), Box<dyn Error>> {
    println!("== Figure 12: read performance enhancement (PPB vs conventional, 2x) ==");
    let rows = enhancement_rows(scale)?;
    print!("{}", format_enhancement_rows(&rows, Comparison::read_enhancement_pct));
    println!();
    Ok(())
}

fn fig15(scale: &ExperimentScale) -> Result<(), Box<dyn Error>> {
    println!("== Figure 15: write performance enhancement (PPB vs conventional, 2x) ==");
    let rows = enhancement_rows(scale)?;
    print!("{}", format_enhancement_rows(&rows, Comparison::write_enhancement_pct));
    println!();
    Ok(())
}

fn fig13(scale: &ExperimentScale) -> Result<(), Box<dyn Error>> {
    println!("== Figure 13: media-server read latency vs page access speed difference ==");
    print!("{}", format_latency_sweep(&read_latency_sweep(Workload::MediaServer, scale)?));
    println!();
    Ok(())
}

fn fig14(scale: &ExperimentScale) -> Result<(), Box<dyn Error>> {
    println!("== Figure 14: web-server read latency vs page access speed difference ==");
    print!("{}", format_latency_sweep(&read_latency_sweep(Workload::WebSqlServer, scale)?));
    println!();
    Ok(())
}

fn fig16(scale: &ExperimentScale) -> Result<(), Box<dyn Error>> {
    println!("== Figure 16: media-server write latency vs page access speed difference ==");
    print!("{}", format_latency_sweep(&write_latency_sweep(Workload::MediaServer, scale)?));
    println!();
    Ok(())
}

fn fig17(scale: &ExperimentScale) -> Result<(), Box<dyn Error>> {
    println!("== Figure 17: web-server write latency vs page access speed difference ==");
    print!("{}", format_latency_sweep(&write_latency_sweep(Workload::WebSqlServer, scale)?));
    println!();
    Ok(())
}

fn fig18(scale: &ExperimentScale) -> Result<(), Box<dyn Error>> {
    // The ablation's greedy rows are exactly the classic Figure 18 data
    // (asserted in vflash-sim's tests), so one sweep feeds both tables.
    let by_policy = erase_count_by_policy(scale)?;
    let classic: Vec<EraseCountRow> = by_policy
        .iter()
        .filter(|row| row.policy == GcPolicy::Greedy)
        .map(|row| EraseCountRow {
            workload: row.workload,
            conventional: row.conventional,
            ppb: row.ppb,
        })
        .collect();
    println!("== Figure 18: erased block count comparison (2x, 16 KB pages) ==");
    print!("{}", format_erase_rows(&classic));
    println!();
    println!("== Figure 18 ablation: GC victim policy (greedy / wear-aware / cost-benefit) ==");
    print!("{}", format_policy_erase_rows(&by_policy));
    println!();
    Ok(())
}

fn qd(scale: &ExperimentScale) -> Result<(), Box<dyn Error>> {
    // The serial figures keep the paper's chip count; the queue-depth sweep is
    // about chip overlap, so give it a wider device when the scale is narrow.
    let scale = ExperimentScale { chips: scale.chips.max(8), ..*scale };
    for workload in Workload::ALL {
        println!(
            "== Queue-depth sweep: {workload}, {} chips, 16 KB pages, 2x ==",
            scale.chips
        );
        print!("{}", format_queue_depth_rows(&queue_depth_sweep(workload, &scale)?));
        println!();
    }
    Ok(())
}

fn openloop(scale: &ExperimentScale) -> Result<(), Box<dyn Error>> {
    // Like the queue-depth sweep, the open-loop sweep is about load on a wide
    // device; arrivals come from the synthetic traces' recorded timestamps.
    let scale = ExperimentScale { chips: scale.chips.max(8), ..*scale };
    for workload in Workload::ALL {
        println!(
            "== Open-loop (arrival-time) sweep: {workload}, {} chips, 16 KB pages, 2x ==",
            scale.chips
        );
        print!("{}", format_rate_scale_rows(&rate_scale_sweep(workload, &scale)?));
        println!();
    }
    Ok(())
}

fn burst(scale: &ExperimentScale) -> Result<(), Box<dyn Error>> {
    // Burstiness is a queueing phenomenon: give it the same wide device the
    // other open-loop sections use. The mean rate is probed per workload (half
    // the device's saturation throughput), so every row offers the same load
    // and only the arrival pattern changes.
    let scale = ExperimentScale { chips: scale.chips.max(8), ..*scale };
    for workload in Workload::ALL {
        let mean = burst_sweep_mean_iops(workload, &scale)?;
        println!(
            "== Burstiness sweep: {workload}, {:.0} IOPS mean (half of saturation), \
             open-loop x1, {} chips ==",
            mean, scale.chips
        );
        print!("{}", format_burst_rows(&burst_sweep_at(workload, &scale, mean)?));
        println!();
    }
    println!(
        "Every row offers the same mean load; only its burstiness differs. Busy%, the\n\
         peak backlog and the p99/p99.9 tail grow down the table — that growth is pure\n\
         queueing, and the conventional-vs-ppb gap in the bottom rows is the tail-latency\n\
         win of speed-aware placement under realistic bursty load.\n"
    );
    Ok(())
}

fn fleet(scale: &ExperimentScale) -> Result<(), Box<dyn Error>> {
    // The host tier stripes one keyspace over 1–8 identical devices; every
    // width replays the same open-loop request stream at the same seed, so the
    // only thing changing down the width axis is the striping.
    println!(
        "== Fleet sweep: stripe widths {FLEET_SIZES:?}, open-loop x1, cache off, \
         both FTLs =="
    );
    let grid = ExperimentGrid::fleet_sweep(*scale);
    let rows = run_fleet_grid(&ParallelRunner::with_available_parallelism(), &grid)?;
    print!("{}", format_fleet_rows(&rows));
    println!();
    println!(
        "A striped request completes at the max of its per-device stripes, so the\n\
         fan-out p99.9 grows with the width while the per-stripe distribution stays\n\
         put — the tail-amp column is that ratio, 1.0 by construction at width 1.\n"
    );
    Ok(())
}

fn ppb_sensitivity(scale: &ExperimentScale) -> Result<(), Box<dyn Error>> {
    println!(
        "== PPB sensitivity: warm-up length and promotion thresholds \
         (16 KB pages, 2x, QD 1) =="
    );
    let mut rows = Vec::new();
    for workload in Workload::ALL {
        rows.extend(ppb_sensitivity_sweep(workload, scale)?);
    }
    print!("{}", format_ppb_sensitivity_rows(&rows));
    println!();
    println!(
        "Each row measures the trace suffix left after replaying the warm-up prefix\n\
         un-measured on a fully prefilled device. The default-knob rows down the\n\
         warm-up axis show whether aging widens the PPB win; the promote/hot rows\n\
         vary one threshold each on a fresh device.\n"
    );
    Ok(())
}

fn faults(scale: &ExperimentScale) -> Result<(), Box<dyn Error>> {
    println!("== Fault sweep: web-sql-server, RBER scale x GC policy, 16 KB pages, 2x, QD 1 ==");
    print!("{}", format_fault_rows(&fault_sweep(scale)?));
    println!();
    println!("== End-of-life probe: round-robin writes into a failing device until read-only ==");
    print!("{}", format_lifetime_rows(&fault_lifetime(scale)?));
    println!();
    Ok(())
}

/// Runs the LSM KV store (vflash-kv) against both FTLs with the same
/// zipf-skewed operation mix and seed, and prints application-level latency
/// and write-amplification numbers. Unlike the block-trace sweeps above, the
/// device traffic here is *generated by a real storage engine* — WAL appends
/// (small, hot), memtable flushes and compaction rewrites (bulk, cold) — so
/// the comparison shows what PPB's placement buys an application, not a trace.
fn lsm(quick: bool) -> Result<(), Box<dyn Error>> {
    let workload =
        if quick { KvWorkloadConfig::smoke() } else { KvWorkloadConfig::default() };
    println!(
        "== LSM KV store on flash: conventional vs PPB (zipf s={}, {} ops, {} keys, \
         {} B values) ==",
        workload.zipf_s, workload.ops, workload.key_space, workload.value_bytes
    );
    let comparison = compare_conventional_vs_ppb(KvConfig::default(), &workload)?;
    print!("{}", format_kv_rows(&comparison));
    println!();
    print!("{}", format_kv_activity(&comparison.conventional));
    print!("{}", format_kv_activity(&comparison.ppb));
    println!(
        "\nMemtable hits cost no device time; SSTable reads pay bloom/index probes plus\n\
         one bucket read; stalls are the foreground flush+compaction time a write\n\
         absorbs. app-WA x ftl-WA = e2e-WA exactly (bytes programmed per byte the\n\
         application wrote). ftl-WA ~ 1.0 is the LSM being flash-friendly: it\n\
         writes and frees whole segments, so GC victims are fully invalid and\n\
         the FTL never relocates live pages.\n"
    );

    // The batched submission path: the same store on a multi-chip device,
    // serial (io_depth 1, scalar submits, clock charged the serial sum) versus
    // batched (io_depth 16, multi-page extents through submit_batch, clock
    // charged the chip-parallel makespan).
    const BATCH_CHIPS: usize = 4;
    const BATCH_DEPTH: usize = 16;
    let batch_workload = KvWorkloadConfig { device_chips: BATCH_CHIPS, ..workload.clone() };
    println!(
        "== LSM batched submission: io_depth 1 vs {BATCH_DEPTH} on {BATCH_CHIPS} chips \
         (conventional FTL) =="
    );
    let serial = {
        let ftl = ConventionalFtl::new(
            NandDevice::new(batch_workload.device_config()),
            FtlConfig::default(),
        )?;
        run_kv_workload(FlashStore::new(ftl), KvConfig::default(), &batch_workload)?
    };
    let batched = {
        let ftl = ConventionalFtl::new(
            NandDevice::new(batch_workload.device_config()),
            FtlConfig::default(),
        )?;
        let kv_config = KvConfig { io_depth: BATCH_DEPTH, ..KvConfig::default() };
        run_kv_workload(FlashStore::new(ftl), kv_config, &batch_workload)?
    };
    print!("{}", format_kv_batching_rows(&serial, &batched));
    println!();

    println!(
        "== LSM conventional vs PPB under batching (io_depth {BATCH_DEPTH}, \
         {BATCH_CHIPS} chips) =="
    );
    let kv_config = KvConfig { io_depth: BATCH_DEPTH, ..KvConfig::default() };
    let batched_comparison = compare_conventional_vs_ppb(kv_config, &batch_workload)?;
    print!("{}", format_kv_rows(&batched_comparison));
    println!();
    print!("{}", format_kv_activity(&batched_comparison.conventional));
    print!("{}", format_kv_activity(&batched_comparison.ppb));
    println!();
    Ok(())
}

/// Runs a real (MSR-Cambridge CSV) trace through the same sweeps the synthetic
/// workloads get: the Figure 13/16-style latency-vs-speed-ratio comparison and
/// the open-loop offered-load sweep.
fn real_trace(path: &str, scale: &ExperimentScale) -> Result<(), Box<dyn Error>> {
    // Cap the request count at the scale's budget so `--quick` stays quick even
    // on a multi-GB file; streaming stops as soon as the quota fills.
    let trace = msr::parse_path_filtered(path, &SubsetOptions::first_n(scale.requests))?;
    if trace.is_empty() {
        return Err(format!("trace {path} contains no usable requests").into());
    }
    let stats = trace.stats();
    println!(
        "== Real trace {}: {} requests, {:.0}% reads, mean request {:.1} KiB, \
         recorded rate {:.0} req/s ==",
        trace.name(),
        trace.len(),
        stats.read_ratio() * 100.0,
        stats.mean_request_bytes / 1024.0,
        trace.offered_iops(),
    );
    println!();
    // Size the simulated device to the trace's footprint: an external trace
    // arrives with its own working set, unlike the generated workloads.
    let scale = scale.sized_for_trace(&trace);
    real_trace_sweeps(&trace, &scale)
}

fn real_trace_sweeps(trace: &Trace, scale: &ExperimentScale) -> Result<(), Box<dyn Error>> {
    println!("== {} read latency vs page access speed difference ==", trace.name());
    print!("{}", format_latency_sweep(&read_latency_sweep_for_trace(trace, scale)?));
    println!();
    println!("== {} write latency vs page access speed difference ==", trace.name());
    print!("{}", format_latency_sweep(&write_latency_sweep_for_trace(trace, scale)?));
    println!();
    let wide = ExperimentScale { chips: scale.chips.max(8), ..*scale };
    println!(
        "== {} open-loop (arrival-time) sweep, {} chips, 16 KB pages, 2x ==",
        trace.name(),
        wide.chips
    );
    print!("{}", format_rate_scale_rows(&rate_scale_sweep_for_trace(trace, &wide)?));
    println!();
    Ok(())
}

fn ablations(scale: &ExperimentScale) -> Result<(), Box<dyn Error>> {
    println!("== Ablation: virtual blocks per physical block (web-sql-server, 4x) ==");
    for (virtual_blocks, enhancement) in ablation_virtual_blocks(Workload::WebSqlServer, scale)? {
        println!("{virtual_blocks} virtual block(s)   read enhancement {enhancement:>6.2}%");
    }
    println!();
    println!("== Ablation: first-stage hot/cold classifier (web-sql-server, 4x) ==");
    for (classifier, enhancement) in ablation_classifier(Workload::WebSqlServer, scale)? {
        println!("{:<14}   read enhancement {enhancement:>6.2}%", classifier.label());
    }
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|arg| arg == "--quick");
    let scale = if quick { ExperimentScale::quick() } else { ExperimentScale::standard() };

    // `--trace <file.csv>` feeds a real MSR-Cambridge trace through the same
    // sweeps as the synthetic workloads, then exits.
    let mut figures: Vec<&str> = Vec::new();
    let mut trace_path: Option<&str> = None;
    let mut iter = args.iter().map(String::as_str).filter(|arg| *arg != "--quick");
    while let Some(arg) = iter.next() {
        if arg == "--trace" {
            let Some(path) = iter.next() else {
                eprintln!("--trace needs a file path (an MSR-Cambridge CSV)");
                std::process::exit(2);
            };
            trace_path = Some(path);
        } else {
            figures.push(arg);
        }
    }
    if let Some(path) = trace_path {
        if !figures.is_empty() {
            eprintln!("--trace replaces the synthetic figure selection {figures:?}");
            std::process::exit(2);
        }
        return real_trace(path, &scale);
    }
    let run_all = figures.is_empty() || figures.contains(&"all");

    print_table1(&scale);
    let mut matched = run_all;
    if run_all || figures.contains(&"fig12") {
        fig12(&scale)?;
        matched = true;
    }
    if run_all || figures.contains(&"fig13") {
        fig13(&scale)?;
        matched = true;
    }
    if run_all || figures.contains(&"fig14") {
        fig14(&scale)?;
        matched = true;
    }
    if run_all || figures.contains(&"fig15") {
        fig15(&scale)?;
        matched = true;
    }
    if run_all || figures.contains(&"fig16") {
        fig16(&scale)?;
        matched = true;
    }
    if run_all || figures.contains(&"fig17") {
        fig17(&scale)?;
        matched = true;
    }
    if run_all || figures.contains(&"fig18") {
        fig18(&scale)?;
        matched = true;
    }
    if run_all || figures.contains(&"ablation") {
        ablations(&scale)?;
        matched = true;
    }
    if run_all || figures.contains(&"qd") {
        qd(&scale)?;
        matched = true;
    }
    if run_all || figures.contains(&"openloop") {
        openloop(&scale)?;
        matched = true;
    }
    if run_all || figures.contains(&"burst") {
        burst(&scale)?;
        matched = true;
    }
    if run_all || figures.contains(&"faults") {
        faults(&scale)?;
        matched = true;
    }
    if run_all || figures.contains(&"fleet") {
        fleet(&scale)?;
        matched = true;
    }
    if run_all || figures.contains(&"ppb_sensitivity") {
        ppb_sensitivity(&scale)?;
        matched = true;
    }
    if run_all || figures.contains(&"lsm") {
        lsm(quick)?;
        matched = true;
    }
    if !matched {
        eprintln!(
            "unknown experiment selection {figures:?}; expected fig12..fig18, ablation, qd, \
             openloop, burst, faults, fleet, ppb_sensitivity, lsm or all"
        );
        std::process::exit(2);
    }
    Ok(())
}
