//! # vflash-bench
//!
//! Experiment harness and Criterion benches for the PPB reproduction.
//!
//! The library part only hosts the small formatting helpers shared between the
//! `experiments` binary and the benches; the interesting code lives in
//! [`vflash_sim::experiments`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use vflash_fleet::FleetCellResult;
use vflash_kv::workload::{KvComparison, KvRunSummary};
use vflash_nand::Nanos;
use vflash_sim::experiments::{
    BurstRow, EnhancementRow, EraseCountRow, FaultRow, LatencySweepRow, LifetimeRow,
    PolicyEraseRow, PpbSensitivityRow, QueueDepthRow, RateScaleRow,
};
use vflash_sim::{Comparison, LatencyPercentiles, RunSummary};

/// Formats a duration as seconds with three decimals, the unit the paper's latency
/// figures use.
pub fn seconds(value: Nanos) -> String {
    format!("{:.3}s", value.as_secs_f64())
}

/// Renders Figure 12/15 rows (read or write enhancement per workload and page size).
pub fn format_enhancement_rows(
    rows: &[EnhancementRow],
    metric: impl Fn(&Comparison) -> f64,
) -> String {
    let mut out = String::from("workload          page-size   enhancement\n");
    for row in rows {
        out.push_str(&format!(
            "{:<17} {:>6} KiB   {:>8.2}%\n",
            row.workload.label(),
            row.page_size_bytes / 1024,
            metric(&row.comparison),
        ));
    }
    out
}

/// Renders Figure 13/14/16/17 rows (latency vs speed difference).
pub fn format_latency_sweep(rows: &[LatencySweepRow]) -> String {
    let mut out = String::from("speed-diff   conventional-ftl   ftl-with-ppb   improvement\n");
    for row in rows {
        let improvement = if row.conventional == Nanos::ZERO {
            0.0
        } else {
            (row.conventional.as_nanos() as f64 - row.ppb.as_nanos() as f64)
                / row.conventional.as_nanos() as f64
                * 100.0
        };
        out.push_str(&format!(
            "{:>7.0}x   {:>16} {:>14}   {:>9.2}%\n",
            row.speed_ratio,
            seconds(row.conventional),
            seconds(row.ppb),
            improvement,
        ));
    }
    out
}

/// Formats percentiles compactly in microseconds: `p50/p95/p99/max`.
fn percentiles_us(percentiles: &LatencyPercentiles) -> String {
    format!(
        "{:>7.0}/{:>7.0}/{:>7.0}/{:>8.0}",
        percentiles.p50.as_micros_f64(),
        percentiles.p95.as_micros_f64(),
        percentiles.p99.as_micros_f64(),
        percentiles.max.as_micros_f64(),
    )
}

/// Formats the tail percentiles the LSM table reports: `p50/p99/p99.9` (µs).
fn tail_percentiles_us(percentiles: &LatencyPercentiles) -> String {
    format!(
        "{:>6.0}/{:>7.0}/{:>8.0}",
        percentiles.p50.as_micros_f64(),
        percentiles.p99.as_micros_f64(),
        percentiles.p999.as_micros_f64(),
    )
}

/// Renders the LSM KV-store comparison: for each FTL, the application-level
/// get-latency split (memtable hits vs SSTable reads), the compaction-stall
/// tail absorbed by writes, and the three write-amplification factors (app ×
/// FTL = end-to-end). The interesting columns are the SSTable-read and stall
/// tails — that is where the device's placement policy shows through the LSM —
/// and the end-to-end WA, which multiplies the LSM's own rewrite cost by the
/// FTL's relocation cost.
pub fn format_kv_rows(comparison: &KvComparison) -> String {
    let mut out = String::from(
        "ftl            memhit p50/p99/p99.9 (us)   sstread p50/p99/p99.9 (us)   \
         stall p50/p99/p99.9 (us)   app-WA  ftl-WA  e2e-WA\n",
    );
    let mut push = |summary: &KvRunSummary| {
        let wa = summary.write_amplification;
        out.push_str(&format!(
            "{:<12} {:>26} {:>28} {:>26}   {:>6.2}  {:>6.2}  {:>6.2}\n",
            summary.ftl,
            tail_percentiles_us(&summary.memtable_hit),
            tail_percentiles_us(&summary.sstable_read),
            tail_percentiles_us(&summary.compaction_stall),
            wa.app,
            wa.ftl,
            wa.end_to_end,
        ));
    };
    push(&comparison.conventional);
    push(&comparison.ppb);
    out
}

/// Renders the serial-vs-batched KV rows: one line per run with the device
/// time spent in flushes and compactions, the compaction-stall tail the
/// application absorbs, and the batching counters. A final line reports the
/// flush+compaction device-time speedup, the headline of the batched
/// submission path on a multi-chip device.
pub fn format_kv_batching_rows(serial: &KvRunSummary, batched: &KvRunSummary) -> String {
    let mut out = String::from(
        "mode      flush+compaction   stall p50/p99/p99.9 (us)   batches   batched pages\n",
    );
    let mut push = |mode: &str, summary: &KvRunSummary| {
        out.push_str(&format!(
            "{:<8} {:>17} {:>26} {:>9} {:>15}\n",
            mode,
            seconds(summary.flush_time + summary.compaction_time),
            tail_percentiles_us(&summary.compaction_stall),
            summary.batched_submissions,
            summary.batched_pages,
        ));
    };
    push("serial", serial);
    push("batched", batched);
    let serial_device = serial.flush_time + serial.compaction_time;
    let batched_device = batched.flush_time + batched.compaction_time;
    if batched_device > Nanos::ZERO {
        out.push_str(&format!(
            "batched flush+compaction device time is {:.2}x lower\n",
            serial_device.as_secs_f64() / batched_device.as_secs_f64(),
        ));
    }
    out
}

/// One-line activity summary of a KV run (flushes, compactions, stalls, device
/// time) printed under the comparison table.
pub fn format_kv_activity(summary: &KvRunSummary) -> String {
    format!(
        "{:<12} {} ops, {} flushes, {} compactions, {} stalled writes, \
         {} bloom skips, device time {}\n",
        summary.ftl,
        summary.ops_completed,
        summary.flushes,
        summary.compactions,
        summary.stalled_writes,
        summary.bloom_skips,
        seconds(summary.device_time),
    )
}

/// Renders queue-depth sweep rows: achieved IOPS and per-request read/write
/// latency percentiles (µs) for both FTLs at every depth.
pub fn format_queue_depth_rows(rows: &[QueueDepthRow]) -> String {
    let mut out = String::from(
        "  qd   ftl            iops    read p50/p95/p99/max (us)   write p50/p95/p99/max (us)\n",
    );
    let mut push = |queue_depth: usize, summary: &RunSummary| {
        out.push_str(&format!(
            "{:>4}   {:<12} {:>8.0}   {}   {}\n",
            queue_depth,
            summary.ftl,
            summary.request_iops(),
            percentiles_us(&summary.read_latency),
            percentiles_us(&summary.write_latency),
        ));
    };
    for row in rows {
        push(row.queue_depth, &row.conventional);
        push(row.queue_depth, &row.ppb);
    }
    out
}

/// Renders offered-load (open-loop rate-scale) sweep rows: offered vs achieved
/// IOPS and the queueing-delay/service-time split (µs) for both FTLs at every
/// rate scale. Reading the curve: while achieved ≈ offered the device keeps up
/// and queue delay stays near zero; past the knee, achieved flattens at
/// saturation and the response time is queueing delay, not service time.
pub fn format_rate_scale_rows(rows: &[RateScaleRow]) -> String {
    let mut out = String::from(
        " rate   ftl             offered    achieved   qdelay mean/p99 (us)   service mean/p99 (us)\n",
    );
    let mut push = |rate_scale: f64, summary: &RunSummary| {
        out.push_str(&format!(
            "{:>4}x   {:<12} {:>9.0} {:>11.0}   {:>9.0}/{:>9.0}   {:>9.0}/{:>9.0}\n",
            rate_scale,
            summary.ftl,
            summary.offered_iops(),
            summary.request_iops(),
            summary.queue_delay.mean.as_micros_f64(),
            summary.queue_delay.p99.as_micros_f64(),
            summary.service_time.mean.as_micros_f64(),
            summary.service_time.p99.as_micros_f64(),
        ));
    };
    for row in rows {
        push(row.rate_scale, &row.conventional);
        push(row.rate_scale, &row.ppb);
    }
    out
}

/// Renders burstiness-sweep rows: for each arrival model of the fixed-mean-rate
/// axis, the busy-arrival fraction, the peak backlog and the read-latency tail
/// (p99 and p99.9, µs) of both FTLs. Reading the table: the mean rate is the
/// same in every row, so everything that grows down the table — busy fraction,
/// backlog, and above all the p99.9 — is the cost of burstiness, and the
/// conventional-vs-PPB gap at the bottom rows is the tail win the paper's
/// placement strategy buys under realistic (non-smooth) load.
pub fn format_burst_rows(rows: &[BurstRow]) -> String {
    let mut out = String::from(
        "arrival                      ftl             offered   achieved   busy%   peak-qd   \
         read p99/p99.9 (us)\n",
    );
    let mut push = |label: &str, summary: &RunSummary| {
        out.push_str(&format!(
            "{:<28} {:<12} {:>9.0} {:>10.0} {:>6.1} {:>9}   {:>9.0}/{:>9.0}\n",
            label,
            summary.ftl,
            summary.offered_iops(),
            summary.request_iops(),
            summary.busy_arrival_fraction() * 100.0,
            summary.peak_queue_depth,
            summary.read_latency.p99.as_micros_f64(),
            summary.read_latency.p999.as_micros_f64(),
        ));
    };
    for row in rows {
        let label = row.arrival.label();
        push(&label, &row.conventional);
        push(&label, &row.ppb);
    }
    out
}

/// Renders the Figure 18 victim-policy ablation rows (erased block counts per
/// workload and GC policy).
pub fn format_policy_erase_rows(rows: &[PolicyEraseRow]) -> String {
    let mut out = String::from("workload          gc-policy        conventional-ftl   ftl-with-ppb\n");
    for row in rows {
        out.push_str(&format!(
            "{:<17} {:<16} {:>16} {:>14}\n",
            row.workload.label(),
            row.policy.label(),
            row.conventional,
            row.ppb,
        ));
    }
    out
}

/// Renders fault-sweep rows: for every RBER scale × GC policy, how often the
/// fault model fired (retried/uncorrectable reads, bad-block growth), the
/// fraction of host time the retry ladder cost, and the read-latency tail of
/// both FTLs. Reading the table: the retry columns grow down the RBER axis and
/// drag the p99/p99.9 with them — the reliability tax on tail latency.
pub fn format_fault_rows(rows: &[FaultRow]) -> String {
    let mut out = String::from(
        "rber   gc-policy        ftl             retried   retry%   uncorr   bad-blk   \
         read p99/p99.9 (us)\n",
    );
    let mut push = |rber: f64, policy: &str, summary: &RunSummary| {
        out.push_str(&format!(
            "{:>3.0}x   {:<16} {:<12} {:>9} {:>8.2} {:>8} {:>9}   {:>9.0}/{:>9.0}\n",
            rber,
            policy,
            summary.ftl,
            summary.retried_reads,
            summary.retry_latency_fraction() * 100.0,
            summary.uncorrectable_reads,
            summary.bad_blocks_grown,
            summary.read_latency.p99.as_micros_f64(),
            summary.read_latency.p999.as_micros_f64(),
        ));
    };
    for row in rows {
        let policy = row.policy.label();
        push(row.rber_scale, &policy, &row.conventional);
        push(row.rber_scale, &policy, &row.ppb);
    }
    out
}

/// Renders end-of-life probe rows: how many writes each FTL absorbed on a
/// failing device, how many blocks it retired, and when it turned read-only.
pub fn format_lifetime_rows(rows: &[LifetimeRow]) -> String {
    let mut out = String::from("ftl            writes-to-read-only   bad-blocks   read-only at\n");
    for row in rows {
        out.push_str(&format!(
            "{:<12} {:>21} {:>12}   {}\n",
            row.ftl,
            row.writes_completed,
            row.bad_blocks,
            seconds(row.time_to_read_only),
        ));
    }
    out
}

/// Renders fleet-sweep rows: for each workload × FTL × stripe width, the
/// achieved (and, open loop, offered) IOPS, the per-request **fan-out**
/// read-latency tail (max over the request's stripes) next to the per-stripe
/// p99.9 it is compared against, and their ratio — the fan-out tail
/// amplification. Reading the table: the width-1 row is the single-device
/// reference (amplification 1.0 by construction); down the width axis the
/// stripe distribution barely moves while the fan-out p99.9 grows, because a
/// striped request completes at the *max* of ever more stripes.
pub fn format_fleet_rows(rows: &[FleetCellResult]) -> String {
    let mut out = String::from(
        "workload          ftl            width    offered   achieved   \
         fanout p50/p99/p99.9 (us)   stripe p99.9   tail-amp\n",
    );
    for row in rows {
        let summary = &row.summary;
        out.push_str(&format!(
            "{:<17} {:<12} {:>6} {:>10.0} {:>10.0}   {:>6.0}/{:>7.0}/{:>8.0}   {:>12.0}   {:>7.2}x\n",
            row.cell.workload.label(),
            summary.ftl,
            summary.width,
            summary.offered_iops(),
            summary.request_iops(),
            summary.fanout_read_latency.p50.as_micros_f64(),
            summary.fanout_read_latency.p99.as_micros_f64(),
            summary.fanout_read_latency.p999.as_micros_f64(),
            summary.stripe_read_latency.p999.as_micros_f64(),
            summary.read_tail_amplification(),
        ));
    }
    out
}

/// Renders the PPB sensitivity rows (ROADMAP carry-over): the warm-up length
/// and promotion knobs each row ran with and the read/write enhancement over
/// the measured suffix. The default-knob rows down the warm-up axis answer
/// whether aging the device widens the win; the threshold rows answer whether
/// promotion tuning does.
pub fn format_ppb_sensitivity_rows(rows: &[PpbSensitivityRow]) -> String {
    let mut out = String::from(
        "workload          warmup   promote-reads   hot-fraction   read-enh   write-enh\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{:<17} {:>5.0}% {:>15} {:>14.2} {:>9.2}% {:>10.2}%\n",
            row.workload.label(),
            row.warmup_fraction * 100.0,
            row.cold_promote_reads,
            row.hot_list_fraction,
            row.comparison.read_enhancement_pct(),
            row.comparison.write_enhancement_pct(),
        ));
    }
    out
}

/// Renders Figure 18 rows (erased block counts).
pub fn format_erase_rows(rows: &[EraseCountRow]) -> String {
    let mut out = String::from("workload          conventional-ftl   ftl-with-ppb\n");
    for row in rows {
        out.push_str(&format!(
            "{:<17} {:>16} {:>14}\n",
            row.workload.label(),
            row.conventional,
            row.ppb,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vflash_sim::experiments::Workload;
    use vflash_sim::RunSummary;

    fn summary(ftl: &str, read_us: u64) -> RunSummary {
        let mut end = vflash_ftl::FtlMetrics::new();
        end.record_host_read(Nanos::from_micros(read_us));
        end.record_host_write(Nanos::from_micros(600));
        RunSummary::from_metrics_delta(ftl, "t", &vflash_ftl::FtlMetrics::new(), &end)
    }

    #[test]
    fn formatting_includes_every_row() {
        let comparison = Comparison::new(summary("conventional", 100), summary("ppb", 80));
        let rows = vec![EnhancementRow {
            workload: Workload::MediaServer,
            page_size_bytes: 16 * 1024,
            comparison,
        }];
        let text = format_enhancement_rows(&rows, Comparison::read_enhancement_pct);
        assert!(text.contains("media-server"));
        assert!(text.contains("16 KiB"));
        assert!(text.contains("20.00%"));
    }

    #[test]
    fn latency_sweep_formatting_reports_improvement() {
        let rows = vec![LatencySweepRow {
            speed_ratio: 2.0,
            conventional: Nanos::from_millis(200),
            ppb: Nanos::from_millis(150),
        }];
        let text = format_latency_sweep(&rows);
        assert!(text.contains("2x"));
        assert!(text.contains("25.00%"));
    }

    #[test]
    fn erase_formatting_lists_counts() {
        let rows = vec![EraseCountRow { workload: Workload::WebSqlServer, conventional: 40, ppb: 41 }];
        let text = format_erase_rows(&rows);
        assert!(text.contains("web-sql-server"));
        assert!(text.contains("40"));
        assert!(text.contains("41"));
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(seconds(Nanos::from_millis(1500)), "1.500s");
    }

    #[test]
    fn queue_depth_formatting_reports_iops_and_percentiles() {
        let mut conventional = summary("conventional", 100);
        conventional.host_requests = 1_000;
        conventional.host_elapsed = Nanos::from_millis(100);
        conventional.read_latency.p99 = Nanos::from_micros(250);
        let ppb = summary("ppb", 80);
        let rows = vec![QueueDepthRow { queue_depth: 16, conventional, ppb }];
        let text = format_queue_depth_rows(&rows);
        assert!(text.contains("16"), "{text}");
        assert!(text.contains("conventional"));
        assert!(text.contains("10000"), "1000 reqs / 0.1 s = 10000 IOPS: {text}");
        assert!(text.contains("250"), "p99 column: {text}");
    }

    #[test]
    fn rate_scale_formatting_reports_offered_and_achieved() {
        let mut conventional = summary("conventional", 100);
        conventional.host_requests = 1_000;
        conventional.host_elapsed = Nanos::from_millis(200);
        conventional.offered_duration = Nanos::from_millis(100);
        conventional.queue_delay.mean = Nanos::from_micros(75);
        let ppb = summary("ppb", 80);
        let rows = vec![RateScaleRow { rate_scale: 2.0, conventional, ppb }];
        let text = format_rate_scale_rows(&rows);
        assert!(text.contains("2x"), "{text}");
        assert!(text.contains("10000"), "1000 reqs / 0.1 s offered: {text}");
        assert!(text.contains("5000"), "1000 reqs / 0.2 s achieved: {text}");
        assert!(text.contains("75"), "queue-delay mean column: {text}");
    }

    #[test]
    fn burst_formatting_reports_tail_and_busy_fraction() {
        use vflash_trace::synthetic::ArrivalModel;
        let mut conventional = summary("conventional", 100);
        conventional.host_requests = 1_000;
        conventional.host_elapsed = Nanos::from_millis(200);
        conventional.offered_duration = Nanos::from_millis(100);
        conventional.busy_arrivals = 250;
        conventional.peak_queue_depth = 77;
        conventional.read_latency.p999 = Nanos::from_micros(1_234);
        let ppb = summary("ppb", 80);
        let rows = vec![BurstRow {
            arrival: ArrivalModel::Pareto { shape: 1.5, mean_iops: 10_000.0 },
            conventional,
            ppb,
        }];
        let text = format_burst_rows(&rows);
        assert!(text.contains("pareto(a=1.5)"), "{text}");
        assert!(text.contains("25.0"), "busy-arrival percent: {text}");
        assert!(text.contains("77"), "peak backlog: {text}");
        assert!(text.contains("1234"), "p99.9 column: {text}");
    }

    #[test]
    fn fault_formatting_reports_reliability_counters() {
        use vflash_sim::experiments::{FaultRow, GcPolicy};
        let mut end = vflash_ftl::FtlMetrics::new();
        end.record_host_read(Nanos::from_micros(400));
        end.record_host_write(Nanos::from_micros(600));
        end.record_read_retries(3, Nanos::from_micros(100));
        end.record_uncorrectable_read();
        end.record_bad_block();
        let conventional = RunSummary::from_metrics_delta(
            "conventional",
            "t",
            &vflash_ftl::FtlMetrics::new(),
            &end,
        );
        let rows = vec![FaultRow {
            rber_scale: 4.0,
            policy: GcPolicy::Greedy,
            conventional,
            ppb: summary("ppb", 80),
        }];
        let text = format_fault_rows(&rows);
        assert!(text.contains("4x"), "{text}");
        assert!(text.contains("greedy"), "{text}");
        assert!(text.contains("10.00"), "retry fraction 100us/1000us: {text}");
    }

    #[test]
    fn lifetime_formatting_reports_the_transition() {
        use vflash_sim::experiments::LifetimeRow;
        let rows = vec![LifetimeRow {
            ftl: "ppb",
            writes_completed: 1234,
            bad_blocks: 40,
            time_to_read_only: Nanos::from_millis(1500),
        }];
        let text = format_lifetime_rows(&rows);
        assert!(text.contains("1234"), "{text}");
        assert!(text.contains("40"), "{text}");
        assert!(text.contains("1.500s"), "{text}");
    }

    #[test]
    fn fleet_formatting_reports_width_and_amplification() {
        use vflash_fleet::{CacheStats, FleetCellResult, FleetSummary};
        use vflash_sim::experiments::ExperimentScale;
        use vflash_sim::{ArrivalDiscipline, FtlKind, GridCell, ReplayMode};
        use vflash_trace::synthetic::ArrivalModel;

        let mut fanout = LatencyPercentiles::default();
        fanout.p999 = Nanos::from_micros(900);
        let mut stripe = LatencyPercentiles::default();
        stripe.p999 = Nanos::from_micros(300);
        let rows = vec![FleetCellResult {
            cell: GridCell {
                index: 0,
                ftl: FtlKind::Ppb,
                workload: Workload::WebSqlServer,
                discipline: ArrivalDiscipline::OpenLoop { rate_scale: 1.0 },
                arrival: ArrivalModel::default(),
                fleet_size: 4,
                scale: ExperimentScale::quick(),
            },
            summary: FleetSummary {
                ftl: "ppb".into(),
                trace: "web-sql-server".into(),
                width: 4,
                lanes: Vec::new(),
                mode: ReplayMode::OpenLoop { rate_scale: 1.0 },
                queue_depth: 0,
                host_requests: 1_000,
                host_elapsed: Nanos::from_millis(100),
                offered_duration: Nanos::from_millis(50),
                peak_queue_depth: 3,
                busy_arrivals: 10,
                fanout_read_latency: fanout,
                fanout_write_latency: LatencyPercentiles::default(),
                stripe_read_latency: stripe,
                stripe_write_latency: LatencyPercentiles::default(),
                cache: CacheStats::default(),
                tenants: Vec::new(),
            },
        }];
        let text = format_fleet_rows(&rows);
        assert!(text.contains("web-sql-server"), "{text}");
        assert!(text.contains("10000"), "1000 reqs / 0.1 s achieved: {text}");
        assert!(text.contains("20000"), "1000 reqs / 0.05 s offered: {text}");
        assert!(text.contains("3.00x"), "900us / 300us tail amplification: {text}");
    }

    #[test]
    fn ppb_sensitivity_formatting_reports_knobs_and_enhancements() {
        use vflash_sim::experiments::PpbSensitivityRow;
        let rows = vec![PpbSensitivityRow {
            workload: Workload::WebSqlServer,
            warmup_fraction: 0.5,
            cold_promote_reads: 4,
            hot_list_fraction: 0.25,
            comparison: Comparison::new(summary("conventional", 100), summary("ppb", 80)),
        }];
        let text = format_ppb_sensitivity_rows(&rows);
        assert!(text.contains("web-sql-server"), "{text}");
        assert!(text.contains("50%"), "{text}");
        assert!(text.contains("0.25"), "{text}");
        assert!(text.contains("20.00%"), "read enhancement: {text}");
    }

    #[test]
    fn policy_erase_formatting_lists_policies() {
        use vflash_sim::experiments::GcPolicy;
        let rows = vec![PolicyEraseRow {
            workload: Workload::MediaServer,
            policy: GcPolicy::CostBenefit,
            conventional: 17,
            ppb: 18,
        }];
        let text = format_policy_erase_rows(&rows);
        assert!(text.contains("cost-benefit"));
        assert!(text.contains("17"));
        assert!(text.contains("18"));
    }
}
