//! The PPB flash translation layer.

use std::collections::HashSet;

use vflash_ftl::hotcold::{HotColdClassifier, SizeCheck, Temperature};
use vflash_ftl::{
    Completion, FlashTranslationLayer, FtlError, FtlMetrics, GcOutcome, GreedyVictimPolicy,
    IoCommand, IoRequest, Lpn, MappingTable, VictimPolicy,
};
use vflash_nand::{BlockAddr, NandDevice, NandError, Nanos, PageAddr};

use crate::cold_area::ColdArea;
use crate::config::PpbConfig;
use crate::hot_area::{HotArea, PromotionOutcome};
use crate::hotness::{Area, Hotness};
use crate::placement::AreaWriter;
use crate::virtual_block::VirtualBlockTable;

/// The paper's FTL: conventional page mapping plus the Progressive Performance
/// Boosting strategy.
///
/// On every host write the first-stage classifier (`C`, the request-size check by
/// default) decides hot vs cold; the hot/cold areas refine the decision into the four
/// hotness levels based on observed re-reads; and the [`AreaWriter`]s place the data
/// on a virtual block of suitable speed — always respecting the rule that a physical
/// block belongs to exactly one area. Promotions and demotions never move data by
/// themselves: relocation happens when the data is next rewritten or garbage
/// collected, which is why write latency and erase counts stay at the level of the
/// conventional FTL.
///
/// # Example
///
/// ```
/// use vflash_ftl::hotcold::TwoLevelLru;
/// use vflash_ftl::{FlashTranslationLayer, Lpn};
/// use vflash_nand::{NandConfig, NandDevice};
/// use vflash_ppb::{PpbConfig, PpbFtl};
///
/// # fn main() -> Result<(), vflash_ftl::FtlError> {
/// // Default first stage (size check):
/// let ftl = PpbFtl::new(NandDevice::new(NandConfig::small()), PpbConfig::default())?;
/// assert_eq!(ftl.name(), "ppb");
///
/// // Any other classifier plugs in unchanged:
/// let lru = TwoLevelLru::new(512, 512);
/// let _ftl = PpbFtl::with_classifier(
///     NandDevice::new(NandConfig::small()),
///     PpbConfig::default(),
///     lru,
/// )?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PpbFtl<C = SizeCheck> {
    device: NandDevice,
    config: PpbConfig,
    mapping: MappingTable,
    virtual_blocks: VirtualBlockTable,
    hot_writer: AreaWriter,
    cold_writer: AreaWriter,
    hot_area: HotArea,
    cold_area: ColdArea,
    classifier: C,
    victim_policy: Box<dyn VictimPolicy>,
    metrics: FtlMetrics,
    logical_pages: u64,
    read_only: bool,
    /// Which area each physical block currently belongs to (by flat block index).
    /// `None` means the block is free or has never been written since its last erase.
    block_areas: Vec<Option<Area>>,
    /// LPNs whose data was lost to an uncorrectable relocation read. A host read
    /// of a lost LPN completes instantly with the `uncorrectable` flag (the
    /// device no longer holds the data); a successful rewrite clears the entry.
    lost: HashSet<Lpn>,
}

impl PpbFtl<SizeCheck> {
    /// Builds the PPB FTL with the paper's case-study first stage: the request-size
    /// check with the flash page size as threshold.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::InvalidConfig`] for inconsistent configurations.
    pub fn new(device: NandDevice, config: PpbConfig) -> Result<Self, FtlError> {
        let page_size = device.config().page_size_bytes() as u32;
        PpbFtl::with_classifier(device, config, SizeCheck::new(page_size))
    }
}

impl<C: HotColdClassifier> PpbFtl<C> {
    /// Builds the PPB FTL with an explicit first-stage hot/cold classifier.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::InvalidConfig`] for inconsistent configurations.
    pub fn with_classifier(
        device: NandDevice,
        config: PpbConfig,
        classifier: C,
    ) -> Result<Self, FtlError> {
        config.validate()?;
        let nand = device.config();
        let logical_pages = config.ftl.logical_pages(nand.total_pages());
        if logical_pages == 0 {
            return Err(FtlError::InvalidConfig {
                reason: "over-provisioning leaves zero logical pages".to_string(),
            });
        }
        if nand.total_blocks() <= config.ftl.gc_target_free_blocks + 2 {
            return Err(FtlError::InvalidConfig {
                reason: format!(
                    "device has only {} blocks; the PPB strategy needs room for a hot and a cold write stream plus {} free GC blocks",
                    nand.total_blocks(),
                    config.ftl.gc_target_free_blocks
                ),
            });
        }
        if config.virtual_blocks_per_block > nand.pages_per_block() {
            return Err(FtlError::InvalidConfig {
                reason: "virtual_blocks_per_block exceeds pages_per_block".to_string(),
            });
        }
        let mapping = MappingTable::new(
            logical_pages,
            nand.chips(),
            nand.blocks_per_chip(),
            nand.pages_per_block(),
        );
        let virtual_blocks = VirtualBlockTable::new(nand, config.virtual_blocks_per_block);
        let hot_writer =
            AreaWriter::new("hot", &virtual_blocks, config.max_open_blocks_per_area);
        let cold_writer =
            AreaWriter::new("cold", &virtual_blocks, config.max_open_blocks_per_area);
        let hot_area = HotArea::new(
            config.hot_list_capacity(logical_pages),
            config.iron_hot_list_capacity(logical_pages),
        );
        let cold_area = ColdArea::new(
            config.cold_table_capacity(logical_pages),
            config.cold_promote_reads,
        );
        let block_areas = vec![None; nand.total_blocks()];
        Ok(PpbFtl {
            device,
            config,
            mapping,
            virtual_blocks,
            hot_writer,
            cold_writer,
            hot_area,
            cold_area,
            classifier,
            victim_policy: Box::new(GreedyVictimPolicy::new()),
            metrics: FtlMetrics::new(),
            logical_pages,
            read_only: false,
            block_areas,
            lost: HashSet::new(),
        })
    }

    /// The PPB configuration.
    pub fn config(&self) -> &PpbConfig {
        &self.config
    }

    /// Replaces the garbage-collection victim policy (greedy by default). Used by
    /// the Figure 18 policy ablation to compare greedy, wear-aware and
    /// cost-benefit selection on identical workloads.
    pub fn set_victim_policy(&mut self, policy: Box<dyn VictimPolicy>) {
        self.victim_policy = policy;
    }

    /// The mapping table, for inspection in tests and tools.
    pub fn mapping(&self) -> &MappingTable {
        &self.mapping
    }

    /// The virtual-block geometry helper.
    pub fn virtual_blocks(&self) -> &VirtualBlockTable {
        &self.virtual_blocks
    }

    /// The current hotness level the strategy assigns to `lpn`. LPNs never seen by
    /// either area default to icy-cold, matching the paper's treatment of
    /// write-once-read-few data.
    pub fn hotness_of(&self, lpn: Lpn) -> Hotness {
        self.hot_area
            .level_of(lpn)
            .or_else(|| self.cold_area.level_of(lpn))
            .unwrap_or(Hotness::IcyCold)
    }

    /// Number of free blocks currently available for allocation. O(chips): the
    /// device tracks the count, no block scan happens.
    pub fn free_blocks(&self) -> usize {
        self.device.available_blocks()
    }

    /// The data area `block` is currently dedicated to, or `None` if the block has
    /// not been written since its last erase. A physical block never holds data from
    /// both areas at once — that is the core garbage-collection-preserving invariant
    /// of the virtual-block design.
    pub fn block_area(&self, block: BlockAddr) -> Option<Area> {
        self.block_areas[block.flat_index(self.device.config().blocks_per_chip())]
    }

    fn check_range(&self, lpn: Lpn) -> Result<(), FtlError> {
        if lpn.0 >= self.logical_pages {
            Err(FtlError::LpnOutOfRange { lpn, logical_pages: self.logical_pages })
        } else {
            Ok(())
        }
    }

    fn desired_class(&self, level: Hotness) -> usize {
        if level.prefers_fast_pages() {
            self.virtual_blocks.per_block() - 1
        } else {
            0
        }
    }

    /// Updates the area bookkeeping for a write and returns the level the data should
    /// be placed at.
    fn classify_and_track_write(&mut self, lpn: Lpn, request_bytes: u32) -> Hotness {
        match self.classifier.classify_write(lpn, request_bytes) {
            Temperature::Hot => {
                self.cold_area.remove(lpn);
                if let Some(evicted) = self.hot_area.on_write(lpn) {
                    // "Demote if full": the evicted entry leaves the hot area but was
                    // recently hot, so it enters the cold area at the cold level.
                    self.cold_area.insert_demoted(evicted);
                }
                self.hot_area.level_of(lpn).expect("hot write keeps the LPN tracked")
            }
            Temperature::Cold => {
                // A cold-classified write of a previously hot LPN demotes it: large
                // rewrites signal the data stopped behaving like metadata.
                self.hot_area.remove(lpn);
                // A rewrite resets the read history, so the entry always lands at
                // icy-cold — no need to re-probe either area.
                self.cold_area.on_write(lpn);
                Hotness::IcyCold
            }
        }
    }

    /// Converts an allocation failure into the right terminal error: when bad-block
    /// growth has eaten the spare capacity, the FTL transitions (stickily) to
    /// read-only mode instead of reporting a capacity bug.
    fn out_of_space(&mut self) -> FtlError {
        if self.device.bad_block_count() > 0 {
            self.read_only = true;
            self.metrics.record_read_only(self.device.makespan());
            FtlError::ReadOnly
        } else {
            FtlError::OutOfSpace
        }
    }

    /// Writes `lpn` at hotness `level`, returning the device time charged.
    ///
    /// An injected program failure retires the target block; the writer evicts it,
    /// its surviving valid pages are rescued (each at its *current* hotness level)
    /// and the write re-drives into a fresh block, with the rescue time charged to
    /// the returned latency.
    fn place_page(&mut self, lpn: Lpn, level: Hotness) -> Result<Nanos, FtlError> {
        let mut time = Nanos::ZERO;
        loop {
            let desired = self.desired_class(level);
            let targeted = match level.area() {
                Area::Hot => self.hot_writer.target(desired, &mut self.device),
                Area::Cold => self.cold_writer.target(desired, &mut self.device),
            };
            let block = match targeted {
                Ok(block) => block,
                Err(FtlError::OutOfSpace) => return Err(self.out_of_space()),
                Err(err) => return Err(err),
            };
            let flat = block.flat_index(self.device.config().blocks_per_chip());
            if self.block_areas[flat].is_none() {
                // First data in this block since its erase: claim it for the area and
                // mirror the claim onto the device as a block tag, so hotness-aware
                // victim policies (which only see the device) can tell areas apart.
                self.block_areas[flat] = Some(level.area());
                self.device
                    .set_block_area_tag(block, Some(level.area().tag()))
                    .expect("write target addresses are valid");
            }
            let owner = self.block_areas[flat].expect("just claimed above");
            debug_assert_eq!(
                owner,
                level.area(),
                "block {block} owned by {owner} received {level} data"
            );
            match self.device.program_next(block) {
                Ok((page, program)) => {
                    let writer = match level.area() {
                        Area::Hot => &mut self.hot_writer,
                        Area::Cold => &mut self.cold_writer,
                    };
                    writer.after_program(block, &self.device, &self.virtual_blocks);
                    if let Some(previous) = self.mapping.map(lpn, block.page(page)) {
                        self.device.invalidate(previous)?;
                    }
                    return Ok(time + program);
                }
                Err(NandError::ProgramFailed { .. }) => {
                    // The device retired `block`. Evict it from its writer, move
                    // its surviving valid pages to safety and try again.
                    self.metrics.record_bad_block();
                    self.hot_writer.evict(block);
                    self.cold_writer.evict(block);
                    time += self.rescue_block(block)?;
                    self.metrics.record_remap();
                }
                Err(err) => return Err(err.into()),
            }
        }
    }

    /// Relocates every surviving valid page out of `bad` (a freshly retired block),
    /// each at its current hotness level. Pages whose relocation read is
    /// uncorrectable are dropped from the mapping and remembered as lost — the
    /// host's next read of the LPN completes with the `uncorrectable` flag.
    /// Returns the time charged.
    fn rescue_block(&mut self, bad: BlockAddr) -> Result<Nanos, FtlError> {
        let mut time = Nanos::ZERO;
        let residents: Vec<(PageAddr, Lpn)> = self
            .mapping
            .lpns_in_block(bad)
            .map(|(page, lpn)| (bad.page(page), lpn))
            .collect();
        for (source, lpn) in residents {
            match self.relocation_read(source, lpn)? {
                Some(read) => time += read,
                None => {
                    time += self.device.last_read_faults().total_time;
                    continue;
                }
            }
            let level = self.hotness_of(lpn);
            // place_page remaps the LPN and invalidates its previous location,
            // which is exactly the source page being rescued.
            time += self.place_page(lpn, level)?;
            self.metrics.record_rescue(1);
        }
        Ok(time)
    }

    /// Reads `source` on behalf of a relocation (GC or bad-block rescue). Returns
    /// `Ok(Some(latency))` on success; on an uncorrectable read the data is lost,
    /// so the LPN is unmapped and remembered as lost, the page invalidated and
    /// `Ok(None)` returned (the caller charges
    /// [`NandDevice::last_read_faults`]'s total time).
    fn relocation_read(&mut self, source: PageAddr, lpn: Lpn) -> Result<Option<Nanos>, FtlError> {
        let outcome = self.device.read(source);
        let faults = self.device.last_read_faults();
        self.metrics.record_read_retries(faults.retries, faults.retry_time);
        match outcome {
            Ok(latency) => Ok(Some(latency)),
            Err(NandError::UncorrectableRead { .. }) => {
                self.metrics.record_uncorrectable_read();
                self.mapping.unmap(lpn);
                self.lost.insert(lpn);
                self.device.invalidate(source)?;
                Ok(None)
            }
            Err(err) => Err(err.into()),
        }
    }

    fn open_blocks(&self) -> Vec<BlockAddr> {
        let mut open = self.hot_writer.open_blocks();
        open.extend(self.cold_writer.open_blocks());
        open
    }

    /// Reclaims blocks until the free pool reaches the configured target.
    ///
    /// Relocation is where the *progressive* movement happens: each surviving page is
    /// rewritten according to its **current** hotness level, so data promoted or
    /// demoted since it was written finally lands on a page of suitable speed — at
    /// zero extra cost, because the page had to be copied anyway.
    fn collect_garbage(&mut self) -> Result<GcOutcome, FtlError> {
        let mut outcome = GcOutcome::default();
        while self.device.available_blocks() < self.config.ftl.gc_target_free_blocks {
            let exclude = self.open_blocks();
            let Some(victim) = self.victim_policy.select_victim(&self.device, &exclude) else {
                break;
            };
            outcome.merge(self.reclaim_block(victim)?);
        }
        Ok(outcome)
    }

    fn reclaim_block(&mut self, victim: BlockAddr) -> Result<GcOutcome, FtlError> {
        let mut outcome = GcOutcome::default();
        let residents: Vec<(PageAddr, Lpn)> = self
            .mapping
            .lpns_in_block(victim)
            .map(|(page, lpn)| (victim.page(page), lpn))
            .collect();
        let mut migrated = 0u64;
        for (source, lpn) in residents {
            match self.relocation_read(source, lpn)? {
                Some(read) => outcome.time += read,
                None => {
                    outcome.time += self.device.last_read_faults().total_time;
                    continue;
                }
            }
            let level = self.hotness_of(lpn);
            let source_class = self.virtual_blocks.class_of_page(source.page()).0;
            // place_page remaps the LPN and invalidates its previous location, which
            // is exactly the source page being relocated.
            outcome.time += self.place_page(lpn, level)?;
            outcome.copied_pages += 1;
            let destination = self.mapping.lookup(lpn).expect("page was just mapped");
            let destination_class = self.virtual_blocks.class_of_page(destination.page()).0;
            if destination_class != source_class {
                migrated += 1;
            }
        }
        // The erase returns the victim to the device's free pool. A failed erase
        // is instantaneous (the device charges no time) and retires the victim;
        // its valid data is already safe, so GC simply moves on without counting
        // an erase, leaving the area claim on the dead block.
        match self.device.erase(victim) {
            Ok(erase) => {
                outcome.time += erase;
                outcome.erased_blocks += 1;
                self.block_areas[victim.flat_index(self.device.config().blocks_per_chip())] =
                    None;
            }
            Err(NandError::EraseFailed { .. }) => self.metrics.record_bad_block(),
            Err(err) => return Err(err.into()),
        }
        self.metrics.record_migration(migrated);
        Ok(outcome)
    }
}

impl<C: HotColdClassifier> FlashTranslationLayer for PpbFtl<C> {
    fn name(&self) -> &str {
        "ppb"
    }

    fn logical_pages(&self) -> u64 {
        self.logical_pages
    }

    fn submit(&mut self, request: IoRequest) -> Result<Completion, FtlError> {
        let lpn = request.lpn;
        self.check_range(lpn)?;
        // Everything recorded into the op arena from here on is this request's.
        let mark = self.device.op_mark();
        match request.command {
            IoCommand::Read => {
                let Some(addr) = self.mapping.lookup(lpn) else {
                    if self.lost.contains(&lpn) {
                        // The data fell to an uncorrectable relocation read and is
                        // gone from the media: the read completes instantly (no
                        // device work) with the data-lost flag. No re-access
                        // tracking either — a lost read is no re-use signal.
                        self.metrics.record_uncorrectable_read();
                        self.metrics.record_host_read(Nanos::ZERO);
                        return Ok(Completion {
                            latency: Nanos::ZERO,
                            ops: self.device.ops_since(mark),
                            gc: GcOutcome::default(),
                            read_retries: 0,
                            uncorrectable: true,
                        });
                    }
                    return Err(FtlError::UnmappedRead { lpn });
                };
                // An uncorrectable read still completes towards the host — the
                // full retry-ladder latency was spent — but the data is lost.
                let (latency, uncorrectable) = match self.device.read(addr) {
                    Ok(latency) => (latency, false),
                    Err(NandError::UncorrectableRead { .. }) => {
                        (self.device.last_read_faults().total_time, true)
                    }
                    Err(err) => return Err(err.into()),
                };
                let faults = self.device.last_read_faults();
                self.metrics.record_read_retries(faults.retries, faults.retry_time);
                if uncorrectable {
                    self.metrics.record_uncorrectable_read();
                }
                self.metrics.record_host_read(latency);

                if !uncorrectable {
                    // Re-access tracking: a read is the signal that promotes hot ->
                    // iron-hot and icy-cold -> cold. The data itself is not moved
                    // here (progressive migration). A lost read is no re-use signal.
                    self.classifier.record_read(lpn);
                    if self.hot_area.on_read(lpn) == PromotionOutcome::NotTracked {
                        self.cold_area.on_read(lpn);
                    }
                }
                Ok(Completion {
                    latency,
                    ops: self.device.ops_since(mark),
                    gc: GcOutcome::default(),
                    read_retries: faults.retries,
                    uncorrectable,
                })
            }
            IoCommand::Write { request_bytes } => {
                if self.read_only {
                    return Err(FtlError::ReadOnly);
                }
                let mut latency = Nanos::ZERO;
                let mut gc = GcOutcome::default();

                if self.device.available_blocks() < self.config.ftl.gc_trigger_free_blocks {
                    gc = self.collect_garbage()?;
                    latency += gc.time;
                    self.metrics.record_gc(gc.copied_pages, gc.erased_blocks, gc.time);
                }

                let level = self.classify_and_track_write(lpn, request_bytes);
                latency += self.place_page(lpn, level)?;
                self.lost.remove(&lpn);
                self.metrics.record_host_write(latency);
                Ok(Completion {
                    latency,
                    ops: self.device.ops_since(mark),
                    gc,
                    read_retries: 0,
                    uncorrectable: false,
                })
            }
        }
    }

    fn note_batch(&mut self, pages: u64) {
        self.metrics.record_batch(pages);
    }

    fn set_write_stripe(&mut self, lanes: usize) {
        // Both areas stripe: bulk table builds land in the cold area, WAL
        // appends in the hot area, and either stream benefits from rotating
        // programs across chips when the host batches.
        self.hot_writer.set_stripe(lanes);
        self.cold_writer.set_stripe(lanes);
    }

    fn metrics(&self) -> &FtlMetrics {
        &self.metrics
    }

    fn is_read_only(&self) -> bool {
        self.read_only
    }

    fn device(&self) -> &NandDevice {
        &self.device
    }

    fn device_mut(&mut self) -> &mut NandDevice {
        &mut self.device
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vflash_nand::NandConfig;

    fn device(blocks: usize, pages: usize) -> NandDevice {
        NandDevice::new(
            NandConfig::builder()
                .chips(1)
                .blocks_per_chip(blocks)
                .pages_per_block(pages)
                .page_size_bytes(4096)
                .speed_ratio(4.0)
                .build()
                .unwrap(),
        )
    }

    fn small_ftl() -> PpbFtl {
        let config = PpbConfig {
            ftl: vflash_ftl::FtlConfig { over_provisioning: 0.25, ..Default::default() },
            ..PpbConfig::default()
        };
        PpbFtl::new(device(24, 8), config).unwrap()
    }

    #[test]
    fn small_writes_are_hot_large_writes_are_cold() {
        let mut ftl = small_ftl();
        ftl.write(Lpn(1), 512).unwrap();
        ftl.write(Lpn(2), 64 * 1024).unwrap();
        assert_eq!(ftl.hotness_of(Lpn(1)), Hotness::Hot);
        assert_eq!(ftl.hotness_of(Lpn(2)), Hotness::IcyCold);
    }

    #[test]
    fn reads_promote_within_each_area() {
        let mut ftl = small_ftl();
        ftl.write(Lpn(1), 512).unwrap();
        ftl.write(Lpn(2), 64 * 1024).unwrap();
        ftl.read(Lpn(1)).unwrap();
        ftl.read(Lpn(2)).unwrap();
        assert_eq!(ftl.hotness_of(Lpn(1)), Hotness::IronHot);
        assert_eq!(ftl.hotness_of(Lpn(2)), Hotness::Cold);
    }

    #[test]
    fn untouched_lpns_default_to_icy_cold() {
        let ftl = small_ftl();
        assert_eq!(ftl.hotness_of(Lpn(40)), Hotness::IcyCold);
    }

    #[test]
    fn promoted_data_moves_to_fast_pages_on_rewrite() {
        let mut ftl = small_ftl();
        // Establish iron-hot status with several hot writes + a read.
        ftl.write(Lpn(1), 512).unwrap();
        ftl.read(Lpn(1)).unwrap();
        // Fill the slow half of the hot block with other hot data so the next
        // iron-hot write can actually target the fast half.
        for lpn in 10..14 {
            ftl.write(Lpn(lpn), 512).unwrap();
        }
        ftl.write(Lpn(1), 512).unwrap();
        let location = ftl.mapping().lookup(Lpn(1)).unwrap();
        let class = ftl.virtual_blocks().class_of_page(location.page());
        assert!(!class.is_slowest(), "iron-hot rewrite should land on the fast half");
    }

    #[test]
    fn hot_and_cold_data_never_share_a_physical_block() {
        let mut ftl = small_ftl();
        let logical = ftl.logical_pages();
        // Interleave hot (small) and cold (large) writes across the logical space.
        for i in 0..(logical * 3) {
            let lpn = Lpn(i % logical);
            if i.is_multiple_of(2) {
                ftl.write(lpn, 512).unwrap();
            } else {
                ftl.write(lpn, 128 * 1024).unwrap();
            }
        }
        // Every block with resident data is owned by exactly one area, and every LPN
        // the strategy still tracks as hot lives in a hot-area block. (Cold-tracked
        // LPNs may temporarily sit in hot-area blocks right after a demotion — that is
        // the "progressive" part — but hot classifications always trigger a rewrite
        // into the hot area, so the converse holds unconditionally.)
        for block in ftl.device().block_addrs() {
            let residents: Vec<_> = ftl.mapping().lpns_in_block(block).collect();
            if residents.is_empty() {
                continue;
            }
            let owner = ftl.block_area(block).expect("resident data implies an owner area");
            for (_, lpn) in residents {
                if ftl.hotness_of(lpn).area() == Area::Hot {
                    assert_eq!(
                        owner,
                        Area::Hot,
                        "hot {lpn} resides in a {owner} block {block}"
                    );
                }
            }
        }
    }

    #[test]
    fn sustained_overwrites_survive_gc_and_stay_readable() {
        let mut ftl = small_ftl();
        let logical = ftl.logical_pages();
        for i in 0..(logical * 8) {
            let lpn = Lpn(i % logical);
            let size = if lpn.0.is_multiple_of(3) { 512 } else { 32 * 1024 };
            ftl.write(lpn, size).unwrap();
            if i % 5 == 0 {
                ftl.read(lpn).unwrap();
            }
        }
        assert!(ftl.metrics().gc_erased_blocks > 0, "GC never ran");
        for i in 0..logical {
            ftl.read(Lpn(i)).unwrap();
        }
        ftl.mapping().check_consistency().unwrap();
    }

    #[test]
    fn gc_relocates_survivors_according_to_current_hotness() {
        let mut ftl = small_ftl();
        let logical = ftl.logical_pages();
        // Fill the whole logical space, then read a prefix so it is promoted to cold
        // (write-once-read-many), then churn the rest in a scrambled order so garbage
        // collection has to copy surviving valid pages.
        for i in 0..logical {
            ftl.write(Lpn(i), 128 * 1024).unwrap();
        }
        for _ in 0..2 {
            for i in 0..16 {
                ftl.read(Lpn(i)).unwrap();
            }
        }
        let churn = logical - 16;
        let stride = 37; // coprime with the churn range, scrambles block residency
        for round in 0..(churn * 8) {
            let lpn = Lpn(16 + (round * stride) % churn);
            ftl.write(lpn, 128 * 1024).unwrap();
        }
        let metrics = ftl.metrics();
        assert!(metrics.gc_copied_pages > 0, "workload never forced GC to copy valid pages");
        assert!(
            metrics.migrated_pages > 0,
            "GC never migrated data across speed classes (copied {}, erased {})",
            metrics.gc_copied_pages,
            metrics.gc_erased_blocks
        );
    }

    #[test]
    fn read_latency_beats_conventional_when_read_hot_and_write_only_data_mix() {
        use vflash_ftl::{ConventionalFtl, FtlConfig};

        // Same device geometry and workload for both FTLs.
        let make_device = || device(32, 16);
        let mut conventional =
            ConventionalFtl::new(make_device(), FtlConfig { over_provisioning: 0.25, ..Default::default() })
                .unwrap();
        let mut ppb = PpbFtl::new(
            make_device(),
            PpbConfig {
                ftl: FtlConfig { over_provisioning: 0.25, ..Default::default() },
                ..PpbConfig::default()
            },
        )
        .unwrap();

        let logical = conventional.logical_pages().min(ppb.logical_pages());
        let read_hot = 16u64; // metadata-like: frequently written *and* read
        let write_only = 16u64; // cache-like: frequently written, never read
        let run = |ftl: &mut dyn FlashTranslationLayer| {
            // Fill the space cold, then drive a mix of iron-hot and hot traffic.
            for i in 0..logical {
                ftl.write(Lpn(i), 256 * 1024).unwrap();
            }
            for round in 0..(logical * 4) {
                let cache = Lpn(100 + round % write_only);
                ftl.write(cache, 512).unwrap();
                let metadata = Lpn(round % read_hot);
                ftl.write(metadata, 512).unwrap();
                ftl.read(metadata).unwrap();
                ftl.read(metadata).unwrap();
            }
            ftl.metrics().host_read_time
        };
        let conventional_time = run(&mut conventional);
        let ppb_time = run(&mut ppb);
        assert!(
            ppb_time < conventional_time,
            "PPB read time {ppb_time} should beat conventional {conventional_time}"
        );
    }

    #[test]
    fn out_of_range_lpns_are_rejected() {
        let mut ftl = small_ftl();
        let beyond = Lpn(ftl.logical_pages());
        assert!(matches!(ftl.write(beyond, 512), Err(FtlError::LpnOutOfRange { .. })));
        assert!(matches!(ftl.read(beyond), Err(FtlError::LpnOutOfRange { .. })));
        assert!(matches!(ftl.read(Lpn(0)), Err(FtlError::UnmappedRead { .. })));
    }

    #[test]
    fn submit_traces_ops_and_sums_to_the_charged_latency() {
        let mut ftl = small_ftl();
        ftl.device_mut().set_op_tracing(true);
        let logical = ftl.logical_pages();
        let mut gc_seen = false;
        for i in 0..(logical * 8) {
            let lpn = Lpn(i % logical);
            let size = if lpn.0.is_multiple_of(3) { 512 } else { 32 * 1024 };
            ftl.device_mut().clear_ops();
            let write = ftl.submit(IoRequest::write(lpn, size)).unwrap();
            let ops_total: Nanos =
                ftl.device().ops(write.ops).iter().map(|op| op.latency).sum();
            assert_eq!(ops_total, write.latency);
            gc_seen |= write.gc.erased_blocks > 0;
            if i % 5 == 0 {
                let read = ftl.submit(IoRequest::read(lpn)).unwrap();
                assert_eq!(read.ops.len(), 1);
                assert_eq!(ftl.device().ops(read.ops)[0].latency, read.latency);
            }
        }
        assert!(gc_seen, "workload never triggered GC");
    }

    #[test]
    fn device_block_tags_mirror_the_area_bookkeeping() {
        let mut ftl = small_ftl();
        let logical = ftl.logical_pages();
        for i in 0..(logical * 6) {
            let lpn = Lpn(i % logical);
            ftl.write(lpn, if i % 2 == 0 { 512 } else { 64 * 1024 }).unwrap();
        }
        assert!(ftl.metrics().gc_erased_blocks > 0, "workload never exercised GC");
        let mut tagged = 0;
        for block in ftl.device().block_addrs() {
            let tag = ftl.device().block(block).unwrap().area_tag();
            let area = ftl.block_area(block);
            assert_eq!(
                tag,
                area.map(Area::tag),
                "device tag of {block} disagrees with FTL area {area:?}"
            );
            tagged += usize::from(tag.is_some());
        }
        assert!(tagged > 0, "no block ended up tagged");
    }

    #[test]
    fn hot_cold_victim_policy_runs_the_full_workload() {
        use vflash_ftl::HotColdVictimPolicy;
        let mut ftl = small_ftl();
        ftl.set_victim_policy(Box::new(HotColdVictimPolicy::default()));
        let logical = ftl.logical_pages();
        for i in 0..(logical * 8) {
            ftl.write(Lpn(i % logical), if i % 2 == 0 { 512 } else { 64 * 1024 }).unwrap();
        }
        assert!(ftl.metrics().gc_erased_blocks > 0);
        ftl.mapping().check_consistency().unwrap();
        for i in 0..logical {
            ftl.read(Lpn(i)).unwrap();
        }
    }

    #[test]
    fn victim_policy_is_swappable() {
        use vflash_ftl::CostBenefitVictimPolicy;
        let mut ftl = small_ftl();
        ftl.set_victim_policy(Box::new(CostBenefitVictimPolicy::new()));
        let logical = ftl.logical_pages();
        for i in 0..(logical * 8) {
            ftl.write(Lpn(i % logical), if i % 2 == 0 { 512 } else { 64 * 1024 }).unwrap();
        }
        assert!(ftl.metrics().gc_erased_blocks > 0);
        ftl.mapping().check_consistency().unwrap();
        for i in 0..logical {
            ftl.read(Lpn(i)).unwrap();
        }
    }

    fn faulty_ftl(faults: vflash_nand::FaultConfig) -> PpbFtl {
        let device = NandDevice::new(
            NandConfig::builder()
                .chips(1)
                .blocks_per_chip(24)
                .pages_per_block(8)
                .page_size_bytes(4096)
                .speed_ratio(4.0)
                .faults(faults)
                .build()
                .unwrap(),
        );
        let config = PpbConfig {
            ftl: vflash_ftl::FtlConfig { over_provisioning: 0.25, ..Default::default() },
            ..PpbConfig::default()
        };
        PpbFtl::new(device, config).unwrap()
    }

    #[test]
    fn program_failures_remap_writes_until_spares_run_out() {
        let mut ftl = faulty_ftl(vflash_nand::FaultConfig {
            program_fail_base: 0.02,
            erase_fail_base: 0.0,
            rber_scale: 0.0,
            ..vflash_nand::FaultConfig::enabled(13)
        });
        let logical = ftl.logical_pages();
        let mut writes = 0u64;
        loop {
            let size = if writes % 2 == 0 { 512 } else { 64 * 1024 };
            match ftl.write(Lpn(writes % logical), size) {
                Ok(_) => writes += 1,
                Err(FtlError::ReadOnly) => break,
                Err(err) => panic!("unexpected error before end of life: {err}"),
            }
            assert!(writes < 1_000_000, "device never reached end of life");
        }
        assert!(ftl.is_read_only());
        assert!(writes > 0, "no writes succeeded before end of life");
        let metrics = *ftl.metrics();
        assert!(metrics.bad_blocks_grown > 0);
        assert!(metrics.remapped_writes > 0);
        assert!(metrics.time_to_read_only > Nanos::ZERO);
        // Read-only mode is sticky...
        assert!(matches!(ftl.write(Lpn(0), 512), Err(FtlError::ReadOnly)));
        // ...but surviving data is still readable and the mapping is intact.
        let readable = (0..logical).filter(|&i| ftl.read(Lpn(i)).is_ok()).count();
        assert!(readable > 0, "read-only mode must keep serving reads");
        ftl.mapping().check_consistency().unwrap();
    }

    #[test]
    fn reads_of_data_lost_in_relocation_complete_with_the_data_lost_flag() {
        // Every read exhausts the retry ladder, so every GC relocation read
        // loses its page. Lost LPNs must not surface as UnmappedRead — the
        // host read completes instantly with the uncorrectable flag.
        let mut ftl = faulty_ftl(vflash_nand::FaultConfig {
            rber_scale: 1e12,
            ecc_correctable_bits: 0,
            retry_extra_bits: 1,
            max_read_retries: 2,
            program_fail_base: 0.0,
            erase_fail_base: 0.0,
            ..vflash_nand::FaultConfig::enabled(11)
        });
        let logical = ftl.logical_pages();
        // Fill once, then hammer a small hot set: GC keeps relocating the cold
        // majority, loses every page it touches, and the lost LPNs are never
        // rewritten — so they must still read back as lost afterwards.
        for i in 0..logical {
            ftl.write(Lpn(i), 4096).unwrap();
        }
        for round in 0..(logical * 4) {
            ftl.write(Lpn(round % 8), 4096).unwrap();
        }
        assert!(ftl.metrics().gc_erased_blocks > 0, "workload never triggered GC");
        let mut lost_seen = false;
        for i in 0..logical {
            let completion = ftl.submit(IoRequest::read(Lpn(i))).unwrap();
            assert!(completion.uncorrectable, "every read on this device fails");
            if completion.latency == Nanos::ZERO {
                assert_eq!(completion.read_retries, 0);
                lost_seen = true;
            }
        }
        assert!(lost_seen, "an uncorrectable-everything device must lose data in GC");
        // Rewriting a lost LPN revives it.
        ftl.write(Lpn(0), 4096).unwrap();
        assert!(ftl.mapping().lookup(Lpn(0)).is_some());
    }

    #[test]
    fn fault_paths_preserve_op_latency_accounting() {
        let mut ftl = faulty_ftl(vflash_nand::FaultConfig {
            rber_scale: 30.0,
            program_fail_base: 0.005,
            erase_fail_base: 0.002,
            ..vflash_nand::FaultConfig::enabled(42)
        });
        ftl.device_mut().set_op_tracing(true);
        let logical = ftl.logical_pages();
        for i in 0..(logical * 6) {
            let lpn = Lpn(i % logical);
            let size = if i % 2 == 0 { 512 } else { 64 * 1024 };
            ftl.device_mut().clear_ops();
            let write = match ftl.submit(IoRequest::write(lpn, size)) {
                Ok(completion) => completion,
                Err(FtlError::ReadOnly) => break,
                Err(err) => panic!("unexpected error: {err}"),
            };
            let ops_total: Nanos =
                ftl.device().ops(write.ops).iter().map(|op| op.latency).sum();
            assert_eq!(ops_total, write.latency, "write ops must sum to the charge");

            ftl.device_mut().clear_ops();
            if let Ok(read) = ftl.submit(IoRequest::read(lpn)) {
                let ops_total: Nanos =
                    ftl.device().ops(read.ops).iter().map(|op| op.latency).sum();
                assert_eq!(ops_total, read.latency, "read ops must sum to the charge");
            }
        }
        assert!(ftl.metrics().retried_reads > 0, "fault model never fired");
    }

    #[test]
    fn tiny_devices_are_rejected() {
        let tiny = device(4, 4);
        assert!(matches!(
            PpbFtl::new(tiny, PpbConfig::default()),
            Err(FtlError::InvalidConfig { .. })
        ));
    }
}
