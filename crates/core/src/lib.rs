//! # vflash-ppb
//!
//! The **Progressive Performance Boosting (PPB)** strategy from the DAC 2017 paper
//! "Boosting the Performance of 3D Charge Trap NAND Flash with Asymmetric Feature
//! Process Size Characteristic" — a layer-aware FTL extension that exploits the
//! asymmetric page access speed of 3D charge-trap NAND.
//!
//! ## The idea
//!
//! In a 3D charge-trap block the bottom-layer pages are 2x–5x faster than the
//! top-layer pages, yet conventional FTLs place data wherever the write pointer
//! happens to be. Simply steering hot data to fast pages and cold data to slow pages
//! would mix hot and cold data inside the same physical block and wreck garbage
//! collection. PPB resolves the tension with three mechanisms:
//!
//! 1. **Four-level hotness** ([`Hotness`]): hot data is split into *iron-hot*
//!    (frequently read **and** written) and *hot* (frequently written, rarely read);
//!    cold data into *cold* (write-once-read-many) and *icy-cold*
//!    (write-once-read-few). See [`HotArea`] and [`ColdArea`].
//! 2. **Virtual blocks** ([`VirtualBlockTable`]): each physical block is split into
//!    speed-homogeneous groups of adjacent pages (slow half / fast half by default),
//!    and a physical block is dedicated to either the hot area or the cold area, so
//!    hot and cold data never share a block. See [`AreaWriter`] for the allocation
//!    rules of Figure 8 / Algorithm 1.
//! 3. **Progressive migration**: promotions and demotions only update bookkeeping;
//!    data physically moves to a page of suitable speed when it is next updated or
//!    relocated by garbage collection, so no extra write traffic is generated.
//!
//! [`PpbFtl`] ties the pieces together and implements the same
//! [`FlashTranslationLayer`](vflash_ftl::FlashTranslationLayer) trait as the
//! conventional baseline, so the two can be compared under identical workloads.
//!
//! # Example
//!
//! ```
//! use vflash_ftl::{FlashTranslationLayer, Lpn};
//! use vflash_nand::{NandConfig, NandDevice};
//! use vflash_ppb::{PpbConfig, PpbFtl};
//!
//! # fn main() -> Result<(), vflash_ftl::FtlError> {
//! let device = NandDevice::new(NandConfig::small());
//! let mut ftl = PpbFtl::new(device, PpbConfig::default())?;
//!
//! // Small (sub-page) writes are classified hot by the size-check first stage.
//! ftl.write(Lpn(1), 512)?;
//! // Reading the page promotes it towards iron-hot, so future rewrites land on
//! // fast bottom-layer pages.
//! ftl.read(Lpn(1))?;
//! ftl.write(Lpn(1), 512)?;
//! assert_eq!(ftl.metrics().host_writes, 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cold_area;
mod config;
mod hot_area;
mod hotness;
mod lru;
mod placement;
mod ppb_ftl;
mod virtual_block;

pub use cold_area::ColdArea;
pub use config::PpbConfig;
pub use hot_area::{HotArea, PromotionOutcome};
pub use hotness::{Area, Hotness};
pub use lru::LruList;
pub use placement::AreaWriter;
pub use ppb_ftl::PpbFtl;
pub use virtual_block::{VirtualBlock, VirtualBlockId, VirtualBlockTable};
