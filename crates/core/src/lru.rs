//! An O(1) LRU list keyed by logical page number.
//!
//! The hot area tracks (potentially many thousands of) hot and iron-hot entries and
//! touches one on every host request, so the usual `VecDeque::remove` approach would
//! make request handling O(list length). This implementation keeps a doubly-linked
//! list in a slab of nodes plus a hash index from LPN to slot, giving O(1)
//! touch / insert / evict / remove. The index uses the deterministic
//! [`fx`](vflash_ftl::fx) hasher: the list is probed several times per host
//! request, and SipHash would dominate the cost of the operation itself.

use vflash_ftl::fx::FxHashMap;
use vflash_ftl::Lpn;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone, PartialEq, Eq)]
struct Node {
    lpn: Lpn,
    prev: usize,
    next: usize,
}

/// A fixed-capacity least-recently-used list of LPNs.
///
/// The *head* is the most recently used entry, the *tail* the least recently used.
///
/// # Example
///
/// ```
/// use vflash_ftl::Lpn;
/// use vflash_ppb::LruList;
///
/// let mut lru = LruList::new(2);
/// assert_eq!(lru.insert(Lpn(1)), None);
/// assert_eq!(lru.insert(Lpn(2)), None);
/// // Touching LPN1 makes LPN2 the eviction candidate.
/// lru.touch(Lpn(1));
/// assert_eq!(lru.insert(Lpn(3)), Some(Lpn(2)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LruList {
    nodes: Vec<Node>,
    free_slots: Vec<usize>,
    index: FxHashMap<Lpn, usize>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl LruList {
    /// Creates an empty list holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "lru capacity must be positive");
        LruList {
            nodes: Vec::with_capacity(capacity.min(1024)),
            free_slots: Vec::new(),
            index: FxHashMap::with_capacity_and_hasher(capacity.min(1024), Default::default()),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Whether the list is at capacity.
    pub fn is_full(&self) -> bool {
        self.len() >= self.capacity
    }

    /// Whether `lpn` is on the list.
    pub fn contains(&self, lpn: Lpn) -> bool {
        self.index.contains_key(&lpn)
    }

    /// The least recently used entry, if any.
    pub fn least_recent(&self) -> Option<Lpn> {
        (self.tail != NIL).then(|| self.nodes[self.tail].lpn)
    }

    /// The most recently used entry, if any.
    pub fn most_recent(&self) -> Option<Lpn> {
        (self.head != NIL).then(|| self.nodes[self.head].lpn)
    }

    fn detach(&mut self, slot: usize) {
        let (prev, next) = (self.nodes[slot].prev, self.nodes[slot].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.nodes[slot].prev = NIL;
        self.nodes[slot].next = NIL;
    }

    fn attach_front(&mut self, slot: usize) {
        self.nodes[slot].prev = NIL;
        self.nodes[slot].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    /// Moves `lpn` to the most-recently-used position. Returns `false` if it was not
    /// on the list.
    pub fn touch(&mut self, lpn: Lpn) -> bool {
        let Some(&slot) = self.index.get(&lpn) else { return false };
        if self.head != slot {
            self.detach(slot);
            self.attach_front(slot);
        }
        true
    }

    /// Inserts `lpn` at the most-recently-used position (touching it if already
    /// present). If the list overflows, the least recently used entry is evicted and
    /// returned.
    pub fn insert(&mut self, lpn: Lpn) -> Option<Lpn> {
        if self.touch(lpn) {
            return None;
        }
        let evicted = if self.is_full() { self.pop_least_recent() } else { None };
        let slot = if let Some(slot) = self.free_slots.pop() {
            self.nodes[slot] = Node { lpn, prev: NIL, next: NIL };
            slot
        } else {
            self.nodes.push(Node { lpn, prev: NIL, next: NIL });
            self.nodes.len() - 1
        };
        self.index.insert(lpn, slot);
        self.attach_front(slot);
        evicted
    }

    /// Removes and returns the least recently used entry.
    pub fn pop_least_recent(&mut self) -> Option<Lpn> {
        let slot = self.tail;
        if slot == NIL {
            return None;
        }
        let lpn = self.nodes[slot].lpn;
        self.remove(lpn);
        Some(lpn)
    }

    /// Removes `lpn` from the list. Returns `true` if it was present.
    pub fn remove(&mut self, lpn: Lpn) -> bool {
        let Some(slot) = self.index.remove(&lpn) else { return false };
        self.detach(slot);
        self.free_slots.push(slot);
        true
    }

    /// Iterates from most recently used to least recently used.
    pub fn iter(&self) -> Iter<'_> {
        Iter { list: self, slot: self.head }
    }
}

/// Iterator over an [`LruList`] from most to least recently used.
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    list: &'a LruList,
    slot: usize,
}

impl<'a> Iterator for Iter<'a> {
    type Item = Lpn;

    fn next(&mut self) -> Option<Lpn> {
        if self.slot == NIL {
            return None;
        }
        let node = &self.list.nodes[self.slot];
        self.slot = node.next;
        Some(node.lpn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_touch_evict_cycle() {
        let mut lru = LruList::new(3);
        assert!(lru.is_empty());
        assert_eq!(lru.insert(Lpn(1)), None);
        assert_eq!(lru.insert(Lpn(2)), None);
        assert_eq!(lru.insert(Lpn(3)), None);
        assert!(lru.is_full());
        assert_eq!(lru.least_recent(), Some(Lpn(1)));
        assert!(lru.touch(Lpn(1)));
        assert_eq!(lru.least_recent(), Some(Lpn(2)));
        assert_eq!(lru.insert(Lpn(4)), Some(Lpn(2)));
        assert_eq!(lru.len(), 3);
        assert!(!lru.contains(Lpn(2)));
    }

    #[test]
    fn reinserting_existing_entry_only_touches() {
        let mut lru = LruList::new(2);
        lru.insert(Lpn(1));
        lru.insert(Lpn(2));
        assert_eq!(lru.insert(Lpn(1)), None);
        assert_eq!(lru.most_recent(), Some(Lpn(1)));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn remove_and_slot_reuse() {
        let mut lru = LruList::new(3);
        lru.insert(Lpn(1));
        lru.insert(Lpn(2));
        lru.insert(Lpn(3));
        assert!(lru.remove(Lpn(2)));
        assert!(!lru.remove(Lpn(2)));
        assert_eq!(lru.len(), 2);
        lru.insert(Lpn(4));
        let order: Vec<_> = lru.iter().collect();
        assert_eq!(order, vec![Lpn(4), Lpn(3), Lpn(1)]);
    }

    #[test]
    fn iteration_order_is_recency_order() {
        let mut lru = LruList::new(4);
        for lpn in [10, 20, 30, 40] {
            lru.insert(Lpn(lpn));
        }
        lru.touch(Lpn(20));
        let order: Vec<_> = lru.iter().collect();
        assert_eq!(order, vec![Lpn(20), Lpn(40), Lpn(30), Lpn(10)]);
    }

    #[test]
    fn pop_least_recent_drains_in_order() {
        let mut lru = LruList::new(3);
        for lpn in [1, 2, 3] {
            lru.insert(Lpn(lpn));
        }
        assert_eq!(lru.pop_least_recent(), Some(Lpn(1)));
        assert_eq!(lru.pop_least_recent(), Some(Lpn(2)));
        assert_eq!(lru.pop_least_recent(), Some(Lpn(3)));
        assert_eq!(lru.pop_least_recent(), None);
        assert!(lru.is_empty());
    }

    #[test]
    fn touch_of_absent_entry_is_false() {
        let mut lru = LruList::new(2);
        assert!(!lru.touch(Lpn(5)));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = LruList::new(0);
    }

    #[test]
    fn capacity_one_always_holds_most_recent() {
        let mut lru = LruList::new(1);
        assert_eq!(lru.insert(Lpn(1)), None);
        assert_eq!(lru.insert(Lpn(2)), Some(Lpn(1)));
        assert_eq!(lru.most_recent(), Some(Lpn(2)));
        assert_eq!(lru.least_recent(), Some(Lpn(2)));
    }
}
