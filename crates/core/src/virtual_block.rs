//! The virtual-block concept (paper §3.3).
//!
//! A physical 3D charge-trap block contains pages of widely different access speed.
//! To let the FTL allocate "fast space" and "slow space" separately without ever
//! mixing hot and cold data in one physical block, each physical block is divided
//! into `v` **virtual blocks**: groups of adjacent pages with similar access speed.
//! With the paper's default of `v = 2`, physical block *n* yields virtual block *2n*
//! (the slow top half) and virtual block *2n + 1* (the fast bottom half).

use std::fmt;
use std::ops::Range;

use vflash_nand::{BlockAddr, NandConfig, PageId, SpeedClass};

/// Identifier of a virtual block: `physical_flat_index * v + class`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtualBlockId(pub usize);

impl fmt::Display for VirtualBlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VB{}", self.0)
    }
}

/// One virtual block: a speed-homogeneous slice of a physical block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VirtualBlock {
    id: VirtualBlockId,
    physical: BlockAddr,
    class: SpeedClass,
    pages: (usize, usize),
}

impl VirtualBlock {
    /// The virtual block's identifier.
    pub const fn id(&self) -> VirtualBlockId {
        self.id
    }

    /// The physical block this virtual block is carved out of.
    pub const fn physical(&self) -> BlockAddr {
        self.physical
    }

    /// The speed class of the pages in this virtual block (0 = slowest).
    pub const fn class(&self) -> SpeedClass {
        self.class
    }

    /// The in-block page indices covered by this virtual block.
    pub const fn page_range(&self) -> Range<usize> {
        self.pages.0..self.pages.1
    }

    /// Number of pages in this virtual block.
    pub const fn len(&self) -> usize {
        self.pages.1 - self.pages.0
    }

    /// Whether the virtual block covers zero pages (possible only for degenerate
    /// geometries where a block has fewer pages than virtual blocks).
    pub const fn is_empty(&self) -> bool {
        self.pages.0 == self.pages.1
    }
}

/// Geometry helper mapping between physical pages/blocks and virtual blocks.
///
/// # Example
///
/// ```
/// use vflash_nand::{BlockAddr, ChipId, NandConfig, PageId};
/// use vflash_ppb::VirtualBlockTable;
///
/// # fn main() -> Result<(), vflash_nand::NandError> {
/// let config = NandConfig::builder()
///     .chips(1)
///     .blocks_per_chip(4)
///     .pages_per_block(8)
///     .build()?;
/// let table = VirtualBlockTable::new(&config, 2);
/// let block = BlockAddr::new(ChipId(0), 1);
/// let slow = table.virtual_blocks_of(block)[0];
/// let fast = table.virtual_blocks_of(block)[1];
/// assert_eq!(slow.page_range(), 0..4);
/// assert_eq!(fast.page_range(), 4..8);
/// assert_eq!(table.virtual_block_of_page(block, PageId(6)).id(), fast.id());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VirtualBlockTable {
    pages_per_block: usize,
    blocks_per_chip: usize,
    per_block: usize,
    boundaries: Vec<usize>,
}

impl VirtualBlockTable {
    /// Builds the table for a device geometry and a number of virtual blocks per
    /// physical block.
    ///
    /// # Panics
    ///
    /// Panics if `per_block` is zero.
    pub fn new(config: &NandConfig, per_block: usize) -> Self {
        assert!(per_block > 0, "per_block must be at least 1");
        let pages = config.pages_per_block();
        let group = pages.div_ceil(per_block);
        let mut boundaries = Vec::with_capacity(per_block + 1);
        for class in 0..per_block {
            boundaries.push((class * group).min(pages));
        }
        boundaries.push(pages);
        VirtualBlockTable {
            pages_per_block: pages,
            blocks_per_chip: config.blocks_per_chip(),
            per_block,
            boundaries,
        }
    }

    /// Number of virtual blocks per physical block.
    pub fn per_block(&self) -> usize {
        self.per_block
    }

    /// The first page index of speed class `class` within any block.
    ///
    /// # Panics
    ///
    /// Panics if `class >= per_block`.
    pub fn class_start(&self, class: usize) -> usize {
        self.boundaries[class]
    }

    /// The page range of speed class `class` within any block.
    pub fn class_range(&self, class: usize) -> Range<usize> {
        self.boundaries[class]..self.boundaries[class + 1]
    }

    /// The speed class of an in-block page index.
    pub fn class_of_page(&self, page: PageId) -> SpeedClass {
        SpeedClass::of(page, self.pages_per_block, self.per_block)
    }

    /// All virtual blocks carved out of `block`, ordered slow to fast.
    pub fn virtual_blocks_of(&self, block: BlockAddr) -> Vec<VirtualBlock> {
        let flat = block.flat_index(self.blocks_per_chip);
        (0..self.per_block)
            .map(|class| VirtualBlock {
                id: VirtualBlockId(flat * self.per_block + class),
                physical: block,
                class: SpeedClass(class),
                pages: (self.boundaries[class], self.boundaries[class + 1]),
            })
            .collect()
    }

    /// The virtual block containing `page` of `block`.
    pub fn virtual_block_of_page(&self, block: BlockAddr, page: PageId) -> VirtualBlock {
        let class = self.class_of_page(page);
        self.virtual_blocks_of(block)[class.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vflash_nand::ChipId;

    fn config(pages: usize) -> NandConfig {
        NandConfig::builder()
            .chips(2)
            .blocks_per_chip(4)
            .pages_per_block(pages)
            .build()
            .unwrap()
    }

    #[test]
    fn two_way_split_matches_paper_numbering() {
        let table = VirtualBlockTable::new(&config(8), 2);
        let block_n = BlockAddr::new(ChipId(0), 3); // flat index 3
        let vbs = table.virtual_blocks_of(block_n);
        assert_eq!(vbs.len(), 2);
        assert_eq!(vbs[0].id(), VirtualBlockId(6)); // 2n
        assert_eq!(vbs[1].id(), VirtualBlockId(7)); // 2n + 1
        assert_eq!(vbs[0].page_range(), 0..4);
        assert_eq!(vbs[1].page_range(), 4..8);
        assert_eq!(vbs[0].class(), SpeedClass(0));
        assert!(vbs[1].class() > vbs[0].class());
        assert_eq!(vbs[0].len(), 4);
        assert_eq!(vbs[0].physical(), block_n);
    }

    #[test]
    fn four_way_split_covers_all_pages_without_overlap() {
        let table = VirtualBlockTable::new(&config(10), 4);
        let block = BlockAddr::new(ChipId(1), 0);
        let vbs = table.virtual_blocks_of(block);
        assert_eq!(vbs.len(), 4);
        let covered: usize = vbs.iter().map(VirtualBlock::len).sum();
        assert_eq!(covered, 10);
        for pair in vbs.windows(2) {
            assert_eq!(pair[0].page_range().end, pair[1].page_range().start);
        }
    }

    #[test]
    fn page_lookup_matches_ranges() {
        let table = VirtualBlockTable::new(&config(8), 2);
        let block = BlockAddr::new(ChipId(0), 0);
        for page in 0..8 {
            let vb = table.virtual_block_of_page(block, PageId(page));
            assert!(vb.page_range().contains(&page));
        }
        assert_eq!(table.class_of_page(PageId(0)), SpeedClass(0));
        assert_eq!(table.class_of_page(PageId(7)), SpeedClass(1));
    }

    #[test]
    fn class_ranges_partition_the_block() {
        let table = VirtualBlockTable::new(&config(384), 2);
        assert_eq!(table.class_range(0), 0..192);
        assert_eq!(table.class_range(1), 192..384);
        assert_eq!(table.class_start(1), 192);
        assert_eq!(table.per_block(), 2);
    }

    #[test]
    fn virtual_block_ids_are_globally_unique() {
        let table = VirtualBlockTable::new(&config(8), 2);
        let mut ids = Vec::new();
        for chip in 0..2 {
            for block in 0..4 {
                for vb in table.virtual_blocks_of(BlockAddr::new(ChipId(chip), block)) {
                    ids.push(vb.id());
                }
            }
        }
        let total = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), total);
    }
}
