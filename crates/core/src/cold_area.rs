//! The cold data area: an access-frequency table for cold and icy-cold entries.

use std::collections::BTreeMap;

use vflash_ftl::fx::FxHashMap;
use vflash_ftl::Lpn;

use crate::hotness::Hotness;

/// Where one tracked entry lives: its clamped read count (= bucket index) and its
/// position inside that bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    count: u32,
    pos: usize,
}

/// Cold-area bookkeeping (paper Figure 11).
///
/// Each tracked entry records how many times it has been re-read since it entered the
/// cold area. Entries with at least `promote_reads` recorded reads are considered
/// [`Hotness::Cold`] (write-once-read-**many**, worth serving from fast pages);
/// entries below the threshold — and entries not tracked at all — are
/// [`Hotness::IcyCold`].
///
/// The table is capacity-bounded: when it overflows, a least-read entry is dropped,
/// which implicitly demotes it to icy-cold ("demote if full").
///
/// # Complexity
///
/// The table sits on the host write path and its capacity scales with the logical
/// address space, so every operation — including overflow eviction — must be O(1).
/// Entries are therefore kept in per-read-count buckets: read counts are clamped to
/// the promotion threshold (beyond it the level no longer changes), bucket moves on
/// reads are position-mapped swaps, and eviction pops from the lowest occupied
/// bucket, choosing an arbitrary but deterministic least-read victim. Only occupied
/// buckets are stored, so memory stays O(entries) and eviction costs
/// O(log occupied-buckets) no matter how large the promotion threshold is.
///
/// # Example
///
/// ```
/// use vflash_ftl::Lpn;
/// use vflash_ppb::{ColdArea, Hotness};
///
/// let mut area = ColdArea::new(64, 1);
/// area.on_write(Lpn(5));
/// assert_eq!(area.level_of(Lpn(5)), Some(Hotness::IcyCold));
/// area.on_read(Lpn(5));
/// assert_eq!(area.level_of(Lpn(5)), Some(Hotness::Cold));
/// ```
///
/// Equality is structural and includes the bucket order: two tables tracking the
/// same counts but built by different operation histories evict different victims
/// on overflow, so they are genuinely different states and compare unequal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColdArea {
    /// Keyed by the deterministic [`fx`](vflash_ftl::fx) hasher: the table is
    /// probed on every host write and read, where SipHash would cost more
    /// than the bucket operation. Eviction order never depends on this map's
    /// iteration order (it comes from `buckets`), so the hash choice cannot
    /// affect simulated behaviour.
    slots: FxHashMap<Lpn, Slot>,
    /// `buckets[count]` holds every entry whose clamped read count is `count`.
    /// Empty buckets are removed, so the first entry is always the lowest occupied
    /// count (the eviction source).
    buckets: BTreeMap<u32, Vec<Lpn>>,
    capacity: usize,
    promote_reads: u32,
}

impl ColdArea {
    /// Creates the cold area with the given table capacity and promotion threshold.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `promote_reads` is zero.
    pub fn new(capacity: usize, promote_reads: u32) -> Self {
        assert!(capacity > 0, "cold table capacity must be positive");
        assert!(promote_reads > 0, "promotion threshold must be positive");
        ColdArea {
            slots: FxHashMap::with_capacity_and_hasher(capacity.min(1024), Default::default()),
            buckets: BTreeMap::new(),
            capacity,
            promote_reads,
        }
    }

    /// Number of entries currently tracked.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether `lpn` is tracked.
    pub fn contains(&self, lpn: Lpn) -> bool {
        self.slots.contains_key(&lpn)
    }

    /// The hotness level the cold area assigns to `lpn`, if tracked. Untracked LPNs
    /// are treated as icy-cold by the caller.
    pub fn level_of(&self, lpn: Lpn) -> Option<Hotness> {
        self.slots.get(&lpn).map(|slot| {
            if slot.count >= self.promote_reads {
                Hotness::Cold
            } else {
                Hotness::IcyCold
            }
        })
    }

    /// Number of recorded reads for `lpn`, clamped to the promotion threshold (more
    /// reads no longer change the entry's level, so they are not counted).
    pub fn read_count(&self, lpn: Lpn) -> u32 {
        self.slots.get(&lpn).map(|slot| slot.count).unwrap_or(0)
    }

    /// Starts (or restarts) tracking `lpn` after a cold-classified write. The read
    /// counter resets because a rewrite produces a new version whose re-read behaviour
    /// is yet unknown.
    pub fn on_write(&mut self, lpn: Lpn) {
        self.evict_if_needed_for(lpn);
        self.set_count(lpn, 0);
    }

    /// Inserts `lpn` with an initial read credit, used when the hot area demotes an
    /// entry (recently hot data is usually still re-read, so it enters as cold rather
    /// than icy-cold).
    pub fn insert_demoted(&mut self, lpn: Lpn) {
        self.evict_if_needed_for(lpn);
        self.set_count(lpn, self.promote_reads);
    }

    /// Records a read of `lpn` if it is tracked. Returns the new level, or `None` if
    /// the LPN is not tracked by the cold area.
    pub fn on_read(&mut self, lpn: Lpn) -> Option<Hotness> {
        let count = self.slots.get(&lpn)?.count;
        let bumped = count.saturating_add(1).min(self.promote_reads);
        if bumped != count {
            self.set_count(lpn, bumped);
        }
        Some(if bumped >= self.promote_reads { Hotness::Cold } else { Hotness::IcyCold })
    }

    /// Stops tracking `lpn` (used when it is re-classified hot). Returns `true` if it
    /// was tracked.
    pub fn remove(&mut self, lpn: Lpn) -> bool {
        let Some(slot) = self.slots.remove(&lpn) else { return false };
        self.detach(lpn, slot);
        true
    }

    /// Removes `lpn` from its bucket (the map entry is handled by the caller).
    fn detach(&mut self, lpn: Lpn, slot: Slot) {
        let bucket = self.buckets.get_mut(&slot.count).expect("tracked entries have a bucket");
        debug_assert_eq!(bucket[slot.pos], lpn);
        bucket.swap_remove(slot.pos);
        if let Some(&moved) = bucket.get(slot.pos) {
            self.slots.get_mut(&moved).expect("bucket entries are tracked").pos = slot.pos;
        } else if bucket.is_empty() {
            self.buckets.remove(&slot.count);
        }
    }

    /// Inserts `lpn` with the given clamped count, or moves it to that bucket.
    fn set_count(&mut self, lpn: Lpn, count: u32) {
        if let Some(slot) = self.slots.get(&lpn).copied() {
            if slot.count == count {
                return;
            }
            self.detach(lpn, slot);
        }
        let bucket = self.buckets.entry(count).or_default();
        bucket.push(lpn);
        self.slots.insert(lpn, Slot { count, pos: bucket.len() - 1 });
    }

    fn evict_if_needed_for(&mut self, lpn: Lpn) {
        if self.slots.len() < self.capacity || self.slots.contains_key(&lpn) {
            return;
        }
        // Drop a least-read entry: it is the best icy-cold candidate and losing its
        // history is harmless (untracked entries are icy-cold anyway). Buckets are
        // never left empty, so the first one holds the lowest read count.
        let Some((&count, bucket)) = self.buckets.iter_mut().next() else { return };
        let victim = bucket.pop().expect("buckets are never left empty");
        if bucket.is_empty() {
            self.buckets.remove(&count);
        }
        self.slots.remove(&victim);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_enter_as_icy_cold() {
        let mut area = ColdArea::new(16, 1);
        area.on_write(Lpn(1));
        assert_eq!(area.level_of(Lpn(1)), Some(Hotness::IcyCold));
        assert_eq!(area.read_count(Lpn(1)), 0);
        assert!(area.contains(Lpn(1)));
        assert_eq!(area.len(), 1);
    }

    #[test]
    fn reads_promote_to_cold_at_the_threshold() {
        let mut area = ColdArea::new(16, 2);
        area.on_write(Lpn(1));
        assert_eq!(area.on_read(Lpn(1)), Some(Hotness::IcyCold));
        assert_eq!(area.on_read(Lpn(1)), Some(Hotness::Cold));
        assert_eq!(area.level_of(Lpn(1)), Some(Hotness::Cold));
    }

    #[test]
    fn reads_of_untracked_entries_return_none() {
        let mut area = ColdArea::new(16, 1);
        assert_eq!(area.on_read(Lpn(7)), None);
        assert_eq!(area.level_of(Lpn(7)), None);
    }

    #[test]
    fn rewrites_reset_the_read_history() {
        let mut area = ColdArea::new(16, 1);
        area.on_write(Lpn(1));
        area.on_read(Lpn(1));
        assert_eq!(area.level_of(Lpn(1)), Some(Hotness::Cold));
        area.on_write(Lpn(1));
        assert_eq!(area.level_of(Lpn(1)), Some(Hotness::IcyCold));
    }

    #[test]
    fn demoted_entries_enter_as_cold() {
        let mut area = ColdArea::new(16, 2);
        area.insert_demoted(Lpn(3));
        assert_eq!(area.level_of(Lpn(3)), Some(Hotness::Cold));
    }

    #[test]
    fn overflow_evicts_a_least_read_entry() {
        let mut area = ColdArea::new(2, 1);
        area.on_write(Lpn(1));
        area.on_write(Lpn(2));
        area.on_read(Lpn(1));
        // Inserting a third entry evicts LPN2 (fewest reads), not LPN1.
        area.on_write(Lpn(3));
        assert!(area.contains(Lpn(1)));
        assert!(!area.contains(Lpn(2)));
        assert!(area.contains(Lpn(3)));
        assert_eq!(area.len(), 2);
    }

    #[test]
    fn rewriting_tracked_entry_at_capacity_does_not_evict_others() {
        let mut area = ColdArea::new(2, 1);
        area.on_write(Lpn(1));
        area.on_write(Lpn(2));
        area.on_write(Lpn(2));
        assert!(area.contains(Lpn(1)));
        assert!(area.contains(Lpn(2)));
    }

    #[test]
    fn remove_untracks() {
        let mut area = ColdArea::new(4, 1);
        area.on_write(Lpn(1));
        assert!(area.remove(Lpn(1)));
        assert!(!area.remove(Lpn(1)));
        assert!(area.is_empty());
    }

    #[test]
    fn read_counts_clamp_at_the_promotion_threshold() {
        let mut area = ColdArea::new(4, 2);
        area.on_write(Lpn(1));
        for _ in 0..10 {
            area.on_read(Lpn(1));
        }
        assert_eq!(area.read_count(Lpn(1)), 2);
        assert_eq!(area.level_of(Lpn(1)), Some(Hotness::Cold));
    }

    #[test]
    fn eviction_prefers_lower_buckets_even_after_bucket_churn() {
        let mut area = ColdArea::new(3, 2);
        area.on_write(Lpn(1));
        area.on_write(Lpn(2));
        area.on_write(Lpn(3));
        // LPN1 and LPN3 gain reads; LPN2 stays at zero and must be the victim.
        area.on_read(Lpn(1));
        area.on_read(Lpn(3));
        area.on_read(Lpn(3));
        area.on_write(Lpn(4));
        assert!(!area.contains(Lpn(2)));
        assert!(area.contains(Lpn(1)));
        assert!(area.contains(Lpn(3)));
        assert!(area.contains(Lpn(4)));
    }

    #[test]
    fn bucket_positions_stay_consistent_under_interleaved_removal() {
        let mut area = ColdArea::new(8, 1);
        for lpn in 0..6 {
            area.on_write(Lpn(lpn));
        }
        // Remove from the middle of the zero bucket, then keep operating on the
        // entries whose positions were patched by the swap_remove.
        assert!(area.remove(Lpn(2)));
        assert!(area.remove(Lpn(0)));
        for lpn in [1u64, 3, 4, 5] {
            assert_eq!(area.on_read(Lpn(lpn)), Some(Hotness::Cold), "lpn {lpn}");
        }
        assert_eq!(area.len(), 4);
    }

    /// The bucketed table behaves exactly like a naive map with clamped counts.
    #[test]
    fn matches_a_naive_model_under_random_ops() {
        use std::collections::HashMap;
        let capacity = 8usize;
        let promote = 2u32;
        let mut area = ColdArea::new(capacity, promote);
        let mut model: HashMap<u64, u32> = HashMap::new();
        let mut state = 0x1234_5678_u64;
        for _ in 0..4_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let lpn = (state >> 33) % 12;
            match state % 4 {
                0 => {
                    if model.len() >= capacity && !model.contains_key(&lpn) {
                        let min = model.values().min().copied().unwrap();
                        // The model cannot predict *which* least-read entry the
                        // bucketed table drops, only that one of them goes.
                        area.on_write(Lpn(lpn));
                        let dropped: Vec<u64> = model
                            .keys()
                            .filter(|k| !area.contains(Lpn(**k)))
                            .copied()
                            .collect();
                        assert_eq!(dropped.len(), 1);
                        assert_eq!(model[&dropped[0]], min, "evicted a non-minimal entry");
                        model.remove(&dropped[0]);
                        model.insert(lpn, 0);
                    } else {
                        area.on_write(Lpn(lpn));
                        model.insert(lpn, 0);
                    }
                }
                1 => {
                    area.on_read(Lpn(lpn));
                    if let Some(count) = model.get_mut(&lpn) {
                        *count = (*count + 1).min(promote);
                    }
                }
                2 => {
                    assert_eq!(area.remove(Lpn(lpn)), model.remove(&lpn).is_some());
                }
                _ => {
                    assert_eq!(area.contains(Lpn(lpn)), model.contains_key(&lpn));
                }
            }
            assert_eq!(area.len(), model.len());
            for (&lpn, &count) in &model {
                assert_eq!(area.read_count(Lpn(lpn)), count, "count of {lpn}");
            }
        }
    }
}
