//! The cold data area: an access-frequency table for cold and icy-cold entries.

use std::collections::HashMap;

use vflash_ftl::Lpn;

use crate::hotness::Hotness;

/// Cold-area bookkeeping (paper Figure 11).
///
/// Each tracked entry records how many times it has been re-read since it entered the
/// cold area. Entries with at least `promote_reads` recorded reads are considered
/// [`Hotness::Cold`] (write-once-read-**many**, worth serving from fast pages);
/// entries below the threshold — and entries not tracked at all — are
/// [`Hotness::IcyCold`].
///
/// The table is capacity-bounded: when it overflows, the least-read entry is dropped,
/// which implicitly demotes it to icy-cold ("demote if full").
///
/// # Example
///
/// ```
/// use vflash_ftl::Lpn;
/// use vflash_ppb::{ColdArea, Hotness};
///
/// let mut area = ColdArea::new(64, 1);
/// area.on_write(Lpn(5));
/// assert_eq!(area.level_of(Lpn(5)), Some(Hotness::IcyCold));
/// area.on_read(Lpn(5));
/// assert_eq!(area.level_of(Lpn(5)), Some(Hotness::Cold));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColdArea {
    reads: HashMap<Lpn, u32>,
    capacity: usize,
    promote_reads: u32,
}

impl ColdArea {
    /// Creates the cold area with the given table capacity and promotion threshold.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `promote_reads` is zero.
    pub fn new(capacity: usize, promote_reads: u32) -> Self {
        assert!(capacity > 0, "cold table capacity must be positive");
        assert!(promote_reads > 0, "promotion threshold must be positive");
        ColdArea { reads: HashMap::with_capacity(capacity.min(1024)), capacity, promote_reads }
    }

    /// Number of entries currently tracked.
    pub fn len(&self) -> usize {
        self.reads.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty()
    }

    /// Whether `lpn` is tracked.
    pub fn contains(&self, lpn: Lpn) -> bool {
        self.reads.contains_key(&lpn)
    }

    /// The hotness level the cold area assigns to `lpn`, if tracked. Untracked LPNs
    /// are treated as icy-cold by the caller.
    pub fn level_of(&self, lpn: Lpn) -> Option<Hotness> {
        self.reads.get(&lpn).map(|&reads| {
            if reads >= self.promote_reads {
                Hotness::Cold
            } else {
                Hotness::IcyCold
            }
        })
    }

    /// Number of recorded reads for `lpn`.
    pub fn read_count(&self, lpn: Lpn) -> u32 {
        self.reads.get(&lpn).copied().unwrap_or(0)
    }

    /// Starts (or restarts) tracking `lpn` after a cold-classified write. The read
    /// counter resets because a rewrite produces a new version whose re-read behaviour
    /// is yet unknown.
    pub fn on_write(&mut self, lpn: Lpn) {
        self.evict_if_needed_for(lpn);
        self.reads.insert(lpn, 0);
    }

    /// Inserts `lpn` with an initial read credit, used when the hot area demotes an
    /// entry (recently hot data is usually still re-read, so it enters as cold rather
    /// than icy-cold).
    pub fn insert_demoted(&mut self, lpn: Lpn) {
        self.evict_if_needed_for(lpn);
        self.reads.insert(lpn, self.promote_reads);
    }

    /// Records a read of `lpn` if it is tracked. Returns the new level, or `None` if
    /// the LPN is not tracked by the cold area.
    pub fn on_read(&mut self, lpn: Lpn) -> Option<Hotness> {
        let reads = self.reads.get_mut(&lpn)?;
        *reads = reads.saturating_add(1);
        let level =
            if *reads >= self.promote_reads { Hotness::Cold } else { Hotness::IcyCold };
        Some(level)
    }

    /// Stops tracking `lpn` (used when it is re-classified hot). Returns `true` if it
    /// was tracked.
    pub fn remove(&mut self, lpn: Lpn) -> bool {
        self.reads.remove(&lpn).is_some()
    }

    fn evict_if_needed_for(&mut self, lpn: Lpn) {
        if self.reads.len() < self.capacity || self.reads.contains_key(&lpn) {
            return;
        }
        // Drop the least-read entry: it is the best icy-cold candidate and losing its
        // history is harmless (untracked entries are icy-cold anyway).
        if let Some((&victim, _)) = self.reads.iter().min_by_key(|(lpn, reads)| (**reads, lpn.0)) {
            self.reads.remove(&victim);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_enter_as_icy_cold() {
        let mut area = ColdArea::new(16, 1);
        area.on_write(Lpn(1));
        assert_eq!(area.level_of(Lpn(1)), Some(Hotness::IcyCold));
        assert_eq!(area.read_count(Lpn(1)), 0);
        assert!(area.contains(Lpn(1)));
        assert_eq!(area.len(), 1);
    }

    #[test]
    fn reads_promote_to_cold_at_the_threshold() {
        let mut area = ColdArea::new(16, 2);
        area.on_write(Lpn(1));
        assert_eq!(area.on_read(Lpn(1)), Some(Hotness::IcyCold));
        assert_eq!(area.on_read(Lpn(1)), Some(Hotness::Cold));
        assert_eq!(area.level_of(Lpn(1)), Some(Hotness::Cold));
    }

    #[test]
    fn reads_of_untracked_entries_return_none() {
        let mut area = ColdArea::new(16, 1);
        assert_eq!(area.on_read(Lpn(7)), None);
        assert_eq!(area.level_of(Lpn(7)), None);
    }

    #[test]
    fn rewrites_reset_the_read_history() {
        let mut area = ColdArea::new(16, 1);
        area.on_write(Lpn(1));
        area.on_read(Lpn(1));
        assert_eq!(area.level_of(Lpn(1)), Some(Hotness::Cold));
        area.on_write(Lpn(1));
        assert_eq!(area.level_of(Lpn(1)), Some(Hotness::IcyCold));
    }

    #[test]
    fn demoted_entries_enter_as_cold() {
        let mut area = ColdArea::new(16, 2);
        area.insert_demoted(Lpn(3));
        assert_eq!(area.level_of(Lpn(3)), Some(Hotness::Cold));
    }

    #[test]
    fn overflow_evicts_the_least_read_entry() {
        let mut area = ColdArea::new(2, 1);
        area.on_write(Lpn(1));
        area.on_write(Lpn(2));
        area.on_read(Lpn(1));
        // Inserting a third entry evicts LPN2 (fewest reads), not LPN1.
        area.on_write(Lpn(3));
        assert!(area.contains(Lpn(1)));
        assert!(!area.contains(Lpn(2)));
        assert!(area.contains(Lpn(3)));
        assert_eq!(area.len(), 2);
    }

    #[test]
    fn rewriting_tracked_entry_at_capacity_does_not_evict_others() {
        let mut area = ColdArea::new(2, 1);
        area.on_write(Lpn(1));
        area.on_write(Lpn(2));
        area.on_write(Lpn(2));
        assert!(area.contains(Lpn(1)));
        assert!(area.contains(Lpn(2)));
    }

    #[test]
    fn remove_untracks() {
        let mut area = ColdArea::new(4, 1);
        area.on_write(Lpn(1));
        assert!(area.remove(Lpn(1)));
        assert!(!area.remove(Lpn(1)));
        assert!(area.is_empty());
    }
}
