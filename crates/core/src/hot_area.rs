//! The hot data area: two-level LRU tracking of hot and iron-hot entries.

use vflash_ftl::Lpn;

use crate::hotness::Hotness;
use crate::lru::LruList;

/// What happened when the hot area observed a read (paper Figure 10a).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromotionOutcome {
    /// The entry was not tracked by the hot area.
    NotTracked,
    /// The entry was already iron-hot; its recency was refreshed.
    AlreadyIronHot,
    /// The entry was promoted from hot to iron-hot.
    Promoted {
        /// An iron-hot entry demoted back to the hot list to make room, if the
        /// iron-hot list was full.
        demoted_to_hot: Option<Lpn>,
    },
}

/// Hot-area bookkeeping: a two-level LRU.
///
/// New hot data enters the **hot list**; a read while on the hot list promotes the
/// entry to the **iron-hot list** (the "re-accessed" signal of the paper). When the
/// iron-hot list is full its least recently used entry is demoted back to the head of
/// the hot list, and when the hot list is full its least recently used entry is
/// demoted out of the hot area entirely (the caller moves it to the cold area).
///
/// Promotion and demotion here are *bookkeeping only* — the data is moved to a page of
/// suitable speed later, on its next update or during garbage collection.
///
/// # Example
///
/// ```
/// use vflash_ftl::Lpn;
/// use vflash_ppb::{HotArea, Hotness, PromotionOutcome};
///
/// let mut area = HotArea::new(8, 8);
/// area.on_write(Lpn(1));
/// assert_eq!(area.level_of(Lpn(1)), Some(Hotness::Hot));
/// assert!(matches!(area.on_read(Lpn(1)), PromotionOutcome::Promoted { .. }));
/// assert_eq!(area.level_of(Lpn(1)), Some(Hotness::IronHot));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotArea {
    hot: LruList,
    iron_hot: LruList,
}

impl HotArea {
    /// Creates the hot area with the given list capacities.
    ///
    /// # Panics
    ///
    /// Panics if either capacity is zero.
    pub fn new(hot_capacity: usize, iron_hot_capacity: usize) -> Self {
        HotArea { hot: LruList::new(hot_capacity), iron_hot: LruList::new(iron_hot_capacity) }
    }

    /// Number of entries on the hot list.
    pub fn hot_len(&self) -> usize {
        self.hot.len()
    }

    /// Number of entries on the iron-hot list.
    pub fn iron_hot_len(&self) -> usize {
        self.iron_hot.len()
    }

    /// Whether the hot area tracks `lpn` at all.
    pub fn contains(&self, lpn: Lpn) -> bool {
        self.hot.contains(lpn) || self.iron_hot.contains(lpn)
    }

    /// The hotness level the hot area assigns to `lpn`, if tracked.
    pub fn level_of(&self, lpn: Lpn) -> Option<Hotness> {
        if self.iron_hot.contains(lpn) {
            Some(Hotness::IronHot)
        } else if self.hot.contains(lpn) {
            Some(Hotness::Hot)
        } else {
            None
        }
    }

    /// Records a host write of `lpn` that the first-stage classifier deemed hot.
    ///
    /// A new entry lands at the head of the hot list; an existing entry (hot or
    /// iron-hot) only has its recency refreshed. If the hot list overflows, the
    /// evicted LPN is returned so the caller can demote it to the cold area
    /// ("demote if full", Figure 6).
    pub fn on_write(&mut self, lpn: Lpn) -> Option<Lpn> {
        if self.iron_hot.contains(lpn) {
            self.iron_hot.touch(lpn);
            return None;
        }
        self.hot.insert(lpn)
    }

    /// Records a host read of `lpn`.
    ///
    /// A read of a hot-list entry is the "re-access" signal that promotes it to the
    /// iron-hot list. If the iron-hot list is full, its least recently used entry is
    /// demoted back to the head of the hot list (which may in turn evict a hot entry —
    /// that one is *not* returned here because it was just demoted for recency, so the
    /// caller treats it like any other hot-list eviction on the next write).
    pub fn on_read(&mut self, lpn: Lpn) -> PromotionOutcome {
        if self.iron_hot.contains(lpn) {
            self.iron_hot.touch(lpn);
            return PromotionOutcome::AlreadyIronHot;
        }
        if !self.hot.contains(lpn) {
            return PromotionOutcome::NotTracked;
        }
        self.hot.remove(lpn);
        let mut demoted_to_hot = None;
        if self.iron_hot.is_full() {
            if let Some(demoted) = self.iron_hot.pop_least_recent() {
                self.hot.insert(demoted);
                demoted_to_hot = Some(demoted);
            }
        }
        self.iron_hot.insert(lpn);
        PromotionOutcome::Promoted { demoted_to_hot }
    }

    /// Stops tracking `lpn` (used when a write is re-classified cold and the entry
    /// moves to the cold area). Returns `true` if it was tracked.
    pub fn remove(&mut self, lpn: Lpn) -> bool {
        let in_hot = self.hot.remove(lpn);
        let in_iron = self.iron_hot.remove(lpn);
        in_hot || in_iron
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_writes_enter_the_hot_list() {
        let mut area = HotArea::new(4, 4);
        assert_eq!(area.on_write(Lpn(1)), None);
        assert_eq!(area.level_of(Lpn(1)), Some(Hotness::Hot));
        assert_eq!(area.hot_len(), 1);
        assert_eq!(area.iron_hot_len(), 0);
        assert!(area.contains(Lpn(1)));
    }

    #[test]
    fn read_promotes_hot_entries_to_iron_hot() {
        let mut area = HotArea::new(4, 4);
        area.on_write(Lpn(1));
        assert_eq!(area.on_read(Lpn(1)), PromotionOutcome::Promoted { demoted_to_hot: None });
        assert_eq!(area.level_of(Lpn(1)), Some(Hotness::IronHot));
        assert_eq!(area.on_read(Lpn(1)), PromotionOutcome::AlreadyIronHot);
    }

    #[test]
    fn reads_of_untracked_entries_are_ignored() {
        let mut area = HotArea::new(4, 4);
        assert_eq!(area.on_read(Lpn(9)), PromotionOutcome::NotTracked);
    }

    #[test]
    fn full_iron_hot_list_demotes_lru_back_to_hot() {
        let mut area = HotArea::new(8, 2);
        for lpn in [1, 2, 3] {
            area.on_write(Lpn(lpn));
            area.on_read(Lpn(lpn));
        }
        // Promoting LPN3 overflowed the iron-hot list: LPN1 was demoted to hot.
        assert_eq!(area.level_of(Lpn(1)), Some(Hotness::Hot));
        assert_eq!(area.level_of(Lpn(2)), Some(Hotness::IronHot));
        assert_eq!(area.level_of(Lpn(3)), Some(Hotness::IronHot));
        assert_eq!(area.iron_hot_len(), 2);
    }

    #[test]
    fn full_hot_list_evicts_lru_towards_cold_area() {
        let mut area = HotArea::new(2, 2);
        assert_eq!(area.on_write(Lpn(1)), None);
        assert_eq!(area.on_write(Lpn(2)), None);
        assert_eq!(area.on_write(Lpn(3)), Some(Lpn(1)));
        assert!(!area.contains(Lpn(1)));
    }

    #[test]
    fn rewrites_refresh_recency_without_duplicating() {
        let mut area = HotArea::new(2, 2);
        area.on_write(Lpn(1));
        area.on_write(Lpn(2));
        area.on_write(Lpn(1));
        // LPN2 is now the LRU entry and gets evicted first.
        assert_eq!(area.on_write(Lpn(3)), Some(Lpn(2)));
        assert_eq!(area.hot_len(), 2);
    }

    #[test]
    fn writes_to_iron_hot_entries_keep_them_iron_hot() {
        let mut area = HotArea::new(4, 4);
        area.on_write(Lpn(1));
        area.on_read(Lpn(1));
        assert_eq!(area.on_write(Lpn(1)), None);
        assert_eq!(area.level_of(Lpn(1)), Some(Hotness::IronHot));
    }

    #[test]
    fn remove_untracks_from_either_list() {
        let mut area = HotArea::new(4, 4);
        area.on_write(Lpn(1));
        area.on_write(Lpn(2));
        area.on_read(Lpn(2));
        assert!(area.remove(Lpn(1)));
        assert!(area.remove(Lpn(2)));
        assert!(!area.remove(Lpn(3)));
        assert!(!area.contains(Lpn(1)));
        assert!(!area.contains(Lpn(2)));
    }
}
