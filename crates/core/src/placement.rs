//! Per-area write placement following the virtual-block allocation rules.
//!
//! Each data area (hot or cold) owns a set of physical blocks. Inside a block, pages
//! must be programmed in layer order, so a block naturally fills its slow virtual
//! block first and its fast virtual block afterwards. The [`AreaWriter`] tracks, per
//! speed class, which blocks currently have their write pointer inside that class —
//! these are the paper's *hot / iron-hot* (or *icy-cold / cold*) virtual-block lists —
//! and implements the allocation constraints of Figure 8 and Algorithm 1:
//!
//! * the area keeps a small, bounded set of physical blocks open at once (Figure 8
//!   shows two: one whose slow virtual block is filling and one whose fast virtual
//!   block is filling), which is what lets hot data stream into slow pages while
//!   iron-hot data streams into fast pages of a *different* block,
//! * a write that wants a class with no open virtual block is **diverted** to another
//!   class of the same area whenever the open-block budget is exhausted, rather than
//!   opening yet another block, so physical blocks never end up half-full and the
//!   hot/cold separation between blocks is preserved (Algorithm 1).

use std::collections::VecDeque;

use vflash_ftl::FtlError;
use vflash_nand::{BlockAddr, NandDevice};

use crate::virtual_block::VirtualBlockTable;

/// Write placement state for one data area.
///
/// `open[c]` holds the blocks whose next programmable page currently lies in speed
/// class `c` (class 0 = slow top layers). Blocks enter at class 0 when allocated,
/// advance through the classes as they fill, and leave the writer when full.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AreaWriter {
    name: &'static str,
    open: Vec<VecDeque<BlockAddr>>,
    max_open_blocks: usize,
    /// Write lanes the host keeps in flight (1 = unstriped). With `stripe > 1`
    /// the writer opens fresh blocks until that many are open at once, so the
    /// front-rotation in [`AreaWriter::after_program`] spreads consecutive
    /// programs across blocks on different chips.
    stripe: usize,
    blocks_owned: u64,
}

impl AreaWriter {
    /// Creates an empty writer for an area divided into
    /// `virtual_blocks.per_block()` speed classes, keeping at most `max_open_blocks`
    /// physical blocks open at once (the paper's Figure 8 keeps two).
    ///
    /// # Panics
    ///
    /// Panics if `max_open_blocks` is zero.
    pub fn new(
        name: &'static str,
        virtual_blocks: &VirtualBlockTable,
        max_open_blocks: usize,
    ) -> Self {
        assert!(max_open_blocks > 0, "an area needs at least one open block");
        AreaWriter {
            name,
            open: vec![VecDeque::new(); virtual_blocks.per_block()],
            max_open_blocks,
            stripe: 1,
            blocks_owned: 0,
        }
    }

    /// Sets the write-stripe width: the writer keeps up to `lanes` blocks open
    /// (on top of the area's normal open-block budget) and rotates consecutive
    /// programs across them. `lanes == 1` restores the paper's unstriped
    /// placement exactly.
    pub fn set_stripe(&mut self, lanes: usize) {
        self.stripe = lanes.max(1);
    }

    /// The area name (for diagnostics).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Total physical blocks ever allocated to this area.
    pub fn blocks_owned(&self) -> u64 {
        self.blocks_owned
    }

    /// Blocks currently open for writing in this area (needed to exclude them from
    /// garbage-collection victim selection).
    pub fn open_blocks(&self) -> Vec<BlockAddr> {
        self.open.iter().flatten().copied().collect()
    }

    /// Number of classes tracked.
    pub fn classes(&self) -> usize {
        self.open.len()
    }

    fn class_of_write_pointer(
        device: &NandDevice,
        table: &VirtualBlockTable,
        block: BlockAddr,
    ) -> Option<usize> {
        let next = device.block(block).ok()?.next_page()?;
        Some(table.class_of_page(next).0)
    }

    /// Picks the block whose next free page should receive a write that wants speed
    /// class `desired`.
    ///
    /// Placement follows Figure 8 / Algorithm 1:
    ///
    /// 1. If a virtual block of the desired class is open, use it.
    /// 2. A *slow*-preferring write whose class has no open virtual block may open a
    ///    fresh physical block, as long as the area stays within its open-block
    ///    budget — this is what keeps a slow and a fast virtual block open
    ///    simultaneously (from different physical blocks) so hot and iron-hot data
    ///    actually end up on pages of different speed.
    /// 3. Otherwise the write is diverted to the nearest open class of the same area;
    ///    a new block is allocated only when nothing in the area is open.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::OutOfSpace`] if a new block is needed but the device's
    /// free pool is empty.
    pub fn target(
        &mut self,
        desired: usize,
        device: &mut NandDevice,
    ) -> Result<BlockAddr, FtlError> {
        let classes = self.open.len();
        debug_assert!(desired < classes, "desired class out of range");
        let total_open: usize = self.open.iter().map(VecDeque::len).sum();
        // The stripe widens the open-block budget by its extra lanes; at
        // stripe 1 this is exactly the configured budget.
        let budget = self.max_open_blocks + (self.stripe - 1);
        // Striped mode: open fresh blocks until the stripe's lanes are all
        // open. The round-robin free-list puts consecutive allocations on
        // different chips, and `after_program`'s front-rotation then spreads
        // consecutive programs across the lanes. At stripe 1 this fires only
        // when nothing at all is open, which is the unstriped behavior.
        if total_open < self.stripe {
            return self.allocate_block(device);
        }
        // Case 1: the desired class has an open virtual block.
        if let Some(&block) = self.open[desired].front() {
            return Ok(block);
        }
        // Case 2: slow-preferring writes may open a new block within the budget,
        // because a fresh block always starts programming at its slow virtual block.
        if desired == 0 && total_open < budget {
            return self.allocate_block(device);
        }
        // Case 3: divert to the nearest open class.
        let mut order: Vec<usize> = (0..classes).collect();
        order.sort_by_key(|&class| (class.abs_diff(desired), class));
        for class in order {
            if let Some(&block) = self.open[class].front() {
                return Ok(block);
            }
        }
        // Nothing open anywhere in the area: allocate a fresh physical block.
        self.allocate_block(device)
    }

    fn allocate_block(&mut self, device: &mut NandDevice) -> Result<BlockAddr, FtlError> {
        let fresh = device.allocate_block().ok_or(FtlError::OutOfSpace)?;
        self.blocks_owned += 1;
        self.open[0].push_back(fresh);
        Ok(fresh)
    }

    /// Updates the writer after a page of `block` has been programmed: the block is
    /// moved to the class its write pointer now lies in, or retired when full.
    pub fn after_program(
        &mut self,
        block: BlockAddr,
        device: &NandDevice,
        table: &VirtualBlockTable,
    ) {
        for class_queue in &mut self.open {
            if let Some(position) = class_queue.iter().position(|&open| open == block) {
                class_queue.remove(position);
                break;
            }
        }
        if let Some(class) = Self::class_of_write_pointer(device, table, block) {
            self.open[class].push_back(block);
        }
        // A full block (no next page) is simply dropped from the open lists; it now
        // waits for garbage collection, matching the virtual-block lifecycle.
    }

    /// Whether any open virtual block of class `class` has free space.
    pub fn has_open(&self, class: usize) -> bool {
        !self.open[class].is_empty()
    }

    /// Drops `block` from the open lists without waiting for it to fill — used when
    /// the device retires it as bad mid-stream. Returns whether it was open here.
    pub fn evict(&mut self, block: BlockAddr) -> bool {
        for class_queue in &mut self.open {
            if let Some(position) = class_queue.iter().position(|&open| open == block) {
                class_queue.remove(position);
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vflash_nand::{NandConfig, NandDevice};

    fn setup() -> (NandDevice, VirtualBlockTable) {
        let config = NandConfig::builder()
            .chips(1)
            .blocks_per_chip(8)
            .pages_per_block(8)
            .page_size_bytes(4096)
            .build()
            .unwrap();
        let device = NandDevice::new(config);
        let table = VirtualBlockTable::new(device.config(), 2);
        (device, table)
    }

    /// Programs one page via the writer, returning the block that received it.
    fn write_one(
        writer: &mut AreaWriter,
        desired: usize,
        device: &mut NandDevice,
        table: &VirtualBlockTable,
    ) -> BlockAddr {
        let block = writer.target(desired, device).unwrap();
        device.program_next(block).unwrap();
        writer.after_program(block, device, table);
        block
    }

    #[test]
    fn first_write_allocates_a_block_at_the_slow_class() {
        let (mut device, table) = setup();
        let mut writer = AreaWriter::new("hot", &table, 2);
        let block = write_one(&mut writer, 1, &mut device, &table);
        assert_eq!(writer.blocks_owned(), 1);
        // Even though the write wanted the fast class, the block starts at page 0.
        assert_eq!(device.block(block).unwrap().valid_pages(), 1);
        assert!(writer.has_open(0));
        assert!(!writer.has_open(1));
        assert_eq!(writer.name(), "hot");
    }

    #[test]
    fn block_advances_from_slow_class_to_fast_class() {
        let (mut device, table) = setup();
        let mut writer = AreaWriter::new("hot", &table, 2);
        // 4 slow writes fill the slow half of the 8-page block.
        for _ in 0..4 {
            write_one(&mut writer, 0, &mut device, &table);
        }
        assert!(!writer.has_open(0));
        assert!(writer.has_open(1));
        // A fast-preferring write now lands on the fast half of the same block.
        let block = write_one(&mut writer, 1, &mut device, &table);
        assert_eq!(writer.blocks_owned(), 1, "no extra block should be allocated");
        assert_eq!(device.block(block).unwrap().valid_pages(), 5);
    }

    #[test]
    fn pipeline_keeps_slow_and_fast_streams_on_different_blocks() {
        let (mut device, table) = setup();
        let mut writer = AreaWriter::new("hot", &table, 2);
        // Fill the slow half of the first block; it advances to the fast class.
        let mut first = None;
        for _ in 0..4 {
            first = Some(write_one(&mut writer, 0, &mut device, &table));
        }
        let first = first.unwrap();
        // The next slow-preferring write opens a second block (Figure 8, step 3)
        // instead of spilling into the fast half of the first.
        let second = write_one(&mut writer, 0, &mut device, &table);
        assert_ne!(first, second);
        assert_eq!(writer.blocks_owned(), 2);
        // Fast-preferring writes keep landing on the first block's fast half.
        let fast_target = write_one(&mut writer, 1, &mut device, &table);
        assert_eq!(fast_target, first);
        assert_eq!(writer.open_blocks().len(), 2);
    }

    #[test]
    fn single_open_block_budget_degenerates_to_sequential_fill() {
        let (mut device, table) = setup();
        let mut writer = AreaWriter::new("cold", &table, 1);
        for _ in 0..8 {
            write_one(&mut writer, 0, &mut device, &table);
        }
        assert!(writer.open_blocks().is_empty(), "full block must be retired");
        assert_eq!(writer.blocks_owned(), 1);
        write_one(&mut writer, 0, &mut device, &table);
        assert_eq!(writer.blocks_owned(), 2);
    }

    #[test]
    fn diversion_respects_the_open_block_budget() {
        let (mut device, table) = setup();
        let mut writer = AreaWriter::new("hot", &table, 1);
        // Fill the slow half so only the fast class is open.
        for _ in 0..4 {
            write_one(&mut writer, 0, &mut device, &table);
        }
        // With a budget of one open block, a slow-preferring write is diverted into
        // the fast half rather than opening a new physical block (Algorithm 1).
        let block = write_one(&mut writer, 0, &mut device, &table);
        assert_eq!(writer.blocks_owned(), 1);
        assert_eq!(device.block(block).unwrap().valid_pages(), 5);
    }

    #[test]
    fn fast_writes_divert_to_slow_pages_rather_than_allocating() {
        let (mut device, table) = setup();
        let mut writer = AreaWriter::new("hot", &table, 2);
        // Only a slow virtual block is open; an iron-hot write must use it
        // (Algorithm 1: "if Iron-hot list has no free space, divert to Hot VB").
        let first = write_one(&mut writer, 0, &mut device, &table);
        let diverted = write_one(&mut writer, 1, &mut device, &table);
        assert_eq!(first, diverted);
        assert_eq!(writer.blocks_owned(), 1);
    }

    #[test]
    fn out_of_space_is_reported() {
        let (mut device, table) = setup();
        while device.allocate_block().is_some() {}
        let mut writer = AreaWriter::new("hot", &table, 2);
        assert!(matches!(
            writer.target(0, &mut device),
            Err(FtlError::OutOfSpace)
        ));
    }

    #[test]
    fn four_class_blocks_walk_through_every_class() {
        let config = NandConfig::builder()
            .chips(1)
            .blocks_per_chip(4)
            .pages_per_block(8)
            .page_size_bytes(4096)
            .build()
            .unwrap();
        let mut device = NandDevice::new(config);
        let table = VirtualBlockTable::new(device.config(), 4);
        let mut writer = AreaWriter::new("hot", &table, 1);
        assert_eq!(writer.classes(), 4);
        // With a budget of one open block, eight fast-preferring writes walk the block
        // through every class until it is full and retired.
        for _ in 0..8 {
            write_one(&mut writer, 3, &mut device, &table);
        }
        assert_eq!(writer.blocks_owned(), 1);
        assert!(writer.open_blocks().is_empty());
    }

    #[test]
    fn evicted_blocks_leave_the_open_lists() {
        let (mut device, table) = setup();
        let mut writer = AreaWriter::new("hot", &table, 2);
        let block = write_one(&mut writer, 0, &mut device, &table);
        assert!(writer.has_open(0));
        assert!(writer.evict(block));
        assert!(writer.open_blocks().is_empty());
        assert!(!writer.evict(block), "a second evict is a no-op");
        // The next write allocates a replacement instead of reusing the evicted block.
        let replacement = write_one(&mut writer, 0, &mut device, &table);
        assert_ne!(block, replacement);
    }

    #[test]
    fn striped_writer_rotates_consecutive_programs_across_blocks() {
        let (mut device, table) = setup();
        let mut writer = AreaWriter::new("cold", &table, 2);
        writer.set_stripe(4);
        let targets: Vec<BlockAddr> = (0..8)
            .map(|_| write_one(&mut writer, 0, &mut device, &table))
            .collect();
        // The first four programs each open a fresh lane; the next four rotate
        // through the same lanes in order.
        let lanes: Vec<BlockAddr> = targets[..4].to_vec();
        assert_eq!(lanes.iter().collect::<std::collections::HashSet<_>>().len(), 4);
        assert_eq!(&targets[4..], &lanes[..]);
        assert_eq!(writer.blocks_owned(), 4);
        // Fast-preferring writes divert into the rotation rather than stalling
        // on a single lane.
        let diverted = write_one(&mut writer, 1, &mut device, &table);
        assert!(lanes.contains(&diverted));
    }

    #[test]
    fn stripe_of_one_is_the_unstriped_baseline() {
        let (mut unstriped_device, table) = setup();
        let (mut striped_device, _) = setup();
        let mut unstriped = AreaWriter::new("hot", &table, 2);
        let mut striped = AreaWriter::new("hot", &table, 2);
        striped.set_stripe(1);
        for write in 0..24 {
            let desired = usize::from(write % 3 == 0);
            let a = write_one(&mut unstriped, desired, &mut unstriped_device, &table);
            let b = write_one(&mut striped, desired, &mut striped_device, &table);
            assert_eq!(a, b, "write {write} diverged");
        }
        assert_eq!(unstriped.blocks_owned(), striped.blocks_owned());
    }

    #[test]
    #[should_panic(expected = "at least one open block")]
    fn zero_open_block_budget_rejected() {
        let (_, table) = setup();
        let _ = AreaWriter::new("hot", &table, 0);
    }
}
