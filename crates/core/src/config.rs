//! Configuration of the PPB strategy.

use vflash_ftl::{FtlConfig, FtlError};

/// Tunables for [`crate::PpbFtl`].
///
/// # Example
///
/// ```
/// use vflash_ppb::PpbConfig;
///
/// let config = PpbConfig { virtual_blocks_per_block: 4, ..PpbConfig::default() };
/// assert!(config.validate().is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PpbConfig {
    /// Base FTL parameters (over-provisioning, GC thresholds).
    pub ftl: FtlConfig,
    /// How many speed-homogeneous virtual blocks each physical block is divided into.
    /// The paper uses 2 (a slow half and a fast half) and notes that more groups trade
    /// finer placement against higher bookkeeping overhead.
    pub virtual_blocks_per_block: usize,
    /// Capacity of the hot-area *hot* LRU list as a fraction of the exported logical
    /// pages.
    pub hot_list_fraction: f64,
    /// Capacity of the hot-area *iron-hot* LRU list as a fraction of the exported
    /// logical pages.
    pub iron_hot_list_fraction: f64,
    /// Capacity of the cold-area access-frequency table as a fraction of the exported
    /// logical pages. Entries evicted from the table are implicitly icy-cold.
    pub cold_table_fraction: f64,
    /// Number of recorded reads after which a cold-area entry is promoted from
    /// icy-cold to cold.
    pub cold_promote_reads: u32,
    /// Maximum number of physical blocks each data area keeps open for writing at
    /// once. The paper's Figure 8 keeps two: one block filling its slow virtual block
    /// and one filling its fast virtual block, which is what lets hot and iron-hot
    /// (or icy-cold and cold) data land on pages of different speed simultaneously.
    pub max_open_blocks_per_area: usize,
}

impl Default for PpbConfig {
    fn default() -> Self {
        PpbConfig {
            ftl: FtlConfig::default(),
            virtual_blocks_per_block: 2,
            hot_list_fraction: 0.15,
            iron_hot_list_fraction: 0.15,
            cold_table_fraction: 0.30,
            cold_promote_reads: 1,
            max_open_blocks_per_area: 2,
        }
    }
}

impl PpbConfig {
    /// Checks the parameter combination.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::InvalidConfig`] if the base FTL configuration is invalid,
    /// the virtual-block count is zero, any list fraction is outside `(0, 1]`, or the
    /// cold promotion threshold is zero.
    pub fn validate(&self) -> Result<(), FtlError> {
        self.ftl.validate()?;
        fn invalid(reason: &str) -> FtlError {
            FtlError::InvalidConfig { reason: reason.to_string() }
        }
        if self.virtual_blocks_per_block == 0 {
            return Err(invalid("virtual_blocks_per_block must be at least 1"));
        }
        for (name, fraction) in [
            ("hot_list_fraction", self.hot_list_fraction),
            ("iron_hot_list_fraction", self.iron_hot_list_fraction),
            ("cold_table_fraction", self.cold_table_fraction),
        ] {
            if !fraction.is_finite() || fraction <= 0.0 || fraction > 1.0 {
                return Err(invalid(&format!("{name} must be within (0, 1]")));
            }
        }
        if self.cold_promote_reads == 0 {
            return Err(invalid("cold_promote_reads must be at least 1"));
        }
        if self.max_open_blocks_per_area == 0 {
            return Err(invalid("max_open_blocks_per_area must be at least 1"));
        }
        Ok(())
    }

    /// Capacity of the hot list for a device exporting `logical_pages` pages
    /// (always at least 8 so tiny test devices still exercise the mechanism).
    pub fn hot_list_capacity(&self, logical_pages: u64) -> usize {
        ((logical_pages as f64 * self.hot_list_fraction) as usize).max(8)
    }

    /// Capacity of the iron-hot list for a device exporting `logical_pages` pages.
    pub fn iron_hot_list_capacity(&self, logical_pages: u64) -> usize {
        ((logical_pages as f64 * self.iron_hot_list_fraction) as usize).max(8)
    }

    /// Capacity of the cold-area frequency table for a device exporting
    /// `logical_pages` pages.
    pub fn cold_table_capacity(&self, logical_pages: u64) -> usize {
        ((logical_pages as f64 * self.cold_table_fraction) as usize).max(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_paper_choices() {
        let config = PpbConfig::default();
        assert!(config.validate().is_ok());
        assert_eq!(config.virtual_blocks_per_block, 2);
    }

    #[test]
    fn capacities_scale_with_logical_pages_but_have_floors() {
        let config = PpbConfig::default();
        assert_eq!(config.hot_list_capacity(10_000), 1_500);
        assert_eq!(config.iron_hot_list_capacity(10_000), 1_500);
        assert_eq!(config.cold_table_capacity(10_000), 3_000);
        assert_eq!(config.hot_list_capacity(10), 8);
        assert_eq!(config.cold_table_capacity(10), 16);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let zero_vb = PpbConfig { virtual_blocks_per_block: 0, ..PpbConfig::default() };
        assert!(zero_vb.validate().is_err());
        let bad_fraction = PpbConfig { hot_list_fraction: 0.0, ..PpbConfig::default() };
        assert!(bad_fraction.validate().is_err());
        let too_big = PpbConfig { cold_table_fraction: 1.5, ..PpbConfig::default() };
        assert!(too_big.validate().is_err());
        let zero_reads = PpbConfig { cold_promote_reads: 0, ..PpbConfig::default() };
        assert!(zero_reads.validate().is_err());
        let zero_open = PpbConfig { max_open_blocks_per_area: 0, ..PpbConfig::default() };
        assert!(zero_open.validate().is_err());
        let bad_ftl = PpbConfig {
            ftl: FtlConfig { over_provisioning: 2.0, ..FtlConfig::default() },
            ..PpbConfig::default()
        };
        assert!(bad_ftl.validate().is_err());
    }
}
