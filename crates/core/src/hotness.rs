//! The four-level data hotness model.

use std::fmt;

/// Which of the two data areas a hotness level belongs to.
///
/// A physical block is dedicated to exactly one area, which is what keeps hot and
/// cold data from sharing a block and degrading garbage collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Area {
    /// The hot data area (iron-hot and hot data).
    Hot,
    /// The cold data area (cold and icy-cold data).
    Cold,
}

impl Area {
    /// The device-level block tag value of this area (the convention
    /// [`HotColdVictimPolicy`](vflash_ftl::HotColdVictimPolicy) reads): the PPB FTL
    /// stamps every block it claims with this tag via
    /// [`NandDevice::set_block_area_tag`](vflash_nand::NandDevice::set_block_area_tag),
    /// so hotness-aware garbage collection can tell hot-area from cold-area blocks
    /// without reaching into FTL state.
    pub const fn tag(self) -> u8 {
        match self {
            Area::Hot => vflash_ftl::gc::HOT_AREA_TAG,
            Area::Cold => vflash_ftl::gc::COLD_AREA_TAG,
        }
    }
}

impl fmt::Display for Area {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Area::Hot => "hot-area",
            Area::Cold => "cold-area",
        })
    }
}

/// The four hotness levels of the PPB strategy (paper §3.2).
///
/// The split is driven by *re-access* (read) frequency on top of the classic
/// hot/cold (write frequency) split:
///
/// | level | write frequency | read frequency | example | preferred pages |
/// |---|---|---|---|---|
/// | [`Hotness::IronHot`] | high | high | file-system metadata | fast (bottom layers) |
/// | [`Hotness::Hot`] | high | low | temporary cache files | slow (top layers) |
/// | [`Hotness::Cold`] | low (write-once) | high (read-many) | videos, pictures | fast (bottom layers) |
/// | [`Hotness::IcyCold`] | low (write-once) | low (read-few) | backups | slow (top layers) |
///
/// Note the deliberate symmetry: in *both* areas the frequently-read level goes to
/// the fast half of the block and the rarely-read level to the slow half, so every
/// block is filled slow-half-first, which is exactly the order 3D NAND must program
/// pages in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Hotness {
    /// Frequently written *and* frequently read data.
    IronHot,
    /// Frequently written but rarely read data.
    Hot,
    /// Write-once-read-many data.
    Cold,
    /// Write-once-read-few data.
    IcyCold,
}

impl Hotness {
    /// All four levels, hottest first.
    pub const ALL: [Hotness; 4] = [Hotness::IronHot, Hotness::Hot, Hotness::Cold, Hotness::IcyCold];

    /// The area this level's data is stored in.
    pub const fn area(self) -> Area {
        match self {
            Hotness::IronHot | Hotness::Hot => Area::Hot,
            Hotness::Cold | Hotness::IcyCold => Area::Cold,
        }
    }

    /// Whether data of this level should be served from fast (bottom-layer) pages.
    ///
    /// Fast pages go to the *frequently read* level of each area: iron-hot in the hot
    /// area, cold in the cold area.
    pub const fn prefers_fast_pages(self) -> bool {
        matches!(self, Hotness::IronHot | Hotness::Cold)
    }

    /// The level data of this level is promoted to when it is read
    /// (paper Figure 6: "promote if read"), or `None` if it is already the
    /// most-promoted level of its area.
    pub const fn promoted(self) -> Option<Hotness> {
        match self {
            Hotness::Hot => Some(Hotness::IronHot),
            Hotness::IcyCold => Some(Hotness::Cold),
            Hotness::IronHot | Hotness::Cold => None,
        }
    }

    /// The level data of this level is demoted to when its tracking list is full
    /// (paper Figure 6: "demote if full"), or `None` if it is already the
    /// least-promoted level of its area.
    pub const fn demoted(self) -> Option<Hotness> {
        match self {
            Hotness::IronHot => Some(Hotness::Hot),
            Hotness::Cold => Some(Hotness::IcyCold),
            Hotness::Hot | Hotness::IcyCold => None,
        }
    }

    /// A short lowercase label for reports.
    pub const fn label(self) -> &'static str {
        match self {
            Hotness::IronHot => "iron-hot",
            Hotness::Hot => "hot",
            Hotness::Cold => "cold",
            Hotness::IcyCold => "icy-cold",
        }
    }
}

impl fmt::Display for Hotness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn areas_partition_the_levels() {
        assert_eq!(Hotness::IronHot.area(), Area::Hot);
        assert_eq!(Hotness::Hot.area(), Area::Hot);
        assert_eq!(Hotness::Cold.area(), Area::Cold);
        assert_eq!(Hotness::IcyCold.area(), Area::Cold);
    }

    #[test]
    fn fast_pages_go_to_frequently_read_levels() {
        assert!(Hotness::IronHot.prefers_fast_pages());
        assert!(Hotness::Cold.prefers_fast_pages());
        assert!(!Hotness::Hot.prefers_fast_pages());
        assert!(!Hotness::IcyCold.prefers_fast_pages());
    }

    #[test]
    fn promotion_and_demotion_stay_within_an_area() {
        for level in Hotness::ALL {
            if let Some(promoted) = level.promoted() {
                assert_eq!(promoted.area(), level.area());
                assert_eq!(promoted.demoted(), Some(level));
            }
            if let Some(demoted) = level.demoted() {
                assert_eq!(demoted.area(), level.area());
                assert_eq!(demoted.promoted(), Some(level));
            }
        }
        assert_eq!(Hotness::IronHot.promoted(), None);
        assert_eq!(Hotness::IcyCold.demoted(), None);
    }

    #[test]
    fn labels_and_display() {
        assert_eq!(Hotness::IronHot.to_string(), "iron-hot");
        assert_eq!(Hotness::IcyCold.to_string(), "icy-cold");
        assert_eq!(Area::Hot.to_string(), "hot-area");
        assert_eq!(Area::Cold.to_string(), "cold-area");
    }
}
