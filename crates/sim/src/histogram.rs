//! Fixed-bucket latency histograms and the percentile summaries derived from them.
//!
//! The replayers record one completion latency per host request. Storing every
//! sample would cost memory proportional to the trace; instead samples land in a
//! **log-linear fixed-bucket histogram** (the HdrHistogram layout): values below
//! 2^[`SUB_BITS`] are exact, larger values fall into buckets of
//! 2^[`SUB_BITS`] sub-buckets per power of two, bounding the relative error of any
//! reported percentile at `1 / 2^SUB_BITS` (≈ 3%) while keeping the structure a
//! flat array of counters. Recording is O(1) and branch-light; percentile queries
//! walk the array once.

use std::fmt;

use vflash_nand::Nanos;

/// Sub-bucket resolution: 2^5 = 32 sub-buckets per power of two (≤ 3.2% relative
/// error on any percentile).
const SUB_BITS: u32 = 5;
const SUB_COUNT: u64 = 1 << SUB_BITS;
/// Bucket count: the exact region (values < 2^SUB_BITS) plus 2^SUB_BITS
/// sub-buckets for each of the remaining 64 - SUB_BITS powers of two.
const BUCKETS: usize = (SUB_COUNT + (64 - SUB_BITS) as u64 * SUB_COUNT) as usize;

/// A fixed-size log-linear histogram of nanosecond latencies.
///
/// Equality is structural (bucket-by-bucket), which is what the queue-depth-1
/// bit-identity tests rely on: two replays recording identical per-request
/// latencies produce identical histograms and therefore identical percentile
/// summaries.
#[derive(Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    max: Nanos,
    sum: Nanos,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram { counts: vec![0; BUCKETS], total: 0, max: Nanos::ZERO, sum: Nanos::ZERO }
    }

    /// The bucket index of a value: exact below `SUB_COUNT`, log-linear above —
    /// for a value in the octave `[2^e, 2^(e+1))` the sub-bucket is the `SUB_BITS`
    /// bits after the leading 1.
    fn index(value: u64) -> usize {
        if value < SUB_COUNT {
            return value as usize;
        }
        let exponent = 63 - u64::from(value.leading_zeros()); // >= SUB_BITS
        let sub = (value >> (exponent - u64::from(SUB_BITS))) - SUB_COUNT; // 0..SUB_COUNT
        (SUB_COUNT + (exponent - u64::from(SUB_BITS)) * SUB_COUNT + sub) as usize
    }

    /// The largest value a bucket represents (its inclusive upper bound); this is
    /// what percentile queries report, so reported percentiles never understate.
    fn upper_bound(index: usize) -> u64 {
        let index = index as u64;
        if index < SUB_COUNT {
            return index;
        }
        let offset = index - SUB_COUNT;
        let exponent = u64::from(SUB_BITS) + offset / SUB_COUNT;
        let sub = offset % SUB_COUNT;
        let shift = exponent - u64::from(SUB_BITS);
        let lower = (SUB_COUNT + sub) << shift;
        let width = 1u64 << shift;
        lower + (width - 1)
    }

    /// Records one sample.
    pub fn record(&mut self, latency: Nanos) {
        self.counts[Self::index(latency.as_nanos())] += 1;
        self.total += 1;
        self.sum += latency;
        if latency > self.max {
            self.max = latency;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The exact largest recorded sample ([`Nanos::ZERO`] when empty).
    pub fn max(&self) -> Nanos {
        self.max
    }

    /// The mean of the recorded samples ([`Nanos::ZERO`] when empty).
    pub fn mean(&self) -> Nanos {
        if self.total == 0 {
            Nanos::ZERO
        } else {
            self.sum / self.total
        }
    }

    /// The value at quantile `q` (e.g. `0.99` for p99): the upper bound of the
    /// bucket holding the sample of rank `ceil(q x count)`. [`Nanos::ZERO`] when
    /// the histogram is empty. The exact maximum is reported for `q = 1.0` (and
    /// whenever the crossing bucket is the last occupied one).
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `0.0..=1.0`.
    pub fn quantile(&self, q: f64) -> Nanos {
        assert!((0.0..=1.0).contains(&q), "quantile must be within 0..=1, got {q}");
        if self.total == 0 {
            return Nanos::ZERO;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (index, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                // Never report beyond the true maximum (the last occupied
                // bucket's upper bound can overshoot it).
                return Nanos(Self::upper_bound(index)).min(self.max);
            }
        }
        self.max
    }

    /// The headline percentiles (plus the exact mean) as a [`LatencyPercentiles`]
    /// summary.
    pub fn percentiles(&self) -> LatencyPercentiles {
        LatencyPercentiles {
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
            max: self.max,
            mean: self.mean(),
        }
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.total)
            .field("mean", &self.mean())
            .field("max", &self.max)
            .finish()
    }
}

/// Per-request completion-latency percentiles of one replay, derived from a
/// [`LatencyHistogram`].
///
/// `p50`/`p95`/`p99` carry the histogram's ≤ 3.2% bucket rounding (always rounding
/// *up*, so tails are never understated); `max` and `mean` are exact (the
/// histogram tracks the true sum and count alongside the buckets). All-zero when
/// the replay served no request of the corresponding kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyPercentiles {
    /// Median per-request completion latency.
    pub p50: Nanos,
    /// 95th-percentile per-request completion latency.
    pub p95: Nanos,
    /// 99th-percentile per-request completion latency.
    pub p99: Nanos,
    /// 99.9th-percentile per-request completion latency — the tail the paper's
    /// latency claims live in; under bursty arrivals this is the first summary
    /// statistic to move.
    pub p999: Nanos,
    /// Largest observed per-request completion latency (exact).
    pub max: Nanos,
    /// Mean per-request completion latency (exact — the M/M/1-style headline for
    /// queueing-delay summaries, where the tail alone can mislead).
    pub mean: Nanos,
}

impl fmt::Display for LatencyPercentiles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mean {} / p50 {} / p95 {} / p99 {} / p99.9 {} / max {}",
            self.mean, self.p50, self.p95, self.p99, self.p999, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut hist = LatencyHistogram::new();
        for v in [0u64, 1, 5, 31] {
            hist.record(Nanos(v));
        }
        assert_eq!(hist.count(), 4);
        assert_eq!(hist.quantile(0.25), Nanos(0));
        assert_eq!(hist.quantile(0.5), Nanos(1));
        assert_eq!(hist.quantile(0.75), Nanos(5));
        assert_eq!(hist.quantile(1.0), Nanos(31));
        assert_eq!(hist.max(), Nanos(31));
    }

    #[test]
    fn empty_histograms_report_zero() {
        let hist = LatencyHistogram::new();
        assert_eq!(hist.quantile(0.99), Nanos::ZERO);
        assert_eq!(hist.mean(), Nanos::ZERO);
        assert_eq!(hist.max(), Nanos::ZERO);
        assert_eq!(hist.percentiles(), LatencyPercentiles::default());
    }

    #[test]
    fn quantiles_bound_relative_error() {
        let mut hist = LatencyHistogram::new();
        // A wide spread of magnitudes, microseconds to seconds.
        let samples: Vec<u64> = (0..10_000u64).map(|i| 1_000 + i * 97_001).collect();
        for &sample in &samples {
            hist.record(Nanos(sample));
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.95, 0.99, 0.999] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1] as f64;
            let reported = hist.quantile(q).as_nanos() as f64;
            assert!(reported >= exact, "q{q}: reported {reported} under exact {exact}");
            assert!(
                reported <= exact * (1.0 + 1.0 / SUB_COUNT as f64) + 1.0,
                "q{q}: reported {reported} too far above exact {exact}"
            );
        }
        assert_eq!(hist.quantile(1.0), Nanos(*sorted.last().unwrap()));
    }

    #[test]
    fn bucket_upper_bounds_are_monotone_and_consistent_with_indexing() {
        let mut previous = None;
        for index in 0..BUCKETS {
            let upper = LatencyHistogram::upper_bound(index);
            if let Some(previous) = previous {
                assert!(upper > previous, "bucket {index} upper bound not monotone");
            }
            assert_eq!(
                LatencyHistogram::index(upper),
                index,
                "upper bound {upper} of bucket {index} does not map back"
            );
            previous = Some(upper);
        }
        // The largest representable value maps to the last bucket.
        assert_eq!(LatencyHistogram::index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn identical_sample_streams_produce_equal_histograms() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for v in [7u64, 900, 1 << 20, 3, (1 << 40) + 12345] {
            a.record(Nanos(v));
            b.record(Nanos(v));
        }
        assert_eq!(a, b);
        assert_eq!(a.percentiles(), b.percentiles());
        b.record(Nanos(7));
        assert_ne!(a, b);
    }

    #[test]
    fn mean_and_count_accumulate() {
        let mut hist = LatencyHistogram::new();
        hist.record(Nanos::from_micros(100));
        hist.record(Nanos::from_micros(300));
        assert_eq!(hist.mean(), Nanos::from_micros(200));
        assert_eq!(hist.count(), 2);
        let p = hist.percentiles();
        assert!(p.p999 >= p.p99 && p.p99 >= p.p95 && p.p95 >= p.p50);
        assert!(p.max >= p.p999);
        assert_eq!(p.max, Nanos::from_micros(300));
        assert_eq!(p.mean, Nanos::from_micros(200), "the summary carries the exact mean");
        assert!(p.to_string().contains("p99"));
        assert!(p.to_string().contains("mean"));
    }

    #[test]
    #[should_panic(expected = "within 0..=1")]
    fn out_of_range_quantiles_are_rejected() {
        LatencyHistogram::new().quantile(1.5);
    }
}
