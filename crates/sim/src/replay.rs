//! Serial trace replay — a compatibility wrapper over the unified engine.
//!
//! [`Replayer`] is the queue-depth-1 closed-loop reference: it issues requests in
//! trace order and charges each request the serial sum of its page latencies. It
//! delegates to [`WorkloadDriver`] with
//! [`ArrivalDiscipline::ClosedLoop`](crate::ArrivalDiscipline::ClosedLoop)`{ queue_depth: 1 }`,
//! which reproduces the pre-engine serial replayer bit-for-bit (summary and device
//! state — locked down in `tests/engine_equivalence.rs`).

use vflash_ftl::{FlashTranslationLayer, FtlError};
use vflash_trace::Trace;

use crate::engine::{RunOptions, WorkloadDriver};
use crate::report::RunSummary;

/// Replays traces serially (closed loop, queue depth 1) and reports summaries.
///
/// This matches the paper's evaluation, which reports accumulated access latency
/// per trace with no request overlap. For queue-depth or arrival-time replay use
/// [`QueuedReplayer`](crate::QueuedReplayer) or [`WorkloadDriver`] directly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Replayer {
    driver: WorkloadDriver,
}

impl Replayer {
    /// Creates a replayer with the given options.
    pub fn new(options: RunOptions) -> Self {
        Replayer { driver: WorkloadDriver::closed_loop(options, 1) }
    }

    /// The replay options.
    pub fn options(&self) -> &RunOptions {
        self.driver.options()
    }

    /// Replays `trace` against `ftl` and returns the run summary.
    ///
    /// Byte offsets are translated to logical pages using the device's page size, and
    /// wrapped modulo the exported logical capacity so any trace can be replayed on
    /// any device size (the standard trick for replaying enterprise traces on scaled
    /// simulators).
    ///
    /// # Errors
    ///
    /// Propagates FTL errors ([`FtlError::OutOfSpace`] and internal device errors).
    /// Unmapped reads only occur when `prefill` is disabled; with the default options
    /// they cannot happen.
    pub fn run<F: FlashTranslationLayer>(
        &self,
        ftl: F,
        trace: &Trace,
    ) -> Result<RunSummary, FtlError> {
        self.driver.run(ftl, trace)
    }

    /// Like [`Replayer::run`] but borrows the FTL, so callers can keep using it (and
    /// its device state) after the replay — e.g. to replay a second trace on a
    /// pre-aged device.
    ///
    /// # Errors
    ///
    /// Propagates FTL errors; see [`Replayer::run`].
    pub fn run_mut<F: FlashTranslationLayer + ?Sized>(
        &self,
        ftl: &mut F,
        trace: &Trace,
    ) -> Result<RunSummary, FtlError> {
        self.driver.run_mut(ftl, trace)
    }
}

impl Default for Replayer {
    fn default() -> Self {
        Replayer::new(RunOptions::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vflash_ftl::{ConventionalFtl, FtlConfig};
    use vflash_nand::{NandConfig, NandDevice, Nanos};
    use vflash_trace::{IoOp, IoRequest};

    fn small_ftl() -> ConventionalFtl {
        let device = NandDevice::new(
            NandConfig::builder()
                .chips(1)
                .blocks_per_chip(32)
                .pages_per_block(8)
                .page_size_bytes(4096)
                .build()
                .unwrap(),
        );
        ConventionalFtl::new(device, FtlConfig::default()).unwrap()
    }

    fn trace(requests: Vec<IoRequest>) -> Trace {
        Trace::new("test", requests)
    }

    #[test]
    fn writes_and_reads_are_counted_per_page() {
        let ftl = small_ftl();
        let t = trace(vec![
            IoRequest::new(0, IoOp::Write, 0, 8192),  // 2 pages
            IoRequest::new(1, IoOp::Read, 0, 4096),   // 1 page
            IoRequest::new(2, IoOp::Read, 0, 12288),  // 3 pages
        ]);
        let summary = Replayer::new(RunOptions::default()).run(ftl, &t).unwrap();
        assert_eq!(summary.host_writes, 2);
        assert_eq!(summary.host_reads, 4);
        assert_eq!(summary.trace, "test");
        assert_eq!(summary.ftl, "conventional");
    }

    #[test]
    fn prefill_makes_cold_reads_succeed_and_is_excluded_from_the_summary() {
        let ftl = small_ftl();
        // The trace reads offsets it never wrote.
        let t = trace(vec![IoRequest::new(0, IoOp::Read, 64 * 1024, 4096)]);
        let summary = Replayer::new(RunOptions::default()).run(ftl, &t).unwrap();
        assert_eq!(summary.host_reads, 1);
        assert_eq!(summary.host_writes, 0, "warm-up writes must not be reported");
    }

    #[test]
    fn without_prefill_unmapped_reads_are_skipped() {
        let ftl = small_ftl();
        let t = trace(vec![
            IoRequest::new(0, IoOp::Read, 64 * 1024, 4096),
            IoRequest::new(1, IoOp::Write, 0, 4096),
            IoRequest::new(2, IoOp::Read, 0, 4096),
        ]);
        let options = RunOptions { prefill: false, ..RunOptions::default() };
        let summary = Replayer::new(options).run(ftl, &t).unwrap();
        assert_eq!(summary.host_reads, 1, "only the mapped read is served");
        assert_eq!(summary.host_writes, 1);
    }

    #[test]
    fn offsets_beyond_logical_capacity_wrap_around() {
        let ftl = small_ftl();
        let capacity_bytes = ftl.logical_pages() * 4096;
        let t = trace(vec![IoRequest::new(0, IoOp::Write, capacity_bytes * 3 + 4096, 4096)]);
        let summary = Replayer::new(RunOptions::default()).run(ftl, &t).unwrap();
        assert_eq!(summary.host_writes, 1);
    }

    #[test]
    fn write_only_traces_skip_the_prefill_pass() {
        let ftl = small_ftl();
        let t = trace(vec![
            IoRequest::new(0, IoOp::Write, 0, 8192),
            IoRequest::new(1, IoOp::Write, 32 * 1024, 4096),
        ]);
        let mut ftl = ftl;
        let summary = Replayer::new(RunOptions::default()).run_mut(&mut ftl, &t).unwrap();
        assert_eq!(summary.host_writes, 3);
        // No warm-up traffic happened at all: the device saw exactly the trace's
        // three page programs.
        assert_eq!(ftl.device().stats().counts.programs, 3);
    }

    #[test]
    fn summary_reports_the_measured_phase_makespan() {
        let mut ftl = small_ftl();
        let replayer = Replayer::new(RunOptions::default());
        let t = trace(vec![
            IoRequest::new(0, IoOp::Write, 0, 4 * 4096),
            IoRequest::new(1, IoOp::Read, 0, 4096),
        ]);
        let summary = replayer.run_mut(&mut ftl, &t).unwrap();
        // Single-chip device: the makespan equals the serial host latency.
        assert_eq!(summary.device_makespan, summary.read_time + summary.write_time);
        assert!(summary.host_ops_per_sec() > 0.0);
        // A second replay reports only its own makespan, not cumulative time.
        let again = replayer.run_mut(&mut ftl, &t).unwrap();
        assert!(again.device_makespan < summary.device_makespan * 2);
        assert!(again.device_makespan > Nanos::ZERO);
    }

    #[test]
    fn run_mut_allows_back_to_back_traces_on_an_aged_device() {
        let mut ftl = small_ftl();
        let replayer = Replayer::new(RunOptions::default());
        let first = trace(vec![IoRequest::new(0, IoOp::Write, 0, 16 * 4096)]);
        let second = trace(vec![IoRequest::new(0, IoOp::Read, 0, 4096)]);
        let s1 = replayer.run_mut(&mut ftl, &first).unwrap();
        let s2 = replayer.run_mut(&mut ftl, &second).unwrap();
        assert_eq!(s1.host_writes, 16);
        assert_eq!(s2.host_reads, 1);
        assert_eq!(s2.host_writes, 0);
    }
}
