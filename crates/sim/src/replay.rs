//! Trace replay against an FTL.

use vflash_ftl::{FlashTranslationLayer, FtlError, Lpn};
use vflash_trace::{IoOp, Trace};

use crate::report::RunSummary;

/// Options controlling how a trace is replayed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOptions {
    /// Write every logical page the trace will ever touch once before replay starts,
    /// so that reads of data the trace never wrote behave like reads of pre-existing
    /// data instead of errors. The warm-up traffic is excluded from the reported
    /// summary. Enabled by default.
    pub prefill: bool,
    /// Request size (bytes) used for the warm-up writes. Large by default so the
    /// warm-up data is classified cold and does not pre-bias the hot/cold state.
    pub prefill_request_bytes: u32,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions { prefill: true, prefill_request_bytes: 1 << 20 }
    }
}

/// Replays traces against flash translation layers and reports summaries.
///
/// The replayer is open-loop: it issues requests in trace order and charges each
/// request the latency the FTL reports, without modelling queuing delay. That matches
/// the paper's evaluation, which reports accumulated access latency per trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Replayer {
    options: RunOptions,
}

impl Replayer {
    /// Creates a replayer with the given options.
    pub fn new(options: RunOptions) -> Self {
        Replayer { options }
    }

    /// The replay options.
    pub fn options(&self) -> &RunOptions {
        &self.options
    }

    /// Replays `trace` against `ftl` and returns the run summary.
    ///
    /// Byte offsets are translated to logical pages using the device's page size, and
    /// wrapped modulo the exported logical capacity so any trace can be replayed on
    /// any device size (the standard trick for replaying enterprise traces on scaled
    /// simulators).
    ///
    /// # Errors
    ///
    /// Propagates FTL errors ([`FtlError::OutOfSpace`] and internal device errors).
    /// Unmapped reads only occur when `prefill` is disabled; with the default options
    /// they cannot happen.
    pub fn run<F: FlashTranslationLayer>(
        &self,
        mut ftl: F,
        trace: &Trace,
    ) -> Result<RunSummary, FtlError> {
        self.run_mut(&mut ftl, trace)
    }

    /// Like [`Replayer::run`] but borrows the FTL, so callers can keep using it (and
    /// its device state) after the replay — e.g. to replay a second trace on a
    /// pre-aged device.
    ///
    /// # Errors
    ///
    /// Propagates FTL errors; see [`Replayer::run`].
    pub fn run_mut<F: FlashTranslationLayer + ?Sized>(
        &self,
        ftl: &mut F,
        trace: &Trace,
    ) -> Result<RunSummary, FtlError> {
        let page_size = ftl.device().config().page_size_bytes();
        let logical_pages = ftl.logical_pages();

        if self.options.prefill {
            self.prefill(ftl, trace, page_size, logical_pages)?;
        }

        let start = *ftl.metrics();
        for request in trace {
            for page in request.logical_pages(page_size) {
                let lpn = Lpn(page % logical_pages);
                match request.op {
                    IoOp::Write => {
                        ftl.write(lpn, request.length)?;
                    }
                    IoOp::Read => match ftl.read(lpn) {
                        Ok(_) => {}
                        // Without prefill, reads of never-written data are skipped,
                        // mirroring how a real host would simply get zeroes back.
                        Err(FtlError::UnmappedRead { .. }) if !self.options.prefill => {}
                        Err(err) => return Err(err),
                    },
                }
            }
        }
        let end = *ftl.metrics();
        Ok(RunSummary::from_metrics_delta(ftl.name(), trace.name(), &start, &end))
    }

    /// Writes every logical page the trace touches exactly once (in ascending order),
    /// so later reads always find mapped data.
    fn prefill<F: FlashTranslationLayer + ?Sized>(
        &self,
        ftl: &mut F,
        trace: &Trace,
        page_size: usize,
        logical_pages: u64,
    ) -> Result<(), FtlError> {
        let mut touched = vec![false; logical_pages as usize];
        for request in trace {
            for page in request.logical_pages(page_size) {
                touched[(page % logical_pages) as usize] = true;
            }
        }
        for (index, touched) in touched.iter().enumerate() {
            if *touched {
                ftl.write(Lpn(index as u64), self.options.prefill_request_bytes)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vflash_ftl::{ConventionalFtl, FtlConfig};
    use vflash_nand::{NandConfig, NandDevice};
    use vflash_trace::IoRequest;

    fn small_ftl() -> ConventionalFtl {
        let device = NandDevice::new(
            NandConfig::builder()
                .chips(1)
                .blocks_per_chip(32)
                .pages_per_block(8)
                .page_size_bytes(4096)
                .build()
                .unwrap(),
        );
        ConventionalFtl::new(device, FtlConfig::default()).unwrap()
    }

    fn trace(requests: Vec<IoRequest>) -> Trace {
        Trace::new("test", requests)
    }

    #[test]
    fn writes_and_reads_are_counted_per_page() {
        let ftl = small_ftl();
        let t = trace(vec![
            IoRequest::new(0, IoOp::Write, 0, 8192),  // 2 pages
            IoRequest::new(1, IoOp::Read, 0, 4096),   // 1 page
            IoRequest::new(2, IoOp::Read, 0, 12288),  // 3 pages
        ]);
        let summary = Replayer::new(RunOptions::default()).run(ftl, &t).unwrap();
        assert_eq!(summary.host_writes, 2);
        assert_eq!(summary.host_reads, 4);
        assert_eq!(summary.trace, "test");
        assert_eq!(summary.ftl, "conventional");
    }

    #[test]
    fn prefill_makes_cold_reads_succeed_and_is_excluded_from_the_summary() {
        let ftl = small_ftl();
        // The trace reads offsets it never wrote.
        let t = trace(vec![IoRequest::new(0, IoOp::Read, 64 * 1024, 4096)]);
        let summary = Replayer::new(RunOptions::default()).run(ftl, &t).unwrap();
        assert_eq!(summary.host_reads, 1);
        assert_eq!(summary.host_writes, 0, "warm-up writes must not be reported");
    }

    #[test]
    fn without_prefill_unmapped_reads_are_skipped() {
        let ftl = small_ftl();
        let t = trace(vec![
            IoRequest::new(0, IoOp::Read, 64 * 1024, 4096),
            IoRequest::new(1, IoOp::Write, 0, 4096),
            IoRequest::new(2, IoOp::Read, 0, 4096),
        ]);
        let options = RunOptions { prefill: false, ..RunOptions::default() };
        let summary = Replayer::new(options).run(ftl, &t).unwrap();
        assert_eq!(summary.host_reads, 1, "only the mapped read is served");
        assert_eq!(summary.host_writes, 1);
    }

    #[test]
    fn offsets_beyond_logical_capacity_wrap_around() {
        let ftl = small_ftl();
        let capacity_bytes = ftl.logical_pages() * 4096;
        let t = trace(vec![IoRequest::new(0, IoOp::Write, capacity_bytes * 3 + 4096, 4096)]);
        let summary = Replayer::new(RunOptions::default()).run(ftl, &t).unwrap();
        assert_eq!(summary.host_writes, 1);
    }

    #[test]
    fn run_mut_allows_back_to_back_traces_on_an_aged_device() {
        let mut ftl = small_ftl();
        let replayer = Replayer::new(RunOptions::default());
        let first = trace(vec![IoRequest::new(0, IoOp::Write, 0, 16 * 4096)]);
        let second = trace(vec![IoRequest::new(0, IoOp::Read, 0, 4096)]);
        let s1 = replayer.run_mut(&mut ftl, &first).unwrap();
        let s2 = replayer.run_mut(&mut ftl, &second).unwrap();
        assert_eq!(s1.host_writes, 16);
        assert_eq!(s2.host_reads, 1);
        assert_eq!(s2.host_writes, 0);
    }
}
