//! Trace replay against an FTL.

use vflash_ftl::{FlashTranslationLayer, FtlError, Lpn};
use vflash_nand::{ChipId, Nanos};
use vflash_trace::{IoOp, Trace};

use crate::histogram::LatencyHistogram;
use crate::report::RunSummary;

/// A word-packed bitmap over logical page numbers.
///
/// The prefill pass needs one bit per logical page; on multi-million-page devices a
/// `Vec<bool>` would spend a byte per page, so pages are packed 64 to a `u64` (8x
/// less memory and far fewer cache lines touched by the marking pass).
#[derive(Debug, Clone)]
struct PageBitmap {
    words: Vec<u64>,
}

impl PageBitmap {
    fn new(pages: u64) -> Self {
        PageBitmap { words: vec![0; (pages as usize).div_ceil(64)] }
    }

    fn set(&mut self, page: u64) {
        self.words[(page / 64) as usize] |= 1 << (page % 64);
    }

    #[cfg(test)]
    fn get(&self, page: u64) -> bool {
        self.words[(page / 64) as usize] & (1 << (page % 64)) != 0
    }

    /// Iterates over set pages in ascending order, skipping empty words wholesale.
    fn iter_set(&self) -> impl Iterator<Item = u64> + '_ {
        self.words.iter().enumerate().flat_map(|(word_index, &word)| {
            let base = word_index as u64 * 64;
            std::iter::successors(
                (word != 0).then_some(word),
                |bits| {
                    let rest = bits & (bits - 1);
                    (rest != 0).then_some(rest)
                },
            )
            .map(move |bits| base + u64::from(bits.trailing_zeros()))
        })
    }
}

/// Options controlling how a trace is replayed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOptions {
    /// Write every logical page the trace will ever touch once before replay starts,
    /// so that reads of data the trace never wrote behave like reads of pre-existing
    /// data instead of errors. The warm-up traffic is excluded from the reported
    /// summary. Enabled by default.
    ///
    /// The warm-up exists to serve reads, so a trace containing no read at all skips
    /// it even when this flag is set: the replay then runs against a fresh device.
    /// Callers who want a write-only workload measured on a preconditioned device
    /// should age the device explicitly (replay a fill trace first via
    /// [`Replayer::run_mut`]).
    pub prefill: bool,
    /// Request size (bytes) used for the warm-up writes. Large by default so the
    /// warm-up data is classified cold and does not pre-bias the hot/cold state.
    pub prefill_request_bytes: u32,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions { prefill: true, prefill_request_bytes: 1 << 20 }
    }
}

/// Replays traces against flash translation layers and reports summaries.
///
/// The replayer is open-loop: it issues requests in trace order and charges each
/// request the latency the FTL reports, without modelling queuing delay. That matches
/// the paper's evaluation, which reports accumulated access latency per trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Replayer {
    options: RunOptions,
}

impl Replayer {
    /// Creates a replayer with the given options.
    pub fn new(options: RunOptions) -> Self {
        Replayer { options }
    }

    /// The replay options.
    pub fn options(&self) -> &RunOptions {
        &self.options
    }

    /// Replays `trace` against `ftl` and returns the run summary.
    ///
    /// Byte offsets are translated to logical pages using the device's page size, and
    /// wrapped modulo the exported logical capacity so any trace can be replayed on
    /// any device size (the standard trick for replaying enterprise traces on scaled
    /// simulators).
    ///
    /// # Errors
    ///
    /// Propagates FTL errors ([`FtlError::OutOfSpace`] and internal device errors).
    /// Unmapped reads only occur when `prefill` is disabled; with the default options
    /// they cannot happen.
    pub fn run<F: FlashTranslationLayer>(
        &self,
        mut ftl: F,
        trace: &Trace,
    ) -> Result<RunSummary, FtlError> {
        self.run_mut(&mut ftl, trace)
    }

    /// Like [`Replayer::run`] but borrows the FTL, so callers can keep using it (and
    /// its device state) after the replay — e.g. to replay a second trace on a
    /// pre-aged device.
    ///
    /// # Errors
    ///
    /// Propagates FTL errors; see [`Replayer::run`].
    pub fn run_mut<F: FlashTranslationLayer + ?Sized>(
        &self,
        ftl: &mut F,
        trace: &Trace,
    ) -> Result<RunSummary, FtlError> {
        let page_size = ftl.device().config().page_size_bytes();
        let logical_pages = ftl.logical_pages();

        if self.options.prefill {
            prefill_ftl(ftl, trace, page_size, logical_pages, self.options.prefill_request_bytes)?;
        }

        let start = *ftl.metrics();
        let busy_start = chip_busy_times(ftl);
        let mut read_latencies = LatencyHistogram::new();
        let mut write_latencies = LatencyHistogram::new();
        let mut elapsed = Nanos::ZERO;
        let mut requests = 0u64;
        for request in trace {
            let mut latency = Nanos::ZERO;
            for page in request.logical_pages(page_size) {
                let lpn = Lpn(page % logical_pages);
                match request.op {
                    IoOp::Write => {
                        latency += ftl.write(lpn, request.length)?;
                    }
                    IoOp::Read => match ftl.read(lpn) {
                        Ok(page_latency) => latency += page_latency,
                        // Without prefill, reads of never-written data are skipped,
                        // mirroring how a real host would simply get zeroes back.
                        Err(FtlError::UnmappedRead { .. }) if !self.options.prefill => {}
                        Err(err) => return Err(err),
                    },
                }
            }
            // The serial replayer is the queue-depth-1 reference: a request's
            // completion latency is the serial sum of its page latencies, and the
            // replay clock is the running total.
            match request.op {
                IoOp::Read => read_latencies.record(latency),
                IoOp::Write => write_latencies.record(latency),
            }
            elapsed += latency;
            requests += 1;
        }
        let end = *ftl.metrics();
        let mut summary =
            RunSummary::from_metrics_delta(ftl.name(), trace.name(), &start, &end);
        summary.device_makespan = makespan_delta(ftl, &busy_start);
        summary.queue_depth = 1;
        summary.host_requests = requests;
        summary.host_elapsed = elapsed;
        summary.read_latency = read_latencies.percentiles();
        summary.write_latency = write_latencies.percentiles();
        Ok(summary)
    }
}

/// Snapshot of every chip's busy time, used to compute the measured-phase
/// makespan as a delta (excluding prefill traffic). Shared by both replayers.
pub(crate) fn chip_busy_times<F: FlashTranslationLayer + ?Sized>(ftl: &F) -> Vec<Nanos> {
    let device = ftl.device();
    (0..device.config().chips())
        .map(|chip| {
            device.chip_busy_time(ChipId(chip)).expect("chip ids come from the config")
        })
        .collect()
}

/// The measured-phase makespan: largest per-chip busy-time delta since `start`.
pub(crate) fn makespan_delta<F: FlashTranslationLayer + ?Sized>(
    ftl: &F,
    start: &[Nanos],
) -> Nanos {
    chip_busy_times(ftl)
        .iter()
        .zip(start)
        .map(|(&end, &begin)| end.saturating_sub(begin))
        .max()
        .unwrap_or(Nanos::ZERO)
}

/// Writes every logical page the trace touches exactly once (in ascending order),
/// so later reads always find mapped data. Shared by both replayers, so a queued
/// replay warms the device **identically** to a serial one — a precondition for
/// the queue-depth-1 bit-identity guarantee.
///
/// Traces without a single read skip the warm-up entirely: the prefill exists
/// only so reads of never-written data behave like reads of pre-existing data,
/// and a write-only trace has none.
pub(crate) fn prefill_ftl<F: FlashTranslationLayer + ?Sized>(
    ftl: &mut F,
    trace: &Trace,
    page_size: usize,
    logical_pages: u64,
    prefill_request_bytes: u32,
) -> Result<(), FtlError> {
    if !trace.iter().any(|request| request.op == IoOp::Read) {
        return Ok(());
    }
    let mut touched = PageBitmap::new(logical_pages);
    for request in trace {
        for page in request.logical_pages(page_size) {
            touched.set(page % logical_pages);
        }
    }
    for page in touched.iter_set() {
        ftl.write(Lpn(page), prefill_request_bytes)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vflash_ftl::{ConventionalFtl, FtlConfig};
    use vflash_nand::{NandConfig, NandDevice};
    use vflash_trace::IoRequest;

    fn small_ftl() -> ConventionalFtl {
        let device = NandDevice::new(
            NandConfig::builder()
                .chips(1)
                .blocks_per_chip(32)
                .pages_per_block(8)
                .page_size_bytes(4096)
                .build()
                .unwrap(),
        );
        ConventionalFtl::new(device, FtlConfig::default()).unwrap()
    }

    fn trace(requests: Vec<IoRequest>) -> Trace {
        Trace::new("test", requests)
    }

    #[test]
    fn writes_and_reads_are_counted_per_page() {
        let ftl = small_ftl();
        let t = trace(vec![
            IoRequest::new(0, IoOp::Write, 0, 8192),  // 2 pages
            IoRequest::new(1, IoOp::Read, 0, 4096),   // 1 page
            IoRequest::new(2, IoOp::Read, 0, 12288),  // 3 pages
        ]);
        let summary = Replayer::new(RunOptions::default()).run(ftl, &t).unwrap();
        assert_eq!(summary.host_writes, 2);
        assert_eq!(summary.host_reads, 4);
        assert_eq!(summary.trace, "test");
        assert_eq!(summary.ftl, "conventional");
    }

    #[test]
    fn prefill_makes_cold_reads_succeed_and_is_excluded_from_the_summary() {
        let ftl = small_ftl();
        // The trace reads offsets it never wrote.
        let t = trace(vec![IoRequest::new(0, IoOp::Read, 64 * 1024, 4096)]);
        let summary = Replayer::new(RunOptions::default()).run(ftl, &t).unwrap();
        assert_eq!(summary.host_reads, 1);
        assert_eq!(summary.host_writes, 0, "warm-up writes must not be reported");
    }

    #[test]
    fn without_prefill_unmapped_reads_are_skipped() {
        let ftl = small_ftl();
        let t = trace(vec![
            IoRequest::new(0, IoOp::Read, 64 * 1024, 4096),
            IoRequest::new(1, IoOp::Write, 0, 4096),
            IoRequest::new(2, IoOp::Read, 0, 4096),
        ]);
        let options = RunOptions { prefill: false, ..RunOptions::default() };
        let summary = Replayer::new(options).run(ftl, &t).unwrap();
        assert_eq!(summary.host_reads, 1, "only the mapped read is served");
        assert_eq!(summary.host_writes, 1);
    }

    #[test]
    fn offsets_beyond_logical_capacity_wrap_around() {
        let ftl = small_ftl();
        let capacity_bytes = ftl.logical_pages() * 4096;
        let t = trace(vec![IoRequest::new(0, IoOp::Write, capacity_bytes * 3 + 4096, 4096)]);
        let summary = Replayer::new(RunOptions::default()).run(ftl, &t).unwrap();
        assert_eq!(summary.host_writes, 1);
    }

    #[test]
    fn bitmap_sets_and_iterates_in_ascending_order() {
        let mut bitmap = PageBitmap::new(200);
        for page in [0u64, 1, 63, 64, 65, 127, 128, 199] {
            bitmap.set(page);
        }
        assert!(bitmap.get(63));
        assert!(!bitmap.get(62));
        let set: Vec<u64> = bitmap.iter_set().collect();
        assert_eq!(set, vec![0, 1, 63, 64, 65, 127, 128, 199]);
    }

    #[test]
    fn empty_bitmap_iterates_nothing() {
        let bitmap = PageBitmap::new(500);
        assert_eq!(bitmap.iter_set().count(), 0);
    }

    #[test]
    fn write_only_traces_skip_the_prefill_pass() {
        let ftl = small_ftl();
        let t = trace(vec![
            IoRequest::new(0, IoOp::Write, 0, 8192),
            IoRequest::new(1, IoOp::Write, 32 * 1024, 4096),
        ]);
        let mut ftl = ftl;
        let summary = Replayer::new(RunOptions::default()).run_mut(&mut ftl, &t).unwrap();
        assert_eq!(summary.host_writes, 3);
        // No warm-up traffic happened at all: the device saw exactly the trace's
        // three page programs.
        assert_eq!(ftl.device().stats().counts.programs, 3);
    }

    #[test]
    fn summary_reports_the_measured_phase_makespan() {
        let mut ftl = small_ftl();
        let replayer = Replayer::new(RunOptions::default());
        let t = trace(vec![
            IoRequest::new(0, IoOp::Write, 0, 4 * 4096),
            IoRequest::new(1, IoOp::Read, 0, 4096),
        ]);
        let summary = replayer.run_mut(&mut ftl, &t).unwrap();
        // Single-chip device: the makespan equals the serial host latency.
        assert_eq!(summary.device_makespan, summary.read_time + summary.write_time);
        assert!(summary.host_ops_per_sec() > 0.0);
        // A second replay reports only its own makespan, not cumulative time.
        let again = replayer.run_mut(&mut ftl, &t).unwrap();
        assert!(again.device_makespan < summary.device_makespan * 2);
        assert!(again.device_makespan > Nanos::ZERO);
    }

    #[test]
    fn run_mut_allows_back_to_back_traces_on_an_aged_device() {
        let mut ftl = small_ftl();
        let replayer = Replayer::new(RunOptions::default());
        let first = trace(vec![IoRequest::new(0, IoOp::Write, 0, 16 * 4096)]);
        let second = trace(vec![IoRequest::new(0, IoOp::Read, 0, 4096)]);
        let s1 = replayer.run_mut(&mut ftl, &first).unwrap();
        let s2 = replayer.run_mut(&mut ftl, &second).unwrap();
        assert_eq!(s1.host_writes, 16);
        assert_eq!(s2.host_reads, 1);
        assert_eq!(s2.host_writes, 0);
    }
}
