//! Queue-depth replay — a compatibility wrapper over the unified engine.
//!
//! [`QueuedReplayer`] keeps up to `queue_depth` host requests in flight over the
//! engine's event-driven completion model on the per-chip clocks (see
//! [`WorkloadDriver`](crate::WorkloadDriver) for the timing model). It delegates
//! to [`ArrivalDiscipline::ClosedLoop`](crate::ArrivalDiscipline::ClosedLoop),
//! which reproduces the pre-engine queued replayer bit-for-bit (summary and
//! device state — locked down in `tests/engine_equivalence.rs`).
//!
//! FTL state (mapping tables, GC, hot/cold areas) evolves in **trace order**
//! regardless of depth — only the *timing* is overlaid by the event model. This
//! keeps device state bit-identical across queue depths (what the experiments
//! need to attribute differences to queuing alone), and at `queue_depth = 1` the
//! model degenerates exactly to the serial [`Replayer`](crate::Replayer).

use vflash_ftl::{FlashTranslationLayer, FtlError};
use vflash_trace::Trace;

use crate::engine::{RunOptions, WorkloadDriver};
use crate::report::RunSummary;

/// Replays traces keeping up to `queue_depth` host requests in flight.
///
/// # Example
///
/// ```
/// use vflash_ftl::{ConventionalFtl, FtlConfig};
/// use vflash_nand::{NandConfig, NandDevice};
/// use vflash_sim::{QueuedReplayer, RunOptions};
/// use vflash_trace::synthetic::{self, SyntheticConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let trace = synthetic::media_server(SyntheticConfig {
///     requests: 500,
///     working_set_bytes: 4 * 1024 * 1024,
///     ..Default::default()
/// });
/// let device = NandDevice::new(
///     NandConfig::builder()
///         .chips(4)
///         .blocks_per_chip(24)
///         .pages_per_block(32)
///         .page_size_bytes(16 * 1024)
///         .build()?,
/// );
/// let ftl = ConventionalFtl::new(device, FtlConfig::default())?;
/// let summary = QueuedReplayer::new(RunOptions::default(), 16).run(ftl, &trace)?;
/// assert_eq!(summary.queue_depth, 16);
/// assert!(summary.request_iops() > 0.0);
/// assert!(summary.read_latency.p99 >= summary.read_latency.p50);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueuedReplayer {
    driver: WorkloadDriver,
}

impl QueuedReplayer {
    /// Creates a replayer holding up to `queue_depth` requests in flight.
    ///
    /// # Panics
    ///
    /// Panics if `queue_depth` is zero.
    pub fn new(options: RunOptions, queue_depth: usize) -> Self {
        QueuedReplayer { driver: WorkloadDriver::closed_loop(options, queue_depth) }
    }

    /// The replay options.
    pub fn options(&self) -> &RunOptions {
        self.driver.options()
    }

    /// The configured queue depth.
    pub fn queue_depth(&self) -> usize {
        match self.driver.discipline() {
            crate::ArrivalDiscipline::ClosedLoop { queue_depth } => queue_depth,
            crate::ArrivalDiscipline::OpenLoop { .. } => {
                unreachable!("QueuedReplayer only constructs closed-loop drivers")
            }
        }
    }

    /// Replays `trace` against `ftl` and returns the run summary.
    ///
    /// # Errors
    ///
    /// Propagates FTL errors; see [`crate::Replayer::run`].
    pub fn run<F: FlashTranslationLayer>(
        &self,
        ftl: F,
        trace: &Trace,
    ) -> Result<RunSummary, FtlError> {
        self.driver.run(ftl, trace)
    }

    /// Like [`QueuedReplayer::run`] but borrows the FTL, so callers can keep using
    /// it (and its device state) after the replay.
    ///
    /// # Errors
    ///
    /// Propagates FTL errors; see [`crate::Replayer::run`].
    pub fn run_mut<F: FlashTranslationLayer + ?Sized>(
        &self,
        ftl: &mut F,
        trace: &Trace,
    ) -> Result<RunSummary, FtlError> {
        self.driver.run_mut(ftl, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::Replayer;
    use vflash_ftl::{ConventionalFtl, FtlConfig};
    use vflash_nand::{NandConfig, NandDevice};
    use vflash_trace::{IoOp, IoRequest};

    fn ftl(chips: usize) -> ConventionalFtl {
        let device = NandDevice::new(
            NandConfig::builder()
                .chips(chips)
                .blocks_per_chip(32)
                .pages_per_block(8)
                .page_size_bytes(4096)
                .build()
                .unwrap(),
        );
        ConventionalFtl::new(device, FtlConfig::default()).unwrap()
    }

    fn read_heavy_trace(requests: u64) -> Trace {
        let mut reqs = Vec::new();
        // Scatter writes, then read them back in a shuffled order.
        for i in 0..requests {
            reqs.push(IoRequest::new(i, IoOp::Read, (i * 37 % requests) * 4096, 4096));
        }
        Trace::new("read-heavy", reqs)
    }

    #[test]
    fn zero_queue_depth_is_rejected() {
        let result = std::panic::catch_unwind(|| QueuedReplayer::new(RunOptions::default(), 0));
        assert!(result.is_err());
    }

    #[test]
    fn qd1_matches_the_serial_replayer_on_a_small_trace() {
        let t = read_heavy_trace(64);
        let serial = Replayer::new(RunOptions::default()).run(ftl(2), &t).unwrap();
        let queued = QueuedReplayer::new(RunOptions::default(), 1).run(ftl(2), &t).unwrap();
        assert_eq!(serial, queued);
    }

    #[test]
    fn deeper_queues_overlap_chips_and_cut_elapsed_time() {
        let t = read_heavy_trace(256);
        let qd1 = QueuedReplayer::new(RunOptions::default(), 1).run(ftl(4), &t).unwrap();
        let qd16 = QueuedReplayer::new(RunOptions::default(), 16).run(ftl(4), &t).unwrap();
        // Identical device-state evolution...
        assert_eq!(qd1.host_reads, qd16.host_reads);
        assert_eq!(qd1.read_time, qd16.read_time);
        assert_eq!(qd1.device_makespan, qd16.device_makespan);
        // ...but the queued overlay finishes sooner and serves more IOPS.
        assert!(
            qd16.host_elapsed < qd1.host_elapsed,
            "QD16 {} should beat QD1 {}",
            qd16.host_elapsed,
            qd1.host_elapsed
        );
        assert!(qd16.request_iops() > qd1.request_iops());
        // The overlay can never beat the busiest chip.
        assert!(qd16.host_elapsed >= qd16.device_makespan);
    }

    #[test]
    fn queued_latencies_include_chip_queuing_delay() {
        // Single chip: depth adds pure queuing delay, so per-request p99 grows
        // with depth while elapsed stays the serial sum.
        let t = read_heavy_trace(128);
        let qd1 = QueuedReplayer::new(RunOptions::default(), 1).run(ftl(1), &t).unwrap();
        let qd8 = QueuedReplayer::new(RunOptions::default(), 8).run(ftl(1), &t).unwrap();
        assert_eq!(qd1.host_elapsed, qd8.host_elapsed, "one chip cannot overlap anything");
        assert!(
            qd8.read_latency.p99 > qd1.read_latency.p99,
            "queuing on one chip must inflate tail latency ({} vs {})",
            qd8.read_latency.p99,
            qd1.read_latency.p99
        );
        // The queueing-delay/service-time split names the cause: service times are
        // depth-invariant, the delay is what grew.
        assert_eq!(qd1.service_time, qd8.service_time);
        assert!(qd8.queue_delay.p99 > qd1.queue_delay.p99);
    }

    #[test]
    fn tracing_is_disabled_after_the_run() {
        let t = read_heavy_trace(16);
        let mut f = ftl(2);
        QueuedReplayer::new(RunOptions::default(), 4).run_mut(&mut f, &t).unwrap();
        assert!(!f.device().op_tracing());
    }

    #[test]
    fn unmapped_reads_are_skipped_without_prefill() {
        let t = Trace::new(
            "sparse",
            vec![
                IoRequest::new(0, IoOp::Read, 64 * 1024, 4096),
                IoRequest::new(1, IoOp::Write, 0, 4096),
                IoRequest::new(2, IoOp::Read, 0, 4096),
            ],
        );
        let options = RunOptions { prefill: false, ..RunOptions::default() };
        let summary = QueuedReplayer::new(options, 4).run(ftl(1), &t).unwrap();
        assert_eq!(summary.host_reads, 1);
        assert_eq!(summary.host_writes, 1);
        assert_eq!(summary.host_requests, 3, "skipped requests still complete (with zero work)");
    }
}
