//! Queue-depth replay: an event-driven completion model over the per-chip clocks.
//!
//! The serial [`Replayer`](crate::Replayer) issues one request at a time, so a
//! multi-chip device is always idle on all chips but one. Real hosts drive SSDs
//! through submission/completion queues with queue depth > 1; the
//! [`QueuedReplayer`] models that: up to `queue_depth` host requests are in flight
//! at once, and a request's device operations start on their chip as soon as both
//! the request's previous operation **and** the chip are done. Requests that land
//! on distinct idle chips overlap fully; requests serialised on one chip queue
//! behind each other.
//!
//! # How the timing model works
//!
//! FTL state (mapping tables, GC, hot/cold areas) evolves in **trace order**
//! regardless of depth — requests are submitted to the FTL one after another, and
//! only the *timing* is overlaid by the event model. This keeps device state
//! bit-identical across queue depths (what the experiments need to attribute
//! differences to queuing alone) and matches how a single-LUN-per-chip SSD behaves
//! when the FTL serialises metadata updates but the flash array executes in
//! parallel.
//!
//! For each request the replayer obtains the request's timed device operations
//! (via the FTL's [`submit`](vflash_ftl::FlashTranslationLayer::submit) completions
//! with [op tracing](vflash_nand::NandDevice::set_op_tracing) enabled) and plays
//! them against per-chip ready clocks:
//!
//! ```text
//! issue   = completion time of the request that freed the queue slot
//! op k:     start = max(end of op k-1, chip_ready[chip(k)])
//!           chip_ready[chip(k)] = start + latency(k)
//! latency = end of last op - issue
//! ```
//!
//! A binary heap of in-flight completion times hands out queue slots. At
//! `queue_depth = 1` the model degenerates exactly to the serial replayer —
//! every `max` resolves to the running clock and per-request latency is the serial
//! sum of page latencies — which is tested to be **bit-identical** (summary and
//! device state) in `tests/queued_equivalence.rs`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use vflash_ftl::{FlashTranslationLayer, FtlError, IoRequest as FtlRequest, Lpn};
use vflash_nand::Nanos;
use vflash_trace::{IoOp, Trace};

use crate::histogram::LatencyHistogram;
use crate::replay::{chip_busy_times, makespan_delta, prefill_ftl};
use crate::replay::RunOptions;
use crate::report::RunSummary;

/// Replays traces keeping up to `queue_depth` host requests in flight.
///
/// # Example
///
/// ```
/// use vflash_ftl::{ConventionalFtl, FtlConfig};
/// use vflash_nand::{NandConfig, NandDevice};
/// use vflash_sim::{QueuedReplayer, RunOptions};
/// use vflash_trace::synthetic::{self, SyntheticConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let trace = synthetic::media_server(SyntheticConfig {
///     requests: 500,
///     working_set_bytes: 4 * 1024 * 1024,
///     ..Default::default()
/// });
/// let device = NandDevice::new(
///     NandConfig::builder()
///         .chips(4)
///         .blocks_per_chip(24)
///         .pages_per_block(32)
///         .page_size_bytes(16 * 1024)
///         .build()?,
/// );
/// let ftl = ConventionalFtl::new(device, FtlConfig::default())?;
/// let summary = QueuedReplayer::new(RunOptions::default(), 16).run(ftl, &trace)?;
/// assert_eq!(summary.queue_depth, 16);
/// assert!(summary.request_iops() > 0.0);
/// assert!(summary.read_latency.p99 >= summary.read_latency.p50);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedReplayer {
    options: RunOptions,
    queue_depth: usize,
}

impl QueuedReplayer {
    /// Creates a replayer holding up to `queue_depth` requests in flight.
    ///
    /// # Panics
    ///
    /// Panics if `queue_depth` is zero.
    pub fn new(options: RunOptions, queue_depth: usize) -> Self {
        assert!(queue_depth > 0, "queue depth must be at least 1");
        QueuedReplayer { options, queue_depth }
    }

    /// The replay options.
    pub fn options(&self) -> &RunOptions {
        &self.options
    }

    /// The configured queue depth.
    pub fn queue_depth(&self) -> usize {
        self.queue_depth
    }

    /// Replays `trace` against `ftl` and returns the run summary.
    ///
    /// # Errors
    ///
    /// Propagates FTL errors; see [`crate::Replayer::run`].
    pub fn run<F: FlashTranslationLayer>(
        &self,
        mut ftl: F,
        trace: &Trace,
    ) -> Result<RunSummary, FtlError> {
        self.run_mut(&mut ftl, trace)
    }

    /// Like [`QueuedReplayer::run`] but borrows the FTL, so callers can keep using
    /// it (and its device state) after the replay.
    ///
    /// # Errors
    ///
    /// Propagates FTL errors; see [`crate::Replayer::run`].
    pub fn run_mut<F: FlashTranslationLayer + ?Sized>(
        &self,
        ftl: &mut F,
        trace: &Trace,
    ) -> Result<RunSummary, FtlError> {
        let page_size = ftl.device().config().page_size_bytes();
        let logical_pages = ftl.logical_pages();

        // The warm-up runs serially with tracing off, exactly like the serial
        // replayer's, so device state entering the measured phase is identical.
        if self.options.prefill {
            prefill_ftl(ftl, trace, page_size, logical_pages, self.options.prefill_request_bytes)?;
        }

        ftl.device_mut().set_op_tracing(true);
        let outcome = self.run_measured(ftl, trace, page_size, logical_pages);
        ftl.device_mut().set_op_tracing(false);
        outcome
    }

    fn run_measured<F: FlashTranslationLayer + ?Sized>(
        &self,
        ftl: &mut F,
        trace: &Trace,
        page_size: usize,
        logical_pages: u64,
    ) -> Result<RunSummary, FtlError> {
        let start = *ftl.metrics();
        let busy_start = chip_busy_times(ftl);
        let chips = ftl.device().config().chips();

        let mut chip_ready = vec![Nanos::ZERO; chips];
        let mut in_flight: BinaryHeap<Reverse<Nanos>> = BinaryHeap::with_capacity(self.queue_depth);
        let mut read_latencies = LatencyHistogram::new();
        let mut write_latencies = LatencyHistogram::new();
        let mut clock = Nanos::ZERO;
        let mut last_completion = Nanos::ZERO;
        let mut requests = 0u64;

        for request in trace {
            // Wait for a queue slot: the issue time is the completion of the
            // earliest in-flight request (the clock never moves backwards, so
            // issue order is preserved).
            if in_flight.len() == self.queue_depth {
                let Reverse(freed) = in_flight.pop().expect("queue depth is at least 1");
                if freed > clock {
                    clock = freed;
                }
            }
            let issue = clock;
            let mut now = issue;

            // A multi-page host request is a dependent chain of page submissions;
            // each timed device op starts when both its predecessor in the chain
            // and its chip are ready.
            for page in request.logical_pages(page_size) {
                let lpn = Lpn(page % logical_pages);
                let completion = match request.op {
                    IoOp::Write => ftl.submit(FtlRequest::write(lpn, request.length))?,
                    IoOp::Read => match ftl.submit(FtlRequest::read(lpn)) {
                        Ok(completion) => completion,
                        // Without prefill, reads of never-written data are
                        // skipped, mirroring the serial replayer.
                        Err(FtlError::UnmappedRead { .. }) if !self.options.prefill => continue,
                        Err(err) => return Err(err),
                    },
                };
                for op in &completion.ops {
                    let ready = chip_ready[op.chip.0];
                    let op_start = if ready > now { ready } else { now };
                    now = op_start + op.latency;
                    chip_ready[op.chip.0] = now;
                }
                // Recycling the consumed op buffer keeps the traced hot path
                // allocation-free in steady state.
                ftl.device_mut().recycle_ops(completion.ops);
            }

            let latency = now.saturating_sub(issue);
            match request.op {
                IoOp::Read => read_latencies.record(latency),
                IoOp::Write => write_latencies.record(latency),
            }
            if now > last_completion {
                last_completion = now;
            }
            in_flight.push(Reverse(now));
            requests += 1;
        }

        let end = *ftl.metrics();
        let mut summary = RunSummary::from_metrics_delta(ftl.name(), trace.name(), &start, &end);
        summary.device_makespan = makespan_delta(ftl, &busy_start);
        summary.queue_depth = self.queue_depth;
        summary.host_requests = requests;
        summary.host_elapsed = last_completion;
        summary.read_latency = read_latencies.percentiles();
        summary.write_latency = write_latencies.percentiles();
        Ok(summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::Replayer;
    use vflash_ftl::{ConventionalFtl, FtlConfig};
    use vflash_nand::{NandConfig, NandDevice};
    use vflash_trace::IoRequest;

    fn ftl(chips: usize) -> ConventionalFtl {
        let device = NandDevice::new(
            NandConfig::builder()
                .chips(chips)
                .blocks_per_chip(32)
                .pages_per_block(8)
                .page_size_bytes(4096)
                .build()
                .unwrap(),
        );
        ConventionalFtl::new(device, FtlConfig::default()).unwrap()
    }

    fn read_heavy_trace(requests: u64) -> Trace {
        let mut reqs = Vec::new();
        // Scatter writes, then read them back in a shuffled order.
        for i in 0..requests {
            reqs.push(IoRequest::new(i, IoOp::Read, (i * 37 % requests) * 4096, 4096));
        }
        Trace::new("read-heavy", reqs)
    }

    #[test]
    fn zero_queue_depth_is_rejected() {
        let result = std::panic::catch_unwind(|| QueuedReplayer::new(RunOptions::default(), 0));
        assert!(result.is_err());
    }

    #[test]
    fn qd1_matches_the_serial_replayer_on_a_small_trace() {
        let t = read_heavy_trace(64);
        let serial = Replayer::new(RunOptions::default()).run(ftl(2), &t).unwrap();
        let queued = QueuedReplayer::new(RunOptions::default(), 1).run(ftl(2), &t).unwrap();
        assert_eq!(serial, queued);
    }

    #[test]
    fn deeper_queues_overlap_chips_and_cut_elapsed_time() {
        let t = read_heavy_trace(256);
        let qd1 = QueuedReplayer::new(RunOptions::default(), 1).run(ftl(4), &t).unwrap();
        let qd16 = QueuedReplayer::new(RunOptions::default(), 16).run(ftl(4), &t).unwrap();
        // Identical device-state evolution...
        assert_eq!(qd1.host_reads, qd16.host_reads);
        assert_eq!(qd1.read_time, qd16.read_time);
        assert_eq!(qd1.device_makespan, qd16.device_makespan);
        // ...but the queued overlay finishes sooner and serves more IOPS.
        assert!(
            qd16.host_elapsed < qd1.host_elapsed,
            "QD16 {} should beat QD1 {}",
            qd16.host_elapsed,
            qd1.host_elapsed
        );
        assert!(qd16.request_iops() > qd1.request_iops());
        // The overlay can never beat the busiest chip.
        assert!(qd16.host_elapsed >= qd16.device_makespan);
    }

    #[test]
    fn queued_latencies_include_chip_queuing_delay() {
        // Single chip: depth adds pure queuing delay, so per-request p99 grows
        // with depth while elapsed stays the serial sum.
        let t = read_heavy_trace(128);
        let qd1 = QueuedReplayer::new(RunOptions::default(), 1).run(ftl(1), &t).unwrap();
        let qd8 = QueuedReplayer::new(RunOptions::default(), 8).run(ftl(1), &t).unwrap();
        assert_eq!(qd1.host_elapsed, qd8.host_elapsed, "one chip cannot overlap anything");
        assert!(
            qd8.read_latency.p99 > qd1.read_latency.p99,
            "queuing on one chip must inflate tail latency ({} vs {})",
            qd8.read_latency.p99,
            qd1.read_latency.p99
        );
    }

    #[test]
    fn tracing_is_disabled_after_the_run() {
        let t = read_heavy_trace(16);
        let mut f = ftl(2);
        QueuedReplayer::new(RunOptions::default(), 4).run_mut(&mut f, &t).unwrap();
        assert!(!f.device().op_tracing());
    }

    #[test]
    fn unmapped_reads_are_skipped_without_prefill() {
        let t = Trace::new(
            "sparse",
            vec![
                IoRequest::new(0, IoOp::Read, 64 * 1024, 4096),
                IoRequest::new(1, IoOp::Write, 0, 4096),
                IoRequest::new(2, IoOp::Read, 0, 4096),
            ],
        );
        let options = RunOptions { prefill: false, ..RunOptions::default() };
        let summary = QueuedReplayer::new(options, 4).run(ftl(1), &t).unwrap();
        assert_eq!(summary.host_reads, 1);
        assert_eq!(summary.host_writes, 1);
        assert_eq!(summary.host_requests, 3, "skipped requests still complete (with zero work)");
    }
}
