//! Run summaries and baseline/variant comparisons.

use std::fmt;

use vflash_ftl::FtlMetrics;
use vflash_nand::Nanos;

use crate::histogram::LatencyPercentiles;

/// How a summary's replay issued its requests: the engine's arrival discipline,
/// as recorded in the result.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ReplayMode {
    /// Closed-loop (saturation) replay: a fixed number of requests in flight,
    /// arrival timestamps ignored. See [`RunSummary::queue_depth`].
    #[default]
    ClosedLoop,
    /// Open-loop (arrival-time) replay: requests issued at their trace-recorded
    /// arrival times scaled by `rate_scale`, unbounded outstanding requests.
    OpenLoop {
        /// The multiplier applied to the trace's offered arrival rate.
        rate_scale: f64,
    },
}

/// The measurements of one trace replay against one FTL.
///
/// These are exactly the quantities the paper's evaluation plots: total read/write
/// latency (Figures 13, 14, 16, 17), their relative enhancement (Figures 12 and 15)
/// and the erased block count (Figure 18).
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Name of the FTL that served the trace (e.g. `"conventional"` or `"ppb"`).
    pub ftl: String,
    /// Name of the trace that was replayed.
    pub trace: String,
    /// Host page reads served.
    pub host_reads: u64,
    /// Host page writes served.
    pub host_writes: u64,
    /// Total host read latency.
    pub read_time: Nanos,
    /// Total host write latency (garbage collection included).
    pub write_time: Nanos,
    /// Mean host read latency.
    pub mean_read_latency: Nanos,
    /// Mean host write latency.
    pub mean_write_latency: Nanos,
    /// Blocks erased by garbage collection.
    pub erased_blocks: u64,
    /// Valid pages copied by garbage collection.
    pub gc_copied_pages: u64,
    /// Pages migrated across speed classes during garbage collection.
    pub migrated_pages: u64,
    /// Page programs the FTL issued on its own behalf: GC valid-page copies plus
    /// bad-block rescue copies. `host_writes + relocation_writes` is the device's
    /// physical program count, which is what an application stacked on top needs
    /// to report true end-to-end write amplification.
    pub relocation_writes: u64,
    /// Write amplification factor.
    pub write_amplification: f64,
    /// Device time consumed with chip-level interleaving: the largest per-chip busy
    /// time accumulated during the measured phase. On a single-chip device this is
    /// the serial sum of operation latencies; on a multi-chip device it is the time
    /// the busiest chip needed, since the chips service operations independently.
    /// [`Nanos::ZERO`] when the summary was not produced by a replay.
    pub device_makespan: Nanos,
    /// The queue depth the replay was driven at: how many host requests were kept
    /// in flight. `1` for the serial [`Replayer`](crate::Replayer); the configured
    /// depth for [`QueuedReplayer`](crate::QueuedReplayer) runs; `0` for open-loop
    /// runs, where nothing bounds the number of outstanding requests.
    pub queue_depth: usize,
    /// The arrival discipline the replay was driven under (closed loop by
    /// default; open loop carries its rate scale).
    pub mode: ReplayMode,
    /// Host requests replayed in the measured phase (trace requests, not pages —
    /// one request may span several logical pages).
    pub host_requests: u64,
    /// Replay-clock time at which the last request completed. At queue depth 1
    /// this is the serial sum of request latencies (`read_time + write_time`); at
    /// higher depths requests on distinct chips overlap and this shrinks towards
    /// [`RunSummary::device_makespan`]. [`Nanos::ZERO`] when the summary was not
    /// produced by a replay.
    pub host_elapsed: Nanos,
    /// Per-request completion-latency percentiles of the read requests.
    pub read_latency: LatencyPercentiles,
    /// Per-request completion-latency percentiles of the write requests.
    pub write_latency: LatencyPercentiles,
    /// Per-request **queueing delay** percentiles (all requests): the part of a
    /// request's response time spent waiting for busy chips, i.e. completion
    /// latency minus [`RunSummary::service_time`]. Identically zero at closed-loop
    /// depth 1 (nothing to queue behind); under open-loop overload this is the
    /// component that grows without bound.
    pub queue_delay: LatencyPercentiles,
    /// Per-request **service time** percentiles (all requests): the device time a
    /// request's operations actually consumed, excluding any waiting. Unlike the
    /// completion latency, this is invariant across queue depths and rate scales.
    pub service_time: LatencyPercentiles,
    /// For open-loop replays: the span of the (rate-scaled) arrival clock over
    /// which the trace's load was offered. [`Nanos::ZERO`] for closed-loop
    /// replays, where no load is "offered" — the device is simply saturated.
    pub offered_duration: Nanos,
    /// The largest number of requests simultaneously outstanding at any issue
    /// instant (the issued request included). In closed loop this saturates at
    /// the configured [`RunSummary::queue_depth`]; in open loop nothing bounds
    /// it — bursty arrivals drive it far past what the mean rate suggests, which
    /// is exactly the backlog that shows up as p99.9 queueing delay.
    pub peak_queue_depth: usize,
    /// Requests that arrived while at least one earlier request was still in
    /// flight — i.e. that found the system busy and joined a queue. Under
    /// uniform arrivals at low load this stays near zero; heavy-tailed arrivals
    /// at the *same mean rate* push most requests into busy bursts. See
    /// [`RunSummary::busy_arrival_fraction`].
    pub busy_arrivals: u64,
    /// Reads (host and GC alike) that needed at least one read-retry step to
    /// pass ECC. Zero with fault injection off.
    pub retried_reads: u64,
    /// Total extra latency spent in read-retry steps, already folded into the
    /// read/GC times above. See [`RunSummary::retry_latency_fraction`].
    pub read_retry_time: Nanos,
    /// Reads whose retry ladder was exhausted — the data was lost.
    pub uncorrectable_reads: u64,
    /// Blocks retired as bad after program or erase failures during the
    /// measured phase.
    pub bad_blocks_grown: u64,
    /// Page programs re-driven to a fresh block after a program failure.
    pub remapped_writes: u64,
    /// Device makespan at which the FTL entered read-only mode, if it did so by
    /// the end of the measured phase ([`Nanos::ZERO`] otherwise).
    pub time_to_read_only: Nanos,
}

impl RunSummary {
    /// Builds a summary from the delta between two metric snapshots (end minus
    /// start), which is how the replayer excludes warm-up traffic from the report.
    pub fn from_metrics_delta(
        ftl: impl Into<String>,
        trace: impl Into<String>,
        start: &FtlMetrics,
        end: &FtlMetrics,
    ) -> RunSummary {
        let host_reads = end.host_reads - start.host_reads;
        let host_writes = end.host_writes - start.host_writes;
        let read_time = end.host_read_time - start.host_read_time;
        let write_time = end.host_write_time - start.host_write_time;
        let gc_copied_pages = end.gc_copied_pages - start.gc_copied_pages;
        let migrated_pages = end.migrated_pages - start.migrated_pages;
        RunSummary {
            ftl: ftl.into(),
            trace: trace.into(),
            host_reads,
            host_writes,
            read_time,
            write_time,
            mean_read_latency: if host_reads == 0 { Nanos::ZERO } else { read_time / host_reads },
            mean_write_latency: if host_writes == 0 {
                Nanos::ZERO
            } else {
                write_time / host_writes
            },
            erased_blocks: end.gc_erased_blocks - start.gc_erased_blocks,
            gc_copied_pages,
            migrated_pages,
            relocation_writes: end.relocation_writes - start.relocation_writes,
            // Migrated pages are a subset of the GC copies, so they are not added
            // again to the physical write count.
            write_amplification: if host_writes == 0 {
                0.0
            } else {
                (host_writes + gc_copied_pages) as f64 / host_writes as f64
            },
            device_makespan: Nanos::ZERO,
            queue_depth: 1,
            mode: ReplayMode::ClosedLoop,
            host_requests: 0,
            host_elapsed: Nanos::ZERO,
            read_latency: LatencyPercentiles::default(),
            write_latency: LatencyPercentiles::default(),
            queue_delay: LatencyPercentiles::default(),
            service_time: LatencyPercentiles::default(),
            offered_duration: Nanos::ZERO,
            peak_queue_depth: 0,
            busy_arrivals: 0,
            retried_reads: end.retried_reads - start.retried_reads,
            read_retry_time: end.read_retry_time - start.read_retry_time,
            uncorrectable_reads: end.uncorrectable_reads - start.uncorrectable_reads,
            bad_blocks_grown: end.bad_blocks_grown - start.bad_blocks_grown,
            remapped_writes: end.remapped_writes - start.remapped_writes,
            // The read-only transition is a one-shot event: report it only when
            // it happened during the measured phase.
            time_to_read_only: if start.time_to_read_only == Nanos::ZERO {
                end.time_to_read_only
            } else {
                Nanos::ZERO
            },
        }
    }

    /// The fraction of total host latency (reads + writes) that was spent in
    /// read-retry steps, in `[0, 1]`. Zero with fault injection off — and the
    /// knob the fault sweep plots against the RBER scale.
    pub fn retry_latency_fraction(&self) -> f64 {
        let total = self.read_time + self.write_time;
        if total == Nanos::ZERO {
            0.0
        } else {
            self.read_retry_time.as_nanos() as f64 / total.as_nanos() as f64
        }
    }

    /// Fraction of requests that arrived while the system was busy (joined a
    /// queue instead of finding idle chips), in `[0, 1]`. Zero when the replay
    /// served no requests. At fixed mean rate this is the headline burstiness
    /// symptom: uniform arrivals below saturation keep it near zero, while
    /// Pareto/on-off arrivals concentrate requests into busy bursts.
    pub fn busy_arrival_fraction(&self) -> f64 {
        if self.host_requests == 0 {
            0.0
        } else {
            self.busy_arrivals as f64 / self.host_requests as f64
        }
    }

    /// Host page operations (reads + writes, counted per logical page, not per
    /// request) served per second of simulated device time (chip-interleaved), or
    /// zero when no makespan was recorded. Divide by the workload's mean pages per
    /// request to get a request rate.
    pub fn host_ops_per_sec(&self) -> f64 {
        if self.device_makespan == Nanos::ZERO {
            0.0
        } else {
            (self.host_reads + self.host_writes) as f64 / self.device_makespan.as_secs_f64()
        }
    }

    /// Achieved IOPS: host requests completed per second of replay-clock time
    /// ([`RunSummary::host_elapsed`]), or zero when no elapsed time was recorded.
    /// This is the throughput the queue-depth sweep reports — at depth 1 it is the
    /// reciprocal of the mean request latency, and it grows with depth as long as
    /// independent requests land on distinct idle chips.
    pub fn request_iops(&self) -> f64 {
        if self.host_elapsed == Nanos::ZERO {
            0.0
        } else {
            self.host_requests as f64 / self.host_elapsed.as_secs_f64()
        }
    }

    /// Offered IOPS: host requests per second of (rate-scaled) arrival-clock time
    /// — the load an open-loop replay *asked* the device to absorb. Zero for
    /// closed-loop replays (no [`RunSummary::offered_duration`] is recorded). The
    /// achieved [`RunSummary::request_iops`] never exceeds this: the replay clock
    /// runs at least as long as the arrival clock, so a device that keeps up
    /// achieves ≈ offered and an overloaded one falls behind.
    pub fn offered_iops(&self) -> f64 {
        if self.offered_duration == Nanos::ZERO {
            0.0
        } else {
            self.host_requests as f64 / self.offered_duration.as_secs_f64()
        }
    }
}

impl fmt::Display for RunSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}: {} reads ({} total, {} mean), {} writes ({} total, {} mean), {} erases, WAF {:.3}",
            self.trace,
            self.ftl,
            self.host_reads,
            self.read_time,
            self.mean_read_latency,
            self.host_writes,
            self.write_time,
            self.mean_write_latency,
            self.erased_blocks,
            self.write_amplification,
        )?;
        if self.host_elapsed > Nanos::ZERO {
            match self.mode {
                ReplayMode::ClosedLoop => write!(
                    f,
                    ", QD{} {:.0} IOPS (read p99 {}, write p99 {})",
                    self.queue_depth,
                    self.request_iops(),
                    self.read_latency.p99,
                    self.write_latency.p99,
                )?,
                ReplayMode::OpenLoop { rate_scale } => write!(
                    f,
                    ", open-loop x{rate_scale} {:.0}/{:.0} IOPS achieved/offered \
                     (queue delay p99 {}, service p99 {}, peak QD {}, {:.0}% busy arrivals)",
                    self.request_iops(),
                    self.offered_iops(),
                    self.queue_delay.p99,
                    self.service_time.p99,
                    self.peak_queue_depth,
                    self.busy_arrival_fraction() * 100.0,
                )?,
            }
        }
        if self.retried_reads > 0 || self.uncorrectable_reads > 0 || self.bad_blocks_grown > 0 {
            write!(
                f,
                ", faults: {} retried reads ({:.2}% of host time), {} uncorrectable, \
                 {} bad blocks, {} remaps",
                self.retried_reads,
                self.retry_latency_fraction() * 100.0,
                self.uncorrectable_reads,
                self.bad_blocks_grown,
                self.remapped_writes,
            )?;
            if self.time_to_read_only > Nanos::ZERO {
                write!(f, ", read-only at {}", self.time_to_read_only)?;
            }
        }
        Ok(())
    }
}

/// A baseline-versus-variant comparison of two runs of the same trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// The baseline run (the paper's "conventional FTL").
    pub baseline: RunSummary,
    /// The variant run (the paper's "FTL with PPB strategy").
    pub variant: RunSummary,
}

impl Comparison {
    /// Pairs a baseline run with a variant run.
    pub fn new(baseline: RunSummary, variant: RunSummary) -> Self {
        Comparison { baseline, variant }
    }

    fn enhancement_pct(baseline: Nanos, variant: Nanos) -> f64 {
        if baseline == Nanos::ZERO {
            0.0
        } else {
            (baseline.as_nanos() as f64 - variant.as_nanos() as f64) / baseline.as_nanos() as f64
                * 100.0
        }
    }

    /// Read performance enhancement in percent (positive = the variant is faster).
    /// This is the quantity plotted in Figure 12.
    pub fn read_enhancement_pct(&self) -> f64 {
        Self::enhancement_pct(self.baseline.read_time, self.variant.read_time)
    }

    /// Write performance enhancement in percent (positive = the variant is faster).
    /// This is the quantity plotted in Figure 15.
    pub fn write_enhancement_pct(&self) -> f64 {
        Self::enhancement_pct(self.baseline.write_time, self.variant.write_time)
    }

    /// Relative change in erased blocks in percent (positive = the variant erased
    /// more). The paper's Figure 18 argues this stays near zero.
    pub fn erase_increase_pct(&self) -> f64 {
        if self.baseline.erased_blocks == 0 {
            0.0
        } else {
            (self.variant.erased_blocks as f64 - self.baseline.erased_blocks as f64)
                / self.baseline.erased_blocks as f64
                * 100.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(reads: u64, read_us: u64, writes: u64, write_us: u64, erased: u64) -> FtlMetrics {
        let mut m = FtlMetrics::new();
        for _ in 0..reads {
            m.record_host_read(Nanos::from_micros(read_us));
        }
        for _ in 0..writes {
            m.record_host_write(Nanos::from_micros(write_us));
        }
        m.record_gc(0, erased, Nanos::ZERO);
        m
    }

    #[test]
    fn summary_from_delta_excludes_warmup() {
        let start = metrics(10, 100, 10, 600, 2);
        let mut end = start;
        end.record_host_read(Nanos::from_micros(50));
        end.record_host_write(Nanos::from_micros(700));
        end.record_gc(3, 1, Nanos::from_millis(4));
        let summary = RunSummary::from_metrics_delta("ppb", "web", &start, &end);
        assert_eq!(summary.host_reads, 1);
        assert_eq!(summary.host_writes, 1);
        assert_eq!(summary.read_time, Nanos::from_micros(50));
        assert_eq!(summary.write_time, Nanos::from_micros(700));
        assert_eq!(summary.erased_blocks, 1);
        assert_eq!(summary.gc_copied_pages, 3);
        assert_eq!(summary.write_amplification, 4.0);
        assert!(summary.to_string().contains("web/ppb"));
    }

    #[test]
    fn zero_request_summaries_do_not_divide_by_zero() {
        let m = FtlMetrics::new();
        let summary = RunSummary::from_metrics_delta("x", "y", &m, &m);
        assert_eq!(summary.mean_read_latency, Nanos::ZERO);
        assert_eq!(summary.mean_write_latency, Nanos::ZERO);
        assert_eq!(summary.write_amplification, 0.0);
        assert_eq!(summary.request_iops(), 0.0);
        assert_eq!(summary.queue_depth, 1);
        assert_eq!(summary.read_latency, LatencyPercentiles::default());
    }

    #[test]
    fn request_iops_uses_the_replay_clock() {
        let m = FtlMetrics::new();
        let mut summary = RunSummary::from_metrics_delta("x", "y", &m, &m);
        summary.host_requests = 2_000;
        summary.host_elapsed = Nanos::from_millis(500);
        assert_eq!(summary.request_iops(), 4_000.0);
        summary.queue_depth = 16;
        assert!(summary.to_string().contains("QD16"), "display shows depth: {summary}");
    }

    #[test]
    fn offered_iops_uses_the_arrival_clock() {
        let m = FtlMetrics::new();
        let mut summary = RunSummary::from_metrics_delta("x", "y", &m, &m);
        assert_eq!(summary.offered_iops(), 0.0, "closed loop offers nothing");
        summary.host_requests = 1_000;
        summary.host_elapsed = Nanos::from_millis(250);
        summary.offered_duration = Nanos::from_millis(100);
        summary.mode = ReplayMode::OpenLoop { rate_scale: 2.0 };
        assert_eq!(summary.offered_iops(), 10_000.0);
        assert_eq!(summary.request_iops(), 4_000.0);
        let text = summary.to_string();
        assert!(text.contains("open-loop x2"), "display names the mode: {text}");
        assert!(text.contains("achieved/offered"), "{text}");
    }

    #[test]
    fn reliability_metrics_flow_through_the_delta() {
        let mut start = FtlMetrics::new();
        start.record_read_retries(2, Nanos::from_micros(50));
        let mut end = start;
        end.record_host_read(Nanos::from_micros(100));
        end.record_host_write(Nanos::from_micros(300));
        end.record_read_retries(3, Nanos::from_micros(100));
        end.record_uncorrectable_read();
        end.record_bad_block();
        end.record_remap();
        end.record_read_only(Nanos::from_millis(7));
        let summary = RunSummary::from_metrics_delta("ppb", "t", &start, &end);
        assert_eq!(summary.retried_reads, 1);
        assert_eq!(summary.read_retry_time, Nanos::from_micros(100));
        assert_eq!(summary.uncorrectable_reads, 1);
        assert_eq!(summary.bad_blocks_grown, 1);
        assert_eq!(summary.remapped_writes, 1);
        assert_eq!(summary.time_to_read_only, Nanos::from_millis(7));
        assert!((summary.retry_latency_fraction() - 0.25).abs() < 1e-12);
        let text = summary.to_string();
        assert!(text.contains("1 retried reads"), "{text}");
        assert!(text.contains("read-only at"), "{text}");

        // A transition that happened before the measured phase is not re-reported.
        let mut warm = FtlMetrics::new();
        warm.record_read_only(Nanos::from_millis(1));
        let again = RunSummary::from_metrics_delta("ppb", "t", &warm, &warm);
        assert_eq!(again.time_to_read_only, Nanos::ZERO);
    }

    #[test]
    fn fault_free_summaries_stay_quiet() {
        let summary = RunSummary::from_metrics_delta(
            "conventional",
            "t",
            &FtlMetrics::new(),
            &metrics(10, 100, 10, 600, 2),
        );
        assert_eq!(summary.retried_reads, 0);
        assert_eq!(summary.retry_latency_fraction(), 0.0);
        assert!(!summary.to_string().contains("faults:"));
    }

    #[test]
    fn enhancement_percentages() {
        let baseline = RunSummary::from_metrics_delta(
            "conventional",
            "t",
            &FtlMetrics::new(),
            &metrics(10, 100, 10, 600, 10),
        );
        let variant = RunSummary::from_metrics_delta(
            "ppb",
            "t",
            &FtlMetrics::new(),
            &metrics(10, 80, 10, 600, 11),
        );
        let comparison = Comparison::new(baseline, variant);
        assert!((comparison.read_enhancement_pct() - 20.0).abs() < 1e-9);
        assert!(comparison.write_enhancement_pct().abs() < 1e-9);
        assert!((comparison.erase_increase_pct() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn zero_baselines_report_zero_enhancement() {
        let empty = RunSummary::from_metrics_delta("a", "t", &FtlMetrics::new(), &FtlMetrics::new());
        let comparison = Comparison::new(empty.clone(), empty);
        assert_eq!(comparison.read_enhancement_pct(), 0.0);
        assert_eq!(comparison.write_enhancement_pct(), 0.0);
        assert_eq!(comparison.erase_increase_pct(), 0.0);
    }
}
