//! The workload-driver engine: one drive loop for every replay discipline.
//!
//! Historically the crate had two divergent replayers — a serial `Replayer`
//! (queue depth 1, summed latencies) and an event-driven `QueuedReplayer`
//! (queue-depth N over per-chip ready clocks). Both were **closed-loop**: the next
//! request was issued the moment a queue slot freed, so every reported percentile
//! was a saturation number and the arrival timestamps the traces carry were
//! ignored. This module collapses the two loops into a single engine,
//! parameterised by an [`ArrivalDiscipline`]:
//!
//! * [`ArrivalDiscipline::ClosedLoop`] — keep `queue_depth` requests in flight;
//!   a request is issued when the earliest in-flight request completes. At depth 1
//!   this reproduces the serial replayer **bit-for-bit** (summary and device
//!   state), at depth N the queued replayer — both guarantees are locked down by
//!   `tests/engine_equivalence.rs` against reference implementations of the
//!   pre-refactor loops.
//! * [`ArrivalDiscipline::OpenLoop`] — issue each request at its trace-recorded
//!   arrival time (`at_nanos`, scaled by `rate_scale`), queueing on the device
//!   when it is busy. This is what exposes *latency under load*: response time
//!   decomposes into **queueing delay** (time spent waiting for busy chips) and
//!   **service time** (time the device actually worked), reported separately in
//!   the [`RunSummary`], together with offered vs achieved IOPS.
//!
//! # The timing model
//!
//! FTL state (mapping tables, GC, hot/cold areas) evolves in **trace order**
//! regardless of discipline — requests are submitted to the FTL one after another
//! and only the timing is overlaid by the event model. This keeps device state
//! identical across queue depths and rate scales, so throughput and latency
//! differences are attributable to queuing alone.
//!
//! For each request the engine obtains the request's timed device operations (via
//! [`submit`](vflash_ftl::FlashTranslationLayer::submit) completions with
//! [op tracing](vflash_nand::NandDevice::set_op_tracing) enabled) and plays them
//! against per-chip ready clocks:
//!
//! ```text
//! issue   = slot-free time (closed loop) | scaled arrival time (open loop)
//! op k:     start = max(end of op k-1, chip_ready[chip(k)])
//!           chip_ready[chip(k)] = start + latency(k)
//! latency = end of last op - issue
//! service = Σ latency(k);   queueing delay = latency - service
//! ```
//!
//! At closed-loop depth 1 every `max` resolves to the running clock, so the op
//! overlay is unnecessary; the engine then runs with tracing off and charges each
//! page's completion latency serially — the exact code path (and cost) of the old
//! serial replayer. Depth 1 additionally needs no event bookkeeping at all (the
//! next request issues exactly at the previous completion, so no arrival ever
//! finds the system busy), and the engine runs it as a pure scalar-clock loop.
//!
//! # The event calendar
//!
//! Every other configuration drains one
//! [`EventCalendar`](crate::calendar::EventCalendar): a single binary heap of
//! typed events (host completions, today) plus the per-chip ready clocks. The
//! closed-loop slot wait pops the earliest completion from the same heap that
//! the retirement sweep drains — see `calendar.rs` for why one heap reproduces
//! the historic slot-heap/outstanding-heap pair bit-for-bit. Completions carry
//! [`OpSpan`](vflash_nand::OpSpan)s into the device's op arena rather than
//! per-request vectors, so the traced hot path performs no allocation per
//! request: the engine plays a span against the calendar and releases the arena
//! before the next page.

use vflash_ftl::{FlashTranslationLayer, FtlError, IoRequest as FtlRequest, Lpn};
use vflash_nand::{ChipId, Nanos};
use vflash_trace::{IoOp, Trace};

use crate::calendar::EventCalendar;
use crate::histogram::LatencyHistogram;
use crate::report::{ReplayMode, RunSummary};

/// A word-packed bitmap over logical page numbers.
///
/// The prefill pass needs one bit per logical page; on multi-million-page devices a
/// `Vec<bool>` would spend a byte per page, so pages are packed 64 to a `u64` (8x
/// less memory and far fewer cache lines touched by the marking pass).
#[derive(Debug, Clone)]
struct PageBitmap {
    words: Vec<u64>,
}

impl PageBitmap {
    fn new(pages: u64) -> Self {
        PageBitmap { words: vec![0; (pages as usize).div_ceil(64)] }
    }

    fn set(&mut self, page: u64) {
        self.words[(page / 64) as usize] |= 1 << (page % 64);
    }

    #[cfg(test)]
    fn get(&self, page: u64) -> bool {
        self.words[(page / 64) as usize] & (1 << (page % 64)) != 0
    }

    /// Iterates over set pages in ascending order, skipping empty words wholesale.
    fn iter_set(&self) -> impl Iterator<Item = u64> + '_ {
        self.words.iter().enumerate().flat_map(|(word_index, &word)| {
            let base = word_index as u64 * 64;
            std::iter::successors(
                (word != 0).then_some(word),
                |bits| {
                    let rest = bits & (bits - 1);
                    (rest != 0).then_some(rest)
                },
            )
            .map(move |bits| base + u64::from(bits.trailing_zeros()))
        })
    }
}

/// Options controlling how a trace is replayed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOptions {
    /// Write every logical page the trace will ever touch once before replay starts,
    /// so that reads of data the trace never wrote behave like reads of pre-existing
    /// data instead of errors. The warm-up traffic is excluded from the reported
    /// summary. Enabled by default.
    ///
    /// The warm-up exists to serve reads, so a trace containing no read at all skips
    /// it even when this flag is set: the replay then runs against a fresh device.
    /// Callers who want a write-only workload measured on a preconditioned device
    /// should age the device explicitly (replay a fill trace first via
    /// [`WorkloadDriver::run_mut`]).
    pub prefill: bool,
    /// Request size (bytes) used for the warm-up writes. Large by default so the
    /// warm-up data is classified cold and does not pre-bias the hot/cold state.
    pub prefill_request_bytes: u32,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions { prefill: true, prefill_request_bytes: 1 << 20 }
    }
}

/// How the engine decides *when* each trace request is issued to the device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalDiscipline {
    /// Saturation replay: keep up to `queue_depth` host requests in flight; the
    /// next request is issued the moment the earliest in-flight one completes.
    /// Arrival timestamps in the trace are ignored. Depth 1 is the classic serial
    /// replay.
    ClosedLoop {
        /// Maximum host requests in flight (at least 1).
        queue_depth: usize,
    },
    /// Arrival-time replay: each request is issued at its trace-recorded
    /// `at_nanos` divided by `rate_scale`, and queues on the device when chips
    /// are busy. `rate_scale = 1.0` offers exactly the trace's recorded load;
    /// `2.0` compresses arrivals to twice the offered rate; `0.5` halves it.
    OpenLoop {
        /// Multiplier on the trace's offered arrival rate (positive and finite).
        rate_scale: f64,
    },
}

impl ArrivalDiscipline {
    /// Whether this discipline needs per-op provenance (chips + latencies) from
    /// the FTL. Closed-loop depth 1 degenerates to serial accumulation, where the
    /// overlay is pure overhead.
    fn needs_op_tracing(self) -> bool {
        match self {
            ArrivalDiscipline::ClosedLoop { queue_depth } => queue_depth > 1,
            ArrivalDiscipline::OpenLoop { .. } => true,
        }
    }

    fn validate(self) {
        match self {
            ArrivalDiscipline::ClosedLoop { queue_depth } => {
                assert!(queue_depth > 0, "queue depth must be at least 1");
            }
            ArrivalDiscipline::OpenLoop { rate_scale } => {
                assert!(
                    rate_scale.is_finite() && rate_scale > 0.0,
                    "rate scale must be positive and finite"
                );
            }
        }
    }
}

/// Scales a trace arrival timestamp by the open-loop rate multiplier.
fn scale_arrival(at_nanos: u64, rate_scale: f64) -> Nanos {
    if rate_scale == 1.0 {
        Nanos(at_nanos)
    } else {
        Nanos((at_nanos as f64 / rate_scale).round() as u64)
    }
}

/// The unified workload driver: replays a [`Trace`] against any
/// [`FlashTranslationLayer`] under a chosen [`ArrivalDiscipline`] and reports a
/// [`RunSummary`].
///
/// The serial [`Replayer`](crate::Replayer) and the queue-depth
/// [`QueuedReplayer`](crate::QueuedReplayer) are thin compatibility wrappers over
/// this type.
///
/// # Example
///
/// ```
/// use vflash_ftl::{ConventionalFtl, FtlConfig};
/// use vflash_nand::{NandConfig, NandDevice};
/// use vflash_sim::{ArrivalDiscipline, RunOptions, WorkloadDriver};
/// use vflash_trace::synthetic::{self, SyntheticConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let trace = synthetic::web_sql_server(SyntheticConfig {
///     requests: 500,
///     working_set_bytes: 4 * 1024 * 1024,
///     ..Default::default()
/// });
/// let device = NandDevice::new(
///     NandConfig::builder()
///         .chips(4)
///         .blocks_per_chip(24)
///         .pages_per_block(32)
///         .page_size_bytes(16 * 1024)
///         .build()?,
/// );
/// let ftl = ConventionalFtl::new(device, FtlConfig::default())?;
/// let driver = WorkloadDriver::open_loop(RunOptions::default(), 1.0);
/// let summary = driver.run(ftl, &trace)?;
/// // Open-loop runs cannot serve more than they are offered.
/// assert!(summary.request_iops() <= summary.offered_iops());
/// assert!(summary.service_time.p50 > vflash_nand::Nanos::ZERO);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadDriver {
    options: RunOptions,
    discipline: ArrivalDiscipline,
}

impl WorkloadDriver {
    /// Creates a driver with explicit options and discipline.
    ///
    /// # Panics
    ///
    /// Panics on a zero queue depth or a non-positive/non-finite rate scale.
    pub fn new(options: RunOptions, discipline: ArrivalDiscipline) -> Self {
        discipline.validate();
        WorkloadDriver { options, discipline }
    }

    /// A closed-loop (saturation) driver at the given queue depth.
    ///
    /// # Panics
    ///
    /// Panics if `queue_depth` is zero.
    pub fn closed_loop(options: RunOptions, queue_depth: usize) -> Self {
        WorkloadDriver::new(options, ArrivalDiscipline::ClosedLoop { queue_depth })
    }

    /// An open-loop (arrival-time) driver at the given rate scale.
    ///
    /// # Panics
    ///
    /// Panics if `rate_scale` is not positive and finite.
    pub fn open_loop(options: RunOptions, rate_scale: f64) -> Self {
        WorkloadDriver::new(options, ArrivalDiscipline::OpenLoop { rate_scale })
    }

    /// The replay options.
    pub fn options(&self) -> &RunOptions {
        &self.options
    }

    /// The arrival discipline.
    pub fn discipline(&self) -> ArrivalDiscipline {
        self.discipline
    }

    /// Replays `trace` against `ftl` and returns the run summary.
    ///
    /// Byte offsets are translated to logical pages using the device's page size,
    /// and wrapped modulo the exported logical capacity so any trace can be
    /// replayed on any device size (the standard trick for replaying enterprise
    /// traces on scaled simulators).
    ///
    /// # Errors
    ///
    /// Propagates FTL errors ([`FtlError::OutOfSpace`] and internal device
    /// errors). Unmapped reads only occur when `prefill` is disabled; with the
    /// default options they cannot happen.
    pub fn run<F: FlashTranslationLayer>(
        &self,
        mut ftl: F,
        trace: &Trace,
    ) -> Result<RunSummary, FtlError> {
        self.run_mut(&mut ftl, trace)
    }

    /// Like [`WorkloadDriver::run`] but borrows the FTL, so callers can keep using
    /// it (and its device state) after the replay — e.g. to replay a second trace
    /// on a pre-aged device.
    ///
    /// # Errors
    ///
    /// Propagates FTL errors; see [`WorkloadDriver::run`].
    pub fn run_mut<F: FlashTranslationLayer + ?Sized>(
        &self,
        ftl: &mut F,
        trace: &Trace,
    ) -> Result<RunSummary, FtlError> {
        let page_size = ftl.device().config().page_size_bytes();
        let logical_pages = ftl.logical_pages();

        // The warm-up always runs serially with tracing off, so device state
        // entering the measured phase is identical across disciplines.
        if self.options.prefill {
            prefill_ftl(ftl, trace, page_size, logical_pages, self.options.prefill_request_bytes)?;
        }

        let trace_ops = self.discipline.needs_op_tracing();
        if trace_ops {
            ftl.device_mut().set_op_tracing(true);
        }
        let outcome = self.drive(ftl, trace, page_size, logical_pages);
        if trace_ops {
            ftl.device_mut().set_op_tracing(false);
        }
        outcome
    }

    /// The single drive loop shared by every discipline: each request walks
    /// issue → retire → play → schedule against one [`EventCalendar`].
    fn drive<F: FlashTranslationLayer + ?Sized>(
        &self,
        ftl: &mut F,
        trace: &Trace,
        page_size: usize,
        logical_pages: u64,
    ) -> Result<RunSummary, FtlError> {
        let start = *ftl.metrics();
        let busy_start = chip_busy_times(ftl);
        let chips = ftl.device().config().chips();

        let mut read_latencies = LatencyHistogram::new();
        let mut write_latencies = LatencyHistogram::new();
        let mut queue_delays = LatencyHistogram::new();
        let mut service_times = LatencyHistogram::new();
        let mut last_completion = Nanos::ZERO;
        let mut first_arrival: Option<Nanos> = None;
        let mut last_arrival = Nanos::ZERO;
        let mut requests = 0u64;

        let (peak_queue_depth, busy_arrivals) = if self.discipline
            == (ArrivalDiscipline::ClosedLoop { queue_depth: 1 })
        {
            // Scalar fast path. At depth 1 each request issues exactly at the
            // previous completion: the calendar would hold at most one event,
            // retired on the very next arrival, so no arrival ever finds the
            // system busy and the whole event machinery reduces to one running
            // clock (with peak backlog 1 and zero busy arrivals by
            // construction). Tracing is off here, so pages charge serially.
            let mut clock = Nanos::ZERO;
            for request in trace {
                let issue = clock;
                for page in request.logical_pages(page_size) {
                    let lpn = Lpn(page % logical_pages);
                    let completion = match request.op {
                        IoOp::Write => ftl.submit(FtlRequest::write(lpn, request.length))?,
                        IoOp::Read => match ftl.submit(FtlRequest::read(lpn)) {
                            Ok(completion) => completion,
                            // Without prefill, reads of never-written data are
                            // skipped, mirroring how a real host would simply
                            // get zeroes back.
                            Err(FtlError::UnmappedRead { .. }) if !self.options.prefill => {
                                continue
                            }
                            Err(err) => return Err(err),
                        },
                    };
                    clock += completion.latency;
                }
                let latency = clock.saturating_sub(issue);
                match request.op {
                    IoOp::Read => read_latencies.record(latency),
                    IoOp::Write => write_latencies.record(latency),
                }
                queue_delays.record(Nanos::ZERO);
                service_times.record(latency);
                requests += 1;
            }
            last_completion = clock;
            (usize::from(requests > 0), 0)
        } else {
            let heap_capacity = match self.discipline {
                ArrivalDiscipline::ClosedLoop { queue_depth } => queue_depth,
                ArrivalDiscipline::OpenLoop { .. } => 64,
            };
            let mut calendar = EventCalendar::new(chips, heap_capacity);
            let mut clock = Nanos::ZERO;

            for request in trace {
                // When is this request issued?
                let issue = match self.discipline {
                    ArrivalDiscipline::ClosedLoop { queue_depth } => {
                        // Wait for a queue slot: at full depth the issue time is
                        // the earliest pending completion (the clock never moves
                        // backwards, so issue order is preserved). Below full
                        // depth — retirement already drained the backlog — that
                        // earliest completion preceded an earlier issue and the
                        // clock already covers it.
                        if calendar.outstanding() >= queue_depth {
                            let freed =
                                calendar.pop_earliest().expect("queue depth is at least 1");
                            if freed > clock {
                                clock = freed;
                            }
                        }
                        clock
                    }
                    ArrivalDiscipline::OpenLoop { rate_scale } => {
                        // The trace-recorded arrival time, compressed or
                        // stretched by the rate scale. Nothing bounds how many
                        // requests are outstanding — that is what "open loop"
                        // means. Issue times are rebased against the trace's
                        // first arrival: a subset cut from the middle of an MSR
                        // file keeps file-relative timestamps (deliberately —
                        // see `msr::SubsetOptions`), and without the rebase that
                        // offset would count as replay time and deflate the
                        // achieved IOPS.
                        let arrival = scale_arrival(request.at_nanos, rate_scale);
                        let base = *first_arrival.get_or_insert(arrival);
                        if arrival > last_arrival {
                            last_arrival = arrival;
                        }
                        arrival.saturating_sub(base)
                    }
                };
                // Retire every completion at or before this issue instant;
                // whatever remains is the queue this arrival joins.
                calendar.observe_arrival(issue);

                let mut now = issue;
                let mut service = Nanos::ZERO;

                // A multi-page host request is a dependent chain of page
                // submissions; each timed device op starts when both its
                // predecessor in the chain and its chip are ready.
                for page in request.logical_pages(page_size) {
                    let lpn = Lpn(page % logical_pages);
                    let completion = match request.op {
                        IoOp::Write => ftl.submit(FtlRequest::write(lpn, request.length))?,
                        IoOp::Read => match ftl.submit(FtlRequest::read(lpn)) {
                            Ok(completion) => completion,
                            Err(FtlError::UnmappedRead { .. }) if !self.options.prefill => {
                                continue
                            }
                            Err(err) => return Err(err),
                        },
                    };
                    let span = completion.ops;
                    if span.is_empty() {
                        now += completion.latency;
                        service += completion.latency;
                    } else {
                        for op in ftl.device().ops(span) {
                            now = calendar.play_op(op.chip.0, now, op.latency);
                            service += op.latency;
                        }
                        // Release the op arena: spans never outlive the page
                        // that produced them, so the backing buffer stays at
                        // one page's worth of records and never reallocates.
                        ftl.device_mut().clear_ops();
                    }
                }

                let latency = now.saturating_sub(issue);
                match request.op {
                    IoOp::Read => read_latencies.record(latency),
                    IoOp::Write => write_latencies.record(latency),
                }
                queue_delays.record(latency.saturating_sub(service));
                service_times.record(service);
                if now > last_completion {
                    last_completion = now;
                }
                calendar.schedule_completion(now);
                requests += 1;
            }

            (calendar.peak_outstanding(), calendar.busy_arrivals())
        };

        let end = *ftl.metrics();
        let mut summary = RunSummary::from_metrics_delta(ftl.name(), trace.name(), &start, &end);
        summary.device_makespan = makespan_delta(ftl, &busy_start);
        summary.host_requests = requests;
        summary.host_elapsed = last_completion;
        summary.read_latency = read_latencies.percentiles();
        summary.write_latency = write_latencies.percentiles();
        summary.queue_delay = queue_delays.percentiles();
        summary.service_time = service_times.percentiles();
        summary.peak_queue_depth = peak_queue_depth;
        summary.busy_arrivals = busy_arrivals;
        match self.discipline {
            ArrivalDiscipline::ClosedLoop { queue_depth } => {
                summary.queue_depth = queue_depth;
                summary.mode = ReplayMode::ClosedLoop;
            }
            ArrivalDiscipline::OpenLoop { rate_scale } => {
                // No queue-depth bound exists in open loop; 0 marks "unbounded".
                summary.queue_depth = 0;
                summary.mode = ReplayMode::OpenLoop { rate_scale };
                summary.offered_duration =
                    last_arrival.saturating_sub(first_arrival.unwrap_or(Nanos::ZERO));
            }
        }
        Ok(summary)
    }
}

/// Snapshot of every chip's busy time, used to compute the measured-phase
/// makespan as a delta (excluding prefill traffic).
pub(crate) fn chip_busy_times<F: FlashTranslationLayer + ?Sized>(ftl: &F) -> Vec<Nanos> {
    let device = ftl.device();
    (0..device.config().chips())
        .map(|chip| {
            device.chip_busy_time(ChipId(chip)).expect("chip ids come from the config")
        })
        .collect()
}

/// The measured-phase makespan: largest per-chip busy-time delta since `start`.
pub(crate) fn makespan_delta<F: FlashTranslationLayer + ?Sized>(
    ftl: &F,
    start: &[Nanos],
) -> Nanos {
    chip_busy_times(ftl)
        .iter()
        .zip(start)
        .map(|(&end, &begin)| end.saturating_sub(begin))
        .max()
        .unwrap_or(Nanos::ZERO)
}

/// Writes every logical page the trace touches exactly once (in ascending order),
/// so later reads always find mapped data. Shared by every discipline, so any
/// replay warms the device **identically** — a precondition for the bit-identity
/// guarantees between disciplines.
///
/// Traces without a single read skip the warm-up entirely: the prefill exists
/// only so reads of never-written data behave like reads of pre-existing data,
/// and a write-only trace has none.
pub(crate) fn prefill_ftl<F: FlashTranslationLayer + ?Sized>(
    ftl: &mut F,
    trace: &Trace,
    page_size: usize,
    logical_pages: u64,
    prefill_request_bytes: u32,
) -> Result<(), FtlError> {
    if !trace.iter().any(|request| request.op == IoOp::Read) {
        return Ok(());
    }
    let mut touched = PageBitmap::new(logical_pages);
    for request in trace {
        for page in request.logical_pages(page_size) {
            touched.set(page % logical_pages);
        }
    }
    for page in touched.iter_set() {
        ftl.write(Lpn(page), prefill_request_bytes)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vflash_ftl::{ConventionalFtl, FtlConfig};
    use vflash_nand::{NandConfig, NandDevice};
    use vflash_trace::IoRequest;

    fn ftl(chips: usize) -> ConventionalFtl {
        let device = NandDevice::new(
            NandConfig::builder()
                .chips(chips)
                .blocks_per_chip(32)
                .pages_per_block(8)
                .page_size_bytes(4096)
                .build()
                .unwrap(),
        );
        ConventionalFtl::new(device, FtlConfig::default()).unwrap()
    }

    /// A read-back trace with arrivals spaced 1 ms apart.
    fn paced_trace(requests: u64, gap_nanos: u64) -> Trace {
        let mut reqs = Vec::new();
        for i in 0..requests {
            reqs.push(IoRequest::new(
                i * gap_nanos,
                IoOp::Read,
                (i * 37 % requests) * 4096,
                4096,
            ));
        }
        Trace::new("paced", reqs)
    }

    #[test]
    fn bitmap_sets_and_iterates_in_ascending_order() {
        let mut bitmap = PageBitmap::new(200);
        for page in [0u64, 1, 63, 64, 65, 127, 128, 199] {
            bitmap.set(page);
        }
        assert!(bitmap.get(63));
        assert!(!bitmap.get(62));
        let set: Vec<u64> = bitmap.iter_set().collect();
        assert_eq!(set, vec![0, 1, 63, 64, 65, 127, 128, 199]);
    }

    #[test]
    fn empty_bitmap_iterates_nothing() {
        let bitmap = PageBitmap::new(500);
        assert_eq!(bitmap.iter_set().count(), 0);
    }

    #[test]
    fn zero_queue_depth_and_bad_rate_scales_are_rejected() {
        assert!(std::panic::catch_unwind(|| {
            WorkloadDriver::closed_loop(RunOptions::default(), 0)
        })
        .is_err());
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(
                std::panic::catch_unwind(|| {
                    WorkloadDriver::open_loop(RunOptions::default(), bad)
                })
                .is_err(),
                "rate scale {bad} must be rejected"
            );
        }
    }

    #[test]
    fn arrival_scaling_is_exact_at_unit_rate() {
        assert_eq!(scale_arrival(123_456, 1.0), Nanos(123_456));
        assert_eq!(scale_arrival(1_000, 2.0), Nanos(500));
        assert_eq!(scale_arrival(1_000, 0.5), Nanos(2_000));
    }

    #[test]
    fn open_loop_idle_device_has_zero_queue_delay() {
        // 1 ms between arrivals on a device whose reads take tens of µs: every
        // request finds the chips idle, so latency == service and delay == 0.
        let trace = paced_trace(64, 1_000_000);
        let summary = WorkloadDriver::open_loop(RunOptions::default(), 1.0)
            .run(ftl(2), &trace)
            .unwrap();
        assert_eq!(summary.queue_delay.max, Nanos::ZERO);
        assert_eq!(summary.read_latency, summary.service_time);
        assert_eq!(summary.peak_queue_depth, 1, "idle arrivals never overlap");
        assert_eq!(summary.busy_arrivals, 0);
        assert_eq!(summary.busy_arrival_fraction(), 0.0);
        assert!(summary.offered_duration > Nanos::ZERO);
        assert!(summary.request_iops() <= summary.offered_iops());
        assert_eq!(summary.queue_depth, 0, "open loop has no depth bound");
        assert!(matches!(summary.mode, ReplayMode::OpenLoop { rate_scale } if rate_scale == 1.0));
    }

    #[test]
    fn overload_builds_queueing_delay() {
        // 1 ns between arrivals: the device cannot keep up, so queueing delay
        // dominates and the tail grows far beyond the service time.
        let trace = paced_trace(256, 1);
        let summary = WorkloadDriver::open_loop(RunOptions::default(), 1.0)
            .run(ftl(1), &trace)
            .unwrap();
        assert!(summary.queue_delay.p99 > summary.service_time.p99);
        assert!(summary.request_iops() < summary.offered_iops());
        // All-at-once arrivals: every request but the first finds the device
        // busy, and the backlog peaks at (almost) the whole trace.
        assert_eq!(summary.busy_arrivals, 255);
        assert!(summary.peak_queue_depth > 200, "backlog {}", summary.peak_queue_depth);
        assert!(summary.queue_delay.p999 >= summary.queue_delay.p99);
    }

    #[test]
    fn closed_loop_peak_depth_is_bounded_by_the_configured_depth() {
        let trace = paced_trace(128, 1_000);
        for depth in [1usize, 4, 16] {
            let summary = WorkloadDriver::closed_loop(RunOptions::default(), depth)
                .run(ftl(4), &trace)
                .unwrap();
            assert!(
                summary.peak_queue_depth <= depth,
                "QD{depth}: peak {} escaped the bound",
                summary.peak_queue_depth
            );
            assert!(summary.peak_queue_depth >= 1);
            if depth == 1 {
                // Serial replay: the next request is issued exactly at the
                // previous completion, so no arrival ever finds the system busy.
                assert_eq!(summary.peak_queue_depth, 1);
                assert_eq!(summary.busy_arrivals, 0);
            } else {
                assert!(summary.busy_arrival_fraction() > 0.5, "QD{depth} keeps the queue busy");
            }
        }
    }

    #[test]
    fn rate_scale_compresses_arrivals_and_raises_offered_load() {
        let trace = paced_trace(128, 500_000);
        let relaxed = WorkloadDriver::open_loop(RunOptions::default(), 1.0)
            .run(ftl(2), &trace)
            .unwrap();
        let pressed = WorkloadDriver::open_loop(RunOptions::default(), 100.0)
            .run(ftl(2), &trace)
            .unwrap();
        assert!(pressed.offered_iops() > relaxed.offered_iops() * 50.0);
        assert!(pressed.queue_delay.p99 >= relaxed.queue_delay.p99);
        // Device-state evolution is discipline-invariant.
        assert_eq!(pressed.host_reads, relaxed.host_reads);
        assert_eq!(pressed.read_time, relaxed.read_time);
    }

    #[test]
    fn open_loop_rebases_against_the_first_arrival() {
        // The same trace shifted 10 minutes into the future (as a time-window
        // subset of an MSR file would be) must replay identically: the offset is
        // file position, not load.
        let gap = 500_000u64;
        let base_trace = paced_trace(64, gap);
        let shifted = Trace::new(
            "shifted",
            base_trace
                .iter()
                .map(|request| {
                    IoRequest::new(
                        request.at_nanos + 600_000_000_000,
                        request.op,
                        request.offset,
                        request.length,
                    )
                })
                .collect(),
        );
        let driver = WorkloadDriver::open_loop(RunOptions::default(), 1.0);
        let plain = driver.run(ftl(2), &base_trace).unwrap();
        let moved = driver.run(ftl(2), &shifted).unwrap();
        assert_eq!(plain.host_elapsed, moved.host_elapsed, "offset must not count as replay time");
        assert_eq!(plain.offered_duration, moved.offered_duration);
        assert_eq!(plain.read_latency, moved.read_latency);
        assert!((plain.request_iops() - moved.request_iops()).abs() < 1e-9);
    }

    #[test]
    fn closed_loop_records_zero_offered_duration() {
        let trace = paced_trace(32, 1_000);
        let summary =
            WorkloadDriver::closed_loop(RunOptions::default(), 4).run(ftl(2), &trace).unwrap();
        assert_eq!(summary.offered_duration, Nanos::ZERO);
        assert_eq!(summary.offered_iops(), 0.0);
        assert_eq!(summary.mode, ReplayMode::ClosedLoop);
        assert_eq!(summary.queue_depth, 4);
    }

    #[test]
    fn closed_loop_service_split_is_consistent_at_depth_1() {
        // At depth 1 nothing ever queues: delay is identically zero and the
        // service-time histogram matches the completion latencies.
        let trace = paced_trace(64, 1_000);
        let summary =
            WorkloadDriver::closed_loop(RunOptions::default(), 1).run(ftl(2), &trace).unwrap();
        assert_eq!(summary.queue_delay.max, Nanos::ZERO);
        assert_eq!(summary.read_latency, summary.service_time);
    }
}
