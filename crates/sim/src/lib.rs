//! # vflash-sim
//!
//! Trace-driven SSD simulation for comparing flash translation layers on the 3D
//! charge-trap NAND model.
//!
//! The crate has these layers:
//!
//! * [`Replayer`] — replays an I/O [`Trace`](vflash_trace::Trace) against any
//!   [`FlashTranslationLayer`](vflash_ftl::FlashTranslationLayer), translating byte
//!   ranges into logical pages, optionally pre-filling the address space so reads of
//!   never-written data behave like reads of pre-existing data (the standard warm-up
//!   used by trace-driven flash simulators).
//! * [`QueuedReplayer`] — the queue-depth variant: keeps up to QD host requests in
//!   flight over an event-driven completion model on the per-chip clocks, so
//!   requests targeting distinct idle chips overlap. At QD 1 it is bit-identical
//!   to [`Replayer`].
//! * [`RunSummary`] / [`Comparison`] — the measurements the paper reports: total and
//!   mean read/write latency, erased-block counts, GC copies and write amplification,
//!   plus enhancement percentages between a baseline and a variant — and, from the
//!   queue-depth redesign, per-request latency percentiles
//!   ([`LatencyPercentiles`]) and achieved IOPS.
//! * [`experiments`] — ready-made parameter sweeps that regenerate every figure of
//!   the paper's evaluation (Figures 12–18) at a configurable scale, plus the
//!   queue-depth sweep and the GC-policy ablation.
//! * [`ParallelRunner`] / [`ExperimentGrid`] — fan the FTL × trace × scale ×
//!   queue-depth grid out over `std::thread` workers with deterministic per-cell
//!   seeds; results are bit-identical to a serial run, only faster.
//!
//! # Example
//!
//! ```
//! use vflash_ftl::{ConventionalFtl, FtlConfig};
//! use vflash_nand::{NandConfig, NandDevice};
//! use vflash_sim::{Replayer, RunOptions};
//! use vflash_trace::synthetic::{self, SyntheticConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let trace = synthetic::web_sql_server(SyntheticConfig {
//!     requests: 2_000,
//!     working_set_bytes: 8 * 1024 * 1024,
//!     ..Default::default()
//! });
//! let device = NandDevice::new(
//!     NandConfig::builder()
//!         .chips(1)
//!         .blocks_per_chip(96)
//!         .pages_per_block(32)
//!         .page_size_bytes(16 * 1024)
//!         .build()?,
//! );
//! let ftl = ConventionalFtl::new(device, FtlConfig::default())?;
//! let summary = Replayer::new(RunOptions::default()).run(ftl, &trace)?;
//! assert!(summary.host_reads > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

mod histogram;
mod parallel;
mod queued;
mod replay;
mod report;

pub use histogram::{LatencyHistogram, LatencyPercentiles};
pub use parallel::{run_cell, CellResult, ExperimentGrid, FtlKind, GridCell, ParallelRunner};
pub use queued::QueuedReplayer;
pub use replay::{Replayer, RunOptions};
pub use report::{Comparison, RunSummary};
