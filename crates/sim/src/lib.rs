//! # vflash-sim
//!
//! Trace-driven SSD simulation for comparing flash translation layers on the 3D
//! charge-trap NAND model.
//!
//! The crate has these layers:
//!
//! * [`WorkloadDriver`] — **the** replay engine: one drive loop over an
//!   [`ArrivalDiscipline`], either closed-loop (keep `queue_depth` requests in
//!   flight — saturation replay) or open-loop (issue each request at its
//!   trace-recorded arrival time scaled by `rate_scale` — latency under load,
//!   with per-request queueing delay separated from service time). Byte ranges
//!   are translated into logical pages, and the address space is optionally
//!   pre-filled so reads of never-written data behave like reads of pre-existing
//!   data (the standard warm-up used by trace-driven flash simulators).
//! * [`Replayer`] / [`QueuedReplayer`] — thin compatibility wrappers over the
//!   engine: the serial (closed-loop depth 1) replayer of the paper's figures,
//!   and the queue-depth variant. At QD 1 they are bit-identical.
//! * [`RunSummary`] / [`Comparison`] — the measurements the paper reports: total and
//!   mean read/write latency, erased-block counts, GC copies and write amplification,
//!   plus enhancement percentages between a baseline and a variant — and, from the
//!   driver engine, per-request latency/queue-delay/service-time percentiles
//!   ([`LatencyPercentiles`]), achieved IOPS and (open loop) offered IOPS.
//! * [`experiments`] — ready-made parameter sweeps that regenerate every figure of
//!   the paper's evaluation (Figures 12–18) at a configurable scale, plus the
//!   queue-depth sweep, the offered-load (rate-scale) sweep, the burstiness
//!   sweep ([`experiments::burst_sweep`]: heavy-tailed Pareto / on-off arrivals
//!   at one fixed mean rate, spreading the p99.9 tail), the GC-policy
//!   ablation, and the reliability sweeps ([`experiments::fault_sweep`]: RBER
//!   scale × GC policy with the NAND fault model on; [`experiments::fault_lifetime`]:
//!   writes into a failing device until it degrades to read-only).
//! * [`ParallelRunner`] / [`ExperimentGrid`] — fan the FTL × trace × scale ×
//!   discipline × arrival-model grid out over `std::thread` workers with
//!   deterministic per-cell seeds; results are bit-identical to a serial run,
//!   only faster.
//!
//! Replay summaries report the tail explicitly: every [`LatencyPercentiles`]
//! carries `p50/p95/p99/p99.9` (plus exact `max` and `mean`), and open-loop
//! [`RunSummary`]s additionally record the peak backlog
//! ([`RunSummary::peak_queue_depth`]) and the fraction of requests that arrived
//! into a busy system ([`RunSummary::busy_arrival_fraction`]).
//!
//! # Example
//!
//! ```
//! use vflash_ftl::{ConventionalFtl, FtlConfig};
//! use vflash_nand::{NandConfig, NandDevice};
//! use vflash_sim::{Replayer, RunOptions};
//! use vflash_trace::synthetic::{self, SyntheticConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let trace = synthetic::web_sql_server(SyntheticConfig {
//!     requests: 2_000,
//!     working_set_bytes: 8 * 1024 * 1024,
//!     ..Default::default()
//! });
//! let device = NandDevice::new(
//!     NandConfig::builder()
//!         .chips(1)
//!         .blocks_per_chip(96)
//!         .pages_per_block(32)
//!         .page_size_bytes(16 * 1024)
//!         .build()?,
//! );
//! let ftl = ConventionalFtl::new(device, FtlConfig::default())?;
//! let summary = Replayer::new(RunOptions::default()).run(ftl, &trace)?;
//! assert!(summary.host_reads > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

mod calendar;
mod engine;
mod histogram;
mod parallel;
mod queued;
mod replay;
mod report;

pub use engine::{ArrivalDiscipline, RunOptions, WorkloadDriver};
pub use histogram::{LatencyHistogram, LatencyPercentiles};
pub use parallel::{run_cell, CellResult, ExperimentGrid, FtlKind, GridCell, ParallelRunner};
pub use queued::QueuedReplayer;
pub use replay::Replayer;
pub use report::{Comparison, ReplayMode, RunSummary};
