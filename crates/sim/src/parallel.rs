//! Multi-threaded execution of the experiment grid.
//!
//! The paper's evaluation replays every trace against every FTL at several scales —
//! a grid of completely independent simulations. [`ExperimentGrid`] enumerates the
//! cells (FTL × workload × scale × arrival discipline, i.e. closed-loop queue
//! depths and open-loop rate scales) and [`ParallelRunner`] fans them out over
//! `std::thread` workers with **work stealing**: a shared injector feeds each
//! worker's deque in batches, and a worker whose deque runs dry steals from the
//! back of a sibling's before giving up. Cell costs are wildly heterogeneous
//! (a PPB media-server cell costs several times a conventional web cell), so
//! stealing keeps every worker busy through the tail of the grid without any
//! up-front cost model. Each cell derives its workload seed deterministically
//! from the scale's base seed and the cell's position in the grid, and results
//! are collected by cell index, so the output is **bit-identical** to running
//! the same grid serially — regardless of worker count or steal order, only the
//! wall-clock time changes.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::thread;

use vflash_ftl::FtlError;
use vflash_nand::FaultConfig;
use vflash_trace::synthetic::ArrivalModel;

use crate::engine::ArrivalDiscipline;
use crate::experiments::{
    burst_axis, grid_burst_mean_iops, run_conventional_driven, run_ppb_driven, ExperimentScale,
    Workload, FLEET_SIZES, QUEUE_DEPTHS, RATE_SCALES,
};
use crate::report::RunSummary;

/// Which flash translation layer a grid cell exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FtlKind {
    /// The conventional page-mapping baseline.
    Conventional,
    /// The paper's FTL with the PPB strategy (default configuration).
    Ppb,
}

impl FtlKind {
    /// Both FTLs, baseline first.
    pub const ALL: [FtlKind; 2] = [FtlKind::Conventional, FtlKind::Ppb];

    /// The label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            FtlKind::Conventional => "conventional",
            FtlKind::Ppb => "ppb",
        }
    }
}

/// The experiment grid: every combination of FTL, workload, scale and arrival
/// discipline (closed-loop queue depths, then open-loop rate scales), replayed on
/// a device with the given page size and speed ratio.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentGrid {
    /// FTLs to run.
    pub ftls: Vec<FtlKind>,
    /// Workloads (traces) to replay.
    pub workloads: Vec<Workload>,
    /// Scales to run each FTL × workload pair at.
    pub scales: Vec<ExperimentScale>,
    /// Closed-loop queue depths to replay each cell at (`vec![1]` for the classic
    /// serial grid).
    pub queue_depths: Vec<usize>,
    /// Open-loop rate scales to additionally replay each cell at (empty for the
    /// classic closed-loop-only grid). These cells follow the closed-loop cells
    /// of their scale in enumeration order.
    pub rate_scales: Vec<f64>,
    /// Arrival models to generate each workload's trace with — the burstiness
    /// axis. The default single-element `[ArrivalModel::default()]` reproduces
    /// the historic grids exactly; [`ExperimentGrid::burst_sweep`] populates it
    /// with the shared-mean-rate [`burst_axis`].
    pub arrival_models: Vec<ArrivalModel>,
    /// Flash page size in bytes.
    pub page_size_bytes: usize,
    /// Top/bottom page speed ratio.
    pub speed_ratio: f64,
    /// Fault-injection knobs applied to every cell's device (`None` for the
    /// historic fault-free grids). The [`FaultConfig`] carries its own seed, so
    /// every cell sees the same fault universe and the grid stays bit-identical
    /// across worker counts — the per-cell workload seeds only vary the traffic.
    pub faults: Option<FaultConfig>,
    /// Host-tier fleet widths to replay each cell at (`vec![1]` for the classic
    /// single-device grids; an empty vector is treated as `[1]`). The width is
    /// carried in [`GridCell::fleet_size`]: the single-device [`run_cell`]
    /// ignores it, while the fleet crate's `run_fleet_cell` stripes the
    /// keyspace over that many devices. Widths share the per-cell seed, so
    /// differences down this axis are attributable to striping alone.
    pub fleet_sizes: Vec<usize>,
}

impl ExperimentGrid {
    /// The full grid of the paper's evaluation at one scale: both FTLs × both
    /// workloads, 16 KB pages, 2x speed difference, queue depth 1.
    ///
    /// # Example
    ///
    /// ```
    /// use vflash_sim::experiments::ExperimentScale;
    /// use vflash_sim::ExperimentGrid;
    ///
    /// let grid = ExperimentGrid::full(ExperimentScale::quick());
    /// // 2 FTLs x 2 workloads x 1 scale x 1 discipline x 1 arrival model.
    /// assert_eq!(grid.cells().len(), 4);
    /// // The burstiness axis multiplies the grid without touching the seeds
    /// // (pinned rate here; `burst_sweep` probes saturation instead).
    /// let bursty = ExperimentGrid::burst_sweep_at(ExperimentScale::quick(), 10_000.0);
    /// assert!(bursty.cells().len() > grid.cells().len());
    /// ```
    pub fn full(scale: ExperimentScale) -> Self {
        ExperimentGrid {
            ftls: FtlKind::ALL.to_vec(),
            workloads: Workload::ALL.to_vec(),
            scales: vec![scale],
            queue_depths: vec![1],
            rate_scales: Vec::new(),
            arrival_models: vec![ArrivalModel::default()],
            page_size_bytes: 16 * 1024,
            speed_ratio: 2.0,
            faults: None,
            fleet_sizes: vec![1],
        }
    }

    /// The full grid with the NAND fault model enabled on every cell's device
    /// (default fault curve under `fault_seed`). Everything else matches
    /// [`ExperimentGrid::full`], so diffing the two isolates the cost of
    /// read retries and bad-block remapping.
    pub fn with_faults(scale: ExperimentScale, fault_seed: u64) -> Self {
        ExperimentGrid {
            faults: Some(FaultConfig::enabled(fault_seed)),
            ..ExperimentGrid::full(scale)
        }
    }

    /// The full grid additionally swept over QD ∈ [`QUEUE_DEPTHS`]
    /// (1, 4, 16, 64).
    pub fn queue_depth_sweep(scale: ExperimentScale) -> Self {
        ExperimentGrid { queue_depths: QUEUE_DEPTHS.to_vec(), ..ExperimentGrid::full(scale) }
    }

    /// The full grid swept open-loop over the [`RATE_SCALES`] offered-load axis
    /// (with the closed-loop QD-1 saturation reference kept as the first rows).
    pub fn open_loop_sweep(scale: ExperimentScale) -> Self {
        ExperimentGrid { rate_scales: RATE_SCALES.to_vec(), ..ExperimentGrid::full(scale) }
    }

    /// The full grid swept open-loop (rate scale 1) over the burstiness axis:
    /// every workload's trace is regenerated under each [`burst_axis`] arrival
    /// model at one fixed mean rate, so the cells differ only in how bursty the
    /// identical offered load is.
    ///
    /// The mean rate is **rate-relative**: [`grid_burst_mean_iops`] probes the
    /// saturation throughput of each workload on the grid's device and fixes
    /// the axis at [`BURST_SATURATION_FRACTION`](crate::experiments::BURST_SATURATION_FRACTION)
    /// of the smallest one, so the axis stays meaningful at any scale instead
    /// of pinning the historic ≈9.1 kIOPS default-generator rate. Use
    /// [`ExperimentGrid::burst_sweep_at`] to pin an explicit rate (and skip the
    /// probe).
    ///
    /// # Errors
    ///
    /// Propagates FTL construction and replay errors from the saturation
    /// probes.
    pub fn burst_sweep(scale: ExperimentScale) -> Result<Self, FtlError> {
        let mean_iops = grid_burst_mean_iops(&scale)?;
        Ok(ExperimentGrid::burst_sweep_at(scale, mean_iops))
    }

    /// [`ExperimentGrid::burst_sweep`] at an explicit fixed mean rate, skipping
    /// the saturation probes.
    pub fn burst_sweep_at(scale: ExperimentScale, mean_iops: f64) -> Self {
        ExperimentGrid {
            queue_depths: Vec::new(),
            rate_scales: vec![1.0],
            arrival_models: burst_axis(mean_iops),
            ..ExperimentGrid::full(scale)
        }
    }

    /// The full grid swept over the host-tier fleet-size axis ([`FLEET_SIZES`]:
    /// 1, 2, 4, 8 devices), open-loop at the trace's own rate (rate scale 1) so
    /// offered vs achieved IOPS is meaningful per width. The closed-loop depths
    /// are cleared — fan-out tail amplification is a latency-under-load
    /// question. Every width of one FTL × workload shares a seed (the width is
    /// not part of the seed position), so the widths replay the *same* trace
    /// and differ only in striping.
    pub fn fleet_sweep(scale: ExperimentScale) -> Self {
        ExperimentGrid {
            queue_depths: Vec::new(),
            rate_scales: vec![1.0],
            fleet_sizes: FLEET_SIZES.to_vec(),
            ..ExperimentGrid::full(scale)
        }
    }

    /// Enumerates the cells in deterministic order: scales outermost, then the
    /// arrival disciplines (queue depths first, then rate scales), then arrival
    /// models, then fleet sizes, then workloads, then FTLs.
    ///
    /// The per-cell workload seed is derived from the cell's **discipline- and
    /// arrival-independent** position (scale, workload, FTL): every queue-depth,
    /// rate-scale and arrival-model row of one FTL × workload × scale shares a
    /// seed, so differences down those axes are attributable to queuing and
    /// burstiness alone. With the default `queue_depths = [1]`, no rate scales
    /// and the single default arrival model, both the enumeration and every seed
    /// are identical to the pre-open-loop grid.
    pub fn cells(&self) -> Vec<GridCell> {
        let disciplines: Vec<ArrivalDiscipline> = self
            .queue_depths
            .iter()
            .map(|&queue_depth| ArrivalDiscipline::ClosedLoop { queue_depth })
            .chain(
                self.rate_scales
                    .iter()
                    .map(|&rate_scale| ArrivalDiscipline::OpenLoop { rate_scale }),
            )
            .collect();
        let fleet_sizes: &[usize] =
            if self.fleet_sizes.is_empty() { &[1] } else { &self.fleet_sizes };
        let mut cells = Vec::new();
        for (scale_index, &scale) in self.scales.iter().enumerate() {
            for &discipline in &disciplines {
                for &arrival in &self.arrival_models {
                    for &fleet_size in fleet_sizes {
                        for (workload_index, &workload) in self.workloads.iter().enumerate() {
                            for (ftl_index, &ftl) in self.ftls.iter().enumerate() {
                                let seed_index = (scale_index * self.workloads.len()
                                    + workload_index)
                                    * self.ftls.len()
                                    + ftl_index;
                                cells.push(GridCell {
                                    index: cells.len(),
                                    ftl,
                                    workload,
                                    discipline,
                                    arrival,
                                    fleet_size,
                                    scale: ExperimentScale {
                                        seed: cell_seed(scale.seed, seed_index as u64),
                                        ..scale
                                    },
                                });
                            }
                        }
                    }
                }
            }
        }
        cells
    }
}

/// One cell of the experiment grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridCell {
    /// Position of the cell in the grid's enumeration order.
    pub index: usize,
    /// FTL under test.
    pub ftl: FtlKind,
    /// Workload replayed.
    pub workload: Workload,
    /// Arrival discipline the cell is replayed under.
    pub discipline: ArrivalDiscipline,
    /// Arrival model the cell's trace is generated with (the burstiness axis).
    pub arrival: ArrivalModel,
    /// Host-tier fleet width for this cell (1 on the classic grids). The
    /// single-device [`run_cell`] ignores it; the fleet crate's
    /// `run_fleet_cell` stripes the keyspace over this many devices.
    pub fleet_size: usize,
    /// Scale for this cell, with the per-cell seed already substituted.
    pub scale: ExperimentScale,
}

/// The outcome of one grid cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// The cell that produced this result.
    pub cell: GridCell,
    /// The replay summary.
    pub summary: RunSummary,
}

/// Derives a per-cell workload seed from the grid's base seed and the cell index.
///
/// splitmix64 finalisation: any two distinct (base, index) pairs give well-mixed,
/// reproducible seeds regardless of thread scheduling.
fn cell_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs one cell: generates the trace at the cell's seed and replays it against
/// a **single device** ([`GridCell::fleet_size`] is ignored here — the fleet
/// crate's `run_fleet_cell` is the width-aware counterpart).
///
/// # Errors
///
/// Propagates FTL construction and replay errors.
pub fn run_cell(cell: &GridCell, grid: &ExperimentGrid) -> Result<CellResult, FtlError> {
    let trace = cell.workload.trace_with_arrival(&cell.scale, cell.arrival);
    let mut config = cell.scale.device_config(grid.page_size_bytes, grid.speed_ratio);
    if let Some(faults) = grid.faults {
        config = config.with_faults(faults)?;
    }
    let summary = match cell.ftl {
        FtlKind::Conventional => run_conventional_driven(&trace, &config, cell.discipline)?,
        FtlKind::Ppb => run_ppb_driven(&trace, &config, cell.discipline)?,
    };
    Ok(CellResult { cell: *cell, summary })
}

/// Fans the experiment grid out over a work-stealing pool of `std::thread`
/// workers.
///
/// Cells start in a shared injector queue; workers move them into per-worker
/// deques a batch at a time and, when both their deque and the injector are
/// empty, steal single cells from the back of a sibling's deque. Batching keeps
/// injector contention to one lock acquisition per batch, while stealing
/// rebalances the heterogeneous cell costs (no work partitioning bias). Results
/// are stitched back together in cell-index order, so the output is independent
/// of thread scheduling and steal order, and identical to
/// [`ParallelRunner::run_serial`].
///
/// # Example
///
/// ```
/// use vflash_sim::experiments::ExperimentScale;
/// use vflash_sim::{ExperimentGrid, ParallelRunner};
///
/// let scale = ExperimentScale { requests: 200, ..ExperimentScale::quick() };
/// let grid = ExperimentGrid::full(scale);
/// let results = ParallelRunner::new(2).run(&grid).unwrap();
/// assert_eq!(results.len(), 4); // 2 FTLs x 2 workloads x 1 scale
/// assert_eq!(results, ParallelRunner::run_serial(&grid).unwrap());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelRunner {
    threads: usize,
}

impl ParallelRunner {
    /// Creates a runner with the given worker count (at least one).
    pub fn new(threads: usize) -> Self {
        ParallelRunner { threads: threads.max(1) }
    }

    /// Creates a runner sized to the machine's available parallelism.
    pub fn with_available_parallelism() -> Self {
        let threads = thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        ParallelRunner::new(threads)
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every cell of `grid` across the work-stealing pool and returns the
    /// results in cell-index order.
    ///
    /// # Errors
    ///
    /// Returns the error of the lowest-indexed failing cell. A failure stops
    /// workers from claiming further cells (in-flight cells still finish), so a
    /// misconfigured grid does not burn through the remaining work.
    pub fn run(&self, grid: &ExperimentGrid) -> Result<Vec<CellResult>, FtlError> {
        self.run_map(grid, run_cell)
    }

    /// Fans an arbitrary per-cell function out over the work-stealing pool:
    /// `run(cell, grid)` is invoked once per grid cell and the results are
    /// returned in cell-index order, bit-identical to
    /// [`ParallelRunner::run_serial_map`] regardless of worker count. This is
    /// how downstream crates (the fleet host tier, notably) reuse the pool and
    /// the grid enumeration with their own cell semantics.
    ///
    /// # Errors
    ///
    /// Returns the error of the lowest-indexed failing cell; a failure stops
    /// workers from claiming further cells (in-flight cells still finish).
    pub fn run_map<R, G>(&self, grid: &ExperimentGrid, run: G) -> Result<Vec<R>, FtlError>
    where
        R: Send,
        G: Fn(&GridCell, &ExperimentGrid) -> Result<R, FtlError> + Sync,
    {
        let cells = grid.cells();
        if cells.is_empty() {
            return Ok(Vec::new());
        }
        let workers = self.threads.min(cells.len());
        if workers == 1 {
            return Self::run_serial_map(grid, run);
        }
        // The shared injector holds every cell index; workers pull batches from
        // its front into their own deque, so the common case touches only the
        // worker-local lock.
        let injector: Mutex<VecDeque<usize>> = Mutex::new((0..cells.len()).collect());
        let locals: Vec<Mutex<VecDeque<usize>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        let batch = (cells.len() / (workers * 4)).max(1);
        let failed = AtomicBool::new(false);
        let slots: Vec<Mutex<Option<Result<R, FtlError>>>> =
            cells.iter().map(|_| Mutex::new(None)).collect();
        thread::scope(|scope| {
            for me in 0..workers {
                let (injector, locals, failed, slots, cells, run) =
                    (&injector, &locals, &failed, &slots, &cells, &run);
                scope.spawn(move || {
                    while !failed.load(Ordering::Relaxed) {
                        let Some(index) = claim_cell(me, injector, locals, batch) else {
                            break;
                        };
                        let result = run(&cells[index], grid);
                        if result.is_err() {
                            failed.store(true, Ordering::Relaxed);
                        }
                        *slots[index].lock().expect("result slot poisoned") = Some(result);
                    }
                });
            }
        });
        let outcomes: Vec<Option<Result<R, FtlError>>> = slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("result slot poisoned"))
            .collect();
        // With stealing, an abort leaves unclaimed holes at *arbitrary*
        // indices — an empty slot below a failed cell does not imply success —
        // so scan every slot and surface the lowest-indexed error explicitly.
        if let Some(failure) = outcomes
            .iter()
            .position(|outcome| matches!(outcome, Some(Err(_))))
        {
            let mut outcomes = outcomes;
            return match outcomes[failure].take() {
                Some(Err(error)) => Err(error),
                _ => unreachable!("position() found an error at this slot"),
            };
        }
        // No failure: the pool only disbands once the injector and every deque
        // are empty, so every cell ran exactly once.
        Ok(outcomes
            .into_iter()
            .map(|outcome| {
                outcome
                    .expect("pool disbanded with an unclaimed cell")
                    .expect("errors were surfaced above")
            })
            .collect())
    }

    /// Runs every cell of `grid` on the calling thread, in cell-index order. This
    /// is the reference the parallel path must match bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns the error of the first failing cell.
    pub fn run_serial(grid: &ExperimentGrid) -> Result<Vec<CellResult>, FtlError> {
        Self::run_serial_map(grid, run_cell)
    }

    /// The serial reference of [`ParallelRunner::run_map`]: invokes `run` on
    /// every cell in cell-index order on the calling thread.
    ///
    /// # Errors
    ///
    /// Returns the error of the first failing cell.
    pub fn run_serial_map<R, G>(grid: &ExperimentGrid, run: G) -> Result<Vec<R>, FtlError>
    where
        G: Fn(&GridCell, &ExperimentGrid) -> Result<R, FtlError>,
    {
        grid.cells().iter().map(|cell| run(cell, grid)).collect()
    }
}

/// Claims the next cell index for worker `me`: own deque first (oldest-first),
/// then a batch refill from the front of the shared injector, then a steal from
/// the *back* of a sibling's deque (the entries the sibling would reach last,
/// minimising contention on its working end). Returns `None` when every source
/// is dry — no new work ever appears after that, because cells only flow
/// injector → deque → execution.
fn claim_cell(
    me: usize,
    injector: &Mutex<VecDeque<usize>>,
    locals: &[Mutex<VecDeque<usize>>],
    batch: usize,
) -> Option<usize> {
    if let Some(index) = locals[me].lock().expect("worker deque poisoned").pop_front() {
        return Some(index);
    }
    {
        let mut injector = injector.lock().expect("injector poisoned");
        if let Some(first) = injector.pop_front() {
            let refill = batch.saturating_sub(1).min(injector.len());
            if refill > 0 {
                locals[me]
                    .lock()
                    .expect("worker deque poisoned")
                    .extend(injector.drain(..refill));
            }
            return Some(first);
        }
    }
    for offset in 1..locals.len() {
        let victim = (me + offset) % locals.len();
        if let Some(index) = locals[victim].lock().expect("worker deque poisoned").pop_back() {
            return Some(index);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> ExperimentScale {
        ExperimentScale {
            requests: 300,
            working_set_bytes: 8 * 1024 * 1024,
            chips: 2,
            ..ExperimentScale::quick()
        }
    }

    #[test]
    fn grid_enumerates_ftls_innermost() {
        let grid = ExperimentGrid::full(tiny_scale());
        let cells = grid.cells();
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].ftl, FtlKind::Conventional);
        assert_eq!(cells[1].ftl, FtlKind::Ppb);
        assert_eq!(cells[0].workload, cells[1].workload);
        assert!(cells.iter().enumerate().all(|(i, c)| c.index == i));
    }

    #[test]
    fn cell_seeds_are_deterministic_and_distinct() {
        let grid = ExperimentGrid::full(tiny_scale());
        let a = grid.cells();
        let b = grid.cells();
        assert_eq!(a, b);
        let seeds: std::collections::HashSet<u64> =
            a.iter().map(|cell| cell.scale.seed).collect();
        assert_eq!(seeds.len(), a.len(), "per-cell seeds must not collide");
    }

    #[test]
    fn baseline_and_variant_of_one_workload_share_a_seed_free_comparison() {
        // Different cells intentionally get different seeds; the figure-style
        // comparisons that need a *shared* trace keep using `experiments::compare`.
        let grid = ExperimentGrid::full(tiny_scale());
        let results = ParallelRunner::run_serial(&grid).unwrap();
        for result in &results {
            assert_eq!(result.summary.ftl, result.cell.ftl.label());
            assert!(result.summary.host_writes + result.summary.host_reads > 0);
        }
    }

    #[test]
    fn parallel_results_match_serial_byte_for_byte() {
        let grid = ExperimentGrid::full(tiny_scale());
        let serial = ParallelRunner::run_serial(&grid).unwrap();
        let parallel = ParallelRunner::new(4).run(&grid).unwrap();
        assert_eq!(serial, parallel);
        // Bit-identical also in the rendered form (what files and reports contain).
        let render = |results: &[CellResult]| {
            results
                .iter()
                .map(|r| format!("{:?}\n", r))
                .collect::<String>()
        };
        assert_eq!(render(&serial).into_bytes(), render(&parallel).into_bytes());
    }

    #[test]
    fn failing_cells_surface_their_error_in_both_modes() {
        // Headroom below 1.0 builds a device smaller than the working set, so the
        // prefill runs out of space in every cell.
        let broken = ExperimentScale { capacity_headroom: 0.5, ..tiny_scale() };
        let grid = ExperimentGrid::full(broken);
        assert!(matches!(
            ParallelRunner::run_serial(&grid),
            Err(vflash_ftl::FtlError::OutOfSpace)
        ));
        assert!(matches!(
            ParallelRunner::new(4).run(&grid),
            Err(vflash_ftl::FtlError::OutOfSpace)
        ));
    }

    #[test]
    fn empty_grids_are_fine() {
        let grid = ExperimentGrid {
            ftls: Vec::new(),
            workloads: Workload::ALL.to_vec(),
            scales: vec![tiny_scale()],
            queue_depths: vec![1],
            rate_scales: Vec::new(),
            arrival_models: vec![ArrivalModel::default()],
            page_size_bytes: 16 * 1024,
            speed_ratio: 2.0,
            faults: None,
            fleet_sizes: vec![1],
        };
        assert!(ParallelRunner::new(8).run(&grid).unwrap().is_empty());
    }

    #[test]
    fn fleet_sweep_grid_enumerates_widths_with_shared_seeds() {
        let grid = ExperimentGrid::fleet_sweep(tiny_scale());
        let cells = grid.cells();
        // 2 FTLs x 2 workloads x 4 widths x 1 open-loop discipline x 1 scale.
        assert_eq!(cells.len(), 16);
        for (index, cell) in cells.iter().enumerate() {
            assert_eq!(cell.discipline, ArrivalDiscipline::OpenLoop { rate_scale: 1.0 });
            assert_eq!(cell.fleet_size, FLEET_SIZES[index / 4]);
        }
        // Every width of one FTL x workload replays the same trace: the seed is
        // width-independent, so striping is the only difference down the axis.
        for offset in 0..4 {
            let seeds: std::collections::HashSet<u64> = cells
                .iter()
                .skip(offset)
                .step_by(4)
                .map(|cell| cell.scale.seed)
                .collect();
            assert_eq!(seeds.len(), 1, "cell {offset} seeds vary across fleet widths");
        }
        // The classic grids carry width 1 on every cell, and an empty axis
        // behaves like [1].
        assert!(ExperimentGrid::full(tiny_scale()).cells().iter().all(|c| c.fleet_size == 1));
        let unset = ExperimentGrid { fleet_sizes: Vec::new(), ..ExperimentGrid::full(tiny_scale()) };
        assert!(unset.cells().iter().all(|cell| cell.fleet_size == 1));
        assert_eq!(unset.cells().len(), 4);
    }

    #[test]
    fn run_map_fans_custom_cell_functions_deterministically() {
        let grid = ExperimentGrid::full(tiny_scale());
        let label = |cell: &GridCell, _: &ExperimentGrid| {
            Ok(format!("{}:{}x{}", cell.index, cell.ftl.label(), cell.fleet_size))
        };
        let serial = ParallelRunner::run_serial_map(&grid, label).unwrap();
        let parallel = ParallelRunner::new(4).run_map(&grid, label).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(serial[0], "0:conventionalx1");
        // Errors surface exactly as in the CellResult path.
        let failing = |cell: &GridCell, _: &ExperimentGrid| -> Result<(), FtlError> {
            if cell.index == 2 {
                Err(FtlError::OutOfSpace)
            } else {
                Ok(())
            }
        };
        assert!(matches!(
            ParallelRunner::new(4).run_map(&grid, failing),
            Err(FtlError::OutOfSpace)
        ));
    }

    #[test]
    fn queue_depth_sweep_grid_enumerates_depths_between_scales_and_workloads() {
        let grid = ExperimentGrid::queue_depth_sweep(tiny_scale());
        let cells = grid.cells();
        assert_eq!(cells.len(), 16); // 2 FTLs x 2 workloads x 4 depths x 1 scale
        assert_eq!(cells[0].discipline, ArrivalDiscipline::ClosedLoop { queue_depth: 1 });
        assert_eq!(cells[4].discipline, ArrivalDiscipline::ClosedLoop { queue_depth: 4 });
        assert_eq!(cells[15].discipline, ArrivalDiscipline::ClosedLoop { queue_depth: 64 });
        // Every depth row of one FTL x workload replays the same trace: the seed
        // is depth-independent, so depth differences are pure queuing effects.
        for offset in 0..4 {
            let seeds: std::collections::HashSet<u64> = cells
                .iter()
                .skip(offset)
                .step_by(4)
                .map(|cell| cell.scale.seed)
                .collect();
            assert_eq!(seeds.len(), 1, "cell {offset} seeds vary across depths");
        }
        // Parallel fan-out stays bit-identical with the queue-depth axis.
        let serial = ParallelRunner::run_serial(&grid).unwrap();
        let parallel = ParallelRunner::new(4).run(&grid).unwrap();
        assert_eq!(serial, parallel);
        for result in &serial {
            let ArrivalDiscipline::ClosedLoop { queue_depth } = result.cell.discipline else {
                panic!("queue-depth grid produced an open-loop cell");
            };
            assert_eq!(result.summary.queue_depth, queue_depth);
        }
    }

    #[test]
    fn open_loop_sweep_grid_appends_rate_cells_with_shared_seeds() {
        let grid = ExperimentGrid::open_loop_sweep(tiny_scale());
        let cells = grid.cells();
        // 2 FTLs x 2 workloads x (1 depth + 6 rate scales) x 1 scale.
        assert_eq!(cells.len(), 28);
        assert_eq!(cells[0].discipline, ArrivalDiscipline::ClosedLoop { queue_depth: 1 });
        assert_eq!(
            cells[4].discipline,
            ArrivalDiscipline::OpenLoop { rate_scale: crate::experiments::RATE_SCALES[0] }
        );
        // The closed-loop reference and every rate row of one FTL x workload share
        // a seed, so the open-loop numbers are directly comparable to saturation.
        for offset in 0..4 {
            let seeds: std::collections::HashSet<u64> = cells
                .iter()
                .skip(offset)
                .step_by(4)
                .map(|cell| cell.scale.seed)
                .collect();
            assert_eq!(seeds.len(), 1, "cell {offset} seeds vary across the discipline axis");
        }
        let serial = ParallelRunner::run_serial(&grid).unwrap();
        let parallel = ParallelRunner::new(4).run(&grid).unwrap();
        assert_eq!(serial, parallel, "open-loop cells must stay fan-out deterministic");
        for result in &serial {
            match result.cell.discipline {
                ArrivalDiscipline::ClosedLoop { queue_depth } => {
                    assert_eq!(result.summary.queue_depth, queue_depth);
                }
                ArrivalDiscipline::OpenLoop { rate_scale } => {
                    assert_eq!(result.summary.queue_depth, 0);
                    assert!(result.summary.offered_iops() > 0.0);
                    assert!(
                        matches!(result.summary.mode, crate::ReplayMode::OpenLoop { rate_scale: r } if r == rate_scale)
                    );
                }
            }
        }
    }

    #[test]
    fn burst_sweep_grid_multiplies_arrival_models_with_shared_seeds() {
        let grid = ExperimentGrid::burst_sweep(tiny_scale()).unwrap();
        let cells = grid.cells();
        let mean_iops = grid_burst_mean_iops(&tiny_scale()).unwrap();
        assert!(mean_iops > 0.0, "the saturation probes must measure a positive rate");
        let axis = burst_axis(mean_iops);
        // 2 FTLs x 2 workloads x axis x 1 open-loop discipline x 1 scale.
        assert_eq!(cells.len(), 4 * axis.len());
        for cell in &cells {
            assert_eq!(
                cell.discipline,
                ArrivalDiscipline::OpenLoop { rate_scale: 1.0 },
                "burst cells replay the trace's own clock"
            );
        }
        assert_eq!(cells[0].arrival, axis[0]);
        assert_eq!(cells[4].arrival, axis[1], "arrival models advance between workload blocks");
        // Seeds are arrival-independent: each FTL x workload position re-uses
        // one seed across the whole axis, so only the burstiness differs.
        for offset in 0..4 {
            let seeds: std::collections::HashSet<u64> = cells
                .iter()
                .skip(offset)
                .step_by(4)
                .map(|cell| cell.scale.seed)
                .collect();
            assert_eq!(seeds.len(), 1, "cell {offset} seeds vary across the burst axis");
        }
        // Fan-out stays bit-identical with the burstiness axis in play.
        let serial = ParallelRunner::run_serial(&grid).unwrap();
        let parallel = ParallelRunner::new(4).run(&grid).unwrap();
        assert_eq!(serial, parallel);
        for result in &serial {
            assert!(result.summary.offered_iops() > 0.0);
        }
    }

    #[test]
    fn work_stealing_is_deterministic_across_worker_counts() {
        // The steal order varies wildly with the worker count (and with OS
        // scheduling), but the stitched results must not: every worker count
        // reproduces the serial reference bit-for-bit.
        let grid = ExperimentGrid::queue_depth_sweep(ExperimentScale {
            requests: 150,
            ..tiny_scale()
        });
        let serial = ParallelRunner::run_serial(&grid).unwrap();
        for workers in [2, 3, 5, 32] {
            let parallel = ParallelRunner::new(workers).run(&grid).unwrap();
            assert_eq!(parallel, serial, "{workers} workers diverged from serial");
        }
    }

    #[test]
    fn fault_injection_is_deterministic_across_worker_counts() {
        // Read-retry-only faults (program/erase failures off): the fault model
        // fires on every cell without driving the tiny grid devices to end of
        // life mid-replay. The fault streams are seeded per chip, so the steal
        // order must not leak into the results.
        let faults = FaultConfig {
            rber_scale: 40.0,
            program_fail_base: 0.0,
            erase_fail_base: 0.0,
            ..FaultConfig::enabled(0xFA17)
        };
        let grid = ExperimentGrid {
            faults: Some(faults),
            ..ExperimentGrid::full(ExperimentScale { requests: 200, ..tiny_scale() })
        };
        let serial = ParallelRunner::run_serial(&grid).unwrap();
        assert!(
            serial.iter().any(|result| result.summary.retried_reads > 0),
            "the fault sweep grid must actually exercise read retries"
        );
        for workers in [2, 3, 5, 32] {
            let parallel = ParallelRunner::new(workers).run(&grid).unwrap();
            assert_eq!(parallel, serial, "{workers} workers diverged under faults");
        }
        // The same grid without faults stays quiet: the knobs default off.
        let clean = ExperimentGrid {
            faults: None,
            ..grid.clone()
        };
        let clean_serial = ParallelRunner::run_serial(&clean).unwrap();
        assert!(clean_serial.iter().all(|result| {
            result.summary.retried_reads == 0 && result.summary.bad_blocks_grown == 0
        }));
    }

    #[test]
    fn claim_cell_drains_injector_batches_and_steals_from_siblings() {
        let injector: Mutex<VecDeque<usize>> = Mutex::new((0..6).collect());
        let locals: Vec<Mutex<VecDeque<usize>>> =
            (0..2).map(|_| Mutex::new(VecDeque::new())).collect();
        // Worker 0 claims with batch 3: takes 0, banks 1 and 2 in its deque.
        assert_eq!(claim_cell(0, &injector, &locals, 3), Some(0));
        assert_eq!(locals[0].lock().unwrap().len(), 2);
        assert_eq!(injector.lock().unwrap().len(), 3);
        // Worker 1 claims next: its own deque is empty, so it batches from the
        // injector (3, banking 4 and 5), draining it.
        assert_eq!(claim_cell(1, &injector, &locals, 3), Some(3));
        assert!(injector.lock().unwrap().is_empty());
        // Worker 0 drains its own deque oldest-first.
        assert_eq!(claim_cell(0, &injector, &locals, 3), Some(1));
        assert_eq!(claim_cell(0, &injector, &locals, 3), Some(2));
        // Worker 0 is dry everywhere else, so it steals worker 1's *newest*
        // banked cell (the back of the deque: 5, not 4).
        assert_eq!(claim_cell(0, &injector, &locals, 3), Some(5));
        assert_eq!(claim_cell(1, &injector, &locals, 3), Some(4));
        // Everything is dry: both workers disband.
        assert_eq!(claim_cell(0, &injector, &locals, 3), None);
        assert_eq!(claim_cell(1, &injector, &locals, 3), None);
    }

    #[test]
    fn single_thread_runner_degenerates_to_serial() {
        let grid = ExperimentGrid {
            scales: vec![ExperimentScale { requests: 120, ..tiny_scale() }],
            ..ExperimentGrid::full(tiny_scale())
        };
        let serial = ParallelRunner::run_serial(&grid).unwrap();
        assert_eq!(ParallelRunner::new(1).run(&grid).unwrap(), serial);
        assert_eq!(ParallelRunner::new(0).threads(), 1, "zero threads is clamped");
    }
}
