//! The discrete-event calendar at the core of the workload driver.
//!
//! The drive loop used to juggle three time-ordered structures: a closed-loop
//! slot heap (completion times of requests holding queue slots), an open-loop
//! outstanding heap (completion times of requests still in flight in simulated
//! time) and a vector of per-chip ready clocks. The first two held the *same
//! values* — host-completion instants — ordered the same way, and diverged only
//! in when entries were popped. This module collapses them into one
//! [`EventCalendar`]: a single binary heap of typed [`Event`]s drained
//! earliest-first, plus the per-chip ready clocks (kept as random-access
//! resource clocks rather than events: an op needs *its* chip's availability,
//! not the globally earliest one).
//!
//! Why one heap is enough: every completion pushed is `>=` every value popped
//! before it (a completion ends at or after its issue instant, which is at or
//! after the clock, which is the maximum of everything popped so far). Both
//! consumers therefore remove elements globally smallest-first from the same
//! multiset, so a queue-slot pop ([`EventCalendar::pop_earliest`] when the
//! calendar is at the queue depth) and a retirement sweep
//! ([`EventCalendar::observe_arrival`]) interleave without ever disagreeing
//! about which completion is earliest. After a sweep the calendar holds exactly
//! the completions later than the current issue instant — the quantity behind
//! `peak_queue_depth` and `busy_arrivals` — which is why the calendar can own
//! those statistics too.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use vflash_nand::{ChipClocks, Nanos};

/// What a scheduled event is. Today the drive loop only schedules host-request
/// completions; the enum exists so further event sources (device maintenance,
/// background migration) slot into the same calendar instead of growing a
/// fourth ad-hoc structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum EventKind {
    /// A host request completes (leaves the simulated queue).
    HostCompletion,
}

/// A scheduled instant in simulated time. Ordered by time, then kind, so the
/// heap pops deterministically even with mixed kinds at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct Event {
    /// When the event fires.
    pub at: Nanos,
    /// What fires.
    pub kind: EventKind,
}

/// The single time-ordered core of the drive loop: pending events over one
/// binary heap, per-chip ready clocks, and the backlog statistics that fall out
/// of draining them.
#[derive(Debug, Clone)]
pub(crate) struct EventCalendar {
    /// Pending events, popped earliest-first.
    events: BinaryHeap<Reverse<Event>>,
    /// Per-chip busy-until clocks. Resource clocks, not events: ops ask for a
    /// specific chip's availability by index. Shared with the FTL batch path
    /// (`submit_batch`) so both schedule ops under the exact same rule.
    chip_ready: ChipClocks,
    /// Largest number of host completions pending right after an arrival was
    /// scheduled — the peak backlog.
    peak_outstanding: usize,
    /// Arrivals that found at least one earlier request still outstanding.
    busy_arrivals: u64,
}

impl EventCalendar {
    /// An empty calendar for a device with `chips` chips. `capacity` presizes
    /// the event heap (the closed-loop queue depth; open loop passes a guess).
    pub(crate) fn new(chips: usize, capacity: usize) -> Self {
        EventCalendar {
            events: BinaryHeap::with_capacity(capacity),
            chip_ready: ChipClocks::new(chips),
            peak_outstanding: 0,
            busy_arrivals: 0,
        }
    }

    /// Number of host completions still pending.
    pub(crate) fn outstanding(&self) -> usize {
        self.events.len()
    }

    /// Pops the earliest pending completion, if any. The closed-loop discipline
    /// calls this when all queue slots are taken: the popped instant is when
    /// the next slot frees.
    pub(crate) fn pop_earliest(&mut self) -> Option<Nanos> {
        self.events.pop().map(|Reverse(event)| event.at)
    }

    /// Observes a request arriving (being issued) at `issue`: retires every
    /// completion at or before that instant, and counts the arrival as *busy*
    /// if any earlier request is still outstanding afterwards.
    pub(crate) fn observe_arrival(&mut self, issue: Nanos) {
        while self.events.peek().is_some_and(|&Reverse(event)| event.at <= issue) {
            self.events.pop();
        }
        if !self.events.is_empty() {
            self.busy_arrivals += 1;
        }
    }

    /// Plays one timed device op: the op starts when both its predecessor
    /// (`now`) and its chip are ready, and advances the chip's clock. Returns
    /// the op's end time (the new `now` of the request chain).
    pub(crate) fn play_op(&mut self, chip: usize, now: Nanos, latency: Nanos) -> Nanos {
        self.chip_ready.play_op(chip, now, latency)
    }

    /// Schedules a host completion at `at` and tracks the peak backlog.
    pub(crate) fn schedule_completion(&mut self, at: Nanos) {
        self.events.push(Reverse(Event { at, kind: EventKind::HostCompletion }));
        if self.events.len() > self.peak_outstanding {
            self.peak_outstanding = self.events.len();
        }
    }

    /// The peak backlog observed so far.
    pub(crate) fn peak_outstanding(&self) -> usize {
        self.peak_outstanding
    }

    /// Arrivals so far that found the system busy.
    pub(crate) fn busy_arrivals(&self) -> u64 {
        self.busy_arrivals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_earliest_first() {
        let mut calendar = EventCalendar::new(1, 4);
        for at in [30u64, 10, 20] {
            calendar.schedule_completion(Nanos(at));
        }
        assert_eq!(calendar.pop_earliest(), Some(Nanos(10)));
        assert_eq!(calendar.pop_earliest(), Some(Nanos(20)));
        assert_eq!(calendar.pop_earliest(), Some(Nanos(30)));
        assert_eq!(calendar.pop_earliest(), None);
    }

    #[test]
    fn observe_arrival_retires_due_completions_and_counts_busy_arrivals() {
        let mut calendar = EventCalendar::new(1, 4);
        calendar.schedule_completion(Nanos(100));
        calendar.schedule_completion(Nanos(200));
        // Arrival at t=100 retires the t=100 completion (<=) but finds t=200
        // still pending: a busy arrival.
        calendar.observe_arrival(Nanos(100));
        assert_eq!(calendar.outstanding(), 1);
        assert_eq!(calendar.busy_arrivals(), 1);
        // Arrival at t=500 drains everything: an idle arrival.
        calendar.observe_arrival(Nanos(500));
        assert_eq!(calendar.outstanding(), 0);
        assert_eq!(calendar.busy_arrivals(), 1);
    }

    #[test]
    fn peak_outstanding_tracks_the_backlog_high_water_mark() {
        let mut calendar = EventCalendar::new(1, 4);
        calendar.schedule_completion(Nanos(10));
        calendar.schedule_completion(Nanos(20));
        calendar.schedule_completion(Nanos(30));
        assert_eq!(calendar.peak_outstanding(), 3);
        calendar.observe_arrival(Nanos(25));
        assert_eq!(calendar.outstanding(), 1);
        assert_eq!(calendar.peak_outstanding(), 3, "the peak never decays");
    }

    #[test]
    fn play_op_serialises_on_a_chip_and_overlaps_across_chips() {
        let mut calendar = EventCalendar::new(2, 4);
        // Two ops on chip 0 serialise.
        let first = calendar.play_op(0, Nanos(0), Nanos(100));
        assert_eq!(first, Nanos(100));
        let second = calendar.play_op(0, Nanos(0), Nanos(50));
        assert_eq!(second, Nanos(150), "chip 0 was busy until t=100");
        // Chip 1 is idle, so an op chained after `now` starts immediately.
        let third = calendar.play_op(1, Nanos(40), Nanos(10));
        assert_eq!(third, Nanos(50));
    }

    #[test]
    fn event_ordering_is_time_then_kind() {
        let early = Event { at: Nanos(5), kind: EventKind::HostCompletion };
        let late = Event { at: Nanos(6), kind: EventKind::HostCompletion };
        assert!(early < late);
        assert_eq!(early, early);
    }
}
