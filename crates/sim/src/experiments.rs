//! Ready-made parameter sweeps reproducing the paper's evaluation (Figures 12–18).
//!
//! Every figure of the evaluation section has a function here that produces its data
//! rows; the `experiments` binary in `vflash-bench` prints them and the Criterion
//! benches time them. The sweeps are parameterised by an [`ExperimentScale`] so unit
//! tests and benches can run a scaled-down version of the same code path that the
//! full harness uses.
//!
//! The original MSR-Cambridge traces are replaced by the synthetic generators in
//! [`vflash_trace::synthetic`]; see `DESIGN.md` for the substitution rationale.

use vflash_ftl::hotcold::{FreqTable, MultiHash, TwoLevelLru};
use vflash_ftl::{
    ConventionalFtl, CostBenefitVictimPolicy, FlashTranslationLayer, FtlConfig, FtlError,
    GreedyVictimPolicy, HotColdVictimPolicy, IoRequest, Lpn, VictimPolicy, WearAwareVictimPolicy,
};
use vflash_nand::{FaultConfig, NandConfig, NandDevice, Nanos};
use vflash_ppb::{PpbConfig, PpbFtl};
use vflash_trace::synthetic::{self, ArrivalModel, SyntheticConfig};
use vflash_trace::Trace;

use crate::engine::{prefill_ftl, ArrivalDiscipline, RunOptions, WorkloadDriver};
use crate::replay::Replayer;
use crate::report::{Comparison, RunSummary};

/// The speed-difference sweep used throughout the evaluation (2x to 5x).
pub const SPEED_RATIOS: [f64; 4] = [2.0, 3.0, 4.0, 5.0];

/// The page sizes compared in Figures 12 and 15.
pub const PAGE_SIZES: [usize; 2] = [8 * 1024, 16 * 1024];

/// The queue depths every figure can additionally be swept over.
pub const QUEUE_DEPTHS: [usize; 4] = [1, 4, 16, 64];

/// The open-loop rate scales the offered-load sweep replays at: from a tenth of
/// the trace's recorded arrival rate (comfortably under-saturated on the default
/// devices) to 4x (well past saturation), so the latency-vs-offered-load curve
/// shows both regimes and its knee.
pub const RATE_SCALES: [f64; 6] = [0.1, 0.25, 0.5, 1.0, 2.0, 4.0];

/// The host-tier fleet widths the fleet sweep stripes the keyspace over
/// ([`ExperimentGrid::fleet_sweep`](crate::ExperimentGrid::fleet_sweep)): 1
/// device (the single-drive reference) through 8-wide striping.
pub const FLEET_SIZES: [usize; 4] = [1, 2, 4, 8];

/// The burstiness axis of the [`burst_sweep`]: arrival models of *identical mean
/// rate* ordered from smooth to extremely bursty. The first entry is the
/// jittered-uniform reference; the Pareto entries get heavier as the shape drops
/// towards 1, and the on/off entries compress all arrivals into ever denser
/// bursts. Because the mean rate is held fixed, any latency difference down the
/// axis is attributable to burstiness alone — the queueing-theory point the
/// paper's tail-latency claims rest on.
pub fn burst_axis(mean_iops: f64) -> Vec<ArrivalModel> {
    vec![
        ArrivalModel::MeanRate { iops: mean_iops },
        ArrivalModel::Pareto { shape: 2.5, mean_iops },
        ArrivalModel::Pareto { shape: 1.5, mean_iops },
        ArrivalModel::Pareto { shape: 1.2, mean_iops },
        ArrivalModel::OnOffBurst {
            burst_iops: 4.0 * mean_iops,
            idle_fraction: 0.75,
            burst_len: 64,
        },
        ArrivalModel::OnOffBurst {
            burst_iops: 10.0 * mean_iops,
            idle_fraction: 0.9,
            burst_len: 256,
        },
    ]
}

/// The fraction of a device's probed saturation throughput the burstiness
/// sweeps offer as their fixed mean rate. Half of saturation puts the smooth
/// end of the [`burst_axis`] comfortably inside the device's capacity — where
/// uniform arrivals see near-zero queueing — while the bursty end still
/// overloads the device *transiently*, exactly the regime where the tail
/// spreads.
pub const BURST_SATURATION_FRACTION: f64 = 0.5;

/// The mean arrival rate the
/// [`ExperimentGrid::burst_sweep`](crate::ExperimentGrid::burst_sweep) grid
/// holds fixed across its burstiness axis: [`BURST_SATURATION_FRACTION`] of the
/// *smallest* saturation throughput any of the grid's workloads reaches on the
/// grid's device (each probed like [`burst_sweep_mean_iops`]). Taking the
/// minimum keeps the smooth end of the axis under capacity for **every**
/// workload in the grid, so differences down the axis stay attributable to
/// burstiness rather than to one workload saturating outright. Historically
/// this grid pinned ≈9.1 kIOPS (the recorded rate of the default uniform-gap
/// generators) regardless of what the device could actually serve; the
/// rate-relative probe makes the axis meaningful at any scale.
///
/// # Errors
///
/// Propagates FTL construction and replay errors from the probe runs.
pub fn grid_burst_mean_iops(scale: &ExperimentScale) -> Result<f64, FtlError> {
    let mut mean: Option<f64> = None;
    for workload in Workload::ALL {
        let probed = burst_sweep_mean_iops(workload, scale)?;
        mean = Some(mean.map_or(probed, |current| current.min(probed)));
    }
    Ok(mean.expect("Workload::ALL is non-empty"))
}

/// The two workloads of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Large, sequential, read-dominant media-server workload.
    MediaServer,
    /// Small, random, re-read-heavy web/SQL-server workload.
    WebSqlServer,
}

impl Workload {
    /// Both workloads, in the order the paper's figures list them.
    pub const ALL: [Workload; 2] = [Workload::MediaServer, Workload::WebSqlServer];

    /// The label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Workload::MediaServer => "media-server",
            Workload::WebSqlServer => "web-sql-server",
        }
    }

    /// Generates the synthetic trace for this workload at the given scale, with
    /// the default (uniform-gap) arrival model.
    pub fn trace(self, scale: &ExperimentScale) -> Trace {
        self.trace_with_arrival(scale, ArrivalModel::default())
    }

    /// Like [`Workload::trace`], but spacing arrivals with an explicit
    /// [`ArrivalModel`] — the entry point of the burstiness sweeps.
    pub fn trace_with_arrival(self, scale: &ExperimentScale, arrival: ArrivalModel) -> Trace {
        let config = SyntheticConfig {
            requests: scale.requests,
            seed: scale.seed,
            working_set_bytes: scale.working_set_bytes,
            arrival,
        };
        match self {
            Workload::MediaServer => synthetic::media_server(config),
            Workload::WebSqlServer => synthetic::web_sql_server(config),
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// First-stage classifier choices for the classifier ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Classifier {
    /// Request-size check (the paper's case study).
    SizeCheck,
    /// Two-level LRU.
    TwoLevelLru,
    /// Per-LPN frequency table.
    FreqTable,
    /// Multi-hash counting sketch.
    MultiHash,
}

impl Classifier {
    /// All classifier choices.
    pub const ALL: [Classifier; 4] =
        [Classifier::SizeCheck, Classifier::TwoLevelLru, Classifier::FreqTable, Classifier::MultiHash];

    /// The label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Classifier::SizeCheck => "size-check",
            Classifier::TwoLevelLru => "two-level-lru",
            Classifier::FreqTable => "freq-table",
            Classifier::MultiHash => "multi-hash",
        }
    }
}

/// How large an experiment to run: trace length, working-set size and device
/// geometry. The device is sized relative to the working set so garbage collection is
/// exercised without making runs unreasonably slow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentScale {
    /// Number of trace requests per run.
    pub requests: usize,
    /// Logical working-set size touched by the workload generators, in bytes.
    pub working_set_bytes: u64,
    /// Raw device capacity as a multiple of the working set (must be > 1 to leave
    /// room for over-provisioning). The MSR enterprise traces touch only a small
    /// fraction of the 64 GB device of Table 1, so a generous default (2.0) is the
    /// faithful choice; pushing this towards 1.0 stresses garbage collection far
    /// beyond what the paper's setup does.
    pub capacity_headroom: f64,
    /// Pages (gate-stack layers) per block.
    pub pages_per_block: usize,
    /// Number of chips.
    pub chips: usize,
    /// Seed for the synthetic workload generators.
    pub seed: u64,
}

impl ExperimentScale {
    /// A fast configuration for unit tests and Criterion benches (a few thousand
    /// requests, tens of megabytes).
    pub fn quick() -> Self {
        ExperimentScale {
            requests: 4_000,
            working_set_bytes: 24 * 1024 * 1024,
            capacity_headroom: 2.0,
            pages_per_block: 32,
            chips: 1,
            seed: 42,
        }
    }

    /// The default configuration for the `experiments` binary: large enough for the
    /// trends to be stable, small enough to run all figures in a few minutes.
    pub fn standard() -> Self {
        ExperimentScale {
            requests: 60_000,
            working_set_bytes: 128 * 1024 * 1024,
            capacity_headroom: 2.0,
            pages_per_block: 64,
            chips: 2,
            seed: 42,
        }
    }

    /// Builds the device configuration for a given page size and speed ratio.
    ///
    /// # Panics
    ///
    /// Panics if the scale parameters produce an invalid device configuration (for
    /// example a zero block count); the provided presets never do.
    pub fn device_config(&self, page_size_bytes: usize, speed_ratio: f64) -> NandConfig {
        let raw_bytes = (self.working_set_bytes as f64 * self.capacity_headroom) as u64;
        let block_bytes = (self.pages_per_block * page_size_bytes) as u64;
        let total_blocks = (raw_bytes / block_bytes).max(8) as usize;
        let blocks_per_chip = total_blocks.div_ceil(self.chips);
        NandConfig::builder()
            .chips(self.chips)
            .blocks_per_chip(blocks_per_chip)
            .pages_per_block(self.pages_per_block)
            .page_size_bytes(page_size_bytes)
            .speed_ratio(speed_ratio)
            .build()
            .expect("experiment scale produces a valid device configuration")
    }

    /// Returns a copy of this scale whose working set covers `trace`'s distinct
    /// logical-page footprint (at 16 KB pages, the sweep page size), so the
    /// devices built from it hold the trace's data at the scale's configured
    /// [`capacity_headroom`](ExperimentScale::capacity_headroom) instead of
    /// overflowing. This is what the real-trace path uses: synthetic workloads
    /// are generated *for* a working set, but an external trace arrives with its
    /// own — possibly much larger — footprint.
    ///
    /// The working set only grows, never shrinks, so a small trace still runs on
    /// the scale's default device.
    pub fn sized_for_trace(&self, trace: &Trace) -> ExperimentScale {
        const PAGE: u64 = 16 * 1024;
        let mut pages = std::collections::HashSet::new();
        for request in trace {
            for page in request.logical_pages(PAGE as usize) {
                pages.insert(page);
            }
        }
        let footprint = pages.len() as u64 * PAGE;
        ExperimentScale {
            working_set_bytes: self.working_set_bytes.max(footprint),
            ..*self
        }
    }
}

impl Default for ExperimentScale {
    fn default() -> Self {
        ExperimentScale::standard()
    }
}

fn replayer() -> Replayer {
    Replayer::new(RunOptions::default())
}

/// Replays an FTL under an arrival discipline through the unified
/// [`WorkloadDriver`] (which picks the untraced serial path at closed-loop
/// depth 1 by itself).
fn replay_driven<F: vflash_ftl::FlashTranslationLayer>(
    ftl: F,
    trace: &Trace,
    discipline: ArrivalDiscipline,
) -> Result<RunSummary, FtlError> {
    WorkloadDriver::new(RunOptions::default(), discipline).run(ftl, trace)
}


/// Replays `trace` against the conventional FTL on a device built from `config`.
///
/// # Errors
///
/// Propagates FTL construction and replay errors.
pub fn run_conventional(trace: &Trace, config: &NandConfig) -> Result<RunSummary, FtlError> {
    run_conventional_at_depth(trace, config, 1)
}

/// Like [`run_conventional`], at an explicit queue depth.
///
/// # Errors
///
/// Propagates FTL construction and replay errors.
pub fn run_conventional_at_depth(
    trace: &Trace,
    config: &NandConfig,
    queue_depth: usize,
) -> Result<RunSummary, FtlError> {
    run_conventional_driven(trace, config, ArrivalDiscipline::ClosedLoop { queue_depth })
}

/// Like [`run_conventional`], under an explicit arrival discipline (closed loop at
/// any depth, or open loop at a rate scale).
///
/// # Errors
///
/// Propagates FTL construction and replay errors.
pub fn run_conventional_driven(
    trace: &Trace,
    config: &NandConfig,
    discipline: ArrivalDiscipline,
) -> Result<RunSummary, FtlError> {
    let ftl = ConventionalFtl::new(NandDevice::new(config.clone()), FtlConfig::default())?;
    replay_driven(ftl, trace, discipline)
}

/// Replays `trace` against the PPB FTL (default configuration and classifier) on a
/// device built from `config`.
///
/// # Errors
///
/// Propagates FTL construction and replay errors.
pub fn run_ppb(trace: &Trace, config: &NandConfig) -> Result<RunSummary, FtlError> {
    run_ppb_with(trace, config, PpbConfig::default(), Classifier::SizeCheck)
}

/// Like [`run_ppb`], at an explicit queue depth. Shares [`run_ppb_with`]'s
/// construction path, so the defaults (configuration and classifier) can never
/// diverge between the serial figures and the queue-depth/grid rows.
///
/// # Errors
///
/// Propagates FTL construction and replay errors.
pub fn run_ppb_at_depth(
    trace: &Trace,
    config: &NandConfig,
    queue_depth: usize,
) -> Result<RunSummary, FtlError> {
    run_ppb_driven(trace, config, ArrivalDiscipline::ClosedLoop { queue_depth })
}

/// Like [`run_ppb`], under an explicit arrival discipline. Shares
/// [`run_ppb_with`]'s construction path, so the defaults can never diverge
/// between the serial figures and the open-loop/grid rows.
///
/// # Errors
///
/// Propagates FTL construction and replay errors.
pub fn run_ppb_driven(
    trace: &Trace,
    config: &NandConfig,
    discipline: ArrivalDiscipline,
) -> Result<RunSummary, FtlError> {
    run_ppb_with_driven(trace, config, PpbConfig::default(), Classifier::SizeCheck, discipline)
}

/// Replays `trace` against the PPB FTL with an explicit configuration and first-stage
/// classifier. Used by the ablation benches.
///
/// # Errors
///
/// Propagates FTL construction and replay errors.
pub fn run_ppb_with(
    trace: &Trace,
    config: &NandConfig,
    ppb: PpbConfig,
    classifier: Classifier,
) -> Result<RunSummary, FtlError> {
    run_ppb_with_driven(trace, config, ppb, classifier, ArrivalDiscipline::ClosedLoop {
        queue_depth: 1,
    })
}

/// The single construction + replay path every `run_ppb*` helper funnels into.
fn run_ppb_with_driven(
    trace: &Trace,
    config: &NandConfig,
    ppb: PpbConfig,
    classifier: Classifier,
    discipline: ArrivalDiscipline,
) -> Result<RunSummary, FtlError> {
    let device = NandDevice::new(config.clone());
    match classifier {
        Classifier::SizeCheck => replay_driven(PpbFtl::new(device, ppb)?, trace, discipline),
        Classifier::TwoLevelLru => {
            let lru = TwoLevelLru::new(4096, 4096);
            replay_driven(PpbFtl::with_classifier(device, ppb, lru)?, trace, discipline)
        }
        Classifier::FreqTable => {
            let table = FreqTable::new(2, 100_000);
            replay_driven(PpbFtl::with_classifier(device, ppb, table)?, trace, discipline)
        }
        Classifier::MultiHash => {
            let sketch = MultiHash::new(1 << 16, 2, 2, 100_000);
            replay_driven(PpbFtl::with_classifier(device, ppb, sketch)?, trace, discipline)
        }
    }
}

/// Runs conventional vs PPB on one workload / page size / speed ratio and returns the
/// comparison.
///
/// # Errors
///
/// Propagates FTL construction and replay errors.
pub fn compare(
    workload: Workload,
    page_size_bytes: usize,
    speed_ratio: f64,
    scale: &ExperimentScale,
) -> Result<Comparison, FtlError> {
    let trace = workload.trace(scale);
    let config = scale.device_config(page_size_bytes, speed_ratio);
    compare_trace(&trace, &config)
}

/// Runs conventional vs PPB (default configurations) on an arbitrary trace and
/// device configuration — the single comparison step [`compare`] and the
/// latency sweeps share.
///
/// # Errors
///
/// Propagates FTL construction and replay errors.
pub fn compare_trace(trace: &Trace, config: &NandConfig) -> Result<Comparison, FtlError> {
    let baseline = run_conventional(trace, config)?;
    let variant = run_ppb(trace, config)?;
    Ok(Comparison::new(baseline, variant))
}

/// One row of Figure 12 / Figure 15: a workload, a page size, and the comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct EnhancementRow {
    /// Workload the row belongs to.
    pub workload: Workload,
    /// Page size in bytes.
    pub page_size_bytes: usize,
    /// The baseline/variant comparison.
    pub comparison: Comparison,
}

/// Figure 12 (read) and Figure 15 (write) share the same runs: both workloads at both
/// page sizes, 2x speed difference.
///
/// # Errors
///
/// Propagates FTL construction and replay errors.
pub fn enhancement_rows(scale: &ExperimentScale) -> Result<Vec<EnhancementRow>, FtlError> {
    let mut rows = Vec::new();
    for workload in Workload::ALL {
        for &page_size in &PAGE_SIZES {
            let comparison = compare(workload, page_size, 2.0, scale)?;
            rows.push(EnhancementRow { workload, page_size_bytes: page_size, comparison });
        }
    }
    Ok(rows)
}

/// One row of the latency-versus-speed-difference figures (13, 14, 16, 17).
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySweepRow {
    /// Top/bottom speed ratio for this row.
    pub speed_ratio: f64,
    /// Total latency under the conventional FTL.
    pub conventional: Nanos,
    /// Total latency under the PPB FTL.
    pub ppb: Nanos,
}

/// Figures 13 and 14: total **read** latency of one workload for speed differences
/// 2x–5x, conventional vs PPB (16 KB pages).
///
/// # Errors
///
/// Propagates FTL construction and replay errors.
pub fn read_latency_sweep(
    workload: Workload,
    scale: &ExperimentScale,
) -> Result<Vec<LatencySweepRow>, FtlError> {
    read_latency_sweep_for_trace(&workload.trace(scale), scale)
}

/// Figures 16 and 17: total **write** latency of one workload for speed differences
/// 2x–5x, conventional vs PPB (16 KB pages).
///
/// # Errors
///
/// Propagates FTL construction and replay errors.
pub fn write_latency_sweep(
    workload: Workload,
    scale: &ExperimentScale,
) -> Result<Vec<LatencySweepRow>, FtlError> {
    write_latency_sweep_for_trace(&workload.trace(scale), scale)
}

/// [`read_latency_sweep`] over an arbitrary trace — the entry point the real-trace
/// path (`experiments --trace file.csv`) shares with the synthetic workloads.
///
/// # Errors
///
/// Propagates FTL construction and replay errors.
pub fn read_latency_sweep_for_trace(
    trace: &Trace,
    scale: &ExperimentScale,
) -> Result<Vec<LatencySweepRow>, FtlError> {
    latency_sweep_for_trace(trace, scale, |summary| summary.read_time)
}

/// [`write_latency_sweep`] over an arbitrary trace.
///
/// # Errors
///
/// Propagates FTL construction and replay errors.
pub fn write_latency_sweep_for_trace(
    trace: &Trace,
    scale: &ExperimentScale,
) -> Result<Vec<LatencySweepRow>, FtlError> {
    latency_sweep_for_trace(trace, scale, |summary| summary.write_time)
}

fn latency_sweep_for_trace(
    trace: &Trace,
    scale: &ExperimentScale,
    metric: impl Fn(&RunSummary) -> Nanos,
) -> Result<Vec<LatencySweepRow>, FtlError> {
    let mut rows = Vec::new();
    for &ratio in &SPEED_RATIOS {
        let comparison = compare_trace(trace, &scale.device_config(16 * 1024, ratio))?;
        rows.push(LatencySweepRow {
            speed_ratio: ratio,
            conventional: metric(&comparison.baseline),
            ppb: metric(&comparison.variant),
        });
    }
    Ok(rows)
}

/// One row of the offered-load (open-loop) sweep: both FTLs replaying the same
/// trace at one rate scale.
#[derive(Debug, Clone, PartialEq)]
pub struct RateScaleRow {
    /// Multiplier on the trace's recorded arrival rate.
    pub rate_scale: f64,
    /// The conventional FTL's summary (offered/achieved IOPS, queue-delay and
    /// service-time percentiles).
    pub conventional: RunSummary,
    /// The PPB FTL's summary.
    pub ppb: RunSummary,
}

/// The offered-load sweep: both FTLs replay one workload **open-loop** at every
/// rate scale in [`RATE_SCALES`] on the same multi-chip device (16 KB pages, 2x
/// speed difference). Device state evolves identically at every rate — only the
/// arrival overlay changes — so this is the latency-vs-offered-load curve: as the
/// offered rate passes what the device can absorb, achieved IOPS flattens and
/// queueing delay (not service time) takes over the response time.
///
/// # Errors
///
/// Propagates FTL construction and replay errors.
pub fn rate_scale_sweep(
    workload: Workload,
    scale: &ExperimentScale,
) -> Result<Vec<RateScaleRow>, FtlError> {
    rate_scale_sweep_for_trace(&workload.trace(scale), scale)
}

/// [`rate_scale_sweep`] over an arbitrary trace (the real-trace path).
///
/// # Errors
///
/// Propagates FTL construction and replay errors.
pub fn rate_scale_sweep_for_trace(
    trace: &Trace,
    scale: &ExperimentScale,
) -> Result<Vec<RateScaleRow>, FtlError> {
    let config = scale.device_config(16 * 1024, 2.0);
    let mut rows = Vec::new();
    for &rate_scale in &RATE_SCALES {
        let discipline = ArrivalDiscipline::OpenLoop { rate_scale };
        rows.push(RateScaleRow {
            rate_scale,
            conventional: run_conventional_driven(trace, &config, discipline)?,
            ppb: run_ppb_driven(trace, &config, discipline)?,
        });
    }
    Ok(rows)
}

/// One row of the burstiness sweep: both FTLs replaying the same workload under
/// one arrival model of the shared-mean-rate [`burst_axis`].
#[derive(Debug, Clone, PartialEq)]
pub struct BurstRow {
    /// The arrival model this row was generated with.
    pub arrival: ArrivalModel,
    /// The conventional FTL's open-loop summary (tail percentiles, peak queue
    /// depth, busy-arrival fraction).
    pub conventional: RunSummary,
    /// The PPB FTL's summary.
    pub ppb: RunSummary,
}

/// Measures the saturation throughput of the burst-sweep device for `workload`
/// at `scale` (conventional FTL, closed loop at QD 64 — arrivals cannot come in
/// faster than that serves them) and returns [`BURST_SATURATION_FRACTION`] of
/// it: the fixed mean rate the [`burst_sweep`] offers.
///
/// # Errors
///
/// Propagates FTL construction and replay errors from the probe run.
pub fn burst_sweep_mean_iops(
    workload: Workload,
    scale: &ExperimentScale,
) -> Result<f64, FtlError> {
    let config = scale.device_config(16 * 1024, 2.0);
    let saturated = run_conventional_at_depth(&workload.trace(scale), &config, 64)?;
    Ok(saturated.request_iops() * BURST_SATURATION_FRACTION)
}

/// The burstiness sweep: both FTLs replay one workload **open-loop at the
/// trace's own clock** (rate scale 1) under every arrival model of the
/// [`burst_axis`], at one fixed mean rate — half the device's measured
/// saturation throughput ([`burst_sweep_mean_iops`]) — on the same device the
/// offered-load sweep uses (16 KB pages, 2x speed difference).
///
/// Because the mean rate never changes, mean latency moves little down the axis
/// — what moves is the *tail*: p99/p99.9 response time, the peak backlog
/// ([`RunSummary::peak_queue_depth`]) and the fraction of requests arriving into
/// a busy system ([`RunSummary::busy_arrival_fraction`]) all grow as arrivals
/// concentrate into bursts. This is the workload dimension the paper's
/// latency-under-load claims actually depend on: a placement win that looks
/// marginal in mean latency shows up multiplied in the burst tail, where
/// queueing amplifies every slow page access.
///
/// # Errors
///
/// Propagates FTL construction and replay errors.
pub fn burst_sweep(workload: Workload, scale: &ExperimentScale) -> Result<Vec<BurstRow>, FtlError> {
    let mean_iops = burst_sweep_mean_iops(workload, scale)?;
    burst_sweep_at(workload, scale, mean_iops)
}

/// [`burst_sweep`] at an explicit mean rate, skipping the saturation probe —
/// for callers that already ran [`burst_sweep_mean_iops`] (to report the mean)
/// or want to pin the offered load themselves.
///
/// # Errors
///
/// Propagates FTL construction and replay errors.
pub fn burst_sweep_at(
    workload: Workload,
    scale: &ExperimentScale,
    mean_iops: f64,
) -> Result<Vec<BurstRow>, FtlError> {
    let config = scale.device_config(16 * 1024, 2.0);
    let discipline = ArrivalDiscipline::OpenLoop { rate_scale: 1.0 };
    let mut rows = Vec::new();
    for arrival in burst_axis(mean_iops) {
        let trace = workload.trace_with_arrival(scale, arrival);
        rows.push(BurstRow {
            arrival,
            conventional: run_conventional_driven(&trace, &config, discipline)?,
            ppb: run_ppb_driven(&trace, &config, discipline)?,
        });
    }
    Ok(rows)
}

/// One row of Figure 18: erased-block counts per workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EraseCountRow {
    /// Workload the row belongs to.
    pub workload: Workload,
    /// Blocks erased under the conventional FTL.
    pub conventional: u64,
    /// Blocks erased under the PPB FTL.
    pub ppb: u64,
}

/// Figure 18: erased block counts for both workloads (2x speed difference, 16 KB
/// pages).
///
/// # Errors
///
/// Propagates FTL construction and replay errors.
pub fn erase_count_rows(scale: &ExperimentScale) -> Result<Vec<EraseCountRow>, FtlError> {
    let mut rows = Vec::new();
    for workload in Workload::ALL {
        let comparison = compare(workload, 16 * 1024, 2.0, scale)?;
        rows.push(EraseCountRow {
            workload,
            conventional: comparison.baseline.erased_blocks,
            ppb: comparison.variant.erased_blocks,
        });
    }
    Ok(rows)
}

/// Ablation: read enhancement as a function of the number of virtual blocks per
/// physical block (the paper notes the 2-way split as the overhead/benefit sweet
/// spot).
///
/// # Errors
///
/// Propagates FTL construction and replay errors.
pub fn ablation_virtual_blocks(
    workload: Workload,
    scale: &ExperimentScale,
) -> Result<Vec<(usize, f64)>, FtlError> {
    let trace = workload.trace(scale);
    let config = scale.device_config(16 * 1024, 4.0);
    let baseline = run_conventional(&trace, &config)?;
    let mut rows = Vec::new();
    for virtual_blocks in [1usize, 2, 4] {
        let ppb_config = PpbConfig {
            virtual_blocks_per_block: virtual_blocks,
            max_open_blocks_per_area: virtual_blocks.max(2),
            ..PpbConfig::default()
        };
        let variant = run_ppb_with(&trace, &config, ppb_config, Classifier::SizeCheck)?;
        let comparison = Comparison::new(baseline.clone(), variant);
        rows.push((virtual_blocks, comparison.read_enhancement_pct()));
    }
    Ok(rows)
}

/// One row of the queue-depth sweep: both FTLs replaying the same trace at one
/// depth.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueDepthRow {
    /// Queue depth of this row.
    pub queue_depth: usize,
    /// The conventional FTL's summary (with percentiles and achieved IOPS).
    pub conventional: RunSummary,
    /// The PPB FTL's summary.
    pub ppb: RunSummary,
}

/// The queue-depth sweep: both FTLs replay one workload at QD ∈
/// [`QUEUE_DEPTHS`] on the same multi-chip device (16 KB pages, 2x speed
/// difference). Device state evolves identically at every depth — only the timing
/// overlay changes — so differences in IOPS and tail latency are attributable to
/// queuing alone.
///
/// # Errors
///
/// Propagates FTL construction and replay errors.
pub fn queue_depth_sweep(
    workload: Workload,
    scale: &ExperimentScale,
) -> Result<Vec<QueueDepthRow>, FtlError> {
    let trace = workload.trace(scale);
    let config = scale.device_config(16 * 1024, 2.0);
    let mut rows = Vec::new();
    for &queue_depth in &QUEUE_DEPTHS {
        rows.push(QueueDepthRow {
            queue_depth,
            conventional: run_conventional_at_depth(&trace, &config, queue_depth)?,
            ppb: run_ppb_at_depth(&trace, &config, queue_depth)?,
        });
    }
    Ok(rows)
}

/// Garbage-collection victim-selection policies compared in the Figure 18
/// ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GcPolicy {
    /// Most invalid pages first (the default everywhere else).
    Greedy,
    /// Greedy score with a wear penalty per prior erase.
    WearAware,
    /// Rosenblum & Ousterhout's `(1-u)/2u x age` benefit/cost selector.
    CostBenefit,
    /// Greedy with a bonus for cold-tagged blocks, exploiting the PPB area tags
    /// (hot-area blocks clean themselves; cold valid data is stable, so copying
    /// it wastes nothing). On the untagged conventional FTL this coincides with
    /// greedy.
    HotCold,
    /// [`GcPolicy::HotCold`] with an explicit cold-victim bonus in whole
    /// invalid-page equivalents (the default `HotCold` uses 2) — the cold-bonus
    /// ablation rows of the Figure 18 sweep. A bonus of 0 disables the cold
    /// preference entirely (pure greedy even on tagged devices), so the row
    /// isolates how much of the hot-cold policy's win the bonus itself buys.
    HotColdBonus(u32),
}

impl GcPolicy {
    /// All policies, in report order: the four base policies, then the
    /// cold-bonus ablation (bonus disabled, then an aggressive bonus bracketing
    /// the `HotCold` default of 2).
    pub const ALL: [GcPolicy; 6] = [
        GcPolicy::Greedy,
        GcPolicy::WearAware,
        GcPolicy::CostBenefit,
        GcPolicy::HotCold,
        GcPolicy::HotColdBonus(0),
        GcPolicy::HotColdBonus(6),
    ];

    /// The label used in reports (e.g. `greedy`, `hot-cold`, `hot-cold(b=6)`).
    pub fn label(self) -> String {
        match self {
            GcPolicy::Greedy => "greedy".to_string(),
            GcPolicy::WearAware => "wear-aware".to_string(),
            GcPolicy::CostBenefit => "cost-benefit".to_string(),
            GcPolicy::HotCold => "hot-cold".to_string(),
            GcPolicy::HotColdBonus(bonus) => format!("hot-cold(b={bonus})"),
        }
    }

    /// Builds the policy object.
    pub fn build(self) -> Box<dyn VictimPolicy> {
        match self {
            GcPolicy::Greedy => Box::new(GreedyVictimPolicy::new()),
            GcPolicy::WearAware => Box::new(WearAwareVictimPolicy::default()),
            GcPolicy::CostBenefit => Box::new(CostBenefitVictimPolicy::new()),
            GcPolicy::HotCold => Box::new(HotColdVictimPolicy::default()),
            GcPolicy::HotColdBonus(bonus) => {
                Box::new(HotColdVictimPolicy::new(f64::from(bonus)))
            }
        }
    }
}

impl std::fmt::Display for GcPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// One row of the Figure 18 policy ablation: erased-block counts of both FTLs
/// under one victim policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyEraseRow {
    /// Workload the row belongs to.
    pub workload: Workload,
    /// Victim policy both FTLs used.
    pub policy: GcPolicy,
    /// Blocks erased under the conventional FTL.
    pub conventional: u64,
    /// Blocks erased under the PPB FTL.
    pub ppb: u64,
}

/// Figure 18 ablation: erased-block counts for both workloads under every victim
/// policy in [`GcPolicy::ALL`] (2x speed difference, 16 KB pages). The `greedy`
/// rows coincide with [`erase_count_rows`].
///
/// # Errors
///
/// Propagates FTL construction and replay errors.
pub fn erase_count_by_policy(scale: &ExperimentScale) -> Result<Vec<PolicyEraseRow>, FtlError> {
    let mut rows = Vec::new();
    for workload in Workload::ALL {
        let trace = workload.trace(scale);
        let config = scale.device_config(16 * 1024, 2.0);
        for policy in GcPolicy::ALL {
            let mut conventional =
                ConventionalFtl::new(NandDevice::new(config.clone()), FtlConfig::default())?;
            conventional.set_victim_policy(policy.build());
            let baseline = replayer().run(conventional, &trace)?;

            let mut ppb = PpbFtl::new(NandDevice::new(config.clone()), PpbConfig::default())?;
            ppb.set_victim_policy(policy.build());
            let variant = replayer().run(ppb, &trace)?;

            rows.push(PolicyEraseRow {
                workload,
                policy,
                conventional: baseline.erased_blocks,
                ppb: variant.erased_blocks,
            });
        }
    }
    Ok(rows)
}

/// The RBER multipliers of the [`fault_sweep`]: the device's nominal error
/// curve, a mid-life 2x, and an aged 4x. At the 16 KB page size the nominal
/// curve sits just under the free ECC budget (most reads pass without
/// retries), 2x pushes the typical read one retry step down the ladder, and
/// 4x needs several steps with the occasional uncorrectable page — the
/// regimes a device traverses between fresh and end of life.
pub const RBER_SCALES: [f64; 3] = [1.0, 2.0, 4.0];

/// The GC policies the [`fault_sweep`] crosses with the RBER axis: the plain
/// greedy baseline and the tag-aware hot-cold policy, whose cold preference
/// keeps stable data out of the copy path (fewer relocation reads → fewer
/// chances for a retry to land on the GC critical path).
pub const FAULT_SWEEP_POLICIES: [GcPolicy; 2] = [GcPolicy::Greedy, GcPolicy::HotCold];

/// One row of the fault sweep: both FTLs replaying the web/SQL-server workload
/// under one RBER scale and GC victim policy. The summaries carry the
/// reliability counters ([`RunSummary::retried_reads`],
/// [`RunSummary::uncorrectable_reads`], [`RunSummary::bad_blocks_grown`]) and
/// the latency percentiles, so the row shows both how often the fault model
/// fired and what it did to the p99.9 tail.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRow {
    /// Multiplier applied to the device's RBER curve.
    pub rber_scale: f64,
    /// GC victim policy both FTLs used.
    pub policy: GcPolicy,
    /// The conventional FTL's summary.
    pub conventional: RunSummary,
    /// The PPB FTL's summary.
    pub ppb: RunSummary,
}

/// The fault sweep: both FTLs replay the web/SQL-server workload (16 KB pages,
/// 2x speed difference, QD 1) with the NAND fault model enabled at every RBER
/// scale in [`RBER_SCALES`], crossed with the [`FAULT_SWEEP_POLICIES`]. The
/// read-retry ladder turns raw bit errors into latency — folded into the same
/// service times the percentiles are computed from — while the default
/// program/erase failure probabilities keep a trickle of bad-block retirements
/// flowing through the remap path. The web workload is the interesting one
/// here: its re-read-heavy tail is exactly where retry latency compounds with
/// queueing.
///
/// The fault seed is derived from the scale's workload seed, so the sweep is
/// reproducible end to end.
///
/// # Errors
///
/// Propagates FTL construction and replay errors.
pub fn fault_sweep(scale: &ExperimentScale) -> Result<Vec<FaultRow>, FtlError> {
    let trace = Workload::WebSqlServer.trace(scale);
    let base = scale.device_config(16 * 1024, 2.0);
    let mut rows = Vec::new();
    for &rber_scale in &RBER_SCALES {
        let faults = FaultConfig { rber_scale, ..FaultConfig::enabled(scale.seed ^ 0xFA17) };
        let config = base.clone().with_faults(faults)?;
        for policy in FAULT_SWEEP_POLICIES {
            let mut conventional =
                ConventionalFtl::new(NandDevice::new(config.clone()), FtlConfig::default())?;
            conventional.set_victim_policy(policy.build());
            let baseline = replayer().run(conventional, &trace)?;

            let mut ppb = PpbFtl::new(NandDevice::new(config.clone()), PpbConfig::default())?;
            ppb.set_victim_policy(policy.build());
            let variant = replayer().run(ppb, &trace)?;

            rows.push(FaultRow { rber_scale, policy, conventional: baseline, ppb: variant });
        }
    }
    Ok(rows)
}

/// One row of the end-of-life probe ([`fault_lifetime`]): how far one FTL got
/// before bad-block growth drove its device read-only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LifetimeRow {
    /// FTL label (`conventional` / `ppb`).
    pub ftl: &'static str,
    /// Host page writes the FTL completed before refusing further writes.
    pub writes_completed: u64,
    /// Blocks retired as bad by the time of the transition.
    pub bad_blocks: u64,
    /// Device makespan at which the FTL turned read-only.
    pub time_to_read_only: Nanos,
}

/// The number of distinct logical pages the [`fault_lifetime`] probe cycles
/// over — a third of the probe device's physical pages, so the device has
/// comfortable headroom when fresh and loses it block by block as failures
/// accumulate.
pub const LIFETIME_LPNS: u64 = 256;

/// The write cap of the [`fault_lifetime`] probe — a backstop far beyond the
/// writes the aggressive failure probabilities allow, so a regression that
/// stops blocks from dying cannot hang the probe.
pub const LIFETIME_WRITE_CAP: u64 = 500_000;

/// The end-of-life probe: each FTL gets a deliberately small device (1 chip ×
/// 48 blocks × 16 pages × 4 KB) with aggressive program/erase failure
/// probabilities, and writes are issued round-robin over [`LIFETIME_LPNS`]
/// logical pages until the FTL reports [`FtlError::ReadOnly`]. The row records
/// how many writes the FTL absorbed, how many blocks it retired, and when the
/// transition happened — the graceful-degradation curve: every program failure
/// is remapped and every resident page rescued until the spare capacity is
/// genuinely gone, at which point writes are refused but reads keep working.
///
/// # Errors
///
/// Propagates FTL construction errors and any replay error other than the
/// expected read-only transition.
pub fn fault_lifetime(scale: &ExperimentScale) -> Result<Vec<LifetimeRow>, FtlError> {
    let faults = FaultConfig {
        program_fail_base: 0.02,
        erase_fail_base: 0.01,
        ..FaultConfig::enabled(scale.seed ^ 0xE01)
    };
    let config = NandConfig::builder()
        .chips(1)
        .blocks_per_chip(48)
        .pages_per_block(16)
        .page_size_bytes(4096)
        .speed_ratio(2.0)
        .faults(faults)
        .build()?;
    let conventional = ConventionalFtl::new(NandDevice::new(config.clone()), FtlConfig::default())?;
    let ppb = PpbFtl::new(NandDevice::new(config), PpbConfig::default())?;
    Ok(vec![
        drive_to_read_only(conventional, "conventional")?,
        drive_to_read_only(ppb, "ppb")?,
    ])
}

/// Issues round-robin writes against `ftl` until it turns read-only (or the
/// [`LIFETIME_WRITE_CAP`] backstop trips) and summarises the run.
fn drive_to_read_only<F: FlashTranslationLayer>(
    mut ftl: F,
    label: &'static str,
) -> Result<LifetimeRow, FtlError> {
    let mut writes_completed = 0u64;
    for index in 0..LIFETIME_WRITE_CAP {
        match ftl.submit(IoRequest::write(Lpn(index % LIFETIME_LPNS), 4096)) {
            Ok(_) => writes_completed += 1,
            Err(FtlError::ReadOnly) => break,
            Err(err) => return Err(err),
        }
    }
    let metrics = ftl.metrics();
    Ok(LifetimeRow {
        ftl: label,
        writes_completed,
        bad_blocks: metrics.bad_blocks_grown,
        time_to_read_only: metrics.time_to_read_only,
    })
}

/// Ablation: read enhancement as a function of the first-stage hot/cold classifier.
///
/// # Errors
///
/// Propagates FTL construction and replay errors.
pub fn ablation_classifier(
    workload: Workload,
    scale: &ExperimentScale,
) -> Result<Vec<(Classifier, f64)>, FtlError> {
    let trace = workload.trace(scale);
    let config = scale.device_config(16 * 1024, 4.0);
    let baseline = run_conventional(&trace, &config)?;
    let mut rows = Vec::new();
    for classifier in Classifier::ALL {
        let variant = run_ppb_with(&trace, &config, PpbConfig::default(), classifier)?;
        let comparison = Comparison::new(baseline.clone(), variant);
        rows.push((classifier, comparison.read_enhancement_pct()));
    }
    Ok(rows)
}

/// The warm-up prefix lengths of the [`ppb_sensitivity_sweep`], as fractions
/// of the trace replayed un-measured (after the usual prefill) to age the
/// device before the measured suffix starts.
pub const PPB_WARMUP_FRACTIONS: [f64; 3] = [0.0, 0.25, 0.5];

/// The [`PpbConfig::cold_promote_reads`] promotion thresholds the sensitivity
/// sweep tries on top of the default configuration (whose threshold is 1).
pub const PPB_COLD_PROMOTE_READS: [u32; 2] = [2, 4];

/// The [`PpbConfig::hot_list_fraction`] capacities the sensitivity sweep tries
/// on top of the default configuration (whose fraction is 0.15).
pub const PPB_HOT_LIST_FRACTIONS: [f64; 2] = [0.10, 0.25];

/// One row of the PPB sensitivity sweep: the warm-up length and the two
/// promotion knobs the row ran with, plus the conventional-vs-PPB comparison
/// on the measured (post-warm-up) suffix of the trace.
#[derive(Debug, Clone, PartialEq)]
pub struct PpbSensitivityRow {
    /// Workload the row belongs to.
    pub workload: Workload,
    /// Fraction of the trace replayed un-measured before measurement.
    pub warmup_fraction: f64,
    /// The `cold_promote_reads` threshold the PPB variant ran with.
    pub cold_promote_reads: u32,
    /// The `hot_list_fraction` capacity the PPB variant ran with.
    pub hot_list_fraction: f64,
    /// The baseline/variant comparison over the measured suffix.
    pub comparison: Comparison,
}

/// Sensitivity of the PPB win to warm-up length and promotion thresholds
/// (ROADMAP carry-over: the quick-scale win is ~1% on web/SQL vs the paper's
/// ~10%+; this sweep answers whether aging the device or retuning promotion
/// widens it). One-at-a-time axes around the default configuration: the
/// [`PPB_WARMUP_FRACTIONS`] at default knobs, then the
/// [`PPB_COLD_PROMOTE_READS`] and [`PPB_HOT_LIST_FRACTIONS`] variations on an
/// un-warmed device. Baselines are shared between rows with the same warm-up
/// split (the conventional FTL has no PPB knobs to vary).
///
/// Each row prefills the *full* trace's pages first, replays the warm-up
/// prefix serially without measuring it, and measures the remaining suffix —
/// so longer warm-ups measure a genuinely aged device rather than a shorter
/// trace on a fresh one.
///
/// # Errors
///
/// Propagates FTL construction and replay errors.
pub fn ppb_sensitivity_sweep(
    workload: Workload,
    scale: &ExperimentScale,
) -> Result<Vec<PpbSensitivityRow>, FtlError> {
    let trace = workload.trace(scale);
    let config = scale.device_config(16 * 1024, 2.0);
    let mut cells: Vec<(f64, PpbConfig)> = PPB_WARMUP_FRACTIONS
        .iter()
        .map(|&warmup| (warmup, PpbConfig::default()))
        .collect();
    cells.extend(PPB_COLD_PROMOTE_READS.iter().map(|&promote| {
        (0.0, PpbConfig { cold_promote_reads: promote, ..PpbConfig::default() })
    }));
    cells.extend(PPB_HOT_LIST_FRACTIONS.iter().map(|&fraction| {
        (0.0, PpbConfig { hot_list_fraction: fraction, ..PpbConfig::default() })
    }));

    let mut baselines: Vec<(usize, RunSummary)> = Vec::new();
    let mut rows = Vec::new();
    for (warmup_fraction, ppb) in cells {
        let split = warmup_split(trace.len(), warmup_fraction);
        let baseline = match baselines.iter().find(|(cached, _)| *cached == split) {
            Some((_, summary)) => summary.clone(),
            None => {
                let ftl = ConventionalFtl::new(NandDevice::new(config.clone()), FtlConfig::default())?;
                let summary = sensitivity_run(ftl, &trace, split)?;
                baselines.push((split, summary.clone()));
                summary
            }
        };
        let cold_promote_reads = ppb.cold_promote_reads;
        let hot_list_fraction = ppb.hot_list_fraction;
        let variant = sensitivity_run(PpbFtl::new(NandDevice::new(config.clone()), ppb)?, &trace, split)?;
        rows.push(PpbSensitivityRow {
            workload,
            warmup_fraction,
            cold_promote_reads,
            hot_list_fraction,
            comparison: Comparison::new(baseline, variant),
        });
    }
    Ok(rows)
}

/// Number of leading requests the sensitivity sweep treats as warm-up.
fn warmup_split(total: usize, fraction: f64) -> usize {
    ((total as f64 * fraction).round() as usize).min(total)
}

/// One sensitivity measurement: prefill the full trace's pages, replay the
/// first `split` requests serially without measuring, then measure the rest.
fn sensitivity_run<F: FlashTranslationLayer>(
    mut ftl: F,
    trace: &Trace,
    split: usize,
) -> Result<RunSummary, FtlError> {
    let page_size = ftl.device().config().page_size_bytes();
    let logical_pages = ftl.logical_pages();
    let options = RunOptions::default();
    prefill_ftl(&mut ftl, trace, page_size, logical_pages, options.prefill_request_bytes)?;
    let driver =
        WorkloadDriver::closed_loop(RunOptions { prefill: false, ..options }, 1);
    if split > 0 {
        let warmup =
            Trace::new(format!("{}+warmup", trace.name()), trace.requests()[..split].to_vec());
        driver.run_mut(&mut ftl, &warmup)?;
    }
    let measured = Trace::new(trace.name().to_string(), trace.requests()[split..].to_vec());
    driver.run_mut(&mut ftl, &measured)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_produces_a_reasonable_device() {
        let scale = ExperimentScale::quick();
        let config = scale.device_config(16 * 1024, 3.0);
        assert_eq!(config.pages_per_block(), 32);
        assert_eq!(config.speed_ratio(), 3.0);
        assert!(config.capacity_bytes() > scale.working_set_bytes);
    }

    #[test]
    fn workload_traces_have_the_requested_length() {
        let scale = ExperimentScale { requests: 500, ..ExperimentScale::quick() };
        for workload in Workload::ALL {
            assert_eq!(workload.trace(&scale).len(), 500);
            assert!(!workload.label().is_empty());
        }
    }

    #[test]
    fn compare_runs_both_ftls_on_the_same_trace() {
        let scale = ExperimentScale { requests: 800, ..ExperimentScale::quick() };
        let comparison = compare(Workload::WebSqlServer, 16 * 1024, 2.0, &scale).unwrap();
        assert_eq!(comparison.baseline.ftl, "conventional");
        assert_eq!(comparison.variant.ftl, "ppb");
        assert_eq!(comparison.baseline.host_reads, comparison.variant.host_reads);
        assert_eq!(comparison.baseline.host_writes, comparison.variant.host_writes);
    }

    #[test]
    fn ppb_improves_reads_without_hurting_writes_on_the_web_workload() {
        // Long enough for promotions, rewrites and GC to shape placement; the effect
        // does not exist in the first few thousand requests of a cold device.
        let scale = ExperimentScale {
            requests: 10_000,
            working_set_bytes: 20 * 1024 * 1024,
            ..ExperimentScale::quick()
        };
        let comparison = compare(Workload::WebSqlServer, 16 * 1024, 4.0, &scale).unwrap();
        assert!(
            comparison.read_enhancement_pct() > 0.0,
            "expected a read win, got {:.2}%",
            comparison.read_enhancement_pct()
        );
        assert!(
            comparison.write_enhancement_pct().abs() < 5.0,
            "write latency should be near-identical, got {:.2}%",
            comparison.write_enhancement_pct()
        );
    }

    #[test]
    fn erase_counts_stay_comparable() {
        let scale = ExperimentScale { requests: 3_000, ..ExperimentScale::quick() };
        for row in erase_count_rows(&scale).unwrap() {
            let conventional = row.conventional.max(1) as f64;
            let increase = (row.ppb as f64 - conventional) / conventional * 100.0;
            assert!(
                increase < 25.0,
                "{}: erase count increased by {increase:.1}%",
                row.workload
            );
        }
    }

    #[test]
    fn sweeps_cover_every_speed_ratio() {
        let scale = ExperimentScale { requests: 600, ..ExperimentScale::quick() };
        let rows = read_latency_sweep(Workload::WebSqlServer, &scale).unwrap();
        let ratios: Vec<f64> = rows.iter().map(|row| row.speed_ratio).collect();
        assert_eq!(ratios, SPEED_RATIOS.to_vec());
    }

    #[test]
    fn classifier_labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            Classifier::ALL.iter().map(|classifier| classifier.label()).collect();
        assert_eq!(labels.len(), Classifier::ALL.len());
    }

    #[test]
    fn queue_depth_sweep_covers_every_depth_and_reports_percentiles() {
        let scale = ExperimentScale {
            requests: 800,
            chips: 4,
            ..ExperimentScale::quick()
        };
        let rows = queue_depth_sweep(Workload::MediaServer, &scale).unwrap();
        let depths: Vec<usize> = rows.iter().map(|row| row.queue_depth).collect();
        assert_eq!(depths, QUEUE_DEPTHS.to_vec());
        for row in &rows {
            assert_eq!(row.conventional.queue_depth, row.queue_depth);
            assert_eq!(row.ppb.queue_depth, row.queue_depth);
            assert!(row.conventional.request_iops() > 0.0);
            assert!(row.conventional.read_latency.max >= row.conventional.read_latency.p99);
        }
        // Device-state evolution is depth-invariant: the same reads/writes/erases
        // happened at every depth.
        assert!(rows.windows(2).all(|pair| {
            pair[0].conventional.host_reads == pair[1].conventional.host_reads
                && pair[0].conventional.erased_blocks == pair[1].conventional.erased_blocks
        }));
        // On a multi-chip device the media-server (read-dominant) workload gains
        // throughput from depth.
        let qd1 = &rows[0];
        let qd64 = rows.iter().find(|row| row.queue_depth == 64).unwrap();
        assert!(
            qd64.conventional.request_iops() > qd1.conventional.request_iops(),
            "QD64 {} IOPS should beat QD1 {}",
            qd64.conventional.request_iops(),
            qd1.conventional.request_iops()
        );
    }

    #[test]
    fn rate_scale_sweep_reports_offered_vs_achieved_iops() {
        let scale = ExperimentScale { requests: 800, chips: 4, ..ExperimentScale::quick() };
        let rows = rate_scale_sweep(Workload::WebSqlServer, &scale).unwrap();
        let scales: Vec<f64> = rows.iter().map(|row| row.rate_scale).collect();
        assert_eq!(scales, RATE_SCALES.to_vec());
        for row in &rows {
            for summary in [&row.conventional, &row.ppb] {
                assert_eq!(summary.queue_depth, 0, "open loop has no depth bound");
                assert!(summary.offered_iops() > 0.0);
                assert!(
                    summary.request_iops() <= summary.offered_iops(),
                    "achieved {} must not exceed offered {}",
                    summary.request_iops(),
                    summary.offered_iops()
                );
                assert!(summary.service_time.p50 > Nanos::ZERO);
            }
        }
        // Device-state evolution is rate-invariant: only the arrival overlay moves.
        assert!(rows.windows(2).all(|pair| {
            pair[0].conventional.host_reads == pair[1].conventional.host_reads
                && pair[0].conventional.erased_blocks == pair[1].conventional.erased_blocks
        }));
        // Offered load scales with the rate multiplier (the trace is shared).
        let first = &rows[0];
        let last = rows.last().unwrap();
        let expected = last.rate_scale / first.rate_scale;
        let actual = last.conventional.offered_iops() / first.conventional.offered_iops();
        assert!(
            (actual - expected).abs() / expected < 0.01,
            "offered load should scale ~{expected}x, got {actual}x"
        );
        // Pushing the rate never lowers queueing delay.
        assert!(
            last.conventional.queue_delay.mean >= first.conventional.queue_delay.mean,
            "8x offered load should queue at least as much as 0.5x"
        );
    }

    #[test]
    fn burst_axis_holds_the_mean_rate_fixed() {
        let mean = 12_000.0;
        let axis = burst_axis(mean);
        assert!(axis.len() >= 4, "axis covers uniform, Pareto and on/off models");
        for model in &axis {
            assert!(
                (model.mean_iops() - mean).abs() / mean < 1e-9,
                "{model} drifted off the shared mean rate"
            );
        }
        let labels: std::collections::HashSet<String> =
            axis.iter().map(|model| model.label()).collect();
        assert_eq!(labels.len(), axis.len(), "axis labels must be distinct");
    }

    #[test]
    fn burst_sweep_spreads_the_tail_at_fixed_mean_rate() {
        let scale = ExperimentScale {
            requests: 4_000,
            chips: 8,
            working_set_bytes: 24 * 1024 * 1024,
            ..ExperimentScale::quick()
        };
        let mean = burst_sweep_mean_iops(Workload::WebSqlServer, &scale).unwrap();
        assert!(mean > 0.0, "the saturation probe must measure a positive rate");
        let rows = burst_sweep_at(Workload::WebSqlServer, &scale, mean).unwrap();
        assert_eq!(rows.len(), burst_axis(mean).len());
        let uniform = &rows[0];
        assert_eq!(uniform.arrival, ArrivalModel::MeanRate { iops: mean });
        // Half of saturation: the smooth reference keeps up with its offered load.
        assert!(
            uniform.conventional.request_iops() > 0.95 * uniform.conventional.offered_iops(),
            "uniform arrivals at half saturation must be served at the offered rate"
        );
        // Offered rates agree across the axis (same mean, finite-trace noise).
        for row in &rows {
            let offered = row.conventional.offered_iops();
            let reference = uniform.conventional.offered_iops();
            assert!(
                (offered - reference).abs() / reference < 0.25,
                "{}: offered {offered:.0} strayed from the shared mean {reference:.0}",
                row.arrival
            );
            assert_eq!(row.conventional.queue_depth, 0, "burst rows replay open-loop");
        }
        // The burstiness symptoms grow monotonically in effect, not necessarily
        // per-row: compare the smooth reference against the most extreme burst.
        let extreme = rows.last().unwrap();
        for (smooth, bursty) in [
            (&uniform.conventional, &extreme.conventional),
            (&uniform.ppb, &extreme.ppb),
        ] {
            assert!(
                bursty.queue_delay.p999 > smooth.queue_delay.p999,
                "burstiness must spread the p99.9 queueing delay \
                 ({} vs {})",
                bursty.queue_delay.p999,
                smooth.queue_delay.p999
            );
            assert!(
                bursty.peak_queue_depth > smooth.peak_queue_depth,
                "bursts must deepen the backlog"
            );
            assert!(
                bursty.busy_arrival_fraction() > smooth.busy_arrival_fraction(),
                "bursts must raise the busy-arrival fraction"
            );
        }
    }

    #[test]
    fn fault_sweep_scales_retry_pressure_down_the_rber_axis() {
        let scale = ExperimentScale { requests: 2_000, ..ExperimentScale::quick() };
        let rows = fault_sweep(&scale).unwrap();
        assert_eq!(rows.len(), RBER_SCALES.len() * FAULT_SWEEP_POLICIES.len());
        for row in &rows {
            // Host traffic is fault-independent: the trace is shared.
            assert_eq!(row.conventional.host_reads, row.ppb.host_reads);
            assert_eq!(row.conventional.host_writes, row.ppb.host_writes);
        }
        // The aged end of the axis must actually exercise the retry ladder, and
        // harder than the nominal curve does.
        let nominal = &rows[0];
        let aged = rows.last().unwrap();
        assert_eq!(nominal.rber_scale, RBER_SCALES[0]);
        assert_eq!(aged.rber_scale, *RBER_SCALES.last().unwrap());
        assert!(aged.conventional.retried_reads > 0, "aged rows must see retries");
        assert!(
            aged.conventional.retried_reads >= nominal.conventional.retried_reads,
            "retry pressure must not fall as the RBER curve ages"
        );
        assert!(aged.conventional.read_retry_time > Nanos::ZERO);
        // Retry latency rides inside the ordinary service times.
        assert!(aged.conventional.retry_latency_fraction() > 0.0);
    }

    #[test]
    fn fault_lifetime_degrades_gracefully_to_read_only() {
        let rows = fault_lifetime(&ExperimentScale::quick()).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].ftl, "conventional");
        assert_eq!(rows[1].ftl, "ppb");
        for row in &rows {
            assert!(
                row.writes_completed > LIFETIME_LPNS,
                "{}: the fresh device must absorb at least one full pass",
                row.ftl
            );
            assert!(
                row.writes_completed < LIFETIME_WRITE_CAP,
                "{}: the probe must reach read-only, not the backstop",
                row.ftl
            );
            assert!(row.bad_blocks > 0, "{}: read-only requires retired blocks", row.ftl);
            assert!(row.time_to_read_only > Nanos::ZERO, "{}: transition time unset", row.ftl);
        }
    }

    #[test]
    fn policy_ablation_covers_the_grid_and_matches_fig18_for_greedy() {
        let scale = ExperimentScale { requests: 3_000, ..ExperimentScale::quick() };
        let rows = erase_count_by_policy(&scale).unwrap();
        assert_eq!(rows.len(), Workload::ALL.len() * GcPolicy::ALL.len());
        let fig18 = erase_count_rows(&scale).unwrap();
        for baseline in &fig18 {
            let greedy = rows
                .iter()
                .find(|row| row.workload == baseline.workload && row.policy == GcPolicy::Greedy)
                .unwrap();
            assert_eq!(greedy.conventional, baseline.conventional);
            assert_eq!(greedy.ppb, baseline.ppb);
        }
        let labels: std::collections::HashSet<_> =
            GcPolicy::ALL.iter().map(|policy| policy.label()).collect();
        assert_eq!(labels.len(), GcPolicy::ALL.len());
        // The cold-bonus ablation brackets the default: a zero bonus is exactly
        // greedy (the cold preference is the *only* thing hot-cold adds), and
        // the aggressive row must still produce a full set of counts.
        for workload in Workload::ALL {
            let row = |policy: GcPolicy| {
                rows.iter()
                    .find(|row| row.workload == workload && row.policy == policy)
                    .unwrap()
            };
            let greedy = row(GcPolicy::Greedy);
            let disabled = row(GcPolicy::HotColdBonus(0));
            assert_eq!(disabled.conventional, greedy.conventional);
            assert_eq!(disabled.ppb, greedy.ppb);
            assert!(row(GcPolicy::HotColdBonus(6)).ppb > 0);
        }
    }

    #[test]
    fn ppb_sensitivity_win_widens_with_warmup_on_web_sql() {
        let rows = ppb_sensitivity_sweep(Workload::WebSqlServer, &ExperimentScale::quick()).unwrap();
        assert_eq!(
            rows.len(),
            PPB_WARMUP_FRACTIONS.len()
                + PPB_COLD_PROMOTE_READS.len()
                + PPB_HOT_LIST_FRACTIONS.len()
        );
        let at_warmup = |fraction: f64| {
            rows.iter()
                .find(|row| {
                    row.warmup_fraction == fraction
                        && row.cold_promote_reads == PpbConfig::default().cold_promote_reads
                        && row.hot_list_fraction == PpbConfig::default().hot_list_fraction
                })
                .unwrap()
        };
        // Direction, pinned from the measured quick-scale sweep: the PPB *write*
        // win on web/SQL widens as the device ages (≈2.1% fresh → ≈4.3% after a
        // 50% warm-up), while the read win stays modest (≈0.8%) and positive at
        // every warm-up length. The promotion knobs are near-neutral at this
        // scale — the aging axis, not the thresholds, is what moves the number.
        let fresh = at_warmup(0.0).comparison.write_enhancement_pct();
        let aged = at_warmup(0.5).comparison.write_enhancement_pct();
        assert!(aged > fresh, "write win should widen with warm-up: {fresh:.3}% -> {aged:.3}%");
        assert!(aged > 1.5 * fresh, "the widening is substantial, not noise");
        for row in &rows {
            assert!(
                row.comparison.read_enhancement_pct() > 0.0,
                "read win stays positive on web/SQL (warmup {}, promote {}, hot {})",
                row.warmup_fraction,
                row.cold_promote_reads,
                row.hot_list_fraction
            );
        }
    }
}

