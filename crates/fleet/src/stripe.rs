//! The striped keyspace: fleet LPNs interleaved round-robin across devices.
//!
//! The fleet exports one flat logical address space of `width × lane_pages`
//! pages. Consecutive fleet LPNs land on consecutive devices (RAID-0-style
//! page interleaving), so a multi-page host request fans out across the fleet
//! and completes at the *max* of its per-device stripes — which is exactly the
//! tail-amplification effect the host tier exists to measure. The map is a
//! bijection: every fleet LPN names exactly one `(lane, offset)` pair and
//! every in-range pair names exactly one fleet LPN, a property the fleet
//! test suite pins down exhaustively.

/// Round-robin page interleaving of a flat fleet keyspace over `width` devices.
///
/// # Example
///
/// ```
/// use vflash_fleet::StripeMap;
///
/// let map = StripeMap::new(4, 1000);
/// assert_eq!(map.fleet_pages(), 4000);
/// // Consecutive fleet pages rotate across the lanes...
/// assert_eq!(map.locate(0), (0, 0));
/// assert_eq!(map.locate(1), (1, 0));
/// assert_eq!(map.locate(5), (1, 1));
/// // ...and the map inverts exactly.
/// assert_eq!(map.fleet_lpn(1, 1), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripeMap {
    width: usize,
    lane_pages: u64,
}

impl StripeMap {
    /// A stripe map over `width` devices of `lane_pages` logical pages each.
    ///
    /// # Panics
    ///
    /// Panics on a zero width or zero per-lane capacity — an empty fleet maps
    /// nothing.
    pub fn new(width: usize, lane_pages: u64) -> Self {
        assert!(width > 0, "a fleet needs at least one device");
        assert!(lane_pages > 0, "a device must export at least one page");
        StripeMap { width, lane_pages }
    }

    /// Number of devices the keyspace is striped over.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Logical pages exported by each device.
    pub fn lane_pages(&self) -> u64 {
        self.lane_pages
    }

    /// Total logical pages the fleet exports.
    pub fn fleet_pages(&self) -> u64 {
        self.width as u64 * self.lane_pages
    }

    /// Maps a fleet LPN to its `(lane, device-local LPN)` home.
    ///
    /// # Panics
    ///
    /// Panics when `fleet_lpn` is beyond the fleet capacity; callers wrap
    /// trace pages modulo [`StripeMap::fleet_pages`] first, exactly like the
    /// single-device engine wraps modulo the device capacity.
    pub fn locate(&self, fleet_lpn: u64) -> (usize, u64) {
        assert!(fleet_lpn < self.fleet_pages(), "fleet LPN out of range");
        ((fleet_lpn % self.width as u64) as usize, fleet_lpn / self.width as u64)
    }

    /// The inverse of [`StripeMap::locate`].
    ///
    /// # Panics
    ///
    /// Panics when `lane` or `offset` is out of range.
    pub fn fleet_lpn(&self, lane: usize, offset: u64) -> u64 {
        assert!(lane < self.width, "lane out of range");
        assert!(offset < self.lane_pages, "device offset out of range");
        offset * self.width as u64 + lane as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_one_is_the_identity_map() {
        let map = StripeMap::new(1, 64);
        for lpn in 0..64 {
            assert_eq!(map.locate(lpn), (0, lpn));
            assert_eq!(map.fleet_lpn(0, lpn), lpn);
        }
    }

    #[test]
    fn consecutive_pages_rotate_across_lanes() {
        let map = StripeMap::new(3, 10);
        assert_eq!(map.locate(0), (0, 0));
        assert_eq!(map.locate(1), (1, 0));
        assert_eq!(map.locate(2), (2, 0));
        assert_eq!(map.locate(3), (0, 1));
        assert_eq!(map.fleet_pages(), 30);
    }

    #[test]
    fn round_trips_exhaustively() {
        let map = StripeMap::new(5, 17);
        for lpn in 0..map.fleet_pages() {
            let (lane, offset) = map.locate(lpn);
            assert_eq!(map.fleet_lpn(lane, offset), lpn);
        }
        for lane in 0..5 {
            for offset in 0..17 {
                let (l, o) = map.locate(map.fleet_lpn(lane, offset));
                assert_eq!((l, o), (lane, offset));
            }
        }
    }

    #[test]
    fn out_of_range_lookups_panic() {
        let map = StripeMap::new(2, 8);
        assert!(std::panic::catch_unwind(|| map.locate(16)).is_err());
        assert!(std::panic::catch_unwind(|| map.fleet_lpn(2, 0)).is_err());
        assert!(std::panic::catch_unwind(|| map.fleet_lpn(0, 8)).is_err());
    }
}
