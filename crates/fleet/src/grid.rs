//! Fleet-aware grid execution: the width-carrying counterpart of
//! [`run_cell`](vflash_sim::run_cell), fanned over the same
//! [`ParallelRunner`] work-stealing pool via
//! [`ParallelRunner::run_map`].
//!
//! A fleet cell builds [`GridCell::fleet_size`] identical devices from the
//! cell's scale — each lane gets the *same* geometry the single-device cell
//! would, so widening the fleet models scale-out (more devices behind one
//! keyspace), not re-sharding one device. The trace wraps modulo the fleet
//! capacity, spreading the working set across the lanes; every width of one
//! FTL × workload shares its seed (see
//! [`ExperimentGrid::fleet_sweep`]), so the widths replay the same request
//! stream and differ only in striping. The cache is off and a single tenant is
//! used, keeping width 1 bit-identical to the single-device grid row.

use vflash_ftl::{ConventionalFtl, FtlConfig, FtlError};
use vflash_nand::NandDevice;
use vflash_ppb::{PpbConfig, PpbFtl};
use vflash_sim::{ExperimentGrid, FtlKind, GridCell, ParallelRunner, RunOptions};
use vflash_trace::Trace;

use crate::fleet::{Fleet, FleetConfig, FleetDriver};
use crate::summary::FleetSummary;

/// The outcome of one fleet grid cell.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetCellResult {
    /// The cell that produced this result.
    pub cell: GridCell,
    /// The fleet replay summary.
    pub summary: FleetSummary,
}

/// Runs one grid cell at its fleet width: generates the trace at the cell's
/// seed, builds [`GridCell::fleet_size`] identical devices, and replays the
/// trace through the host tier (cache off, single tenant).
///
/// # Errors
///
/// Propagates FTL construction and replay errors from any lane.
pub fn run_fleet_cell(cell: &GridCell, grid: &ExperimentGrid) -> Result<FleetCellResult, FtlError> {
    let trace: Trace = cell.workload.trace_with_arrival(&cell.scale, cell.arrival);
    let mut config = cell.scale.device_config(grid.page_size_bytes, grid.speed_ratio);
    if let Some(faults) = grid.faults {
        config = config.with_faults(faults)?;
    }
    let driver = FleetDriver::new(RunOptions::default(), cell.discipline);
    let summary = match cell.ftl {
        FtlKind::Conventional => {
            let lanes: Vec<ConventionalFtl> = (0..cell.fleet_size)
                .map(|_| ConventionalFtl::new(NandDevice::new(config.clone()), FtlConfig::default()))
                .collect::<Result<_, _>>()?;
            driver.run(Fleet::new(lanes, FleetConfig::default()), &trace)?
        }
        FtlKind::Ppb => {
            let lanes: Vec<PpbFtl> = (0..cell.fleet_size)
                .map(|_| PpbFtl::new(NandDevice::new(config.clone()), PpbConfig::default()))
                .collect::<Result<_, _>>()?;
            driver.run(Fleet::new(lanes, FleetConfig::default()), &trace)?
        }
    };
    Ok(FleetCellResult { cell: *cell, summary })
}

/// Fans [`run_fleet_cell`] over every cell of `grid` using `runner`'s
/// work-stealing pool. Results come back in cell-index order, bit-identical to
/// a serial run regardless of worker count (the fleet determinism property
/// test pins this across worker counts 2, 3, 5 and 32).
///
/// # Errors
///
/// Returns the error of the lowest-indexed failing cell.
pub fn run_fleet_grid(
    runner: &ParallelRunner,
    grid: &ExperimentGrid,
) -> Result<Vec<FleetCellResult>, FtlError> {
    runner.run_map(grid, run_fleet_cell)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vflash_sim::experiments::ExperimentScale;
    use vflash_sim::{run_cell, ReplayMode};

    fn tiny_scale() -> ExperimentScale {
        ExperimentScale {
            requests: 250,
            working_set_bytes: 8 * 1024 * 1024,
            chips: 2,
            ..ExperimentScale::quick()
        }
    }

    #[test]
    fn width_one_fleet_cells_reproduce_single_device_cells() {
        let grid = ExperimentGrid::full(tiny_scale());
        for cell in grid.cells() {
            let single = run_cell(&cell, &grid).unwrap();
            let fleet = run_fleet_cell(&cell, &grid).unwrap();
            assert_eq!(fleet.summary.width, 1);
            assert_eq!(fleet.summary.lanes[0], single.summary, "cell {}", cell.index);
        }
    }

    #[test]
    fn fleet_sweep_cells_replay_at_their_width() {
        let grid = ExperimentGrid::fleet_sweep(tiny_scale());
        let results = ParallelRunner::run_serial_map(&grid, run_fleet_cell).unwrap();
        assert_eq!(results.len(), 16);
        for result in &results {
            assert_eq!(result.summary.width, result.cell.fleet_size);
            assert_eq!(result.summary.lanes.len(), result.cell.fleet_size);
            assert_eq!(result.summary.host_requests, 250);
            assert!(matches!(result.summary.mode, ReplayMode::OpenLoop { rate_scale } if rate_scale == 1.0));
            assert!(result.summary.offered_iops() > 0.0);
        }
    }

    #[test]
    fn fleet_grid_is_deterministic_across_worker_counts() {
        let grid = ExperimentGrid {
            fleet_sizes: vec![1, 3],
            ..ExperimentGrid::full(tiny_scale())
        };
        let serial = ParallelRunner::run_serial_map(&grid, run_fleet_cell).unwrap();
        let parallel = run_fleet_grid(&ParallelRunner::new(4), &grid).unwrap();
        assert_eq!(serial, parallel);
    }
}
