//! The measurements of one fleet run: per-device summaries plus the host-tier
//! quantities no single device can report — fan-out tail amplification, cache
//! effectiveness, and per-tenant shares.

use std::fmt;

use vflash_nand::Nanos;
use vflash_sim::{LatencyPercentiles, ReplayMode, RunSummary};

use crate::cache::CacheStats;

/// One tenant's share of a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSummary {
    /// The tenant's name.
    pub name: String,
    /// The QoS weight the tenant was dispatched under.
    pub weight: u64,
    /// Host requests the tenant completed.
    pub requests: u64,
    /// Per-request completion-latency percentiles of the tenant's requests.
    pub latency: LatencyPercentiles,
    /// Replay-clock instant of the tenant's last completion.
    pub last_completion: Nanos,
}

impl TenantSummary {
    /// The tenant's achieved request rate: requests per second of replay-clock
    /// time up to its last completion. Zero when the tenant completed nothing.
    pub fn achieved_iops(&self) -> f64 {
        if self.last_completion == Nanos::ZERO {
            0.0
        } else {
            self.requests as f64 / self.last_completion.as_secs_f64()
        }
    }
}

/// The measurements of one trace replay against a device fleet.
///
/// The per-device [`RunSummary`]s carry everything a single device reports
/// (offered vs achieved IOPS, latency splits, GC and fault counters); the
/// fleet-level fields add what only the host tier can see: the **fan-out**
/// distribution (per-request latency = max over the request's stripes) next to
/// the **stripe** distribution (each per-device sub-request on its own), whose
/// tail ratio is the fan-out amplification the fleet exists to measure.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSummary {
    /// Name of the FTL serving every lane (lanes are homogeneous).
    pub ftl: String,
    /// Name of the replayed trace.
    pub trace: String,
    /// Number of devices the keyspace was striped over.
    pub width: usize,
    /// One single-device summary per lane, in lane order. At width 1 with the
    /// cache disabled, `lanes[0]` is bit-identical to a single-device
    /// [`WorkloadDriver`](vflash_sim::WorkloadDriver) run of the same trace.
    pub lanes: Vec<RunSummary>,
    /// The arrival discipline the replay was driven under.
    pub mode: ReplayMode,
    /// Closed-loop queue depth (`0` for open loop, matching [`RunSummary`]).
    pub queue_depth: usize,
    /// Host requests replayed in the measured phase, fleet-wide.
    pub host_requests: u64,
    /// Replay-clock time at which the last request completed.
    pub host_elapsed: Nanos,
    /// For open-loop replays: the span of the (rate-scaled) arrival clock.
    /// [`Nanos::ZERO`] for closed loop.
    pub offered_duration: Nanos,
    /// Largest number of host requests simultaneously outstanding.
    pub peak_queue_depth: usize,
    /// Requests that arrived while an earlier request was still in flight.
    pub busy_arrivals: u64,
    /// Per-request fan-out latency percentiles of read requests: each sample is
    /// the **max over the request's per-device stripes** (plus any cache time).
    pub fanout_read_latency: LatencyPercentiles,
    /// Per-request fan-out latency percentiles of write requests.
    pub fanout_write_latency: LatencyPercentiles,
    /// Per-stripe latency percentiles of read requests: each per-device
    /// sub-request contributes one sample — the single-device distribution the
    /// fan-out tail is compared against.
    pub stripe_read_latency: LatencyPercentiles,
    /// Per-stripe latency percentiles of write requests.
    pub stripe_write_latency: LatencyPercentiles,
    /// Writeback-cache counters (all zero when the cache is disabled).
    pub cache: CacheStats,
    /// Per-tenant shares, in tenant order.
    pub tenants: Vec<TenantSummary>,
}

impl FleetSummary {
    /// Achieved IOPS fleet-wide: host requests per second of replay-clock time.
    pub fn request_iops(&self) -> f64 {
        if self.host_elapsed == Nanos::ZERO {
            0.0
        } else {
            self.host_requests as f64 / self.host_elapsed.as_secs_f64()
        }
    }

    /// Offered IOPS fleet-wide (open loop only; zero for closed loop).
    pub fn offered_iops(&self) -> f64 {
        if self.offered_duration == Nanos::ZERO {
            0.0
        } else {
            self.host_requests as f64 / self.offered_duration.as_secs_f64()
        }
    }

    /// Fraction of requests that arrived while the fleet was busy, in `[0, 1]`.
    pub fn busy_arrival_fraction(&self) -> f64 {
        if self.host_requests == 0 {
            0.0
        } else {
            self.busy_arrivals as f64 / self.host_requests as f64
        }
    }

    fn amplification(fanout: &LatencyPercentiles, stripe: &LatencyPercentiles) -> f64 {
        if stripe.p999 == Nanos::ZERO {
            0.0
        } else {
            fanout.p999.as_nanos() as f64 / stripe.p999.as_nanos() as f64
        }
    }

    /// Read fan-out tail amplification: fan-out p99.9 over stripe p99.9. A
    /// request striped over N devices completes at the max of its stripes, so
    /// this ratio grows with the stripe width — the core fleet-scale effect.
    /// Zero when no read stripe was served.
    pub fn read_tail_amplification(&self) -> f64 {
        Self::amplification(&self.fanout_read_latency, &self.stripe_read_latency)
    }

    /// Write fan-out tail amplification (see
    /// [`FleetSummary::read_tail_amplification`]).
    pub fn write_tail_amplification(&self) -> f64 {
        Self::amplification(&self.fanout_write_latency, &self.stripe_write_latency)
    }
}

impl fmt::Display for FleetSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} x{}: {} requests, {:.0} IOPS, read fan-out p99.9 {} vs stripe {} ({:.2}x)",
            self.trace,
            self.ftl,
            self.width,
            self.host_requests,
            self.request_iops(),
            self.fanout_read_latency.p999,
            self.stripe_read_latency.p999,
            self.read_tail_amplification(),
        )?;
        if self.offered_duration > Nanos::ZERO {
            write!(f, ", offered {:.0} IOPS", self.offered_iops())?;
        }
        let cache = &self.cache;
        if cache.read_hits + cache.read_misses + cache.writes_absorbed + cache.write_arounds > 0 {
            write!(
                f,
                ", cache {:.0}% hits / {} absorbed / {} writebacks",
                cache.read_hit_rate() * 100.0,
                cache.writes_absorbed,
                cache.writebacks,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_summary() -> FleetSummary {
        FleetSummary {
            ftl: "conventional".into(),
            trace: "t".into(),
            width: 2,
            lanes: Vec::new(),
            mode: ReplayMode::ClosedLoop,
            queue_depth: 1,
            host_requests: 0,
            host_elapsed: Nanos::ZERO,
            offered_duration: Nanos::ZERO,
            peak_queue_depth: 0,
            busy_arrivals: 0,
            fanout_read_latency: LatencyPercentiles::default(),
            fanout_write_latency: LatencyPercentiles::default(),
            stripe_read_latency: LatencyPercentiles::default(),
            stripe_write_latency: LatencyPercentiles::default(),
            cache: CacheStats::default(),
            tenants: Vec::new(),
        }
    }

    #[test]
    fn empty_runs_report_zero_rates_and_amplification() {
        let summary = empty_summary();
        assert_eq!(summary.request_iops(), 0.0);
        assert_eq!(summary.offered_iops(), 0.0);
        assert_eq!(summary.busy_arrival_fraction(), 0.0);
        assert_eq!(summary.read_tail_amplification(), 0.0);
        assert!(summary.to_string().contains("x2"));
    }

    #[test]
    fn amplification_is_the_p999_ratio() {
        let mut summary = empty_summary();
        summary.fanout_read_latency.p999 = Nanos(300);
        summary.stripe_read_latency.p999 = Nanos(100);
        assert!((summary.read_tail_amplification() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn tenant_iops_uses_its_own_completion_clock() {
        let tenant = TenantSummary {
            name: "gold".into(),
            weight: 2,
            requests: 500,
            latency: LatencyPercentiles::default(),
            last_completion: Nanos::from_millis(250),
        };
        assert_eq!(tenant.achieved_iops(), 2_000.0);
        let idle = TenantSummary { requests: 0, last_completion: Nanos::ZERO, ..tenant };
        assert_eq!(idle.achieved_iops(), 0.0);
    }

    #[test]
    fn display_mentions_cache_and_offered_load_when_present() {
        let mut summary = empty_summary();
        summary.host_requests = 10;
        summary.host_elapsed = Nanos::from_millis(1);
        summary.offered_duration = Nanos::from_millis(2);
        summary.cache.read_hits = 3;
        summary.cache.read_misses = 1;
        let text = summary.to_string();
        assert!(text.contains("offered"), "{text}");
        assert!(text.contains("75% hits"), "{text}");
    }
}
