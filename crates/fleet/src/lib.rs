//! # vflash-fleet
//!
//! A host tier over a fleet of simulated flash devices.
//!
//! The other crates in the workspace model one device: a NAND geometry, an FTL
//! on top of it, and a replay engine that drives a trace through that single
//! stack. This crate adds the layer a storage host actually runs:
//!
//! * a [`StripeMap`] that shards one flat logical keyspace over N device
//!   *lanes* (page-granular round-robin striping),
//! * a [`Fleet`] that owns the lanes and advances every lane's per-chip
//!   clocks on one shared virtual timeline, so cross-device interleavings are
//!   deterministic,
//! * an optional host-DRAM [`WritebackCache`] in front of the lanes
//!   (write-allocate with a dirty-ratio flush threshold, write-around for
//!   large cold streams),
//! * per-tenant submission queues with weighted-share scheduling
//!   ([`WeightedShares`] / [`dispatch_order`]),
//! * a [`FleetDriver`] replaying a [`Trace`](vflash_trace::Trace) against the
//!   fleet under the same arrival disciplines as the single-device
//!   [`WorkloadDriver`](vflash_sim::WorkloadDriver), and
//! * a [`FleetSummary`] reporting per-lane [`RunSummary`](vflash_sim::RunSummary)
//!   rows next to fleet-level fan-out latency (max over the stripes each
//!   request touched) so tail amplification is directly measurable.
//!
//! The load-bearing property — pinned by `tests/fleet_equivalence.rs` — is
//! that a fleet of one device with the cache disabled reproduces the
//! single-device engine **bit for bit**: same histograms, same metrics, same
//! device state. Everything the host tier adds is therefore observable as a
//! delta against a trusted baseline.
//!
//! # Example
//!
//! ```
//! use vflash_fleet::{Fleet, FleetConfig, FleetDriver};
//! use vflash_ftl::{ConventionalFtl, FtlConfig};
//! use vflash_nand::{NandConfig, NandDevice};
//! use vflash_sim::{ArrivalDiscipline, RunOptions};
//! use vflash_trace::synthetic::{self, SyntheticConfig};
//!
//! # fn main() -> Result<(), vflash_ftl::FtlError> {
//! let lanes: Vec<ConventionalFtl> = (0..4)
//!     .map(|_| ConventionalFtl::new(NandDevice::new(NandConfig::small()), FtlConfig::default()))
//!     .collect::<Result<_, _>>()?;
//! let fleet = Fleet::new(lanes, FleetConfig::default());
//! let trace = synthetic::web_sql_server(SyntheticConfig { requests: 200, ..SyntheticConfig::default() });
//! let driver = FleetDriver::new(RunOptions::default(), ArrivalDiscipline::ClosedLoop { queue_depth: 8 });
//! let summary = driver.run(fleet, &trace)?;
//! assert_eq!(summary.width, 4);
//! assert_eq!(summary.host_requests, 200);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod fleet;
mod grid;
mod qos;
mod stripe;
mod summary;

pub use cache::{CacheConfig, CacheStats, WritebackCache};
pub use fleet::{Fleet, FleetConfig, FleetDriver};
pub use grid::{run_fleet_cell, run_fleet_grid, FleetCellResult};
pub use qos::{dispatch_order, TenantWeight, WeightedShares};
pub use stripe::StripeMap;
pub use summary::{FleetSummary, TenantSummary};
