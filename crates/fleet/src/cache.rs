//! The host-side DRAM writeback cache in front of the striped keyspace.
//!
//! The cache absorbs small (hot-stream) writes in host DRAM and defers the
//! flash program until the page is evicted or a dirty-ratio flush fires, so a
//! rewrite-heavy stream costs one flash write per *eviction* instead of one
//! per host write. Cold streams — requests at or above the configured
//! write-around size — bypass the cache entirely (write-around), so one large
//! sequential pass cannot evict the whole hot set.
//!
//! Policy summary, all of it pinned by the fleet property suite:
//!
//! * **Write-allocate, write-back.** Small writes insert the page and mark it
//!   dirty; the flash write happens later. Reads never allocate: a read miss
//!   goes to the devices and leaves the cache untouched, so read scans cannot
//!   thrash the dirty set.
//! * **LRU residency.** Inserting into a full cache evicts the least-recently
//!   used page; evicting a dirty page returns it for writeback.
//! * **Dirty-ratio flush.** When the dirty count exceeds
//!   `dirty_flush_threshold × capacity`, the cache drains dirty pages
//!   (least-recently-used first) down to the threshold. Flushed pages stay
//!   resident but clean.
//! * **Coherence on write-around.** A write-around of a resident page drops
//!   the cached copy (its data is superseded by the device write), keeping
//!   read-your-writes exact.
//!
//! The cache stores no data bytes — the simulator models time, not contents —
//! but it tracks residency and dirtiness exactly, which is all the timing
//! model needs.

use std::collections::{BTreeMap, HashMap};

use vflash_nand::Nanos;

/// Tunables of the [`WritebackCache`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    /// Resident capacity in pages (at least 1).
    pub capacity_pages: usize,
    /// Fraction of the capacity that may be dirty before a flush drains the
    /// dirty set back down to the threshold, in `(0, 1]`.
    pub dirty_flush_threshold: f64,
    /// Host requests of at least this many bytes are treated as a cold stream
    /// and written around the cache straight to the devices.
    pub write_around_bytes: u32,
    /// Latency charged for a DRAM hit (read hit or absorbed write) — orders of
    /// magnitude below a flash access.
    pub hit_latency: Nanos,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity_pages: 4096,
            dirty_flush_threshold: 0.5,
            write_around_bytes: 256 * 1024,
            hit_latency: Nanos::from_micros(1),
        }
    }
}

impl CacheConfig {
    /// The largest dirty count the cache tolerates before (and right after) a
    /// flush: `⌊dirty_flush_threshold × capacity_pages⌋`.
    pub fn dirty_limit(&self) -> usize {
        (self.dirty_flush_threshold * self.capacity_pages as f64).floor() as usize
    }

    fn validate(&self) {
        assert!(self.capacity_pages > 0, "cache capacity must be at least one page");
        assert!(
            self.dirty_flush_threshold > 0.0 && self.dirty_flush_threshold <= 1.0,
            "dirty flush threshold must be within (0, 1]"
        );
    }
}

/// Counters the cache accumulates over a run, reported in the fleet summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Page reads served from DRAM.
    pub read_hits: u64,
    /// Page reads that missed and went to the devices.
    pub read_misses: u64,
    /// Page writes absorbed into the cache (deferred flash programs).
    pub writes_absorbed: u64,
    /// Page writes sent around the cache to the devices (cold streams).
    pub write_arounds: u64,
    /// Dirty pages written back to the devices (evictions and flushes).
    pub writebacks: u64,
    /// Dirty-ratio flush events.
    pub flushes: u64,
}

impl CacheStats {
    /// Fraction of page reads served from DRAM, in `[0, 1]`.
    pub fn read_hit_rate(&self) -> f64 {
        let total = self.read_hits + self.read_misses;
        if total == 0 {
            0.0
        } else {
            self.read_hits as f64 / total as f64
        }
    }

    /// Flash page writes saved by absorption: absorbed writes minus the
    /// writebacks that eventually materialised, saturating at zero.
    pub fn absorbed_net(&self) -> u64 {
        self.writes_absorbed.saturating_sub(self.writebacks)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    stamp: u64,
    dirty: bool,
}

/// An LRU write-back, write-allocate page cache over fleet LPNs.
///
/// Recency is tracked with monotonically increasing touch stamps (a
/// `BTreeMap` keyed by stamp gives deterministic LRU order with no unordered
/// iteration anywhere), so every run is bit-reproducible.
///
/// # Example
///
/// ```
/// use vflash_fleet::{CacheConfig, WritebackCache};
///
/// let mut cache = WritebackCache::new(CacheConfig {
///     capacity_pages: 2,
///     ..CacheConfig::default()
/// });
/// assert!(cache.write(7).is_empty(), "absorbing into a cold cache evicts nothing");
/// cache.write(8);
/// assert!(cache.read(7), "read-your-writes: the absorbed page hits");
/// // Inserting a third page evicts the LRU page (8 — the read refreshed 7),
/// // and the evicted page is dirty, so it comes back for writeback.
/// assert_eq!(cache.write(9), vec![8]);
/// ```
#[derive(Debug, Clone)]
pub struct WritebackCache {
    config: CacheConfig,
    entries: HashMap<u64, Entry>,
    lru: BTreeMap<u64, u64>,
    dirty: usize,
    next_stamp: u64,
    stats: CacheStats,
}

impl WritebackCache {
    /// An empty cache.
    ///
    /// # Panics
    ///
    /// Panics on a zero capacity or a dirty threshold outside `(0, 1]`.
    pub fn new(config: CacheConfig) -> Self {
        config.validate();
        WritebackCache {
            config,
            entries: HashMap::new(),
            lru: BTreeMap::new(),
            dirty: 0,
            next_stamp: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration the cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resident pages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Resident dirty pages.
    pub fn dirty_len(&self) -> usize {
        self.dirty
    }

    /// Whether `lpn` is resident (dirty or clean).
    pub fn is_resident(&self, lpn: u64) -> bool {
        self.entries.contains_key(&lpn)
    }

    /// Whether `lpn` is resident and dirty.
    pub fn is_dirty(&self, lpn: u64) -> bool {
        self.entries.get(&lpn).is_some_and(|entry| entry.dirty)
    }

    /// Whether the dirty set exceeds the flush threshold.
    pub fn over_threshold(&self) -> bool {
        self.dirty > self.config.dirty_limit()
    }

    fn touch(&mut self, lpn: u64) {
        let entry = self.entries.get_mut(&lpn).expect("touching a non-resident page");
        self.lru.remove(&entry.stamp);
        entry.stamp = self.next_stamp;
        self.lru.insert(self.next_stamp, lpn);
        self.next_stamp += 1;
    }

    /// Looks `lpn` up for a host read. A hit refreshes recency and returns
    /// `true`; a miss returns `false` and does **not** allocate.
    pub fn read(&mut self, lpn: u64) -> bool {
        if self.entries.contains_key(&lpn) {
            self.touch(lpn);
            self.stats.read_hits += 1;
            true
        } else {
            self.stats.read_misses += 1;
            false
        }
    }

    /// Absorbs a host write of `lpn`: the page becomes resident and dirty, and
    /// the returned LPNs (at most one) are dirty pages evicted to make room —
    /// the caller must write them back to the devices.
    pub fn write(&mut self, lpn: u64) -> Vec<u64> {
        self.stats.writes_absorbed += 1;
        if let Some(entry) = self.entries.get_mut(&lpn) {
            if !entry.dirty {
                entry.dirty = true;
                self.dirty += 1;
            }
            self.touch(lpn);
            return Vec::new();
        }
        let mut writeback = Vec::new();
        if self.entries.len() == self.config.capacity_pages {
            let (_, victim) = self.lru.pop_first().expect("a full cache has an LRU entry");
            let entry = self.entries.remove(&victim).expect("LRU entry is resident");
            if entry.dirty {
                self.dirty -= 1;
                self.stats.writebacks += 1;
                writeback.push(victim);
            }
        }
        self.entries.insert(lpn, Entry { stamp: self.next_stamp, dirty: true });
        self.lru.insert(self.next_stamp, lpn);
        self.next_stamp += 1;
        self.dirty += 1;
        writeback
    }

    /// Notes a write-around of `lpn` (a cold-stream write going straight to
    /// the devices) and drops any resident copy — the cached data is
    /// superseded, and dropping it (dirty or not) keeps read-your-writes
    /// exact without a spurious writeback.
    pub fn write_around(&mut self, lpn: u64) {
        self.stats.write_arounds += 1;
        if let Some(entry) = self.entries.remove(&lpn) {
            self.lru.remove(&entry.stamp);
            if entry.dirty {
                self.dirty -= 1;
            }
        }
    }

    /// Drains dirty pages, least-recently-used first, until the dirty count is
    /// back at or below the threshold. The returned LPNs stay resident but
    /// clean; the caller must write them back to the devices. Returns an empty
    /// list when the cache is already at or below the threshold.
    pub fn flush_to_threshold(&mut self) -> Vec<u64> {
        if !self.over_threshold() {
            return Vec::new();
        }
        self.stats.flushes += 1;
        let limit = self.config.dirty_limit();
        let mut flushed = Vec::new();
        // BTreeMap iteration is stamp order — oldest (LRU) first.
        let stamps: Vec<u64> = self.lru.keys().copied().collect();
        for stamp in stamps {
            if self.dirty <= limit {
                break;
            }
            let lpn = self.lru[&stamp];
            let entry = self.entries.get_mut(&lpn).expect("LRU entry is resident");
            if entry.dirty {
                entry.dirty = false;
                self.dirty -= 1;
                self.stats.writebacks += 1;
                flushed.push(lpn);
            }
        }
        flushed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(capacity: usize, threshold: f64) -> WritebackCache {
        WritebackCache::new(CacheConfig {
            capacity_pages: capacity,
            dirty_flush_threshold: threshold,
            ..CacheConfig::default()
        })
    }

    #[test]
    fn read_misses_do_not_allocate() {
        let mut c = cache(4, 1.0);
        assert!(!c.read(3));
        assert!(c.is_empty());
        assert_eq!(c.stats().read_misses, 1);
    }

    #[test]
    fn absorbed_writes_are_dirty_and_hit_on_readback() {
        let mut c = cache(4, 1.0);
        assert!(c.write(9).is_empty());
        assert!(c.is_resident(9));
        assert!(c.is_dirty(9));
        assert!(c.read(9));
        assert_eq!(c.stats().read_hits, 1);
        assert_eq!(c.stats().writes_absorbed, 1);
    }

    #[test]
    fn rewrites_do_not_double_count_dirtiness() {
        let mut c = cache(4, 1.0);
        c.write(1);
        c.write(1);
        assert_eq!(c.dirty_len(), 1);
        assert_eq!(c.stats().writes_absorbed, 2);
    }

    #[test]
    fn lru_eviction_returns_dirty_victims() {
        let mut c = cache(2, 1.0);
        c.write(1);
        c.write(2);
        // Touch 1 so 2 becomes LRU.
        assert!(c.read(1));
        assert_eq!(c.write(3), vec![2]);
        assert!(c.is_resident(1) && c.is_resident(3) && !c.is_resident(2));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn flush_drains_to_the_threshold_oldest_first() {
        let mut c = cache(4, 0.5); // dirty limit = 2
        for lpn in [10, 11, 12] {
            c.write(lpn);
        }
        assert!(c.over_threshold());
        let flushed = c.flush_to_threshold();
        assert_eq!(flushed, vec![10], "the least-recently-used dirty page flushes first");
        assert_eq!(c.dirty_len(), 2);
        assert!(!c.over_threshold());
        assert!(c.is_resident(10) && !c.is_dirty(10), "flushed pages stay resident, clean");
        assert!(c.flush_to_threshold().is_empty(), "at the threshold nothing more drains");
        assert_eq!(c.stats().flushes, 1);
    }

    #[test]
    fn write_around_drops_stale_copies_without_writeback() {
        let mut c = cache(4, 1.0);
        c.write(5);
        let before = c.stats().writebacks;
        c.write_around(5);
        assert!(!c.is_resident(5));
        assert_eq!(c.dirty_len(), 0);
        assert_eq!(c.stats().writebacks, before, "superseded data is dropped, not written back");
        assert_eq!(c.stats().write_arounds, 1);
        // Write-around of a non-resident page is just a counter bump.
        c.write_around(6);
        assert_eq!(c.stats().write_arounds, 2);
    }

    #[test]
    fn hit_rate_and_net_absorption() {
        let mut c = cache(4, 1.0);
        c.write(1);
        c.read(1);
        c.read(2);
        let stats = c.stats();
        assert!((stats.read_hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(stats.absorbed_net(), 1);
        assert_eq!(CacheStats::default().read_hit_rate(), 0.0);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(std::panic::catch_unwind(|| cache(0, 0.5)).is_err());
        assert!(std::panic::catch_unwind(|| cache(4, 0.0)).is_err());
        assert!(std::panic::catch_unwind(|| cache(4, 1.5)).is_err());
    }
}
