//! The fleet and its driver: one drive loop replaying a trace against N
//! devices on a shared virtual clock.
//!
//! # Clock sharing
//!
//! The fleet reuses the single-device engine's event model wholesale. One
//! fleet-level completion calendar (a binary heap of host-completion instants)
//! carries the arrival discipline — closed-loop slot waits and open-loop
//! arrival retirement work exactly as in `vflash-sim`'s `EventCalendar` — while
//! each lane keeps its own per-chip ready clocks
//! ([`ChipClocks`](vflash_nand::ChipClocks), the same type the engine's
//! calendar wraps). A multi-page host request splits into per-lane stripe
//! chains: pages on the same lane serialise (a dependent chain against that
//! lane's chips), stripes on different lanes run in parallel, and the request
//! completes at the **max over its stripes** — which is where fan-out tail
//! amplification comes from.
//!
//! # The fleet-of-1 guarantee
//!
//! A 1-wide fleet with the cache disabled and a single tenant reproduces the
//! single-device [`WorkloadDriver`](vflash_sim::WorkloadDriver) **bit-for-bit** — same per-lane
//! [`RunSummary`], same device state — on both FTLs and every discipline. The
//! stripe map at width 1 is the identity, the per-request stripe chain is then
//! the engine's single dependent chain, and the fleet calendar sees exactly
//! the issue/completion instants the engine's calendar would (at closed-loop
//! depth 1 the calendar degenerates to the engine's scalar clock: it drains
//! fully at every arrival, so peak backlog 1 and zero busy arrivals fall out
//! by construction). `tests/fleet_equivalence.rs` pins this down.
//!
//! # Cache and writebacks
//!
//! With a [`CacheConfig`], page reads and small page writes consult the host
//! DRAM cache first: hits cost [`CacheConfig::hit_latency`] and never touch a
//! device; absorbed writes defer the flash program until eviction or a
//! dirty-ratio flush. Writeback traffic is **background**: it does not extend
//! the completing request's latency, but it does occupy the owning lane's
//! chips (or, at closed-loop depth 1 where op tracing is off, a lane-level
//! ready clock), so heavy writeback backlogs surface as queueing delay on
//! later requests — the classic destaging effect.

use vflash_ftl::{FlashTranslationLayer, FtlError, IoRequest as FtlRequest, Lpn};
use vflash_nand::{ChipClocks, ChipId, Nanos};
use vflash_sim::{ArrivalDiscipline, LatencyHistogram, ReplayMode, RunOptions, RunSummary};
use vflash_trace::{IoOp, Trace};

use crate::cache::{CacheConfig, WritebackCache};
use crate::qos::{dispatch_order, TenantWeight};
use crate::stripe::StripeMap;
use crate::summary::{FleetSummary, TenantSummary};

/// Host-tier configuration: the writeback cache (if any) and the tenant set.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Writeback-cache configuration; `None` disables the cache entirely (every
    /// page goes straight to its lane, required for the fleet-of-1 bit-identity
    /// guarantee).
    pub cache: Option<CacheConfig>,
    /// The tenant set. Request `i` of the trace belongs to tenant
    /// `i % tenants.len()`; under closed loop the per-tenant FIFO queues are
    /// served by weighted-share QoS, under open loop requests issue at their
    /// arrival times and the weights only label the accounting.
    pub tenants: Vec<TenantWeight>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig { cache: None, tenants: vec![TenantWeight::default()] }
    }
}

/// N homogeneous simulated devices behind one striped keyspace.
///
/// # Example
///
/// ```
/// use vflash_ftl::{ConventionalFtl, FtlConfig};
/// use vflash_nand::{NandConfig, NandDevice};
/// use vflash_fleet::{Fleet, FleetConfig, FleetDriver};
/// use vflash_sim::RunOptions;
/// use vflash_trace::synthetic::{self, SyntheticConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let lanes: Vec<ConventionalFtl> = (0..2)
///     .map(|_| {
///         let device = NandDevice::new(
///             NandConfig::builder()
///                 .chips(2)
///                 .blocks_per_chip(32)
///                 .pages_per_block(16)
///                 .page_size_bytes(8192)
///                 .build()
///                 .unwrap(),
///         );
///         ConventionalFtl::new(device, FtlConfig::default()).unwrap()
///     })
///     .collect();
/// let mut fleet = Fleet::new(lanes, FleetConfig::default());
/// let trace = synthetic::web_sql_server(SyntheticConfig {
///     requests: 300,
///     working_set_bytes: 2 * 1024 * 1024,
///     ..Default::default()
/// });
/// let summary = FleetDriver::closed_loop(RunOptions::default(), 4)
///     .run_mut(&mut fleet, &trace)?;
/// assert_eq!(summary.width, 2);
/// assert_eq!(summary.host_requests, 300);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Fleet<F: FlashTranslationLayer> {
    lanes: Vec<F>,
    config: FleetConfig,
    stripe: StripeMap,
}

impl<F: FlashTranslationLayer> Fleet<F> {
    /// Assembles a fleet from homogeneous lanes.
    ///
    /// # Panics
    ///
    /// Panics on an empty lane set, heterogeneous page sizes or logical
    /// capacities (the stripe map needs identical lanes), an empty tenant set,
    /// or an invalid cache configuration.
    pub fn new(lanes: Vec<F>, config: FleetConfig) -> Self {
        assert!(!lanes.is_empty(), "a fleet needs at least one device");
        assert!(!config.tenants.is_empty(), "a fleet needs at least one tenant");
        let page_size = lanes[0].device().config().page_size_bytes();
        let lane_pages = lanes[0].logical_pages();
        for lane in &lanes[1..] {
            assert_eq!(
                lane.device().config().page_size_bytes(),
                page_size,
                "fleet lanes must share one page size"
            );
            assert_eq!(
                lane.logical_pages(),
                lane_pages,
                "fleet lanes must share one logical capacity"
            );
        }
        if let Some(cache) = &config.cache {
            // Validate eagerly so a bad config fails at assembly, not mid-run.
            let _ = WritebackCache::new(*cache);
        }
        let stripe = StripeMap::new(lanes.len(), lane_pages);
        Fleet { lanes, config, stripe }
    }

    /// Number of lanes.
    pub fn width(&self) -> usize {
        self.lanes.len()
    }

    /// The stripe map over the fleet keyspace.
    pub fn stripe(&self) -> StripeMap {
        self.stripe
    }

    /// The host-tier configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The lanes, in stripe order.
    pub fn lanes(&self) -> &[F] {
        &self.lanes
    }

    /// Consumes the fleet, returning the lanes (e.g. to inspect device state
    /// after a run).
    pub fn into_lanes(self) -> Vec<F> {
        self.lanes
    }
}

/// Replicates `ArrivalDiscipline::needs_op_tracing` (private to the engine):
/// closed-loop depth 1 degenerates to serial accumulation where per-op
/// provenance is pure overhead.
fn needs_op_tracing(discipline: ArrivalDiscipline) -> bool {
    match discipline {
        ArrivalDiscipline::ClosedLoop { queue_depth } => queue_depth > 1,
        ArrivalDiscipline::OpenLoop { .. } => true,
    }
}

/// Replicates the engine's arrival scaling: exact at unit rate, rounded
/// otherwise.
fn scale_arrival(at_nanos: u64, rate_scale: f64) -> Nanos {
    if rate_scale == 1.0 {
        Nanos(at_nanos)
    } else {
        Nanos((at_nanos as f64 / rate_scale).round() as u64)
    }
}

/// A word-packed page bitmap for the per-lane prefill pass (one bit per
/// device-local page, iterated in ascending order — the engine's warm-up
/// order).
struct PageBitmap {
    words: Vec<u64>,
}

impl PageBitmap {
    fn new(pages: u64) -> Self {
        PageBitmap { words: vec![0; (pages as usize).div_ceil(64)] }
    }

    fn set(&mut self, page: u64) {
        self.words[(page / 64) as usize] |= 1 << (page % 64);
    }

    fn iter_set(&self) -> impl Iterator<Item = u64> + '_ {
        self.words.iter().enumerate().flat_map(|(word_index, &word)| {
            let base = word_index as u64 * 64;
            (0..64).filter(move |bit| word & (1u64 << bit) != 0).map(move |bit| base + bit)
        })
    }
}

/// The fleet-level completion calendar: a faithful replica of the engine's
/// `EventCalendar` host-completion heap (that type is crate-private to
/// `vflash-sim`), minus the per-chip clocks, which live per lane here.
struct CompletionCalendar {
    events: std::collections::BinaryHeap<std::cmp::Reverse<Nanos>>,
    peak_outstanding: usize,
    busy_arrivals: u64,
}

impl CompletionCalendar {
    fn new(capacity: usize) -> Self {
        CompletionCalendar {
            events: std::collections::BinaryHeap::with_capacity(capacity),
            peak_outstanding: 0,
            busy_arrivals: 0,
        }
    }

    fn outstanding(&self) -> usize {
        self.events.len()
    }

    fn pop_earliest(&mut self) -> Option<Nanos> {
        self.events.pop().map(|std::cmp::Reverse(at)| at)
    }

    fn observe_arrival(&mut self, issue: Nanos) {
        while self.events.peek().is_some_and(|&std::cmp::Reverse(at)| at <= issue) {
            self.events.pop();
        }
        if !self.events.is_empty() {
            self.busy_arrivals += 1;
        }
    }

    fn schedule_completion(&mut self, at: Nanos) {
        self.events.push(std::cmp::Reverse(at));
        if self.events.len() > self.peak_outstanding {
            self.peak_outstanding = self.events.len();
        }
    }
}

/// Per-lane accumulators of the drive loop.
struct LaneState {
    chips: ChipClocks,
    /// Untraced (closed-loop depth 1) device-level ready clock: carries the
    /// writeback backlog when op tracing is off.
    ready: Nanos,
    read_latencies: LatencyHistogram,
    write_latencies: LatencyHistogram,
    queue_delays: LatencyHistogram,
    service_times: LatencyHistogram,
    requests: u64,
    last_completion: Nanos,
    first_arrival: Option<Nanos>,
    last_arrival: Nanos,
}

/// Per-request scratch for one lane's stripe chain.
#[derive(Clone, Copy)]
struct StripeChain {
    start: Nanos,
    now: Nanos,
    service: Nanos,
}

/// The fleet workload driver: replays a [`Trace`] against a [`Fleet`] under
/// the engine's [`ArrivalDiscipline`]s and reports a [`FleetSummary`].
///
/// Construction mirrors [`WorkloadDriver`](vflash_sim::WorkloadDriver) exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetDriver {
    options: RunOptions,
    discipline: ArrivalDiscipline,
}

impl FleetDriver {
    /// A driver with explicit options and discipline.
    ///
    /// # Panics
    ///
    /// Panics on a zero queue depth or a non-positive/non-finite rate scale
    /// (via [`WorkloadDriver::new`](vflash_sim::WorkloadDriver::new)'s validation, which this reuses).
    pub fn new(options: RunOptions, discipline: ArrivalDiscipline) -> Self {
        // Reuse the engine's validation so both drivers reject the same inputs.
        let _ = vflash_sim::WorkloadDriver::new(options, discipline);
        FleetDriver { options, discipline }
    }

    /// A closed-loop (saturation) driver at the given queue depth.
    pub fn closed_loop(options: RunOptions, queue_depth: usize) -> Self {
        FleetDriver::new(options, ArrivalDiscipline::ClosedLoop { queue_depth })
    }

    /// An open-loop (arrival-time) driver at the given rate scale.
    pub fn open_loop(options: RunOptions, rate_scale: f64) -> Self {
        FleetDriver::new(options, ArrivalDiscipline::OpenLoop { rate_scale })
    }

    /// The replay options.
    pub fn options(&self) -> &RunOptions {
        &self.options
    }

    /// The arrival discipline.
    pub fn discipline(&self) -> ArrivalDiscipline {
        self.discipline
    }

    /// Replays `trace` against `fleet`, consuming it.
    ///
    /// # Errors
    ///
    /// Propagates FTL errors from any lane; see [`WorkloadDriver::run`](vflash_sim::WorkloadDriver::run).
    pub fn run<F: FlashTranslationLayer>(
        &self,
        mut fleet: Fleet<F>,
        trace: &Trace,
    ) -> Result<FleetSummary, FtlError> {
        self.run_mut(&mut fleet, trace)
    }

    /// Like [`FleetDriver::run`] but borrows the fleet, so callers can inspect
    /// or reuse the lanes afterwards.
    ///
    /// # Errors
    ///
    /// Propagates FTL errors from any lane.
    pub fn run_mut<F: FlashTranslationLayer>(
        &self,
        fleet: &mut Fleet<F>,
        trace: &Trace,
    ) -> Result<FleetSummary, FtlError> {
        let page_size = fleet.lanes[0].device().config().page_size_bytes();
        let stripe = fleet.stripe;

        // The warm-up mirrors the engine's: serial, tracing off, skipped for
        // read-free traces, ascending device-page order per lane.
        if self.options.prefill && trace.iter().any(|request| request.op == IoOp::Read) {
            let mut touched: Vec<PageBitmap> =
                (0..stripe.width()).map(|_| PageBitmap::new(stripe.lane_pages())).collect();
            for request in trace {
                for page in request.logical_pages(page_size) {
                    let (lane, offset) = stripe.locate(page % stripe.fleet_pages());
                    touched[lane].set(offset);
                }
            }
            for (lane, bitmap) in fleet.lanes.iter_mut().zip(&touched) {
                for offset in bitmap.iter_set() {
                    lane.write(Lpn(offset), self.options.prefill_request_bytes)?;
                }
            }
        }

        let trace_ops = needs_op_tracing(self.discipline);
        if trace_ops {
            for lane in &mut fleet.lanes {
                lane.device_mut().set_op_tracing(true);
            }
        }
        let outcome = self.drive(fleet, trace, page_size);
        if trace_ops {
            for lane in &mut fleet.lanes {
                lane.device_mut().set_op_tracing(false);
            }
        }
        outcome
    }

    /// Submits one logical page to its lane and advances that lane's stripe
    /// chain. Returns `Ok(false)` when the page was skipped (unmapped read with
    /// prefill off — the engine's rule).
    #[allow(clippy::too_many_arguments)]
    fn play_page<F: FlashTranslationLayer>(
        &self,
        lane: &mut F,
        state: &mut LaneState,
        chain: &mut StripeChain,
        op: IoOp,
        offset: u64,
        request_bytes: u32,
        trace_ops: bool,
    ) -> Result<bool, FtlError> {
        let completion = match op {
            IoOp::Write => lane.submit(FtlRequest::write(Lpn(offset), request_bytes))?,
            IoOp::Read => match lane.submit(FtlRequest::read(Lpn(offset))) {
                Ok(completion) => completion,
                Err(FtlError::UnmappedRead { .. }) if !self.options.prefill => return Ok(false),
                Err(err) => return Err(err),
            },
        };
        let span = completion.ops;
        if !trace_ops || span.is_empty() {
            chain.now += completion.latency;
            chain.service += completion.latency;
        } else {
            for op in lane.device().ops(span) {
                chain.now = state.chips.play_op(op.chip.0, chain.now, op.latency);
                chain.service += op.latency;
            }
            lane.device_mut().clear_ops();
        }
        Ok(true)
    }

    /// Plays one background writeback on its owner lane: the write chains from
    /// `issue` against the lane's chips (traced) or bumps the lane-level ready
    /// clock (untraced). Never extends the triggering request's latency.
    fn play_writeback<F: FlashTranslationLayer>(
        lane: &mut F,
        state: &mut LaneState,
        issue: Nanos,
        offset: u64,
        page_size: usize,
        trace_ops: bool,
    ) -> Result<(), FtlError> {
        let completion = lane.submit(FtlRequest::write(Lpn(offset), page_size as u32))?;
        let span = completion.ops;
        if !trace_ops || span.is_empty() {
            state.ready = state.ready.max(issue) + completion.latency;
        } else {
            let mut now = issue;
            for op in lane.device().ops(span) {
                now = state.chips.play_op(op.chip.0, now, op.latency);
            }
            lane.device_mut().clear_ops();
        }
        Ok(())
    }

    /// The drive loop: issue → retire → fan out over stripe chains → schedule,
    /// against one fleet-level completion calendar.
    fn drive<F: FlashTranslationLayer>(
        &self,
        fleet: &mut Fleet<F>,
        trace: &Trace,
        page_size: usize,
    ) -> Result<FleetSummary, FtlError> {
        let stripe = fleet.stripe;
        let width = stripe.width();
        let fleet_pages = stripe.fleet_pages();
        let trace_ops = needs_op_tracing(self.discipline);
        let tenants = fleet.config.tenants.clone();
        let tenant_count = tenants.len();

        let start_metrics: Vec<_> = fleet.lanes.iter().map(|lane| *lane.metrics()).collect();
        let busy_start: Vec<Vec<Nanos>> =
            fleet.lanes.iter().map(|lane| chip_busy_times(lane)).collect();

        let mut lanes: Vec<LaneState> = fleet
            .lanes
            .iter()
            .map(|lane| LaneState {
                chips: ChipClocks::new(lane.device().config().chips()),
                ready: Nanos::ZERO,
                read_latencies: LatencyHistogram::new(),
                write_latencies: LatencyHistogram::new(),
                queue_delays: LatencyHistogram::new(),
                service_times: LatencyHistogram::new(),
                requests: 0,
                last_completion: Nanos::ZERO,
                first_arrival: None,
                last_arrival: Nanos::ZERO,
            })
            .collect();

        let mut cache = fleet.config.cache.map(WritebackCache::new);
        let write_around_bytes =
            fleet.config.cache.map(|config| config.write_around_bytes).unwrap_or(u32::MAX);
        let hit_latency =
            fleet.config.cache.map(|config| config.hit_latency).unwrap_or(Nanos::ZERO);

        let heap_capacity = match self.discipline {
            ArrivalDiscipline::ClosedLoop { queue_depth } => queue_depth,
            ArrivalDiscipline::OpenLoop { .. } => 64,
        };
        let mut calendar = CompletionCalendar::new(heap_capacity);
        let mut clock = Nanos::ZERO;

        let mut fanout_read = LatencyHistogram::new();
        let mut fanout_write = LatencyHistogram::new();
        let mut stripe_read = LatencyHistogram::new();
        let mut stripe_write = LatencyHistogram::new();
        let mut tenant_latencies: Vec<LatencyHistogram> =
            (0..tenant_count).map(|_| LatencyHistogram::new()).collect();
        let mut tenant_requests = vec![0u64; tenant_count];
        let mut tenant_last = vec![Nanos::ZERO; tenant_count];

        let mut last_completion = Nanos::ZERO;
        let mut first_arrival: Option<Nanos> = None;
        let mut last_arrival = Nanos::ZERO;
        let mut requests = 0u64;

        // Per-request scratch, allocated once.
        let mut chains: Vec<Option<StripeChain>> = vec![None; width];
        let mut touched: Vec<usize> = Vec::with_capacity(width);

        // Closed loop with several tenants dispatches via weighted-share QoS
        // over per-tenant FIFOs; one tenant (or open loop, where arrivals set
        // the order) replays the trace in order.
        let order = match self.discipline {
            ArrivalDiscipline::ClosedLoop { .. } => dispatch_order(&tenants, trace.len()),
            ArrivalDiscipline::OpenLoop { .. } => (0..trace.len()).collect(),
        };
        let all_requests = trace.requests();

        for &request_index in &order {
            let request = &all_requests[request_index];
            let tenant = request_index % tenant_count;

            let issue = match self.discipline {
                ArrivalDiscipline::ClosedLoop { queue_depth } => {
                    if calendar.outstanding() >= queue_depth {
                        let freed = calendar.pop_earliest().expect("queue depth is at least 1");
                        if freed > clock {
                            clock = freed;
                        }
                    }
                    clock
                }
                ArrivalDiscipline::OpenLoop { rate_scale } => {
                    let arrival = scale_arrival(request.at_nanos, rate_scale);
                    let base = *first_arrival.get_or_insert(arrival);
                    if arrival > last_arrival {
                        last_arrival = arrival;
                    }
                    arrival.saturating_sub(base)
                }
            };
            calendar.observe_arrival(issue);

            let mut cache_now = issue;
            let mut cache_touched = false;

            for page in request.logical_pages(page_size) {
                let fleet_lpn = page % fleet_pages;
                let (lane_index, offset) = stripe.locate(fleet_lpn);

                // Host cache first: read hits and absorbed writes never reach
                // a device; write-arounds invalidate and fall through.
                if let Some(cache) = cache.as_mut() {
                    match request.op {
                        IoOp::Read => {
                            if cache.read(fleet_lpn) {
                                cache_now += hit_latency;
                                cache_touched = true;
                                continue;
                            }
                        }
                        IoOp::Write => {
                            if request.length < write_around_bytes {
                                let evicted = cache.write(fleet_lpn);
                                cache_now += hit_latency;
                                cache_touched = true;
                                for victim in evicted {
                                    let (wb_lane, wb_offset) = stripe.locate(victim);
                                    Self::play_writeback(
                                        &mut fleet.lanes[wb_lane],
                                        &mut lanes[wb_lane],
                                        issue,
                                        wb_offset,
                                        page_size,
                                        trace_ops,
                                    )?;
                                }
                                for victim in cache.flush_to_threshold() {
                                    let (wb_lane, wb_offset) = stripe.locate(victim);
                                    Self::play_writeback(
                                        &mut fleet.lanes[wb_lane],
                                        &mut lanes[wb_lane],
                                        issue,
                                        wb_offset,
                                        page_size,
                                        trace_ops,
                                    )?;
                                }
                                continue;
                            }
                            cache.write_around(fleet_lpn);
                        }
                    }
                }

                // Touch the lane before submitting, so requests whose every
                // page is skipped (unmapped reads with prefill off) still
                // record a zero-latency stripe — the engine counts them too.
                if chains[lane_index].is_none() {
                    let start = if trace_ops {
                        issue
                    } else {
                        // Untraced: serialise behind the lane's writeback
                        // backlog (a no-op with the cache off, where `ready`
                        // never advances past the previous completion).
                        issue.max(lanes[lane_index].ready)
                    };
                    chains[lane_index] = Some(StripeChain { start, now: start, service: Nanos::ZERO });
                    touched.push(lane_index);
                }
                let mut chain = chains[lane_index].expect("chain initialised above");
                self.play_page(
                    &mut fleet.lanes[lane_index],
                    &mut lanes[lane_index],
                    &mut chain,
                    request.op,
                    offset,
                    request.length,
                    trace_ops,
                )?;
                chains[lane_index] = Some(chain);
            }

            // A request that produced neither cache traffic nor device pages
            // (an empty byte range) still completes: park it on lane 0 with a
            // zero-length chain so the accounting matches the engine's.
            if touched.is_empty() && !cache_touched {
                let start = if trace_ops { issue } else { issue.max(lanes[0].ready) };
                chains[0] = Some(StripeChain { start, now: start, service: Nanos::ZERO });
                touched.push(0);
            }

            let mut completion = cache_now;
            for &lane_index in &touched {
                let chain = chains[lane_index].expect("touched lanes have chains");
                let sub_latency = chain.now.saturating_sub(issue);
                let service = if trace_ops {
                    chain.service
                } else {
                    chain.now.saturating_sub(chain.start)
                };
                let state = &mut lanes[lane_index];
                match request.op {
                    IoOp::Read => {
                        state.read_latencies.record(sub_latency);
                        stripe_read.record(sub_latency);
                    }
                    IoOp::Write => {
                        state.write_latencies.record(sub_latency);
                        stripe_write.record(sub_latency);
                    }
                }
                state.queue_delays.record(sub_latency.saturating_sub(service));
                state.service_times.record(service);
                state.requests += 1;
                if chain.now > state.last_completion {
                    state.last_completion = chain.now;
                }
                if !trace_ops {
                    state.ready = chain.now.max(state.ready);
                }
                if let ArrivalDiscipline::OpenLoop { rate_scale } = self.discipline {
                    let arrival = scale_arrival(request.at_nanos, rate_scale);
                    state.first_arrival.get_or_insert(arrival);
                    if arrival > state.last_arrival {
                        state.last_arrival = arrival;
                    }
                }
                if chain.now > completion {
                    completion = chain.now;
                }
                chains[lane_index] = None;
            }
            touched.clear();

            let latency = completion.saturating_sub(issue);
            match request.op {
                IoOp::Read => fanout_read.record(latency),
                IoOp::Write => fanout_write.record(latency),
            }
            tenant_latencies[tenant].record(latency);
            tenant_requests[tenant] += 1;
            if completion > tenant_last[tenant] {
                tenant_last[tenant] = completion;
            }
            if completion > last_completion {
                last_completion = completion;
            }
            calendar.schedule_completion(completion);
            requests += 1;
        }

        // Assemble per-lane summaries exactly as the engine does.
        let (mode, queue_depth, offered_duration) = match self.discipline {
            ArrivalDiscipline::ClosedLoop { queue_depth } => {
                (ReplayMode::ClosedLoop, queue_depth, Nanos::ZERO)
            }
            ArrivalDiscipline::OpenLoop { rate_scale } => (
                ReplayMode::OpenLoop { rate_scale },
                0,
                last_arrival.saturating_sub(first_arrival.unwrap_or(Nanos::ZERO)),
            ),
        };
        let lane_summaries: Vec<RunSummary> = fleet
            .lanes
            .iter()
            .zip(lanes.iter())
            .enumerate()
            .map(|(index, (lane, state))| {
                let end = *lane.metrics();
                let mut summary = RunSummary::from_metrics_delta(
                    lane.name(),
                    trace.name(),
                    &start_metrics[index],
                    &end,
                );
                summary.device_makespan = makespan_delta(lane, &busy_start[index]);
                summary.host_requests = state.requests;
                summary.host_elapsed = state.last_completion;
                summary.read_latency = state.read_latencies.percentiles();
                summary.write_latency = state.write_latencies.percentiles();
                summary.queue_delay = state.queue_delays.percentiles();
                summary.service_time = state.service_times.percentiles();
                summary.peak_queue_depth = calendar.peak_outstanding;
                summary.busy_arrivals = calendar.busy_arrivals;
                summary.queue_depth = queue_depth;
                summary.mode = mode;
                if let ArrivalDiscipline::OpenLoop { .. } = self.discipline {
                    summary.offered_duration = state
                        .last_arrival
                        .saturating_sub(state.first_arrival.unwrap_or(Nanos::ZERO));
                }
                summary
            })
            .collect();

        let tenant_summaries: Vec<TenantSummary> = tenants
            .iter()
            .enumerate()
            .map(|(index, tenant)| TenantSummary {
                name: tenant.name.clone(),
                weight: tenant.weight,
                requests: tenant_requests[index],
                latency: tenant_latencies[index].percentiles(),
                last_completion: tenant_last[index],
            })
            .collect();

        Ok(FleetSummary {
            ftl: fleet.lanes[0].name().to_string(),
            trace: trace.name().to_string(),
            width,
            lanes: lane_summaries,
            mode,
            queue_depth,
            host_requests: requests,
            host_elapsed: last_completion,
            offered_duration,
            peak_queue_depth: calendar.peak_outstanding,
            busy_arrivals: calendar.busy_arrivals,
            fanout_read_latency: fanout_read.percentiles(),
            fanout_write_latency: fanout_write.percentiles(),
            stripe_read_latency: stripe_read.percentiles(),
            stripe_write_latency: stripe_write.percentiles(),
            cache: cache.map(|cache| cache.stats()).unwrap_or_default(),
            tenants: tenant_summaries,
        })
    }
}

/// Snapshot of every chip's busy time on one lane (the engine's helper,
/// replicated — it is crate-private to `vflash-sim`).
fn chip_busy_times<F: FlashTranslationLayer>(lane: &F) -> Vec<Nanos> {
    let device = lane.device();
    (0..device.config().chips())
        .map(|chip| device.chip_busy_time(ChipId(chip)).expect("chip ids come from the config"))
        .collect()
}

/// The measured-phase makespan of one lane: largest per-chip busy-time delta.
fn makespan_delta<F: FlashTranslationLayer>(lane: &F, start: &[Nanos]) -> Nanos {
    chip_busy_times(lane)
        .iter()
        .zip(start)
        .map(|(&end, &begin)| end.saturating_sub(begin))
        .max()
        .unwrap_or(Nanos::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vflash_ftl::{ConventionalFtl, FtlConfig};
    use vflash_nand::{NandConfig, NandDevice};
    use vflash_sim::WorkloadDriver;
    use vflash_trace::synthetic::{self, SyntheticConfig};
    use vflash_trace::IoRequest;

    fn lane() -> ConventionalFtl {
        let device = NandDevice::new(
            NandConfig::builder()
                .chips(2)
                .blocks_per_chip(32)
                .pages_per_block(16)
                .page_size_bytes(8192)
                .build()
                .unwrap(),
        );
        ConventionalFtl::new(device, FtlConfig::default()).unwrap()
    }

    fn web_trace(requests: usize) -> Trace {
        synthetic::web_sql_server(SyntheticConfig {
            requests,
            working_set_bytes: 2 * 1024 * 1024,
            ..Default::default()
        })
    }

    #[test]
    fn fleet_of_one_matches_the_engine_bit_for_bit() {
        let trace = web_trace(400);
        let single = WorkloadDriver::closed_loop(RunOptions::default(), 1)
            .run(lane(), &trace)
            .unwrap();
        let mut fleet = Fleet::new(vec![lane()], FleetConfig::default());
        let summary = FleetDriver::closed_loop(RunOptions::default(), 1)
            .run_mut(&mut fleet, &trace)
            .unwrap();
        assert_eq!(summary.lanes[0], single);
        assert_eq!(summary.host_requests, single.host_requests);
        assert_eq!(summary.host_elapsed, single.host_elapsed);
        // At width 1 the fan-out and stripe distributions are the same thing.
        assert_eq!(summary.fanout_read_latency, summary.stripe_read_latency);
    }

    #[test]
    fn wider_fleets_serve_every_request_and_fan_out() {
        let trace = web_trace(400);
        let mut fleet = Fleet::new(vec![lane(), lane(), lane()], FleetConfig::default());
        let summary =
            FleetDriver::open_loop(RunOptions::default(), 1.0).run_mut(&mut fleet, &trace).unwrap();
        assert_eq!(summary.width, 3);
        assert_eq!(summary.host_requests, 400);
        let lane_requests: u64 = summary.lanes.iter().map(|lane| lane.host_requests).sum();
        assert!(lane_requests >= 400, "multi-page requests touch several lanes");
        // Fan-out latency dominates any single stripe.
        assert!(summary.fanout_read_latency.p999 >= summary.stripe_read_latency.p999);
        assert!(summary.read_tail_amplification() >= 1.0);
    }

    #[test]
    fn the_cache_absorbs_hot_rewrites() {
        // A write-only hammer on few pages: with a cache most programs are
        // absorbed in DRAM and the devices see far fewer writes.
        let requests: Vec<IoRequest> = (0..300)
            .map(|i| IoRequest::new(i * 1_000, IoOp::Write, (i % 4) * 8192, 8192))
            .collect();
        let trace = Trace::new("hammer", requests);
        let driver = FleetDriver::closed_loop(RunOptions::default(), 1);

        let mut plain = Fleet::new(vec![lane(), lane()], FleetConfig::default());
        let without = driver.run_mut(&mut plain, &trace).unwrap();
        let mut cached = Fleet::new(
            vec![lane(), lane()],
            FleetConfig {
                cache: Some(CacheConfig { capacity_pages: 64, ..CacheConfig::default() }),
                ..FleetConfig::default()
            },
        );
        let with = driver.run_mut(&mut cached, &trace).unwrap();

        let device_writes = |summary: &FleetSummary| {
            summary.lanes.iter().map(|lane| lane.host_writes).sum::<u64>()
        };
        assert_eq!(with.cache.writes_absorbed, 300);
        assert_eq!(device_writes(&with), 0, "everything fits in 64 cache pages");
        assert_eq!(device_writes(&without), 300);
        assert!(with.host_elapsed < without.host_elapsed, "DRAM hits are cheap");
    }

    #[test]
    fn write_around_bypasses_the_cache() {
        let requests: Vec<IoRequest> =
            (0..50).map(|i| IoRequest::new(i * 1_000, IoOp::Write, i * 8192, 8192)).collect();
        let trace = Trace::new("cold", requests);
        let mut fleet = Fleet::new(
            vec![lane(), lane()],
            FleetConfig {
                cache: Some(CacheConfig {
                    capacity_pages: 64,
                    write_around_bytes: 4096, // every 8 KiB request is "cold"
                    ..CacheConfig::default()
                }),
                ..FleetConfig::default()
            },
        );
        let summary = FleetDriver::closed_loop(RunOptions::default(), 1)
            .run_mut(&mut fleet, &trace)
            .unwrap();
        assert_eq!(summary.cache.write_arounds, 50);
        assert_eq!(summary.cache.writes_absorbed, 0);
        assert_eq!(summary.lanes.iter().map(|lane| lane.host_writes).sum::<u64>(), 50);
    }

    #[test]
    fn tenants_split_the_request_stream() {
        let trace = web_trace(90);
        let mut fleet = Fleet::new(
            vec![lane()],
            FleetConfig {
                tenants: vec![
                    TenantWeight::new("gold", 2),
                    TenantWeight::new("bronze", 1),
                    TenantWeight::new("iron", 1),
                ],
                ..FleetConfig::default()
            },
        );
        let summary = FleetDriver::closed_loop(RunOptions::default(), 4)
            .run_mut(&mut fleet, &trace)
            .unwrap();
        assert_eq!(summary.tenants.len(), 3);
        assert_eq!(summary.tenants.iter().map(|tenant| tenant.requests).sum::<u64>(), 90);
        assert_eq!(summary.tenants[0].requests, 30, "round-robin tenant assignment");
        assert!(summary.tenants[0].achieved_iops() > 0.0);
    }

    #[test]
    fn heterogeneous_lanes_are_rejected() {
        let small = lane();
        let big = {
            let device = NandDevice::new(
                NandConfig::builder()
                    .chips(2)
                    .blocks_per_chip(64)
                    .pages_per_block(16)
                    .page_size_bytes(8192)
                    .build()
                    .unwrap(),
            );
            ConventionalFtl::new(device, FtlConfig::default()).unwrap()
        };
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Fleet::new(vec![small, big], FleetConfig::default())
        }))
        .is_err());
    }
}
