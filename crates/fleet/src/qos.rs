//! Per-tenant submission queues with weighted-share QoS.
//!
//! Multi-tenant hosts carve one device fleet into shares: tenant A paid for
//! twice tenant B's throughput, so when both have work queued the dispatcher
//! should pick A twice as often. The fleet models this with classic weighted
//! fair queueing over per-tenant FIFO submission queues — the next dispatch
//! goes to the backlogged tenant with the smallest *normalised* service
//! `(served + 1) / weight`, ties broken by tenant index so a run is a pure
//! function of the trace.
//!
//! Two properties anchor the scheme (pinned in `tests/fleet_properties.rs`):
//!
//! * **Work conservation** — the dispatcher never idles while any tenant has
//!   queued requests, so total fleet throughput is unchanged by the split.
//! * **Weight monotonicity** — raising one tenant's weight (all else equal)
//!   never lowers its share of any dispatch prefix.
//!
//! With a single tenant the scheduler degenerates to the trace's own order,
//! which is what keeps the fleet-of-1 equivalence proof exact. Under open-loop
//! arrivals requests are issued at their (scaled) trace arrival times, so the
//! host never holds a backlog to arbitrate — QoS weights only shape
//! closed-loop dispatch order.

use std::collections::VecDeque;

/// One tenant's share of the fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantWeight {
    /// Display name, carried into the per-tenant summary rows.
    pub name: String,
    /// Relative share; a weight-2 tenant gets twice the dispatches of a
    /// weight-1 tenant while both are backlogged. Must be positive.
    pub weight: u64,
}

impl TenantWeight {
    /// A named tenant with the given relative weight.
    pub fn new(name: impl Into<String>, weight: u64) -> Self {
        TenantWeight { name: name.into(), weight }
    }
}

impl Default for TenantWeight {
    fn default() -> Self {
        TenantWeight::new("tenant-0", 1)
    }
}

/// Weighted-fair dispatch state over `n` tenants.
///
/// # Example
///
/// ```
/// use vflash_fleet::{TenantWeight, WeightedShares};
///
/// let mut wfq = WeightedShares::new(&[
///     TenantWeight::new("gold", 2),
///     TenantWeight::new("bronze", 1),
/// ]);
/// // While both are backlogged, gold gets two dispatches per bronze one.
/// let order: Vec<usize> = (0..6).map(|_| wfq.pick(&[true, true]).unwrap()).collect();
/// assert_eq!(order, [0, 0, 1, 0, 0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct WeightedShares {
    weights: Vec<u64>,
    served: Vec<u64>,
}

impl WeightedShares {
    /// Fresh dispatch state for the given tenants.
    ///
    /// # Panics
    ///
    /// Panics on an empty tenant list or a zero weight.
    pub fn new(tenants: &[TenantWeight]) -> Self {
        assert!(!tenants.is_empty(), "QoS needs at least one tenant");
        let weights: Vec<u64> = tenants
            .iter()
            .map(|tenant| {
                assert!(tenant.weight > 0, "tenant weights must be positive");
                tenant.weight
            })
            .collect();
        WeightedShares { served: vec![0; weights.len()], weights }
    }

    /// Dispatches served to each tenant so far.
    pub fn served(&self) -> &[u64] {
        &self.served
    }

    /// Picks the next tenant among those with `backlogged[i] == true`:
    /// smallest `(served + 1) / weight`, compared exactly by
    /// cross-multiplication in `u128` (no float drift), ties to the lower
    /// index. Returns `None` when nobody is backlogged. The winner's served
    /// count is charged immediately.
    pub fn pick(&mut self, backlogged: &[bool]) -> Option<usize> {
        assert_eq!(backlogged.len(), self.weights.len(), "one flag per tenant");
        let mut best: Option<usize> = None;
        for (index, &ready) in backlogged.iter().enumerate() {
            if !ready {
                continue;
            }
            match best {
                None => best = Some(index),
                Some(current) => {
                    // (served[i]+1)/w[i] < (served[c]+1)/w[c]
                    //   ⇔ (served[i]+1)·w[c] < (served[c]+1)·w[i]
                    let lhs = (self.served[index] as u128 + 1) * self.weights[current] as u128;
                    let rhs = (self.served[current] as u128 + 1) * self.weights[index] as u128;
                    if lhs < rhs {
                        best = Some(index);
                    }
                }
            }
        }
        if let Some(winner) = best {
            self.served[winner] += 1;
        }
        best
    }
}

/// Precomputes the closed-loop dispatch order of `total` requests split
/// round-robin over the tenants (request `i` belongs to tenant
/// `i % tenants.len()`), each tenant's queue served FIFO under
/// [`WeightedShares`] arbitration. Returns the request indices in dispatch
/// order — a permutation of `0..total`.
///
/// With one tenant this is the identity permutation: the fleet replays the
/// trace in order, exactly like the single-device engine.
pub fn dispatch_order(tenants: &[TenantWeight], total: usize) -> Vec<usize> {
    if tenants.len() <= 1 {
        return (0..total).collect();
    }
    let lanes = tenants.len();
    let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); lanes];
    for request in 0..total {
        queues[request % lanes].push_back(request);
    }
    let mut wfq = WeightedShares::new(tenants);
    let mut order = Vec::with_capacity(total);
    let mut backlogged: Vec<bool> = queues.iter().map(|queue| !queue.is_empty()).collect();
    while let Some(winner) = wfq.pick(&backlogged) {
        order.push(queues[winner].pop_front().expect("picked tenant has backlog"));
        backlogged[winner] = !queues[winner].is_empty();
    }
    debug_assert_eq!(order.len(), total);
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_weights_round_robin() {
        let tenants = [TenantWeight::new("a", 1), TenantWeight::new("b", 1)];
        let mut wfq = WeightedShares::new(&tenants);
        let order: Vec<usize> = (0..4).map(|_| wfq.pick(&[true, true]).unwrap()).collect();
        assert_eq!(order, [0, 1, 0, 1]);
    }

    #[test]
    fn shares_track_weights_exactly() {
        let tenants = [TenantWeight::new("gold", 3), TenantWeight::new("bronze", 1)];
        let mut wfq = WeightedShares::new(&tenants);
        for _ in 0..40 {
            wfq.pick(&[true, true]);
        }
        assert_eq!(wfq.served(), &[30, 10]);
    }

    #[test]
    fn idle_tenants_are_skipped_and_nobody_backlogged_is_none() {
        let tenants = [TenantWeight::new("a", 1), TenantWeight::new("b", 8)];
        let mut wfq = WeightedShares::new(&tenants);
        assert_eq!(wfq.pick(&[true, false]), Some(0));
        assert_eq!(wfq.pick(&[false, false]), None);
    }

    #[test]
    fn dispatch_order_is_a_permutation_and_identity_for_one_tenant() {
        let single = dispatch_order(&[TenantWeight::default()], 5);
        assert_eq!(single, vec![0, 1, 2, 3, 4]);

        let tenants = [TenantWeight::new("a", 2), TenantWeight::new("b", 1)];
        let order = dispatch_order(&tenants, 9);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..9).collect::<Vec<_>>());
        // Tenant a owns even request indices and is served twice as often up
        // front (ties go to the lower index): the first three dispatches are
        // a's requests 0 and 2, then b's request 1.
        assert_eq!(&order[..3], &[0, 2, 1]);
    }

    #[test]
    fn raising_a_weight_never_lowers_its_prefix_share() {
        let total = 60;
        let low = dispatch_order(&[TenantWeight::new("x", 1), TenantWeight::new("y", 3)], total);
        let high = dispatch_order(&[TenantWeight::new("x", 2), TenantWeight::new("y", 3)], total);
        for prefix in 1..=total {
            let share = |order: &[usize]| {
                order[..prefix].iter().filter(|&&request| request % 2 == 0).count()
            };
            assert!(share(&high) >= share(&low), "prefix {prefix}");
        }
    }

    #[test]
    fn invalid_tenant_sets_are_rejected() {
        assert!(std::panic::catch_unwind(|| WeightedShares::new(&[])).is_err());
        assert!(
            std::panic::catch_unwind(|| WeightedShares::new(&[TenantWeight::new("z", 0)]))
                .is_err()
        );
    }
}
