//! End-to-end checks of the KV stack: determinism across identical runs, the
//! write-amplification product identity at workload scale, and clean
//! [`KvError::ReadOnly`] surfacing once the device wears out.

use vflash_ftl::{ConventionalFtl, FtlConfig};
use vflash_kv::workload::{compare_conventional_vs_ppb, KvWorkloadConfig};
use vflash_kv::{FlashStore, KvConfig, KvError, KvStore};
use vflash_nand::{FaultConfig, NandConfig, NandDevice};

/// Same seed + same FTL must produce bit-identical summaries — percentiles,
/// write amplification, device time and the final SSTable layout — for both
/// the conventional and the PPB backend.
#[test]
fn identical_runs_are_bit_identical_on_both_ftls() {
    let workload = KvWorkloadConfig::smoke();
    let first = compare_conventional_vs_ppb(KvConfig::default(), &workload).unwrap();
    let second = compare_conventional_vs_ppb(KvConfig::default(), &workload).unwrap();
    assert_eq!(first.conventional, second.conventional);
    assert_eq!(first.ppb, second.ppb);
    assert!(!first.conventional.layout.is_empty());
    assert_eq!(first.conventional.layout, second.conventional.layout);
    assert_eq!(first.ppb.layout, second.ppb.layout);
}

/// The three write-amplification factors reported by a workload run obey the
/// product identity: app WA x FTL WA = end-to-end WA, on both FTLs.
#[test]
fn workload_write_amplification_product_identity() {
    let comparison =
        compare_conventional_vs_ppb(KvConfig::default(), &KvWorkloadConfig::smoke()).unwrap();
    for summary in [&comparison.conventional, &comparison.ppb] {
        let wa = summary.write_amplification;
        assert!(wa.app > 1.0, "{}: app WA must exceed 1", summary.ftl);
        assert!(wa.ftl >= 1.0, "{}: FTL WA must be at least 1", summary.ftl);
        let product = wa.app * wa.ftl;
        assert!(
            (product - wa.end_to_end).abs() <= 1e-9 * wa.end_to_end,
            "{}: app {} x ftl {} != end-to-end {}",
            summary.ftl,
            wa.app,
            wa.ftl,
            wa.end_to_end
        );
    }
}

/// Once bad-block growth exhausts the spares the FTL turns read-only; the KV
/// store must surface that as `KvError::ReadOnly` (not a panic or a corruption
/// error), keep serving reads, and still recover from the device afterwards.
#[test]
fn worn_out_device_surfaces_read_only_and_still_recovers() {
    let faults = FaultConfig {
        program_fail_base: 0.03,
        erase_fail_base: 0.0,
        rber_scale: 0.0,
        ..FaultConfig::enabled(7)
    };
    let nand = NandConfig::builder()
        .chips(1)
        .blocks_per_chip(32)
        .pages_per_block(32)
        .page_size_bytes(4096)
        .build()
        .unwrap()
        .with_faults(faults)
        .unwrap();
    let ftl = ConventionalFtl::new(NandDevice::new(nand), FtlConfig::default()).unwrap();
    let config = KvConfig {
        memtable_bytes: 4 << 10,
        level_base_bytes: 16 << 10,
        target_table_bytes: 8 << 10,
        ..KvConfig::default()
    };
    let mut kv = KvStore::open(FlashStore::new(ftl), config).unwrap();
    let mut writes = 0u64;
    let error = loop {
        // A bounded key space keeps the live set small while overwrites churn
        // the device toward end of life.
        let key = (writes % 64).to_be_bytes();
        match kv.put(&key, &[0xAB; 512]) {
            Ok(_) => writes += 1,
            Err(error) => break error,
        }
        assert!(writes < 2_000_000, "device never reached end of life");
    };
    assert!(writes > 0, "no writes succeeded before end of life");
    assert!(matches!(error, KvError::ReadOnly), "expected ReadOnly, got: {error}");
    // Read-only is sticky at the KV level too.
    assert!(matches!(kv.put(b"again", b"x"), Err(KvError::ReadOnly)));
    // Reads still work (values may be stale relative to the failed write).
    let lookup = kv.get(&0u64.to_be_bytes()).unwrap();
    assert!(lookup.value.is_some() || lookup.value.is_none()); // no panic, clean answer
    // Recovery from the device needs no writes and must succeed.
    let mut recovered = KvStore::open(kv.crash(), config).unwrap();
    recovered.get(&0u64.to_be_bytes()).unwrap();
    assert!(matches!(recovered.put(b"still", b"dead"), Err(KvError::ReadOnly)));
}
