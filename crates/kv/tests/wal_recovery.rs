//! WAL crash-recovery property test: drop the in-memory state at an arbitrary
//! point in an arbitrary operation sequence, re-open the store on the same
//! device state, and require the recovered store to answer every committed key
//! exactly like a model map — twice, to also cover recovery-of-a-recovery.

use std::collections::BTreeMap;

use proptest::prelude::*;
use vflash_ftl::{ConventionalFtl, FtlConfig};
use vflash_kv::{FlashStore, KvConfig, KvStore};
use vflash_nand::{NandConfig, NandDevice};

#[derive(Debug, Clone)]
enum Op {
    Put(u8, Vec<u8>),
    Delete(u8),
}

fn flash() -> FlashStore<ConventionalFtl> {
    let device = NandDevice::new(
        NandConfig::builder()
            .chips(1)
            .blocks_per_chip(32)
            .pages_per_block(32)
            .page_size_bytes(4096)
            .build()
            .expect("valid geometry"),
    );
    FlashStore::new(ConventionalFtl::new(device, FtlConfig::default()).expect("valid ftl"))
}

/// Tiny thresholds so even short sequences cross flush and compaction
/// boundaries — the interesting crash points.
fn config() -> KvConfig {
    KvConfig {
        memtable_bytes: 1 << 10,
        level_base_bytes: 4 << 10,
        target_table_bytes: 2 << 10,
        ..KvConfig::default()
    }
}

fn key(k: u8) -> Vec<u8> {
    vec![b'k', k]
}

fn apply(
    kv: &mut KvStore<ConventionalFtl>,
    model: &mut BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    op: &Op,
) {
    match op {
        Op::Put(k, value) => {
            kv.put(&key(*k), value).expect("put succeeds");
            model.insert(key(*k), Some(value.clone()));
        }
        Op::Delete(k) => {
            kv.delete(&key(*k)).expect("delete succeeds");
            model.insert(key(*k), None);
        }
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..32, proptest::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(k, value)| Op::Put(k, value)),
        (0u8..32).prop_map(Op::Delete),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every key the application committed before the crash must read back
    /// identically after recovery, whether it was still in the WAL-protected
    /// memtable or already flushed into the table tree.
    #[test]
    fn recovery_answers_every_committed_key(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        cut_seed in 0usize..10_000,
    ) {
        let cut = cut_seed % (ops.len() + 1);
        let mut model: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        let mut kv = KvStore::open(flash(), config()).expect("format");
        for op in &ops[..cut] {
            apply(&mut kv, &mut model, op);
        }
        // Crash: all in-memory state is dropped; only the device survives.
        let mut kv = KvStore::open(kv.crash(), config()).expect("recover at cut point");
        for k in 0u8..32 {
            let expected = model.get(&key(k)).cloned().flatten();
            let lookup = kv.get(&key(k)).expect("get after recovery");
            prop_assert_eq!(
                lookup.value, expected,
                "key {} answered wrong after crash at op {}/{}", k, cut, ops.len()
            );
        }
        // The recovered store must keep working: apply the rest, crash again,
        // and re-verify the full history.
        for op in &ops[cut..] {
            apply(&mut kv, &mut model, op);
        }
        let mut kv = KvStore::open(kv.crash(), config()).expect("recover after tail");
        for k in 0u8..32 {
            let expected = model.get(&key(k)).cloned().flatten();
            let lookup = kv.get(&key(k)).expect("get after second recovery");
            prop_assert_eq!(lookup.value, expected, "key {} wrong after second crash", k);
        }
        // Scans agree with the model too.
        let live: Vec<(Vec<u8>, Vec<u8>)> = model
            .iter()
            .filter_map(|(k, v)| v.clone().map(|v| (k.clone(), v)))
            .collect();
        prop_assert_eq!(kv.scan(b"k\x00", b"k\xff").expect("scan"), live);
    }
}
