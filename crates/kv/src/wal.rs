//! The write-ahead log: checksummed, epoch-stamped records in a fixed flash
//! region.
//!
//! The WAL lives in one preallocated [`SegmentFile`] region and is reset in
//! place at every memtable flush: the logical length rewinds to zero and the
//! **epoch** (persisted in the manifest) increments, so stale records from the
//! previous epoch are still physically on the region's pages but fail the epoch
//! check during replay. Each record carries an FNV-64 checksum; replay stops at
//! the first record that fails validation, which is exactly the committed
//! prefix.

use crate::error::KvError;
use crate::flash_file::{FlashStore, SegmentFile};
use crate::hash::fnv1a;
use vflash_ftl::FlashTranslationLayer;

/// One logical WAL operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// Insert or overwrite `key` with `value`.
    Put {
        /// The key written.
        key: Vec<u8>,
        /// The value written.
        value: Vec<u8>,
    },
    /// Delete `key` (a tombstone once it reaches the memtable).
    Delete {
        /// The key deleted.
        key: Vec<u8>,
    },
}

impl WalOp {
    /// The operation's key.
    pub fn key(&self) -> &[u8] {
        match self {
            WalOp::Put { key, .. } | WalOp::Delete { key } => key,
        }
    }
}

const KIND_PUT: u8 = 1;
const KIND_DELETE: u8 = 2;
/// epoch(4) + kind(1) + klen(2) + vlen(4).
const HEADER_BYTES: usize = 11;
/// Trailing FNV-64 checksum.
const CHECKSUM_BYTES: usize = 8;

/// Serializes one record: header, key, value, checksum over everything before
/// the checksum.
fn encode(epoch: u32, op: &WalOp) -> Vec<u8> {
    let (kind, key, value): (u8, &[u8], &[u8]) = match op {
        WalOp::Put { key, value } => (KIND_PUT, key, value),
        WalOp::Delete { key } => (KIND_DELETE, key, &[]),
    };
    let mut out = Vec::with_capacity(HEADER_BYTES + key.len() + value.len() + CHECKSUM_BYTES);
    out.extend_from_slice(&epoch.to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&(key.len() as u16).to_le_bytes());
    out.extend_from_slice(&(value.len() as u32).to_le_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(value);
    out.extend_from_slice(&fnv1a(&out, 0).to_le_bytes());
    out
}

/// Decodes the record at `bytes[at..]`. Returns `None` when the bytes are not a
/// valid record of `epoch` — a stale record from an earlier epoch, garbage, or
/// a truncated tail — which is the replay stop condition.
fn decode(bytes: &[u8], at: usize, epoch: u32) -> Option<(WalOp, usize)> {
    let rest = bytes.get(at..)?;
    if rest.len() < HEADER_BYTES + CHECKSUM_BYTES {
        return None;
    }
    let record_epoch = u32::from_le_bytes(rest[0..4].try_into().unwrap());
    if record_epoch != epoch {
        return None;
    }
    let kind = rest[4];
    let klen = u16::from_le_bytes(rest[5..7].try_into().unwrap()) as usize;
    let vlen = u32::from_le_bytes(rest[7..11].try_into().unwrap()) as usize;
    let total = HEADER_BYTES + klen + vlen + CHECKSUM_BYTES;
    if rest.len() < total {
        return None;
    }
    let payload = &rest[..HEADER_BYTES + klen + vlen];
    let stored = u64::from_le_bytes(
        rest[HEADER_BYTES + klen + vlen..total].try_into().unwrap(),
    );
    if fnv1a(payload, 0) != stored {
        return None;
    }
    let key = rest[HEADER_BYTES..HEADER_BYTES + klen].to_vec();
    let op = match kind {
        KIND_PUT => WalOp::Put { key, value: rest[HEADER_BYTES + klen..HEADER_BYTES + klen + vlen].to_vec() },
        KIND_DELETE if vlen == 0 => WalOp::Delete { key },
        _ => return None,
    };
    Some((op, total))
}

/// The write-ahead log: a preallocated region plus the current epoch.
#[derive(Debug)]
pub struct Wal {
    file: SegmentFile,
    epoch: u32,
}

impl Wal {
    /// Wraps a (pre-reserved) region at `epoch`.
    pub fn new(file: SegmentFile, epoch: u32) -> Self {
        Wal { file, epoch }
    }

    /// The current epoch (persisted in the manifest).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// The backing region.
    pub fn file(&self) -> &SegmentFile {
        &self.file
    }

    /// Bytes a record for `op` will occupy.
    pub fn record_bytes(op: &WalOp) -> u64 {
        let (key, value) = match op {
            WalOp::Put { key, value } => (key.len(), value.len()),
            WalOp::Delete { key } => (key.len(), 0),
        };
        (HEADER_BYTES + key + value + CHECKSUM_BYTES) as u64
    }

    /// True when appending `op` would overrun the preallocated region — the
    /// store must flush (and thereby reset the WAL) first.
    pub fn would_overflow(&self, op: &WalOp, page_size: usize) -> bool {
        let capacity = self.file.pages() * page_size as u64;
        self.file.len() + Self::record_bytes(op) > capacity
    }

    /// Appends one record, charging the tail-page program(s) to the store
    /// clock. The request size passed to the FTL is the record size, so PPB's
    /// size-based classifier sees WAL traffic as small (hot) writes.
    ///
    /// # Errors
    ///
    /// [`KvError::OutOfSpace`] when the region is full (callers should have
    /// checked [`Wal::would_overflow`]); write errors pass through.
    pub fn append<F: FlashTranslationLayer>(
        &mut self,
        store: &mut FlashStore<F>,
        op: &WalOp,
    ) -> Result<(), KvError> {
        if self.would_overflow(op, store.page_size()) {
            return Err(KvError::OutOfSpace);
        }
        let record = encode(self.epoch, op);
        let request_bytes = record.len() as u32;
        store.append(&mut self.file, &record, request_bytes)
    }

    /// Rewinds the region and bumps the epoch (the post-flush reset). Old
    /// records stay on the pages but no longer validate.
    pub fn reset(&mut self) {
        self.file.truncate();
        self.epoch += 1;
    }

    /// Replays the committed record prefix of `file` at `epoch` after a crash:
    /// reads the region's written pages (charged), decodes records until the
    /// first invalid one, and returns the operations plus the byte length of
    /// the valid prefix (the position appends must resume from).
    ///
    /// # Errors
    ///
    /// Read errors pass through; decode failures are the normal stop condition,
    /// not errors.
    pub fn replay<F: FlashTranslationLayer>(
        store: &mut FlashStore<F>,
        file: &SegmentFile,
        epoch: u32,
    ) -> Result<(Vec<WalOp>, u64), KvError> {
        // The post-crash logical length is unknown (the manifest predates the
        // tail), so read every written page of the region front to back; pages
        // written under earlier epochs simply fail the epoch check below. The
        // written prefix is collected first and read as one batched sweep
        // (chunked at the store's queue depth) instead of page-at-a-time.
        let mut lpns = Vec::new();
        for page in 0..file.pages() {
            let lpn = file.lpn_at(page).expect("page index is below the region size");
            if !store.is_written(lpn) {
                break;
            }
            lpns.push(lpn);
        }
        let bytes = store.read_pages(&lpns)?;
        let mut ops = Vec::new();
        let mut at = 0usize;
        while let Some((op, consumed)) = decode(&bytes, at, epoch) {
            ops.push(op);
            at += consumed;
        }
        Ok((ops, at as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vflash_ftl::{ConventionalFtl, FtlConfig};
    use vflash_nand::{NandConfig, NandDevice};

    fn store() -> FlashStore<ConventionalFtl> {
        let device = NandDevice::new(NandConfig::small());
        FlashStore::new(ConventionalFtl::new(device, FtlConfig::default()).unwrap())
    }

    fn region(store: &mut FlashStore<ConventionalFtl>, pages: u64) -> SegmentFile {
        let mut file = SegmentFile::new();
        store.reserve(&mut file, pages).unwrap();
        file
    }

    #[test]
    fn append_and_replay_round_trip() {
        let mut store = store();
        let mut wal = Wal::new(region(&mut store, 8), 3);
        let ops = vec![
            WalOp::Put { key: b"alpha".to_vec(), value: b"1".to_vec() },
            WalOp::Delete { key: b"beta".to_vec() },
            WalOp::Put { key: b"gamma".to_vec(), value: vec![9u8; 300] },
        ];
        for op in &ops {
            wal.append(&mut store, op).unwrap();
        }
        let (replayed, consumed) = Wal::replay(&mut store, wal.file(), 3).unwrap();
        assert_eq!(replayed, ops);
        assert_eq!(consumed, wal.file().len());
    }

    #[test]
    fn stale_epoch_records_stop_replay() {
        let mut store = store();
        let mut wal = Wal::new(region(&mut store, 8), 1);
        wal.append(&mut store, &WalOp::Put { key: b"old".to_vec(), value: b"x".to_vec() })
            .unwrap();
        wal.reset();
        wal.append(&mut store, &WalOp::Put { key: b"new".to_vec(), value: b"y".to_vec() })
            .unwrap();
        // Epoch 2 replay sees only the new record, although the page still
        // physically holds whatever epoch 1 wrote beyond it.
        let (replayed, _) = Wal::replay(&mut store, wal.file(), 2).unwrap();
        assert_eq!(replayed, vec![WalOp::Put { key: b"new".to_vec(), value: b"y".to_vec() }]);
        // And the stale epoch replays nothing valid at its old offsets either:
        // the new epoch's record overwrote the prefix.
        let (stale, _) = Wal::replay(&mut store, wal.file(), 1).unwrap();
        assert!(stale.is_empty());
    }

    #[test]
    fn overflow_is_refused_before_touching_the_device() {
        let mut store = store();
        let mut wal = Wal::new(region(&mut store, 1), 1);
        let big = WalOp::Put {
            key: b"k".to_vec(),
            value: vec![0u8; store.page_size() * 2],
        };
        assert!(wal.would_overflow(&big, store.page_size()));
        assert!(matches!(wal.append(&mut store, &big), Err(KvError::OutOfSpace)));
    }

    #[test]
    fn corrupted_checksums_end_the_replayed_prefix() {
        let epoch = 5;
        let mut bytes = encode(epoch, &WalOp::Put { key: b"k1".to_vec(), value: b"v1".to_vec() });
        let second = encode(epoch, &WalOp::Put { key: b"k2".to_vec(), value: b"v2".to_vec() });
        let flip_at = bytes.len() + 12;
        bytes.extend_from_slice(&second);
        bytes[flip_at] ^= 0xFF;
        let (first, consumed) = decode(&bytes, 0, epoch).unwrap();
        assert_eq!(first, WalOp::Put { key: b"k1".to_vec(), value: b"v1".to_vec() });
        assert!(decode(&bytes, consumed, epoch).is_none(), "bit flip must fail the checksum");
    }
}
