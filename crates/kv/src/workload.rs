//! A deterministic, zipf-skewed KV workload driver.
//!
//! The driver issues a seeded mix of puts, gets, deletes and range scans
//! against a [`KvStore`] and reports *application-level* latency percentiles,
//! split into the components an LSM user actually observes: memtable hits
//! (no device traffic), SSTable reads (bloom/index probes plus a bucket read)
//! and compaction stalls (the foreground flush+compaction time a write
//! absorbs). The same seed against the same FTL produces a bit-identical
//! [`KvRunSummary`], including the final SSTable layout fingerprint.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vflash_ftl::{ConventionalFtl, FlashTranslationLayer, FtlConfig};
use vflash_nand::{NandConfig, NandDevice, Nanos};
use vflash_ppb::{PpbConfig, PpbFtl};
use vflash_sim::{LatencyHistogram, LatencyPercentiles};
use vflash_trace::Zipf;

use crate::error::KvError;
use crate::flash_file::FlashStore;
use crate::store::{KvConfig, KvStore, LookupSource, TableLayout, WriteAmplification};

/// The operation mix, skew and scale of one KV workload run.
#[derive(Debug, Clone, PartialEq)]
pub struct KvWorkloadConfig {
    /// Operations to issue.
    pub ops: u64,
    /// Relative weight of puts in the mix.
    pub put_weight: u32,
    /// Relative weight of gets.
    pub get_weight: u32,
    /// Relative weight of deletes.
    pub delete_weight: u32,
    /// Relative weight of range scans.
    pub scan_weight: u32,
    /// Distinct keys; keys are 8-byte big-endian encodings of zipf ranks.
    pub key_space: usize,
    /// Value size in bytes.
    pub value_bytes: usize,
    /// Zipf exponent of the key-popularity skew (0 = uniform).
    pub zipf_s: f64,
    /// Keys covered by one range scan.
    pub scan_width: u32,
    /// RNG seed; same seed + same FTL = bit-identical summary.
    pub seed: u64,
    /// Device size in blocks, spread evenly across `device_chips` chips
    /// (64 pages per block, 4 KB pages).
    pub device_blocks: usize,
    /// Number of chips the device's blocks are spread across. Batched I/O
    /// (`KvConfig::io_depth > 1`) only overlaps across chips, so the default
    /// single-chip geometry gains nothing from batching — multi-chip runs do.
    pub device_chips: usize,
}

impl Default for KvWorkloadConfig {
    fn default() -> Self {
        KvWorkloadConfig {
            ops: 20_000,
            put_weight: 40,
            get_weight: 50,
            delete_weight: 5,
            scan_weight: 5,
            key_space: 10_000,
            value_bytes: 256,
            zipf_s: 0.99,
            scan_width: 20,
            seed: 42,
            device_blocks: 128,
            device_chips: 1,
        }
    }
}

impl KvWorkloadConfig {
    /// A fast configuration for tests, examples and CI smoke runs.
    pub fn smoke() -> Self {
        KvWorkloadConfig { ops: 3_000, key_space: 2_000, device_blocks: 96, ..Self::default() }
    }

    /// The device geometry the workload is sized for. `device_blocks` must be
    /// divisible by `device_chips` so every chip gets the same block count.
    pub fn device_config(&self) -> NandConfig {
        assert!(self.device_chips >= 1, "the device needs at least one chip");
        assert_eq!(
            self.device_blocks % self.device_chips,
            0,
            "device_blocks must divide evenly across device_chips"
        );
        NandConfig::builder()
            .chips(self.device_chips)
            .blocks_per_chip(self.device_blocks / self.device_chips)
            .pages_per_block(64)
            .page_size_bytes(4 * 1024)
            .build()
            .expect("workload device geometry is valid")
    }

    fn total_weight(&self) -> u32 {
        self.put_weight + self.get_weight + self.delete_weight + self.scan_weight
    }
}

/// The application-level result of one workload run. `PartialEq` so two runs
/// can be compared wholesale in determinism tests.
#[derive(Debug, Clone, PartialEq)]
pub struct KvRunSummary {
    /// The FTL the run executed against (`"conventional"` or `"ppb"`).
    pub ftl: String,
    /// Operations completed (short of the configured count only when the
    /// device went read-only).
    pub ops_completed: u64,
    /// Puts issued.
    pub puts: u64,
    /// Gets issued.
    pub gets: u64,
    /// Deletes issued.
    pub deletes: u64,
    /// Range scans issued.
    pub scans: u64,
    /// Latency of gets answered by the memtable (no device traffic).
    pub memtable_hit: LatencyPercentiles,
    /// Latency of gets that probed SSTables (bloom/index/bucket reads).
    pub sstable_read: LatencyPercentiles,
    /// Foreground flush + compaction time absorbed by the writes that
    /// triggered them (only stalled writes are recorded).
    pub compaction_stall: LatencyPercentiles,
    /// Total put latency (WAL append plus any stall).
    pub put_total: LatencyPercentiles,
    /// Writes that absorbed a flush/compaction stall.
    pub stalled_writes: u64,
    /// Memtable flushes performed.
    pub flushes: u64,
    /// Compactions performed.
    pub compactions: u64,
    /// Table probes skipped by bloom filters.
    pub bloom_skips: u64,
    /// Table probes that read from the device.
    pub table_reads: u64,
    /// Application, FTL and end-to-end write amplification.
    pub write_amplification: WriteAmplification,
    /// Total simulated device time.
    pub device_time: Nanos,
    /// Device time spent inside flushes, compaction included — the component
    /// batching shrinks on multi-chip geometry.
    pub flush_time: Nanos,
    /// Device time spent inside compactions (a subset of `flush_time`).
    pub compaction_time: Nanos,
    /// Batched submissions the FTL served (zero at `io_depth` 1).
    pub batched_submissions: u64,
    /// Page requests that went through the batched path.
    pub batched_pages: u64,
    /// True when the run stopped early because the device went read-only.
    pub read_only: bool,
    /// Final SSTable layout fingerprint (level, id, size, placement).
    pub layout: Vec<TableLayout>,
}

/// The Conventional-vs-PPB pair of one workload, run on identical devices with
/// identical seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct KvComparison {
    /// The run against the conventional (hotness-blind) FTL.
    pub conventional: KvRunSummary,
    /// The run against the PPB FTL.
    pub ppb: KvRunSummary,
}

/// Runs the workload against `store`, consuming it, and reports the
/// application-level summary. A device that turns read-only mid-run ends the
/// run cleanly (`read_only` set, partial counts reported) rather than erroring.
///
/// # Errors
///
/// I/O and corruption errors other than [`KvError::ReadOnly`] pass through.
pub fn run_kv_workload<F: FlashTranslationLayer>(
    store: FlashStore<F>,
    kv_config: KvConfig,
    workload: &KvWorkloadConfig,
) -> Result<KvRunSummary, KvError> {
    assert!(workload.total_weight() > 0, "the operation mix must have positive weight");
    let ftl_name = store.ftl().name().to_string();
    let mut kv = KvStore::open(store, kv_config)?;
    let mut rng = StdRng::seed_from_u64(workload.seed);
    let zipf = Zipf::new(workload.key_space, workload.zipf_s);

    let mut memtable_hit = LatencyHistogram::new();
    let mut sstable_read = LatencyHistogram::new();
    let mut compaction_stall = LatencyHistogram::new();
    let mut put_total = LatencyHistogram::new();
    let mut stalled_writes = 0u64;
    let mut ops_completed = 0u64;
    let mut read_only = false;

    let put_cut = workload.put_weight;
    let get_cut = put_cut + workload.get_weight;
    let delete_cut = get_cut + workload.delete_weight;

    for _ in 0..workload.ops {
        let rank = zipf.sample(&mut rng) as u64;
        let key = rank.to_be_bytes();
        let draw = rng.gen_range(0..workload.total_weight());
        let result: Result<(), KvError> = if draw < put_cut {
            let fill = rng.gen::<u8>();
            let value = vec![fill; workload.value_bytes];
            kv.put(&key, &value).map(|receipt| {
                put_total.record(receipt.log_time + receipt.stall_time);
                if receipt.stall_time > Nanos::ZERO {
                    stalled_writes += 1;
                    compaction_stall.record(receipt.stall_time);
                }
            })
        } else if draw < get_cut {
            kv.get(&key).map(|lookup| {
                match lookup.source {
                    LookupSource::Memtable => memtable_hit.record(lookup.time),
                    LookupSource::SsTable | LookupSource::Miss => {
                        sstable_read.record(lookup.time);
                    }
                }
            })
        } else if draw < delete_cut {
            kv.delete(&key).map(|receipt| {
                put_total.record(receipt.log_time + receipt.stall_time);
                if receipt.stall_time > Nanos::ZERO {
                    stalled_writes += 1;
                    compaction_stall.record(receipt.stall_time);
                }
            })
        } else {
            let hi = (rank + u64::from(workload.scan_width)).to_be_bytes();
            kv.scan(&key, &hi).map(|_| ())
        };
        match result {
            Ok(()) => ops_completed += 1,
            Err(KvError::ReadOnly) => {
                read_only = true;
                break;
            }
            Err(error) => return Err(error),
        }
    }
    if !read_only {
        match kv.flush() {
            Ok(()) | Err(KvError::ReadOnly) => {}
            Err(error) => return Err(error),
        }
    }

    let stats = *kv.stats();
    let ftl_metrics = *kv.flash().ftl().metrics();
    Ok(KvRunSummary {
        ftl: ftl_name,
        ops_completed,
        puts: stats.puts,
        gets: stats.gets,
        deletes: stats.deletes,
        scans: stats.scans,
        memtable_hit: memtable_hit.percentiles(),
        sstable_read: sstable_read.percentiles(),
        compaction_stall: compaction_stall.percentiles(),
        put_total: put_total.percentiles(),
        stalled_writes,
        flushes: stats.flushes,
        compactions: stats.compactions,
        bloom_skips: stats.bloom_skips,
        table_reads: stats.table_reads,
        write_amplification: kv.write_amplification(),
        device_time: kv.device_clock(),
        flush_time: stats.flush_time,
        compaction_time: stats.compaction_time,
        batched_submissions: ftl_metrics.batched_submissions,
        batched_pages: ftl_metrics.batched_pages,
        read_only,
        layout: kv.layout(),
    })
}

/// Runs the same workload (same geometry, same seed) against a conventional
/// FTL and against PPB, so flush/compaction traffic exercises both placement
/// policies identically from the application side.
///
/// # Errors
///
/// FTL construction and run errors pass through.
pub fn compare_conventional_vs_ppb(
    kv_config: KvConfig,
    workload: &KvWorkloadConfig,
) -> Result<KvComparison, KvError> {
    let nand = workload.device_config();
    let conventional = {
        let ftl = ConventionalFtl::new(NandDevice::new(nand.clone()), FtlConfig::default())?;
        run_kv_workload(FlashStore::new(ftl), kv_config, workload)?
    };
    let ppb = {
        let ftl = PpbFtl::new(NandDevice::new(nand), PpbConfig::default())?;
        run_kv_workload(FlashStore::new(ftl), kv_config, workload)?
    };
    Ok(KvComparison { conventional, ppb })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_reports_activity_on_both_ftls() {
        let comparison =
            compare_conventional_vs_ppb(KvConfig::default(), &KvWorkloadConfig::smoke()).unwrap();
        for summary in [&comparison.conventional, &comparison.ppb] {
            assert_eq!(summary.ops_completed, KvWorkloadConfig::smoke().ops);
            assert!(summary.flushes > 0, "{}: no flushes", summary.ftl);
            assert!(summary.memtable_hit.p50 >= Nanos::ZERO);
            assert!(summary.sstable_read.p99 > Nanos::ZERO, "{}: no table reads", summary.ftl);
            assert!(summary.write_amplification.app > 1.0);
            assert!(!summary.read_only);
            assert!(!summary.layout.is_empty());
        }
        assert_eq!(comparison.conventional.ftl, "conventional");
        assert_eq!(comparison.ppb.ftl, "ppb");
    }

    #[test]
    fn same_seed_same_ftl_is_bit_identical() {
        let workload = KvWorkloadConfig::smoke();
        let run = || {
            let ftl = ConventionalFtl::new(
                NandDevice::new(workload.device_config()),
                FtlConfig::default(),
            )
            .unwrap();
            run_kv_workload(FlashStore::new(ftl), KvConfig::default(), &workload).unwrap()
        };
        assert_eq!(run(), run(), "same seed + same FTL must be deterministic");
    }

    #[test]
    fn batching_halves_flush_and_compaction_time_on_four_chips() {
        let workload = KvWorkloadConfig { device_chips: 4, ..KvWorkloadConfig::smoke() };
        let run = |io_depth: usize| {
            let ftl = ConventionalFtl::new(
                NandDevice::new(workload.device_config()),
                FtlConfig::default(),
            )
            .unwrap();
            let kv_config = KvConfig { io_depth, ..KvConfig::default() };
            run_kv_workload(FlashStore::new(ftl), kv_config, &workload).unwrap()
        };
        let serial = run(1);
        let batched = run(16);
        // Placement, counts and amplification are untouched by batching.
        assert_eq!(serial.layout, batched.layout, "batching must not move any table");
        assert_eq!(serial.flushes, batched.flushes);
        assert_eq!(serial.compactions, batched.compactions);
        assert_eq!(serial.write_amplification, batched.write_amplification);
        assert_eq!(serial.batched_pages, 0, "depth 1 is the scalar path");
        assert!(batched.batched_pages > 0);
        // The acceptance bar: flush+compaction device time at least halves.
        assert!(
            serial.flush_time >= batched.flush_time * 2,
            "4 chips at depth 16 must cut flush+compaction device time >= 2x \
             (serial {}, batched {})",
            serial.flush_time,
            batched.flush_time
        );
        assert!(batched.device_time < serial.device_time);
    }

    #[test]
    fn io_depth_one_matches_the_pre_batching_summaries_bit_for_bit() {
        // KvConfig::default() pins io_depth 1, so a default-config run takes
        // exactly the scalar path the pre-batching store took: same clock,
        // same layout, zero batched pages.
        assert_eq!(KvConfig::default().io_depth, 1);
        let workload = KvWorkloadConfig::smoke();
        let run = |kv_config: KvConfig| {
            let ftl = ConventionalFtl::new(
                NandDevice::new(workload.device_config()),
                FtlConfig::default(),
            )
            .unwrap();
            run_kv_workload(FlashStore::new(ftl), kv_config, &workload).unwrap()
        };
        let default_run = run(KvConfig::default());
        let explicit_depth_one = run(KvConfig { io_depth: 1, ..KvConfig::default() });
        assert_eq!(default_run, explicit_depth_one);
        assert_eq!(default_run.batched_pages, 0);
        assert_eq!(default_run.batched_submissions, 0);
    }

    #[test]
    fn different_seeds_diverge() {
        let workload = KvWorkloadConfig::smoke();
        let with_seed = |seed: u64| {
            let ftl = ConventionalFtl::new(
                NandDevice::new(workload.device_config()),
                FtlConfig::default(),
            )
            .unwrap();
            run_kv_workload(
                FlashStore::new(ftl),
                KvConfig::default(),
                &KvWorkloadConfig { seed, ..workload.clone() },
            )
            .unwrap()
        };
        assert_ne!(with_seed(1).device_time, with_seed(2).device_time);
    }
}
