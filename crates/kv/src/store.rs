//! The LSM store: memtable + WAL + leveled SSTables over a [`FlashStore`].
//!
//! Write path: every put/delete is appended to the WAL (small, hot device
//! writes), then buffered in the memtable. When the memtable crosses its byte
//! threshold — or the WAL region would overflow — the memtable is flushed as a
//! new L0 table (one bulk, cold device write) and compaction runs: L0 merges
//! into L1 once it holds `l0_compaction_trigger` tables, and each deeper level
//! spills into the next once it exceeds `level_base_bytes ×
//! level_size_multiplier^(n-1)`.
//!
//! Durability is manifest-based, modeled after LevelDB's VERSION/CURRENT pair:
//! every flush writes a fresh manifest file (WAL epoch, table metadata, extent
//! lists) and then the fixed-LPN superblock pointing at it — the superblock
//! program is the commit point. Extents freed by a flush (compaction inputs,
//! the previous manifest) are only returned to the allocator *after* the
//! superblock commits, so a crash at any intermediate point recovers a
//! consistent store: the old superblock still references intact files, and the
//! WAL's epoch check replays exactly the committed operations since the last
//! flush.

use std::collections::BTreeMap;

use vflash_ftl::FlashTranslationLayer;
use vflash_nand::Nanos;

use crate::error::KvError;
use crate::flash_file::{Extent, FlashStore, SegmentFile};
use crate::hash::fnv1a;
use crate::memtable::Memtable;
use crate::sstable::{Entry, TableHandle, TableMeta, TableOptions, TableProbe};
use crate::wal::{Wal, WalOp};

const MANIFEST_MAGIC: u64 = 0x564b_4d41_4e49_4631; // "VKMANIF1"
const SUPERBLOCK_MAGIC: u64 = 0x564b_5355_5045_5231; // "VKSUPER1"

/// Tuning knobs of a [`KvStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvConfig {
    /// Memtable byte threshold: a put that pushes the buffered size to or past
    /// this flushes.
    pub memtable_bytes: usize,
    /// WAL region size in pages; `0` sizes it automatically to hold roughly
    /// four memtables' worth of records.
    pub wal_pages: u64,
    /// Number of L0 tables that triggers an L0 → L1 compaction.
    pub l0_compaction_trigger: usize,
    /// Byte capacity of L1; each deeper level multiplies this by
    /// [`KvConfig::level_size_multiplier`].
    pub level_base_bytes: u64,
    /// Level-to-level capacity ratio.
    pub level_size_multiplier: u64,
    /// Target data-section size of one compaction output table.
    pub target_table_bytes: u64,
    /// Queue depth for multi-page device I/O. At 1 (the default) every page
    /// goes through scalar `submit` — the serial path, bit-identical to a
    /// store without batching. Deeper, SSTable builds, compaction streams, WAL
    /// recovery scans and range scans submit up to `io_depth` pages per
    /// [`submit_batch`](vflash_ftl::FlashTranslationLayer::submit_batch) call
    /// and are charged the chip-parallel makespan instead of the serial sum.
    pub io_depth: usize,
    /// Bloom filter budget in bits per key for freshly built tables.
    pub bloom_bits_per_key: usize,
    /// Sparse-index stride for freshly built tables: every n-th entry is
    /// indexed. Stride 1 indexes every entry.
    pub sparse_index_interval: usize,
}

impl Default for KvConfig {
    fn default() -> Self {
        let table_defaults = TableOptions::default();
        KvConfig {
            memtable_bytes: 64 << 10,
            wal_pages: 0,
            l0_compaction_trigger: 4,
            level_base_bytes: 512 << 10,
            level_size_multiplier: 4,
            target_table_bytes: 128 << 10,
            io_depth: 1,
            bloom_bits_per_key: table_defaults.bloom_bits_per_key,
            sparse_index_interval: table_defaults.sparse_index_interval,
        }
    }
}

impl KvConfig {
    /// Panics when a knob is out of its sane range (misconfiguration is a
    /// programming error, not a runtime condition).
    pub fn validate(&self) {
        assert!(self.memtable_bytes > 0, "memtable_bytes must be positive");
        assert!(self.l0_compaction_trigger >= 2, "l0_compaction_trigger must be at least 2");
        assert!(self.level_base_bytes > 0, "level_base_bytes must be positive");
        assert!(self.level_size_multiplier >= 2, "level_size_multiplier must be at least 2");
        assert!(self.target_table_bytes > 0, "target_table_bytes must be positive");
        assert!(self.io_depth >= 1, "io_depth must be at least 1");
        assert!(self.bloom_bits_per_key >= 1, "bloom_bits_per_key must be at least 1");
        assert!(self.sparse_index_interval >= 1, "sparse_index_interval must be at least 1");
    }

    /// The table-construction knobs carried by this configuration.
    pub fn table_options(&self) -> TableOptions {
        TableOptions {
            bloom_bits_per_key: self.bloom_bits_per_key,
            sparse_index_interval: self.sparse_index_interval,
        }
    }

    /// The WAL region size in pages, resolving the `0` = automatic setting.
    pub fn wal_region_pages(&self, page_size: usize) -> u64 {
        if self.wal_pages > 0 {
            self.wal_pages
        } else {
            (4 * self.memtable_bytes as u64).div_ceil(page_size as u64).max(4)
        }
    }
}

/// Operation counters and accumulated device time of a [`KvStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KvStats {
    /// Puts accepted.
    pub puts: u64,
    /// Deletes accepted.
    pub deletes: u64,
    /// Gets served.
    pub gets: u64,
    /// Range scans served.
    pub scans: u64,
    /// Gets answered (value or tombstone) by the memtable.
    pub memtable_hits: u64,
    /// Gets answered with a value read from an SSTable.
    pub sstable_hits: u64,
    /// Gets that returned no value (tombstone or never written).
    pub misses: u64,
    /// Table probes skipped by the bloom filter (no device traffic).
    pub bloom_skips: u64,
    /// Table probes that read an index bucket from the device.
    pub table_reads: u64,
    /// Memtable flushes (each builds one L0 table).
    pub flushes: u64,
    /// Flushes forced by WAL-region overflow rather than the memtable threshold.
    pub wal_forced_flushes: u64,
    /// Compactions run (any level).
    pub compactions: u64,
    /// Application payload bytes accepted: key + value per put, key per delete.
    pub app_bytes_written: u64,
    /// Device time spent inside flushes (compaction time included).
    pub flush_time: Nanos,
    /// Device time spent inside compactions (a subset of
    /// [`KvStats::flush_time`]).
    pub compaction_time: Nanos,
}

/// Where a get terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupSource {
    /// Answered (value or tombstone) by the memtable — no device traffic.
    Memtable,
    /// Answered (value or tombstone) by an SSTable read.
    SsTable,
    /// Fell through every table: the key was never written.
    Miss,
}

/// The result of a get: the value (if any), where the lookup terminated, and
/// the device time it cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lookup {
    /// The value, or `None` for a tombstone or an absent key.
    pub value: Option<Vec<u8>>,
    /// Where the lookup terminated.
    pub source: LookupSource,
    /// Device time charged to this get.
    pub time: Nanos,
}

/// The result of a put/delete: the WAL-append device time and any
/// flush/compaction stall it absorbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteReceipt {
    /// Device time of the WAL append itself.
    pub log_time: Nanos,
    /// Device time of any flush and compaction this write triggered (zero for
    /// most writes — this is the foreground stall an application observes).
    pub stall_time: Nanos,
}

/// One table's position in the tree — the store's layout fingerprint for
/// determinism checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableLayout {
    /// Level index (0 = newest).
    pub level: usize,
    /// Table creation sequence number.
    pub id: u64,
    /// Entry count.
    pub entries: u64,
    /// Data-section byte length.
    pub data_len: u64,
    /// First backing LPN.
    pub first_lpn: u64,
}

/// The three write-amplification factors of the full stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriteAmplification {
    /// Application-level WA: host page-write bytes (WAL + flush + compaction +
    /// metadata) per application payload byte.
    pub app: f64,
    /// FTL-level WA: physical page programs (GC copies and rescues included)
    /// per host page write.
    pub ftl: f64,
    /// End-to-end WA: physical page-write bytes per application payload byte —
    /// exactly `app × ftl`.
    pub end_to_end: f64,
}

/// An LSM key-value store over a flash device.
#[derive(Debug)]
pub struct KvStore<F: FlashTranslationLayer> {
    store: FlashStore<F>,
    config: KvConfig,
    memtable: Memtable,
    wal: Wal,
    manifest: Option<SegmentFile>,
    /// `levels[0]` is L0, newest table first; deeper levels are sorted
    /// non-overlapping runs.
    levels: Vec<Vec<TableHandle>>,
    next_table_id: u64,
    /// Extents obsoleted since the last superblock commit; returned to the
    /// allocator only after the next commit so a crash never finds the old
    /// manifest pointing at overwritten pages.
    pending_free: Vec<Extent>,
    stats: KvStats,
}

impl<F: FlashTranslationLayer> KvStore<F> {
    /// Opens a store on `store`: recovers from the superblock when one exists,
    /// otherwise formats the device (reserving the WAL region and committing an
    /// empty manifest).
    ///
    /// # Errors
    ///
    /// Allocation, I/O and decode errors pass through.
    pub fn open(mut store: FlashStore<F>, config: KvConfig) -> Result<Self, KvError> {
        config.validate();
        // Recovery scans (manifest, index/bloom sections, WAL prefix) batch at
        // the configured depth too, so set it before touching the device.
        store.set_io_depth(config.io_depth);
        if store.has_superblock() {
            Self::recover(store, config)
        } else {
            Self::format(store, config)
        }
    }

    fn format(mut store: FlashStore<F>, config: KvConfig) -> Result<Self, KvError> {
        let mut wal_file = SegmentFile::new();
        let pages = config.wal_region_pages(store.page_size());
        store.reserve(&mut wal_file, pages)?;
        let mut kv = KvStore {
            store,
            config,
            memtable: Memtable::new(),
            wal: Wal::new(wal_file, 1),
            manifest: None,
            levels: Vec::new(),
            next_table_id: 1,
            pending_free: Vec::new(),
            stats: KvStats::default(),
        };
        kv.write_manifest()?;
        Ok(kv)
    }

    fn recover(mut store: FlashStore<F>, config: KvConfig) -> Result<Self, KvError> {
        let superblock = store.read_superblock()?;
        let mut cursor = Cursor::new(&superblock);
        if cursor.u64()? != SUPERBLOCK_MAGIC {
            return Err(KvError::Corruption("bad superblock magic".to_string()));
        }
        let manifest_extents = cursor.extents()?;
        let manifest_len = cursor.u64()?;
        let payload_end = cursor.at;
        if cursor.u64()? != fnv1a(&superblock[..payload_end], 0) {
            return Err(KvError::Corruption("superblock checksum mismatch".to_string()));
        }
        let manifest_file = SegmentFile::from_parts(manifest_extents, manifest_len);
        let manifest_bytes = store.read_range(&manifest_file, 0, manifest_len as usize)?;
        let manifest = decode_manifest(&manifest_bytes)?;

        // The manifest is the source of truth for live extents; anything
        // allocated after it was committed (a half-built table from a crashed
        // flush) silently returns to the pool.
        let mut used: Vec<Extent> = Vec::new();
        used.extend_from_slice(manifest_file.extents());
        used.extend_from_slice(manifest.wal_file.extents());
        for level in &manifest.levels {
            for meta in level {
                used.extend_from_slice(meta.file.extents());
            }
        }
        store.reset_allocator(&used);

        let mut levels = Vec::with_capacity(manifest.levels.len());
        for level in manifest.levels {
            let mut run = Vec::with_capacity(level.len());
            for meta in level {
                run.push(TableHandle::recover(&mut store, meta)?);
            }
            levels.push(run);
        }

        let (ops, consumed) = Wal::replay(&mut store, &manifest.wal_file, manifest.wal_epoch)?;
        let mut memtable = Memtable::new();
        for op in ops {
            match op {
                WalOp::Put { key, value } => memtable.insert(key, Some(value)),
                WalOp::Delete { key } => memtable.insert(key, None),
            }
        }
        // Resume appending right after the committed prefix, same epoch: the
        // replayed operations stay WAL-protected without a flush.
        let wal_file = SegmentFile::from_parts(manifest.wal_file.extents().to_vec(), consumed);
        Ok(KvStore {
            store,
            config,
            memtable,
            wal: Wal::new(wal_file, manifest.wal_epoch),
            manifest: Some(manifest_file),
            levels,
            next_table_id: manifest.next_table_id,
            pending_free: Vec::new(),
            stats: KvStats::default(),
        })
    }

    /// Inserts or overwrites `key`.
    ///
    /// # Errors
    ///
    /// [`KvError::ReadOnly`] once the device is worn out, [`KvError::OutOfSpace`]
    /// when neither the WAL nor a flush can make room; I/O errors pass through.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<WriteReceipt, KvError> {
        self.stats.puts += 1;
        self.write_op(WalOp::Put { key: key.to_vec(), value: value.to_vec() })
    }

    /// Deletes `key` (writes a tombstone; absent keys are fine).
    ///
    /// # Errors
    ///
    /// As for [`KvStore::put`].
    pub fn delete(&mut self, key: &[u8]) -> Result<WriteReceipt, KvError> {
        self.stats.deletes += 1;
        self.write_op(WalOp::Delete { key: key.to_vec() })
    }

    fn write_op(&mut self, op: WalOp) -> Result<WriteReceipt, KvError> {
        let start = self.store.clock();
        if self.wal.would_overflow(&op, self.store.page_size()) {
            self.stats.wal_forced_flushes += 1;
            self.flush()?;
            if self.wal.would_overflow(&op, self.store.page_size()) {
                // A single record larger than the whole region can never fit.
                return Err(KvError::OutOfSpace);
            }
        }
        let before_append = self.store.clock();
        self.wal.append(&mut self.store, &op)?;
        let log_time = self.store.clock() - before_append;
        let (key, value) = match op {
            WalOp::Put { key, value } => {
                self.stats.app_bytes_written += (key.len() + value.len()) as u64;
                (key, Some(value))
            }
            WalOp::Delete { key } => {
                self.stats.app_bytes_written += key.len() as u64;
                (key, None)
            }
        };
        self.memtable.insert(key, value);
        if self.memtable.bytes() >= self.config.memtable_bytes {
            self.flush()?;
        }
        let total = self.store.clock() - start;
        Ok(WriteReceipt { log_time, stall_time: total - log_time })
    }

    /// Looks up `key`.
    ///
    /// # Errors
    ///
    /// Read and decode errors pass through.
    pub fn get(&mut self, key: &[u8]) -> Result<Lookup, KvError> {
        self.stats.gets += 1;
        let start = self.store.clock();
        if let Some(entry) = self.memtable.get(key) {
            let value = entry.clone();
            if value.is_some() {
                self.stats.memtable_hits += 1;
            } else {
                self.stats.misses += 1;
            }
            return Ok(Lookup {
                value,
                source: LookupSource::Memtable,
                time: self.store.clock() - start,
            });
        }
        let KvStore { store, levels, stats, .. } = self;
        // L0 newest table first, then each deeper level (at most one candidate
        // per sorted run; the range check skips the rest for free).
        for run in levels.iter() {
            for table in run {
                let (found, probe) = table.get(store, key)?;
                match probe {
                    TableProbe::BloomSkip => stats.bloom_skips += 1,
                    TableProbe::Read => stats.table_reads += 1,
                    TableProbe::RangeSkip => {}
                }
                if let Some(value) = found {
                    if value.is_some() {
                        stats.sstable_hits += 1;
                    } else {
                        stats.misses += 1;
                    }
                    return Ok(Lookup {
                        value,
                        source: LookupSource::SsTable,
                        time: store.clock() - start,
                    });
                }
            }
        }
        stats.misses += 1;
        Ok(Lookup { value: None, source: LookupSource::Miss, time: store.clock() - start })
    }

    /// Returns every live key/value pair with key in `[lo, hi)`, in key order.
    /// Tombstones and shadowed versions are resolved; deleted keys do not
    /// appear.
    ///
    /// # Errors
    ///
    /// Read and decode errors pass through.
    pub fn scan(&mut self, lo: &[u8], hi: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>, KvError> {
        self.stats.scans += 1;
        let mut merged: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        let KvStore { store, levels, memtable, .. } = self;
        // Deepest (oldest) data first; newer layers overwrite on insert.
        for run in levels.iter().skip(1).rev() {
            for table in run {
                for (key, value) in table.scan_range(store, lo, hi)? {
                    merged.insert(key, value);
                }
            }
        }
        if let Some(l0) = levels.first() {
            for table in l0.iter().rev() {
                for (key, value) in table.scan_range(store, lo, hi)? {
                    merged.insert(key, value);
                }
            }
        }
        for (key, value) in memtable.range(lo, hi) {
            merged.insert(key.clone(), value.clone());
        }
        Ok(merged.into_iter().filter_map(|(key, value)| value.map(|v| (key, v))).collect())
    }

    /// Flushes the memtable to a new L0 table, runs any due compactions and
    /// commits a fresh manifest. A no-op when nothing is buffered.
    ///
    /// # Errors
    ///
    /// Build and commit errors pass through (the WAL still protects the
    /// drained operations until the commit succeeds).
    pub fn flush(&mut self) -> Result<(), KvError> {
        if self.memtable.is_empty() && self.wal.file().is_empty() {
            return Ok(());
        }
        let start = self.store.clock();
        if !self.memtable.is_empty() {
            let entries = self.memtable.drain_sorted();
            let id = self.next_table_id;
            self.next_table_id += 1;
            let table =
                TableHandle::build(&mut self.store, id, &entries, self.config.table_options())?;
            if self.levels.is_empty() {
                self.levels.push(Vec::new());
            }
            self.levels[0].insert(0, table);
            self.stats.flushes += 1;
            self.maybe_compact()?;
        }
        self.wal.reset();
        self.write_manifest()?;
        self.stats.flush_time += self.store.clock() - start;
        Ok(())
    }

    fn maybe_compact(&mut self) -> Result<(), KvError> {
        if self.levels[0].len() >= self.config.l0_compaction_trigger {
            self.compact_level(0)?;
        }
        let mut level = 1;
        while level < self.levels.len() {
            if !self.levels[level].is_empty() && self.level_bytes(level) > self.level_capacity(level)
            {
                self.compact_level(level)?;
            }
            level += 1;
        }
        while self.levels.last().is_some_and(Vec::is_empty) {
            self.levels.pop();
        }
        Ok(())
    }

    fn level_bytes(&self, level: usize) -> u64 {
        self.levels[level].iter().map(|table| table.meta.data_len).sum()
    }

    fn level_capacity(&self, level: usize) -> u64 {
        let mut capacity = self.config.level_base_bytes;
        for _ in 1..level {
            capacity = capacity.saturating_mul(self.config.level_size_multiplier);
        }
        capacity
    }

    /// Merges every table of `level` and `level + 1` into a fresh sorted run at
    /// `level + 1`.
    fn compact_level(&mut self, level: usize) -> Result<(), KvError> {
        let start = self.store.clock();
        if self.levels.len() <= level + 1 {
            self.levels.push(Vec::new());
        }
        let sources = std::mem::take(&mut self.levels[level]);
        let targets = std::mem::take(&mut self.levels[level + 1]);
        let mut merged: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        for table in &targets {
            for (key, value) in table.entries(&mut self.store)? {
                merged.insert(key, value);
            }
        }
        // L0 is newest-first; feed oldest first so the newest version wins.
        for table in sources.iter().rev() {
            for (key, value) in table.entries(&mut self.store)? {
                merged.insert(key, value);
            }
        }
        // Tombstones are dropped once the output is the bottom of the tree —
        // nothing older exists for them to shadow.
        let bottom = self.levels.iter().skip(level + 2).all(Vec::is_empty);
        let entries: Vec<Entry> = merged
            .into_iter()
            .filter(|(_, value)| !(bottom && value.is_none()))
            .collect();
        let mut run = Vec::new();
        for chunk in split_for_tables(&entries, self.config.target_table_bytes) {
            let id = self.next_table_id;
            self.next_table_id += 1;
            run.push(TableHandle::build(&mut self.store, id, chunk, self.config.table_options())?);
        }
        self.levels[level + 1] = run;
        for table in sources.into_iter().chain(targets) {
            self.pending_free.extend_from_slice(table.meta.file.extents());
        }
        self.stats.compactions += 1;
        self.stats.compaction_time += self.store.clock() - start;
        Ok(())
    }

    /// Writes the manifest, commits it via the superblock, then releases every
    /// extent obsoleted since the previous commit.
    fn write_manifest(&mut self) -> Result<(), KvError> {
        let bytes = self.encode_manifest();
        let mut file = SegmentFile::new();
        let request_bytes = u32::try_from(bytes.len()).unwrap_or(u32::MAX);
        self.store.append(&mut file, &bytes, request_bytes)?;
        let mut superblock = Vec::with_capacity(64);
        superblock.extend_from_slice(&SUPERBLOCK_MAGIC.to_le_bytes());
        put_extents(&mut superblock, file.extents());
        superblock.extend_from_slice(&file.len().to_le_bytes());
        let checksum = fnv1a(&superblock, 0);
        superblock.extend_from_slice(&checksum.to_le_bytes());
        self.store.write_superblock(&superblock)?; // the commit point
        if let Some(old) = self.manifest.replace(file) {
            self.pending_free.extend_from_slice(old.extents());
        }
        let pending = std::mem::take(&mut self.pending_free);
        self.store.free_extents(&pending);
        Ok(())
    }

    fn encode_manifest(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MANIFEST_MAGIC.to_le_bytes());
        out.extend_from_slice(&self.wal.epoch().to_le_bytes());
        put_extents(&mut out, self.wal.file().extents());
        out.extend_from_slice(&self.next_table_id.to_le_bytes());
        out.extend_from_slice(&(self.levels.len() as u32).to_le_bytes());
        for run in &self.levels {
            out.extend_from_slice(&(run.len() as u32).to_le_bytes());
            for table in run {
                let meta = &table.meta;
                out.extend_from_slice(&meta.id.to_le_bytes());
                out.extend_from_slice(&meta.entries.to_le_bytes());
                out.extend_from_slice(&meta.data_len.to_le_bytes());
                out.extend_from_slice(&meta.index_off.to_le_bytes());
                out.extend_from_slice(&meta.bloom_off.to_le_bytes());
                out.extend_from_slice(&meta.file.len().to_le_bytes());
                put_extents(&mut out, meta.file.extents());
                put_key(&mut out, &meta.min_key);
                put_key(&mut out, &meta.max_key);
            }
        }
        let checksum = fnv1a(&out, 0);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// The store's table layout — a compact fingerprint for determinism
    /// checks: two runs with equal layouts placed their data identically.
    pub fn layout(&self) -> Vec<TableLayout> {
        self.levels
            .iter()
            .enumerate()
            .flat_map(|(level, run)| {
                run.iter().map(move |table| TableLayout {
                    level,
                    id: table.meta.id,
                    entries: table.meta.entries,
                    data_len: table.meta.data_len,
                    first_lpn: table.meta.file.lpn_at(0).unwrap_or(0),
                })
            })
            .collect()
    }

    /// Operation counters and accumulated times.
    pub fn stats(&self) -> &KvStats {
        &self.stats
    }

    /// The store's configuration.
    pub fn config(&self) -> &KvConfig {
        &self.config
    }

    /// The simulated device clock (total completion latency accumulated).
    pub fn device_clock(&self) -> Nanos {
        self.store.clock()
    }

    /// The underlying flash store (FTL metrics, I/O counters).
    pub fn flash(&self) -> &FlashStore<F> {
        &self.store
    }

    /// Number of populated levels (L0 included).
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Simulates a crash: drops all in-memory state (memtable, table handles,
    /// allocator) and returns the device as it stands. Re-opening a store on
    /// the returned [`FlashStore`] exercises the recovery path.
    pub fn crash(self) -> FlashStore<F> {
        self.store
    }

    /// The three write-amplification factors of the stack so far. The
    /// application and FTL factors multiply exactly to the end-to-end factor.
    pub fn write_amplification(&self) -> WriteAmplification {
        let metrics = self.store.ftl().metrics();
        let page = self.store.page_size() as f64;
        let app_bytes = self.stats.app_bytes_written as f64;
        let host_bytes = metrics.host_writes as f64 * page;
        let physical_bytes = metrics.physical_page_writes() as f64 * page;
        WriteAmplification {
            app: if app_bytes > 0.0 { host_bytes / app_bytes } else { 0.0 },
            ftl: metrics.relocation_write_amplification(),
            end_to_end: if app_bytes > 0.0 { physical_bytes / app_bytes } else { 0.0 },
        }
    }
}

/// Splits a sorted entry list into consecutive chunks whose encoded
/// data-section size stays at or under `target` bytes (a chunk always takes at
/// least one entry).
fn split_for_tables(entries: &[Entry], target: u64) -> Vec<&[Entry]> {
    let mut chunks = Vec::new();
    let mut start = 0usize;
    let mut bytes = 0u64;
    for (position, (key, value)) in entries.iter().enumerate() {
        let encoded = 7 + key.len() as u64 + value.as_ref().map_or(0, Vec::len) as u64;
        if bytes > 0 && bytes + encoded > target {
            chunks.push(&entries[start..position]);
            start = position;
            bytes = 0;
        }
        bytes += encoded;
    }
    if start < entries.len() {
        chunks.push(&entries[start..]);
    }
    chunks
}

fn put_extents(out: &mut Vec<u8>, extents: &[Extent]) {
    out.extend_from_slice(&(extents.len() as u32).to_le_bytes());
    for extent in extents {
        out.extend_from_slice(&extent.start.to_le_bytes());
        out.extend_from_slice(&extent.pages.to_le_bytes());
    }
}

fn put_key(out: &mut Vec<u8>, key: &[u8]) {
    out.extend_from_slice(&(key.len() as u16).to_le_bytes());
    out.extend_from_slice(key);
}

/// A decoded manifest.
struct Manifest {
    wal_epoch: u32,
    wal_file: SegmentFile,
    next_table_id: u64,
    levels: Vec<Vec<TableMeta>>,
}

fn decode_manifest(bytes: &[u8]) -> Result<Manifest, KvError> {
    if bytes.len() < 8 {
        return Err(KvError::Corruption("truncated manifest".to_string()));
    }
    let (payload, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().expect("eight bytes were split off"));
    if fnv1a(payload, 0) != stored {
        return Err(KvError::Corruption("manifest checksum mismatch".to_string()));
    }
    let mut cursor = Cursor::new(payload);
    if cursor.u64()? != MANIFEST_MAGIC {
        return Err(KvError::Corruption("bad manifest magic".to_string()));
    }
    let wal_epoch = cursor.u32()?;
    let wal_extents = cursor.extents()?;
    let next_table_id = cursor.u64()?;
    let level_count = cursor.u32()? as usize;
    let mut levels = Vec::with_capacity(level_count);
    for _ in 0..level_count {
        let table_count = cursor.u32()? as usize;
        let mut run = Vec::with_capacity(table_count);
        for _ in 0..table_count {
            let id = cursor.u64()?;
            let entries = cursor.u64()?;
            let data_len = cursor.u64()?;
            let index_off = cursor.u64()?;
            let bloom_off = cursor.u64()?;
            let file_len = cursor.u64()?;
            let extents = cursor.extents()?;
            let min_key = cursor.key()?;
            let max_key = cursor.key()?;
            run.push(TableMeta {
                id,
                file: SegmentFile::from_parts(extents, file_len),
                entries,
                data_len,
                index_off,
                bloom_off,
                min_key,
                max_key,
            });
        }
        levels.push(run);
    }
    Ok(Manifest {
        wal_epoch,
        wal_file: SegmentFile::from_parts(wal_extents, 0),
        next_table_id,
        levels,
    })
}

/// A bounds-checked little-endian reader over a metadata block.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, at: 0 }
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], KvError> {
        let end = self
            .at
            .checked_add(len)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| KvError::Corruption("truncated metadata block".to_string()))?;
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u16(&mut self) -> Result<u16, KvError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("two bytes")))
    }

    fn u32(&mut self) -> Result<u32, KvError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("four bytes")))
    }

    fn u64(&mut self) -> Result<u64, KvError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("eight bytes")))
    }

    fn key(&mut self) -> Result<Vec<u8>, KvError> {
        let len = self.u16()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn extents(&mut self) -> Result<Vec<Extent>, KvError> {
        let count = self.u32()? as usize;
        // An extent list longer than the block itself is corruption, not an
        // allocation request.
        if count > self.bytes.len() / 16 + 1 {
            return Err(KvError::Corruption("oversized extent list".to_string()));
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let start = self.u64()?;
            let pages = self.u64()?;
            out.push(Extent { start, pages });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vflash_ftl::{ConventionalFtl, FtlConfig};
    use vflash_nand::{NandConfig, NandDevice};

    fn flash() -> FlashStore<ConventionalFtl> {
        let device = NandDevice::new(NandConfig::small());
        FlashStore::new(ConventionalFtl::new(device, FtlConfig::default()).unwrap())
    }

    fn small_config() -> KvConfig {
        KvConfig {
            memtable_bytes: 2 << 10,
            level_base_bytes: 8 << 10,
            target_table_bytes: 4 << 10,
            ..KvConfig::default()
        }
    }

    fn key(i: u32) -> Vec<u8> {
        format!("key{i:06}").into_bytes()
    }

    #[test]
    fn put_get_delete_scan_round_trip_through_flushes() {
        let mut kv = KvStore::open(flash(), small_config()).unwrap();
        for i in 0..400u32 {
            kv.put(&key(i), format!("value-{i}").as_bytes()).unwrap();
        }
        for i in (0..400u32).step_by(3) {
            kv.delete(&key(i)).unwrap();
        }
        assert!(kv.stats().flushes > 0, "the memtable threshold must have tripped");
        for i in 0..400u32 {
            let lookup = kv.get(&key(i)).unwrap();
            if i % 3 == 0 {
                assert_eq!(lookup.value, None, "key {i} was deleted");
            } else {
                assert_eq!(lookup.value, Some(format!("value-{i}").into_bytes()));
            }
        }
        assert_eq!(kv.get(b"absent").unwrap().source, LookupSource::Miss);
        let scanned = kv.scan(&key(10), &key(20)).unwrap();
        let expected: Vec<(Vec<u8>, Vec<u8>)> = (10..20u32)
            .filter(|i| i % 3 != 0)
            .map(|i| (key(i), format!("value-{i}").into_bytes()))
            .collect();
        assert_eq!(scanned, expected);
        assert!(kv.device_clock() > Nanos::ZERO);
    }

    #[test]
    fn compaction_keeps_deep_levels_sorted_and_answers_correctly() {
        let mut kv = KvStore::open(flash(), small_config()).unwrap();
        // Several overwrite rounds force flushes and multi-level compactions.
        for round in 0..6u32 {
            for i in 0..300u32 {
                kv.put(&key(i), format!("round-{round}-{i}").as_bytes()).unwrap();
            }
        }
        kv.flush().unwrap();
        assert!(kv.stats().compactions > 0);
        for i in 0..300u32 {
            assert_eq!(
                kv.get(&key(i)).unwrap().value,
                Some(format!("round-5-{i}").into_bytes()),
                "the newest round must win"
            );
        }
        // Deep runs are sorted and non-overlapping.
        for run in kv.levels.iter().skip(1) {
            for pair in run.windows(2) {
                assert!(pair[0].meta.max_key < pair[1].meta.min_key);
            }
        }
    }

    #[test]
    fn reopen_after_clean_flush_recovers_everything() {
        let mut kv = KvStore::open(flash(), small_config()).unwrap();
        for i in 0..200u32 {
            kv.put(&key(i), format!("v{i}").as_bytes()).unwrap();
        }
        kv.flush().unwrap();
        let layout = kv.layout();
        let store = kv.crash();
        let mut kv = KvStore::open(store, small_config()).unwrap();
        assert_eq!(kv.layout(), layout, "recovery must rebuild the exact table tree");
        for i in 0..200u32 {
            assert_eq!(kv.get(&key(i)).unwrap().value, Some(format!("v{i}").into_bytes()));
        }
    }

    #[test]
    fn reopen_replays_unflushed_wal_records() {
        let mut kv = KvStore::open(flash(), small_config()).unwrap();
        for i in 0..50u32 {
            kv.put(&key(i), b"committed").unwrap();
        }
        kv.flush().unwrap();
        kv.put(b"tail-1", b"after-flush").unwrap();
        kv.delete(&key(7)).unwrap();
        let store = kv.crash();
        let mut kv = KvStore::open(store, small_config()).unwrap();
        assert_eq!(kv.get(b"tail-1").unwrap().value, Some(b"after-flush".to_vec()));
        assert_eq!(kv.get(&key(7)).unwrap().value, None, "the tail delete must replay");
        assert_eq!(kv.get(&key(8)).unwrap().value, Some(b"committed".to_vec()));
        // And the recovered store keeps working, including further flushes.
        for i in 0..200u32 {
            kv.put(&key(i), format!("w{i}").as_bytes()).unwrap();
        }
        kv.flush().unwrap();
        assert_eq!(kv.get(&key(0)).unwrap().value, Some(b"w0".to_vec()));
    }

    #[test]
    fn write_amplification_factors_multiply_exactly() {
        // The app x ftl = e2e identity must hold on the serial path and stay
        // exact under batching: batched submission changes time accounting
        // only, never the host/GC page counts the factors are built from.
        let mut amplifications = Vec::new();
        for io_depth in [1usize, 8] {
            let config = KvConfig { io_depth, ..small_config() };
            let mut kv = KvStore::open(flash(), config).unwrap();
            for round in 0..4u32 {
                for i in 0..250u32 {
                    kv.put(&key(i), format!("wa-{round}-{i}").as_bytes()).unwrap();
                }
            }
            kv.flush().unwrap();
            let wa = kv.write_amplification();
            assert!(wa.app > 1.0, "WAL + flush + compaction must amplify app bytes");
            assert!(wa.ftl >= 1.0);
            let product = wa.app * wa.ftl;
            assert!(
                (product - wa.end_to_end).abs() <= 1e-9 * wa.end_to_end,
                "io_depth {io_depth}: app WA ({}) x FTL WA ({}) must equal e2e WA ({})",
                wa.app,
                wa.ftl,
                wa.end_to_end
            );
            let metrics = kv.flash().ftl().metrics();
            if io_depth == 1 {
                assert_eq!(metrics.batched_pages, 0, "depth 1 stays on the scalar path");
            } else {
                assert!(metrics.batched_pages > 0, "bulk builds must batch at depth 8");
                assert!(metrics.batched_submissions > 0);
            }
            amplifications.push(wa);
        }
        assert_eq!(
            amplifications[0], amplifications[1],
            "batching must not change any write-amplification factor"
        );
    }

    #[test]
    fn manifest_round_trips_through_encode_decode() {
        let mut kv = KvStore::open(flash(), small_config()).unwrap();
        for i in 0..300u32 {
            kv.put(&key(i), b"manifest-test").unwrap();
        }
        kv.flush().unwrap();
        let encoded = kv.encode_manifest();
        let decoded = decode_manifest(&encoded).unwrap();
        assert_eq!(decoded.wal_epoch, kv.wal.epoch());
        assert_eq!(decoded.next_table_id, kv.next_table_id);
        let metas: Vec<Vec<TableMeta>> =
            kv.levels.iter().map(|run| run.iter().map(|t| t.meta.clone()).collect()).collect();
        assert_eq!(decoded.levels, metas);
        // A flipped byte fails the checksum.
        let mut bad = encoded;
        bad[10] ^= 0xFF;
        assert!(matches!(decode_manifest(&bad), Err(KvError::Corruption(_))));
    }
}
