//! Sorted string tables: immutable sorted runs with a per-table bloom filter
//! and a sparse index.
//!
//! On-flash layout of one table file (all little-endian):
//!
//! ```text
//! [ data section    ]  entries back to back: klen u16 | flag u8 | vlen u32 | key | value
//! [ index section   ]  count u32, then per sparse entry: klen u16 | data offset u64 | key
//! [ bloom section   ]  word count u32 | hash count u32 | u64 words
//! ```
//!
//! The section offsets, entry count and key bounds live in the manifest, so a
//! recovering store can rebuild a [`TableHandle`] by reading just the index and
//! bloom sections (charged as device reads). Point lookups consult the bounds,
//! then the bloom filter, then binary-search the sparse index and read a single
//! index bucket — at the default interval that is one small `read_range` per
//! probed table.

use crate::error::KvError;
use crate::flash_file::{FlashStore, SegmentFile};
use crate::hash::fnv1a;
use vflash_ftl::FlashTranslationLayer;

/// Default sparse-index stride: every 16th entry lands in the sparse index
/// (the first always does).
const DEFAULT_SPARSE_INDEX_INTERVAL: usize = 16;
/// Default bloom filter budget: bits per key.
const DEFAULT_BLOOM_BITS_PER_KEY: usize = 10;

/// Construction-time tuning knobs for a table, derived from
/// [`KvConfig`](crate::KvConfig). Both are build-time only: the on-flash
/// encoding is self-describing (the bloom section stores its word and hash
/// counts; the index section stores its entry count), so tables built with any
/// options recover with no options at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableOptions {
    /// Bloom filter budget in bits per key (hash count is derived as
    /// `bits * ln 2`, floored to at least one probe). More bits, fewer false
    /// positives, bigger bloom section.
    pub bloom_bits_per_key: usize,
    /// Sparse-index stride: every `sparse_index_interval`-th entry is indexed
    /// (the first always is). Stride 1 indexes every entry — single-entry
    /// buckets, largest index; larger strides trade bucket-read bytes for
    /// index size.
    pub sparse_index_interval: usize,
}

impl Default for TableOptions {
    fn default() -> Self {
        TableOptions {
            bloom_bits_per_key: DEFAULT_BLOOM_BITS_PER_KEY,
            sparse_index_interval: DEFAULT_SPARSE_INDEX_INTERVAL,
        }
    }
}

/// Entry flags in the data section.
const FLAG_VALUE: u8 = 0;
const FLAG_TOMBSTONE: u8 = 1;

/// A table entry: a value or a tombstone.
pub type Entry = (Vec<u8>, Option<Vec<u8>>);

/// A split-block bloom filter over the table's keys (double hashing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    words: Vec<u64>,
    hashes: u32,
}

impl BloomFilter {
    /// A filter sized for `keys` keys at the default 10 bits each.
    pub fn with_capacity(keys: usize) -> Self {
        BloomFilter::with_bits_per_key(keys, DEFAULT_BLOOM_BITS_PER_KEY)
    }

    /// A filter sized for `keys` keys at `bits_per_key` bits each (floored at
    /// 64 bits total), probing with the near-optimal `bits_per_key * ln 2`
    /// hashes — at least one.
    pub fn with_bits_per_key(keys: usize, bits_per_key: usize) -> Self {
        let bits = (keys * bits_per_key).max(64);
        let hashes = ((bits_per_key as u32 * 693) / 1000).max(1);
        BloomFilter { words: vec![0; bits.div_ceil(64)], hashes }
    }

    fn bits(&self) -> u64 {
        self.words.len() as u64 * 64
    }

    fn probe(&self, key: &[u8], i: u32) -> (usize, u64) {
        let h1 = fnv1a(key, 0x51_73);
        let h2 = fnv1a(key, 0xB1_00) | 1;
        let bit = h1.wrapping_add(u64::from(i).wrapping_mul(h2)) % self.bits();
        ((bit / 64) as usize, 1u64 << (bit % 64))
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: &[u8]) {
        for i in 0..self.hashes {
            let (word, mask) = self.probe(key, i);
            self.words[word] |= mask;
        }
    }

    /// True when the key *may* be present; false means definitely absent.
    pub fn contains(&self, key: &[u8]) -> bool {
        (0..self.hashes).all(|i| {
            let (word, mask) = self.probe(key, i);
            self.words[word] & mask != 0
        })
    }

    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.words.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.hashes.to_le_bytes());
        for word in &self.words {
            out.extend_from_slice(&word.to_le_bytes());
        }
    }

    fn decode(bytes: &[u8]) -> Result<Self, KvError> {
        let corrupt = || KvError::Corruption("truncated bloom section".to_string());
        if bytes.len() < 8 {
            return Err(corrupt());
        }
        let words = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        let hashes = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if bytes.len() < 8 + words * 8 || hashes == 0 || words == 0 {
            return Err(corrupt());
        }
        let words = (0..words)
            .map(|i| u64::from_le_bytes(bytes[8 + i * 8..16 + i * 8].try_into().unwrap()))
            .collect();
        Ok(BloomFilter { words, hashes })
    }
}

/// The persisted description of one table — everything the manifest stores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableMeta {
    /// Creation sequence number (unique per store, newer is larger).
    pub id: u64,
    /// The backing file (extents + length).
    pub file: SegmentFile,
    /// Number of entries (tombstones included).
    pub entries: u64,
    /// Byte length of the data section.
    pub data_len: u64,
    /// File offset of the index section.
    pub index_off: u64,
    /// File offset of the bloom section.
    pub bloom_off: u64,
    /// Smallest key in the table.
    pub min_key: Vec<u8>,
    /// Largest key in the table.
    pub max_key: Vec<u8>,
}

/// How a point lookup probed a table (bloom-filter accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableProbe {
    /// The key was outside the table's key bounds — no filter consulted, no
    /// device traffic.
    RangeSkip,
    /// The bloom filter proved the key absent — no device traffic.
    BloomSkip,
    /// An index bucket was read from the device.
    Read,
}

/// An open table: persisted metadata plus the in-memory sparse index and bloom
/// filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableHandle {
    /// The persisted metadata.
    pub meta: TableMeta,
    index: Vec<(Vec<u8>, u64)>,
    bloom: BloomFilter,
}

impl TableHandle {
    /// Builds a table from sorted, deduplicated entries, writing data + index +
    /// bloom through `store` as one bulk append (PPB's classifier sees a large
    /// sequential write; at `io_depth > 1` the pages go out batched).
    ///
    /// # Errors
    ///
    /// Allocation and write errors pass through. `entries` must be non-empty
    /// and strictly sorted by key (a flush or merge output always is;
    /// violations are a logic error and panic via `debug_assert`).
    /// `options.sparse_index_interval` must be at least 1.
    pub fn build<F: FlashTranslationLayer>(
        store: &mut FlashStore<F>,
        id: u64,
        entries: &[Entry],
        options: TableOptions,
    ) -> Result<TableHandle, KvError> {
        assert!(!entries.is_empty(), "tables are never built empty");
        assert!(options.sparse_index_interval >= 1, "the sparse-index stride is at least 1");
        debug_assert!(entries.windows(2).all(|pair| pair[0].0 < pair[1].0));
        let mut data = Vec::new();
        let mut index = Vec::new();
        let mut bloom = BloomFilter::with_bits_per_key(entries.len(), options.bloom_bits_per_key);
        for (position, (key, value)) in entries.iter().enumerate() {
            if position % options.sparse_index_interval == 0 {
                index.push((key.clone(), data.len() as u64));
            }
            bloom.insert(key);
            data.extend_from_slice(&(key.len() as u16).to_le_bytes());
            data.push(if value.is_some() { FLAG_VALUE } else { FLAG_TOMBSTONE });
            data.extend_from_slice(&(value.as_ref().map_or(0, Vec::len) as u32).to_le_bytes());
            data.extend_from_slice(key);
            if let Some(value) = value {
                data.extend_from_slice(value);
            }
        }
        let data_len = data.len() as u64;
        let index_off = data_len;
        let mut file_bytes = data;
        file_bytes.extend_from_slice(&(index.len() as u32).to_le_bytes());
        for (key, offset) in &index {
            file_bytes.extend_from_slice(&(key.len() as u16).to_le_bytes());
            file_bytes.extend_from_slice(&offset.to_le_bytes());
            file_bytes.extend_from_slice(key);
        }
        let bloom_off = file_bytes.len() as u64;
        bloom.encode(&mut file_bytes);
        let mut file = SegmentFile::new();
        let request_bytes = u32::try_from(file_bytes.len()).unwrap_or(u32::MAX);
        store.append(&mut file, &file_bytes, request_bytes)?;
        let meta = TableMeta {
            id,
            file,
            entries: entries.len() as u64,
            data_len,
            index_off,
            bloom_off,
            min_key: entries.first().expect("non-empty").0.clone(),
            max_key: entries.last().expect("non-empty").0.clone(),
        };
        Ok(TableHandle { meta, index, bloom })
    }

    /// Reopens a table from its persisted metadata, reading the index and bloom
    /// sections back from the device (the crash-recovery path).
    ///
    /// # Errors
    ///
    /// [`KvError::Corruption`] when a section fails to decode; read errors pass
    /// through.
    pub fn recover<F: FlashTranslationLayer>(
        store: &mut FlashStore<F>,
        meta: TableMeta,
    ) -> Result<TableHandle, KvError> {
        let corrupt = || KvError::Corruption("truncated index section".to_string());
        let index_bytes = store.read_range(
            &meta.file,
            meta.index_off,
            (meta.bloom_off - meta.index_off) as usize,
        )?;
        if index_bytes.len() < 4 {
            return Err(corrupt());
        }
        let count = u32::from_le_bytes(index_bytes[0..4].try_into().unwrap()) as usize;
        let mut index = Vec::with_capacity(count);
        let mut at = 4usize;
        for _ in 0..count {
            if index_bytes.len() < at + 10 {
                return Err(corrupt());
            }
            let klen = u16::from_le_bytes(index_bytes[at..at + 2].try_into().unwrap()) as usize;
            let offset = u64::from_le_bytes(index_bytes[at + 2..at + 10].try_into().unwrap());
            at += 10;
            if index_bytes.len() < at + klen {
                return Err(corrupt());
            }
            index.push((index_bytes[at..at + klen].to_vec(), offset));
            at += klen;
        }
        let bloom_bytes = store.read_range(
            &meta.file,
            meta.bloom_off,
            (meta.file.len() - meta.bloom_off) as usize,
        )?;
        let bloom = BloomFilter::decode(&bloom_bytes)?;
        Ok(TableHandle { meta, index, bloom })
    }

    /// The index bucket `[start, end)` of data offsets that can contain `key`,
    /// or `None` when `key` sorts before the first entry.
    fn bucket_for(&self, key: &[u8]) -> Option<(u64, u64)> {
        let at = self.index.partition_point(|(index_key, _)| index_key.as_slice() <= key);
        if at == 0 {
            return None;
        }
        let start = self.index[at - 1].1;
        let end = self.index.get(at).map_or(self.meta.data_len, |(_, offset)| *offset);
        Some((start, end))
    }

    /// Point lookup. Returns the entry (`Some(None)` is a tombstone) and how
    /// the table was probed.
    ///
    /// # Errors
    ///
    /// Read and decode errors pass through.
    pub fn get<F: FlashTranslationLayer>(
        &self,
        store: &mut FlashStore<F>,
        key: &[u8],
    ) -> Result<(Option<Option<Vec<u8>>>, TableProbe), KvError> {
        if key < self.meta.min_key.as_slice() || key > self.meta.max_key.as_slice() {
            return Ok((None, TableProbe::RangeSkip));
        }
        if !self.bloom.contains(key) {
            return Ok((None, TableProbe::BloomSkip));
        }
        let Some((start, end)) = self.bucket_for(key) else {
            return Ok((None, TableProbe::Read));
        };
        let bytes = store.read_range(&self.meta.file, start, (end - start) as usize)?;
        let mut at = 0usize;
        while let Some((entry_key, value, consumed)) = decode_entry(&bytes, at)? {
            if entry_key == key {
                return Ok((Some(value), TableProbe::Read));
            }
            if entry_key.as_slice() > key {
                break;
            }
            at += consumed;
        }
        Ok((None, TableProbe::Read))
    }

    /// Every entry of the table in key order (compaction input; reads the whole
    /// data section).
    ///
    /// # Errors
    ///
    /// Read and decode errors pass through.
    pub fn entries<F: FlashTranslationLayer>(
        &self,
        store: &mut FlashStore<F>,
    ) -> Result<Vec<Entry>, KvError> {
        let bytes = store.read_range(&self.meta.file, 0, self.meta.data_len as usize)?;
        let mut out = Vec::with_capacity(self.meta.entries as usize);
        let mut at = 0usize;
        while let Some((key, value, consumed)) = decode_entry(&bytes, at)? {
            out.push((key, value));
            at += consumed;
        }
        Ok(out)
    }

    /// Entries with keys in `[lo, hi)`, reading index buckets lazily from the
    /// first candidate bucket until a key reaches `hi`.
    ///
    /// # Errors
    ///
    /// Read and decode errors pass through.
    pub fn scan_range<F: FlashTranslationLayer>(
        &self,
        store: &mut FlashStore<F>,
        lo: &[u8],
        hi: &[u8],
    ) -> Result<Vec<Entry>, KvError> {
        if lo >= hi || hi <= self.meta.min_key.as_slice() || lo > self.meta.max_key.as_slice() {
            return Ok(Vec::new());
        }
        let start = self.bucket_for(lo).map_or(0, |(start, _)| start);
        let mut out = Vec::new();
        let mut bucket = self.index.partition_point(|(_, offset)| *offset < start);
        debug_assert!(self.index.get(bucket).is_none_or(|(_, offset)| *offset == start));
        let mut offset = start;
        'buckets: while offset < self.meta.data_len {
            let end = self
                .index
                .get(bucket + 1)
                .map_or(self.meta.data_len, |(_, next)| *next);
            let bytes = store.read_range(&self.meta.file, offset, (end - offset) as usize)?;
            let mut at = 0usize;
            while let Some((key, value, consumed)) = decode_entry(&bytes, at)? {
                at += consumed;
                if key.as_slice() >= hi {
                    break 'buckets;
                }
                if key.as_slice() >= lo {
                    out.push((key, value));
                }
            }
            offset = end;
            bucket += 1;
        }
        Ok(out)
    }
}

/// Decodes the data-section entry at `bytes[at..]`; `Ok(None)` at the exact end
/// of the buffer.
fn decode_entry(bytes: &[u8], at: usize) -> Result<Option<(Vec<u8>, Option<Vec<u8>>, usize)>, KvError> {
    if at == bytes.len() {
        return Ok(None);
    }
    let corrupt = || KvError::Corruption("truncated table entry".to_string());
    let rest = &bytes[at..];
    if rest.len() < 7 {
        return Err(corrupt());
    }
    let klen = u16::from_le_bytes(rest[0..2].try_into().unwrap()) as usize;
    let flag = rest[2];
    let vlen = u32::from_le_bytes(rest[3..7].try_into().unwrap()) as usize;
    let total = 7 + klen + vlen;
    if rest.len() < total || (flag == FLAG_TOMBSTONE && vlen != 0) || flag > FLAG_TOMBSTONE {
        return Err(corrupt());
    }
    let key = rest[7..7 + klen].to_vec();
    let value =
        (flag == FLAG_VALUE).then(|| rest[7 + klen..total].to_vec());
    Ok(Some((key, value, total)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vflash_ftl::{ConventionalFtl, FtlConfig};
    use vflash_nand::{NandConfig, NandDevice};

    fn store() -> FlashStore<ConventionalFtl> {
        let device = NandDevice::new(NandConfig::small());
        FlashStore::new(ConventionalFtl::new(device, FtlConfig::default()).unwrap())
    }

    fn sample_entries(count: usize) -> Vec<Entry> {
        (0..count)
            .map(|i| {
                let key = format!("key{i:05}").into_bytes();
                let value = (i % 7 != 3).then(|| format!("value-{i}").into_bytes());
                (key, value)
            })
            .collect()
    }

    #[test]
    fn build_get_covers_hits_tombstones_and_misses() {
        let mut store = store();
        let entries = sample_entries(100);
        let table = TableHandle::build(&mut store, 1, &entries, TableOptions::default()).unwrap();
        assert_eq!(table.meta.entries, 100);
        for (key, value) in &entries {
            let (found, probe) = table.get(&mut store, key).unwrap();
            assert_eq!(found.as_ref(), Some(value), "{}", String::from_utf8_lossy(key));
            assert_eq!(probe, TableProbe::Read);
        }
        // Out of bounds: range skip, no device read.
        let reads_before = store.io_stats().pages_read;
        let (miss, probe) = table.get(&mut store, b"zzz").unwrap();
        assert_eq!((miss, probe), (None, TableProbe::RangeSkip));
        assert_eq!(store.io_stats().pages_read, reads_before);
        // In bounds but absent: bloom should usually skip; either way it is a miss.
        let (miss, _) = table.get(&mut store, b"key00042x").unwrap();
        assert_eq!(miss, None);
    }

    #[test]
    fn bloom_skips_most_absent_keys() {
        let mut store = store();
        let table = TableHandle::build(&mut store, 1, &sample_entries(200), TableOptions::default()).unwrap();
        let skipped = (0..200)
            .filter(|i| {
                let probe = table
                    .get(&mut store, format!("absent{i:05}").as_bytes())
                    .unwrap()
                    .1;
                probe == TableProbe::BloomSkip || probe == TableProbe::RangeSkip
            })
            .count();
        assert!(skipped > 150, "bloom filter skipped only {skipped}/200 absent keys");
    }

    #[test]
    fn recover_rebuilds_an_identical_handle() {
        let mut store = store();
        let entries = sample_entries(64);
        let table = TableHandle::build(&mut store, 9, &entries, TableOptions::default()).unwrap();
        let recovered = TableHandle::recover(&mut store, table.meta.clone()).unwrap();
        assert_eq!(recovered, table, "index + bloom must round-trip through flash");
        assert_eq!(recovered.entries(&mut store).unwrap(), entries);
    }

    #[test]
    fn stride_one_indexes_every_entry_and_still_answers_correctly() {
        let mut store = store();
        let entries = sample_entries(50);
        let options = TableOptions { sparse_index_interval: 1, ..TableOptions::default() };
        let table = TableHandle::build(&mut store, 3, &entries, options).unwrap();
        assert_eq!(table.index.len(), 50, "stride 1 puts every entry in the index");
        for (key, value) in &entries {
            assert_eq!(table.get(&mut store, key).unwrap().0.as_ref(), Some(value));
        }
        assert_eq!(table.get(&mut store, b"key00000a").unwrap().0, None);
        // Stride-1 single-entry buckets round-trip through recovery too.
        let recovered = TableHandle::recover(&mut store, table.meta.clone()).unwrap();
        assert_eq!(recovered, table);
        assert_eq!(recovered.entries(&mut store).unwrap(), entries);
        assert_eq!(
            recovered.scan_range(&mut store, b"key00010", b"key00020").unwrap(),
            entries[10..20]
        );
    }

    #[test]
    fn single_entry_table_round_trips_at_every_stride() {
        for stride in [1usize, 2, 16, 1000] {
            let mut store = store();
            let entries = sample_entries(1);
            let options = TableOptions { sparse_index_interval: stride, ..TableOptions::default() };
            let table = TableHandle::build(&mut store, 1, &entries, options).unwrap();
            assert_eq!(table.index.len(), 1, "the first entry is always indexed");
            let (found, probe) = table.get(&mut store, &entries[0].0).unwrap();
            assert_eq!(found.as_ref(), Some(&entries[0].1));
            assert_eq!(probe, TableProbe::Read);
            let recovered = TableHandle::recover(&mut store, table.meta.clone()).unwrap();
            assert_eq!(recovered.entries(&mut store).unwrap(), entries);
        }
    }

    #[test]
    fn tiny_tables_and_tiny_bloom_budgets_stay_correct() {
        // A very small table at a very small bloom budget: the 64-bit filter
        // floor and the >= 1 hash floor keep it functional (no false
        // negatives), whatever the bits/key.
        for bits in [1usize, 2, 10, 24] {
            let mut store = store();
            let entries = sample_entries(3);
            let options = TableOptions { bloom_bits_per_key: bits, ..TableOptions::default() };
            let table = TableHandle::build(&mut store, 1, &entries, options).unwrap();
            for (key, value) in &entries {
                assert_eq!(
                    table.get(&mut store, key).unwrap().0.as_ref(),
                    Some(value),
                    "bloom filters must never produce false negatives (bits={bits})"
                );
            }
            let recovered = TableHandle::recover(&mut store, table.meta.clone()).unwrap();
            assert_eq!(recovered, table, "self-describing encoding recovers at any budget");
        }
    }

    #[test]
    fn higher_bloom_budgets_probe_with_more_hashes() {
        let few = BloomFilter::with_bits_per_key(100, 1);
        let default = BloomFilter::with_bits_per_key(100, 10);
        let many = BloomFilter::with_bits_per_key(100, 24);
        assert_eq!(few.hashes, 1, "the hash count never drops below one");
        assert_eq!(default.hashes, 6, "10 bits/key keeps the historical 6 probes");
        assert_eq!(many.hashes, 16);
        assert_eq!(BloomFilter::with_capacity(100), default);
    }

    #[test]
    fn scan_range_matches_a_filtered_full_read() {
        let mut store = store();
        let entries = sample_entries(120);
        let table = TableHandle::build(&mut store, 2, &entries, TableOptions::default()).unwrap();
        let lo = b"key00017".to_vec();
        let hi = b"key00093".to_vec();
        let expected: Vec<Entry> = entries
            .iter()
            .filter(|(key, _)| key >= &lo && key < &hi)
            .cloned()
            .collect();
        assert_eq!(table.scan_range(&mut store, &lo, &hi).unwrap(), expected);
        assert!(table.scan_range(&mut store, &hi, &lo).unwrap().is_empty());
        assert_eq!(
            table.scan_range(&mut store, b"", b"~").unwrap(),
            entries,
            "an all-covering range returns every entry"
        );
    }
}
