//! The in-memory write buffer: a sorted map with byte-size accounting.

use std::collections::BTreeMap;
use std::ops::Bound;

/// Fixed per-entry bookkeeping charge added to the key/value bytes when sizing
/// the memtable (node overhead stand-in, and what makes empty values count).
const ENTRY_OVERHEAD: usize = 16;

/// A sorted in-memory buffer of the most recent writes.
///
/// Values are `Option<Vec<u8>>`: `None` is a tombstone (a pending delete that
/// must shadow older SSTable entries until compaction drops it at the bottom
/// level). The memtable tracks an approximate byte size so the store can flush
/// it once it crosses the configured threshold.
#[derive(Debug, Default)]
pub struct Memtable {
    entries: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    bytes: usize,
}

impl Memtable {
    /// An empty memtable.
    pub fn new() -> Self {
        Memtable::default()
    }

    /// Number of distinct keys buffered (tombstones included).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate buffered bytes (keys + values + per-entry overhead).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Inserts a put (`Some(value)`) or a tombstone (`None`), replacing any
    /// previous entry for the key. A replaced key keeps its one-time key/overhead
    /// charge; only the value contribution is swapped.
    pub fn insert(&mut self, key: Vec<u8>, value: Option<Vec<u8>>) {
        let key_len = key.len();
        let value_len = value.as_ref().map_or(0, Vec::len);
        match self.entries.insert(key, value) {
            Some(previous) => {
                self.bytes -= previous.as_ref().map_or(0, Vec::len);
                self.bytes += value_len;
            }
            None => self.bytes += ENTRY_OVERHEAD + key_len + value_len,
        }
    }

    /// Looks up the freshest buffered entry: `Some(Some(value))` for a put,
    /// `Some(None)` for a tombstone, `None` when the key is not buffered.
    pub fn get(&self, key: &[u8]) -> Option<&Option<Vec<u8>>> {
        self.entries.get(key)
    }

    /// Iterates entries with keys in `[lo, hi)` in sorted order.
    pub fn range<'a>(
        &'a self,
        lo: &[u8],
        hi: &[u8],
    ) -> impl Iterator<Item = (&'a Vec<u8>, &'a Option<Vec<u8>>)> {
        self.entries
            .range::<[u8], _>((Bound::Included(lo), Bound::Excluded(hi)))
    }

    /// Drains every entry in sorted order, leaving the memtable empty (the
    /// flush path).
    pub fn drain_sorted(&mut self) -> Vec<(Vec<u8>, Option<Vec<u8>>)> {
        self.bytes = 0;
        std::mem::take(&mut self.entries).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserts_overwrite_and_track_bytes() {
        let mut memtable = Memtable::new();
        memtable.insert(b"k1".to_vec(), Some(b"aaaa".to_vec()));
        let first = memtable.bytes();
        assert_eq!(first, ENTRY_OVERHEAD + 2 + 4);
        memtable.insert(b"k1".to_vec(), Some(b"bb".to_vec()));
        assert_eq!(memtable.len(), 1);
        assert_eq!(memtable.bytes(), ENTRY_OVERHEAD + 2 + 2);
        memtable.insert(b"k1".to_vec(), None);
        assert_eq!(memtable.get(b"k1"), Some(&None), "tombstone shadows the put");
        assert_eq!(memtable.bytes(), ENTRY_OVERHEAD + 2);
    }

    #[test]
    fn drain_returns_sorted_entries_and_empties() {
        let mut memtable = Memtable::new();
        memtable.insert(b"b".to_vec(), Some(b"2".to_vec()));
        memtable.insert(b"a".to_vec(), Some(b"1".to_vec()));
        memtable.insert(b"c".to_vec(), None);
        let drained = memtable.drain_sorted();
        assert_eq!(
            drained,
            vec![
                (b"a".to_vec(), Some(b"1".to_vec())),
                (b"b".to_vec(), Some(b"2".to_vec())),
                (b"c".to_vec(), None),
            ]
        );
        assert!(memtable.is_empty());
        assert_eq!(memtable.bytes(), 0);
    }

    #[test]
    fn range_respects_bounds() {
        let mut memtable = Memtable::new();
        for key in [b"a", b"b", b"c", b"d"] {
            memtable.insert(key.to_vec(), Some(vec![1]));
        }
        let keys: Vec<&[u8]> = memtable.range(b"b", b"d").map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys, vec![b"b" as &[u8], b"c"]);
    }
}
