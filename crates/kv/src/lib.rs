//! vflash-kv: an LSM key-value store running on the simulated flash device.
//!
//! The crate stacks a small-but-real log-structured merge tree on top of the
//! workspace's FTL simulators, so application-level behavior (WAL appends,
//! memtable flushes, compaction) becomes real device traffic — queueing, GC
//! attribution, fault injection and end-of-life behavior included:
//!
//! ```text
//!  put/delete ──▶ WAL append ──▶ memtable ──▶ flush ──▶ L0 table ─┐
//!                                                                 ▼
//!       get/scan ◀── memtable + bloom/index probes ◀── leveled SSTables
//!                                                                 │
//!        FlashFile appends/reads ◀── compaction merges ◀──────────┘
//!                       │
//!                       ▼
//!          IoRequest per page ──▶ ConventionalFtl / PpbFtl ──▶ NAND timing
//! ```
//!
//! Every byte of persistence goes through [`FlashStore`]: append-only
//! [`SegmentFile`]s mapped onto LPN extents, one `IoRequest` per page touched —
//! submitted one at a time at [`KvConfig::io_depth`] 1, or in chip-parallel
//! batches of up to `io_depth` pages through the FTL's `submit_batch` path,
//! charging multi-page operations the batch makespan instead of the serial sum.
//! The request sizes passed down are the application's real write sizes, so
//! PPB's size-based hotness classifier sees WAL appends as small (hot) writes
//! and bulk table builds as large (cold) ones — the exact workload contrast the
//! paper's placement policy is built around. Once a worn-out device turns
//! read-only, writes surface as [`KvError::ReadOnly`] at the KV API.
//!
//! [`workload`] adds a deterministic, zipf-skewed driver that reports
//! application-level latency percentiles split into memtable-hit /
//! sstable-read / compaction-stall components, plus the three write
//! amplification factors (app × FTL = end-to-end).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod flash_file;
mod hash;
mod memtable;
mod sstable;
mod store;
mod wal;
pub mod workload;

pub use error::KvError;
pub use flash_file::{Extent, FlashStore, SegmentFile, StoreIoStats, SUPERBLOCK_LPN};
pub use memtable::Memtable;
pub use sstable::{BloomFilter, Entry, TableHandle, TableMeta, TableOptions, TableProbe};
pub use store::{
    KvConfig, KvStats, KvStore, Lookup, LookupSource, TableLayout, WriteAmplification,
    WriteReceipt,
};
pub use wal::{Wal, WalOp};
