//! KV-level errors.

use std::error::Error;
use std::fmt;

use vflash_ftl::FtlError;

/// Errors surfaced by the KV store.
///
/// Device end-of-life deserves first-class treatment: when the FTL flips to
/// sticky read-only mode ([`FtlError::ReadOnly`]), every KV write path (WAL
/// append, flush, compaction) reports [`KvError::ReadOnly`] instead of a
/// generic failure, so an application can distinguish "the device is worn out,
/// reads still work" from corruption or misconfiguration.
#[derive(Debug)]
pub enum KvError {
    /// The device entered read-only end-of-life mode: writes are refused for
    /// good, reads keep serving.
    ReadOnly,
    /// The store ran out of logical flash capacity (no free extents, or the
    /// FTL reported [`FtlError::OutOfSpace`]).
    OutOfSpace,
    /// On-flash data failed validation (bad magic, checksum mismatch,
    /// truncated structure). Carries a human-readable description.
    Corruption(String),
    /// Any other FTL failure, passed through.
    Ftl(FtlError),
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::ReadOnly => write!(f, "device is in read-only end-of-life mode"),
            KvError::OutOfSpace => write!(f, "out of flash capacity"),
            KvError::Corruption(reason) => write!(f, "on-flash corruption: {reason}"),
            KvError::Ftl(error) => write!(f, "FTL error: {error}"),
        }
    }
}

impl Error for KvError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            KvError::Ftl(error) => Some(error),
            _ => None,
        }
    }
}

impl From<FtlError> for KvError {
    fn from(error: FtlError) -> Self {
        match error {
            FtlError::ReadOnly => KvError::ReadOnly,
            FtlError::OutOfSpace => KvError::OutOfSpace,
            other => KvError::Ftl(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_only_and_out_of_space_map_to_first_class_variants() {
        assert!(matches!(KvError::from(FtlError::ReadOnly), KvError::ReadOnly));
        assert!(matches!(KvError::from(FtlError::OutOfSpace), KvError::OutOfSpace));
        assert!(matches!(
            KvError::from(FtlError::UnmappedRead { lpn: vflash_ftl::Lpn(3) }),
            KvError::Ftl(_)
        ));
    }

    #[test]
    fn display_is_informative() {
        assert!(KvError::ReadOnly.to_string().contains("read-only"));
        assert!(KvError::Corruption("bad magic".into()).to_string().contains("bad magic"));
    }
}
