//! Seeded FNV-1a hashing shared by the WAL checksums and the bloom filters.

/// FNV-1a over `bytes`, with the 64-bit offset basis perturbed by `seed` so two
/// seeds give independent hash families (the bloom filter's double hashing).
pub(crate) fn fnv1a(bytes: &[u8], seed: u64) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_inputs_and_seeds_hash_apart() {
        assert_ne!(fnv1a(b"abc", 0), fnv1a(b"abd", 0));
        assert_ne!(fnv1a(b"abc", 0), fnv1a(b"abc", 1));
        assert_eq!(fnv1a(b"abc", 7), fnv1a(b"abc", 7));
    }
}
