//! Append-only file segments mapped onto LPN ranges of a flash device.
//!
//! The simulated NAND stack is a *timing and placement* model — it tracks which
//! physical pages are live and how long every operation takes, but it does not
//! store data bytes. [`FlashStore`] bridges that gap for an application: it keeps
//! the actual bytes in a shadow page table while issuing one [`IoRequest`] per
//! page touched, so every append and read becomes real device traffic (queueing,
//! GC attribution, fault and end-of-life behavior included) and the accumulated
//! [`Completion`](vflash_ftl::Completion) latencies drive the store's simulated
//! clock.
//!
//! A [`SegmentFile`] is an append-only byte stream laid out over a list of
//! [`Extent`]s (contiguous LPN runs). Freeing a file returns its extents to the
//! free list; reusing them later overwrites the stale LPNs, which is exactly what
//! invalidates the old flash pages and generates GC pressure — no trim command
//! is needed or modeled.

use vflash_ftl::{FlashTranslationLayer, IoRequest, Lpn};
use vflash_nand::Nanos;

use crate::error::KvError;

/// The LPN reserved for the store's superblock (see
/// [`FlashStore::write_superblock`]).
pub const SUPERBLOCK_LPN: u64 = 0;

/// A contiguous run of logical pages: LPNs `[start, start + pages)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// First LPN of the run.
    pub start: u64,
    /// Number of pages in the run.
    pub pages: u64,
}

/// An append-only byte stream laid out over a list of [`Extent`]s.
///
/// The handle is plain data — all I/O goes through the owning [`FlashStore`],
/// which charges device time for every page touched. `len` is the logical byte
/// length; capacity is whatever the extents provide, growing on demand.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SegmentFile {
    extents: Vec<Extent>,
    len: u64,
}

impl SegmentFile {
    /// An empty file with no extents.
    pub fn new() -> Self {
        SegmentFile::default()
    }

    /// Rebuilds a handle from its persisted extents and length (manifest
    /// recovery path).
    pub fn from_parts(extents: Vec<Extent>, len: u64) -> Self {
        SegmentFile { extents, len }
    }

    /// Logical byte length.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when no bytes have been appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total pages currently allocated to the file.
    pub fn pages(&self) -> u64 {
        self.extents.iter().map(|extent| extent.pages).sum()
    }

    /// The file's extents, in file order.
    pub fn extents(&self) -> &[Extent] {
        &self.extents
    }

    /// Rewinds the logical length to zero, keeping the allocated extents (the
    /// WAL reset path: the region is reused in place and old pages are simply
    /// overwritten).
    pub fn truncate(&mut self) {
        self.len = 0;
    }

    /// The LPN backing file page `index`, or `None` past the allocated capacity.
    pub fn lpn_at(&self, index: u64) -> Option<u64> {
        let mut remaining = index;
        for extent in &self.extents {
            if remaining < extent.pages {
                return Some(extent.start + remaining);
            }
            remaining -= extent.pages;
        }
        None
    }
}

/// Byte-granular I/O counters of a [`FlashStore`], page-charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreIoStats {
    /// Page writes submitted to the FTL (each one host-visible device traffic).
    pub pages_written: u64,
    /// Page reads submitted to the FTL.
    pub pages_read: u64,
}

/// File storage over a [`FlashTranslationLayer`]: shadow data bytes plus an
/// extent allocator, with every page touched charged through `submit`.
#[derive(Debug)]
pub struct FlashStore<F: FlashTranslationLayer> {
    ftl: F,
    page_size: usize,
    io_depth: usize,
    clock: Nanos,
    shadow: Vec<Option<Box<[u8]>>>,
    free: Vec<Extent>,
    io: StoreIoStats,
}

impl<F: FlashTranslationLayer> FlashStore<F> {
    /// Wraps `ftl`, reserving LPN 0 for the superblock and exposing the rest of
    /// the logical address space to the extent allocator.
    pub fn new(ftl: F) -> Self {
        let logical_pages = ftl.logical_pages();
        let page_size = ftl.device().config().page_size_bytes();
        FlashStore {
            ftl,
            page_size,
            io_depth: 1,
            clock: Nanos::ZERO,
            shadow: (0..logical_pages).map(|_| None).collect(),
            free: vec![Extent { start: SUPERBLOCK_LPN + 1, pages: logical_pages - 1 }],
            io: StoreIoStats::default(),
        }
    }

    /// Flash page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// The queue depth multi-page operations are submitted at.
    pub fn io_depth(&self) -> usize {
        self.io_depth
    }

    /// Sets the queue depth for multi-page operations. At depth 1 (the
    /// default) every page goes through scalar `submit` and the clock is
    /// charged the serial sum; at depth `d > 1` pages are submitted in batches
    /// of up to `d` through
    /// [`submit_batch`](FlashTranslationLayer::submit_batch) and the clock is
    /// charged each batch's chip-parallel makespan.
    ///
    /// Raising the depth above 1 also asks the FTL (via
    /// [`set_write_stripe`](FlashTranslationLayer::set_write_stripe)) to
    /// rotate its host write stream across up to one active block per chip, so
    /// the page programs of a batch land on different dies and genuinely
    /// overlap; at depth 1 the stripe is released and placement is exactly the
    /// pre-batching single-active-block layout.
    pub fn set_io_depth(&mut self, depth: usize) {
        assert!(depth >= 1, "io_depth must be at least 1");
        self.io_depth = depth;
        let chips = self.ftl.device().config().chips();
        self.ftl.set_write_stripe(if depth > 1 { chips.min(depth) } else { 1 });
    }

    /// The simulated device clock: the sum of every completion latency the
    /// store has accumulated. Snapshot it around an operation to attribute
    /// device time to that operation.
    pub fn clock(&self) -> Nanos {
        self.clock
    }

    /// Page-level I/O counters.
    pub fn io_stats(&self) -> StoreIoStats {
        self.io
    }

    /// The wrapped FTL (metrics snapshots, device inspection).
    pub fn ftl(&self) -> &F {
        &self.ftl
    }

    /// Consumes the store, returning the FTL (final metrics inspection).
    pub fn into_ftl(self) -> F {
        self.ftl
    }

    /// Free pages remaining in the allocator.
    pub fn free_pages(&self) -> u64 {
        self.free.iter().map(|extent| extent.pages).sum()
    }

    /// True when `lpn` holds data written through this store's lifetime of the
    /// device (the shadow table survives a KV-level crash, the in-memory store
    /// state does not).
    pub fn is_written(&self, lpn: u64) -> bool {
        self.shadow.get(lpn as usize).is_some_and(Option::is_some)
    }

    /// Allocates `pages` pages as one or more extents (first-fit, splitting the
    /// last extent taken).
    ///
    /// # Errors
    ///
    /// [`KvError::OutOfSpace`] when fewer than `pages` pages are free; the free
    /// list is left untouched in that case.
    pub fn alloc_run(&mut self, pages: u64) -> Result<Vec<Extent>, KvError> {
        if pages == 0 {
            return Ok(Vec::new());
        }
        if self.free_pages() < pages {
            return Err(KvError::OutOfSpace);
        }
        let mut run = Vec::new();
        let mut wanted = pages;
        while wanted > 0 {
            let extent = self.free.first_mut().expect("free total was checked above");
            let take = wanted.min(extent.pages);
            run.push(Extent { start: extent.start, pages: take });
            extent.start += take;
            extent.pages -= take;
            if extent.pages == 0 {
                self.free.remove(0);
            }
            wanted -= take;
        }
        Ok(run)
    }

    /// Returns extents to the free list, coalescing adjacent runs. The shadow
    /// bytes stay in place — stale data remains "on media" until the LPNs are
    /// overwritten, exactly like real flash without trim.
    pub fn free_extents(&mut self, extents: &[Extent]) {
        for &extent in extents {
            if extent.pages == 0 {
                continue;
            }
            let at = self
                .free
                .partition_point(|candidate| candidate.start < extent.start);
            self.free.insert(at, extent);
            // Coalesce with the successor, then the predecessor.
            if at + 1 < self.free.len()
                && self.free[at].start + self.free[at].pages == self.free[at + 1].start
            {
                self.free[at].pages += self.free[at + 1].pages;
                self.free.remove(at + 1);
            }
            if at > 0 && self.free[at - 1].start + self.free[at - 1].pages == self.free[at].start {
                self.free[at - 1].pages += self.free[at].pages;
                self.free.remove(at);
            }
        }
    }

    /// Deletes a file: all its extents return to the allocator. No device
    /// traffic is charged (dropping a file writes nothing).
    pub fn delete(&mut self, file: SegmentFile) {
        self.free_extents(&file.extents);
    }

    /// Rebuilds the free list as the complement of `used` (crash recovery: the
    /// manifest is the source of truth for which extents are live, and anything
    /// allocated after the last manifest write — a half-built table, say — must
    /// return to the pool instead of leaking). The superblock LPN stays
    /// reserved. `used` extents must not overlap.
    pub fn reset_allocator(&mut self, used: &[Extent]) {
        let mut used: Vec<Extent> = used.iter().copied().filter(|e| e.pages > 0).collect();
        used.sort_by_key(|extent| extent.start);
        debug_assert!(used
            .windows(2)
            .all(|pair| pair[0].start + pair[0].pages <= pair[1].start));
        self.free.clear();
        let mut cursor = SUPERBLOCK_LPN + 1;
        for extent in &used {
            if extent.start > cursor {
                self.free.push(Extent { start: cursor, pages: extent.start - cursor });
            }
            cursor = cursor.max(extent.start + extent.pages);
        }
        let logical_pages = self.shadow.len() as u64;
        if cursor < logical_pages {
            self.free.push(Extent { start: cursor, pages: logical_pages - cursor });
        }
    }

    /// Writes one full page to `lpn`, charging the program (and any GC it
    /// triggers) to the clock. `request_bytes` is the logical request size
    /// passed to the FTL — PPB's size-based classifier sees it, so callers
    /// should pass the application-level write size (small WAL appends read as
    /// hot, bulk compaction writes as cold).
    ///
    /// # Errors
    ///
    /// [`KvError::ReadOnly`] once the device is at end of life;
    /// [`KvError::OutOfSpace`] when the FTL has no free capacity; other FTL
    /// failures pass through.
    pub fn write_page(&mut self, lpn: u64, data: &[u8], request_bytes: u32) -> Result<(), KvError> {
        debug_assert_eq!(data.len(), self.page_size);
        let completion = self.ftl.submit(IoRequest::write(Lpn(lpn), request_bytes))?;
        self.clock += completion.latency;
        self.io.pages_written += 1;
        self.shadow[lpn as usize] = Some(data.into());
        Ok(())
    }

    /// Reads one page, charging the read (retry ladder included) to the clock.
    ///
    /// # Errors
    ///
    /// [`KvError::Corruption`] when the page was never written through this
    /// store or the device reports the data uncorrectable (the retry ladder ran
    /// dry — with fault injection on, data loss is real); other FTL failures
    /// pass through.
    pub fn read_page(&mut self, lpn: u64) -> Result<&[u8], KvError> {
        if !self.is_written(lpn) {
            return Err(KvError::Corruption(format!("read of never-written LPN {lpn}")));
        }
        let completion = self.ftl.submit(IoRequest::read(Lpn(lpn)))?;
        self.clock += completion.latency;
        self.io.pages_read += 1;
        if completion.uncorrectable {
            return Err(KvError::Corruption(format!("uncorrectable read of LPN {lpn}")));
        }
        Ok(self.shadow[lpn as usize].as_deref().expect("is_written was checked above"))
    }

    /// Programs a run of full pages, batching them at the configured queue
    /// depth. At depth 1 this is exactly a loop of [`FlashStore::write_page`];
    /// deeper, each group of up to `io_depth` pages is one
    /// [`submit_batch`](FlashTranslationLayer::submit_batch) call and the
    /// clock is charged its makespan.
    fn write_pages(&mut self, pages: &[(u64, Vec<u8>)], request_bytes: u32) -> Result<(), KvError> {
        if self.io_depth <= 1 {
            for (lpn, buffer) in pages {
                self.write_page(*lpn, buffer, request_bytes)?;
            }
            return Ok(());
        }
        for chunk in pages.chunks(self.io_depth) {
            let requests: Vec<IoRequest> = chunk
                .iter()
                .map(|&(lpn, _)| IoRequest::write(Lpn(lpn), request_bytes))
                .collect();
            let batch = self.ftl.submit_batch(&requests)?;
            self.clock += batch.makespan;
            self.io.pages_written += chunk.len() as u64;
            for (lpn, buffer) in chunk {
                self.shadow[*lpn as usize] = Some(buffer.as_slice().into());
            }
        }
        Ok(())
    }

    /// Charges device time for reading every LPN in `lpns`, batching at the
    /// configured queue depth. The bytes themselves come from the shadow table
    /// afterwards — this pays for the traffic.
    ///
    /// # Errors
    ///
    /// [`KvError::Corruption`] for never-written LPNs (checked up front, before
    /// any device traffic) and for uncorrectable reads.
    fn charge_reads(&mut self, lpns: &[u64]) -> Result<(), KvError> {
        for &lpn in lpns {
            if !self.is_written(lpn) {
                return Err(KvError::Corruption(format!("read of never-written LPN {lpn}")));
            }
        }
        if self.io_depth <= 1 {
            for &lpn in lpns {
                self.read_page(lpn)?;
            }
            return Ok(());
        }
        for chunk in lpns.chunks(self.io_depth) {
            let requests: Vec<IoRequest> =
                chunk.iter().map(|&lpn| IoRequest::read(Lpn(lpn))).collect();
            let batch = self.ftl.submit_batch(&requests)?;
            self.clock += batch.makespan;
            self.io.pages_read += chunk.len() as u64;
            for (completion, &lpn) in batch.completions.iter().zip(chunk) {
                if completion.uncorrectable {
                    return Err(KvError::Corruption(format!("uncorrectable read of LPN {lpn}")));
                }
            }
        }
        Ok(())
    }

    /// Reads a run of whole pages (in `lpns` order) and returns their
    /// concatenated contents, batching the device traffic at the configured
    /// queue depth. The WAL recovery scan reads its written prefix through
    /// this in one sweep instead of page-at-a-time.
    ///
    /// # Errors
    ///
    /// [`KvError::Corruption`] for never-written LPNs or uncorrectable reads;
    /// other FTL failures pass through.
    pub fn read_pages(&mut self, lpns: &[u64]) -> Result<Vec<u8>, KvError> {
        self.charge_reads(lpns)?;
        let mut out = Vec::with_capacity(lpns.len() * self.page_size);
        for &lpn in lpns {
            out.extend_from_slice(
                self.shadow[lpn as usize].as_deref().expect("charge_reads checked is_written"),
            );
        }
        Ok(out)
    }

    /// Appends `bytes` to `file`, allocating pages on demand and charging one
    /// page program per page touched. A partial tail page is rewritten in place
    /// (same LPN), which models the WAL's torn-page overwrite cost faithfully:
    /// the old version of the page is invalidated and a fresh program pays for
    /// the new one.
    ///
    /// # Errors
    ///
    /// [`KvError::OutOfSpace`] when the allocator cannot grow the file;
    /// [`KvError::ReadOnly`] and FTL failures from the page programs.
    pub fn append(
        &mut self,
        file: &mut SegmentFile,
        bytes: &[u8],
        request_bytes: u32,
    ) -> Result<(), KvError> {
        if bytes.is_empty() {
            return Ok(());
        }
        let page_size = self.page_size as u64;
        let start = file.len;
        let end = start + bytes.len() as u64;
        let needed_pages = end.div_ceil(page_size);
        if needed_pages > file.pages() {
            let grown = self.alloc_run(needed_pages - file.pages())?;
            file.extents.extend(grown);
        }
        let first_page = start / page_size;
        let last_page = (end - 1) / page_size;
        let mut pages = Vec::with_capacity((last_page - first_page + 1) as usize);
        for page in first_page..=last_page {
            let lpn = file.lpn_at(page).expect("capacity was grown above");
            let mut buffer = vec![0u8; self.page_size];
            let page_start = page * page_size;
            // Preserve the already-appended prefix of a partial tail page. The
            // bytes come from the shadow table without a device read: a real
            // writer holds its tail page in a RAM buffer.
            if page_start < start {
                let existing = self.shadow[lpn as usize]
                    .as_deref()
                    .expect("partial tail page must have been written before");
                let keep = (start - page_start) as usize;
                buffer[..keep].copy_from_slice(&existing[..keep]);
            }
            let copy_from = page_start.max(start);
            let copy_to = (page_start + page_size).min(end);
            buffer[(copy_from - page_start) as usize..(copy_to - page_start) as usize]
                .copy_from_slice(&bytes[(copy_from - start) as usize..(copy_to - start) as usize]);
            pages.push((lpn, buffer));
        }
        self.write_pages(&pages, request_bytes)?;
        file.len = end;
        Ok(())
    }

    /// Reserves capacity so the file spans at least `pages` pages (the WAL
    /// preallocates its whole region once, then appends never allocate).
    ///
    /// # Errors
    ///
    /// [`KvError::OutOfSpace`] when the allocator cannot satisfy the request.
    pub fn reserve(&mut self, file: &mut SegmentFile, pages: u64) -> Result<(), KvError> {
        if pages > file.pages() {
            let grown = self.alloc_run(pages - file.pages())?;
            file.extents.extend(grown);
        }
        Ok(())
    }

    /// Reads `len` bytes at `offset`, charging one page read per page touched.
    ///
    /// # Errors
    ///
    /// [`KvError::Corruption`] when the range reaches past the file's length;
    /// read errors pass through.
    pub fn read_range(
        &mut self,
        file: &SegmentFile,
        offset: u64,
        len: usize,
    ) -> Result<Vec<u8>, KvError> {
        if len == 0 {
            return Ok(Vec::new());
        }
        let end = offset + len as u64;
        if end > file.len {
            return Err(KvError::Corruption(format!(
                "read of [{offset}, {end}) past file length {}",
                file.len
            )));
        }
        let page_size = self.page_size as u64;
        let pages: Vec<u64> = (offset / page_size..=(end - 1) / page_size).collect();
        let lpns: Vec<u64> = pages
            .iter()
            .map(|&page| file.lpn_at(page).expect("range is within the file length"))
            .collect();
        self.charge_reads(&lpns)?;
        let mut out = Vec::with_capacity(len);
        for (&page, &lpn) in pages.iter().zip(&lpns) {
            let data =
                self.shadow[lpn as usize].as_deref().expect("charge_reads checked is_written");
            let page_start = page * page_size;
            let from = offset.max(page_start) - page_start;
            let to = end.min(page_start + page_size) - page_start;
            out.extend_from_slice(&data[from as usize..to as usize]);
        }
        Ok(out)
    }

    /// True once a superblock has been written (distinguishes a fresh device
    /// from one holding a recoverable store).
    pub fn has_superblock(&self) -> bool {
        self.is_written(SUPERBLOCK_LPN)
    }

    /// Writes `payload` (at most one page) to the fixed superblock LPN.
    ///
    /// # Errors
    ///
    /// [`KvError::Corruption`] when the payload exceeds a page; write errors
    /// pass through.
    pub fn write_superblock(&mut self, payload: &[u8]) -> Result<(), KvError> {
        if payload.len() > self.page_size {
            return Err(KvError::Corruption(format!(
                "superblock payload of {} bytes exceeds the {}-byte page",
                payload.len(),
                self.page_size
            )));
        }
        let mut buffer = vec![0u8; self.page_size];
        buffer[..payload.len()].copy_from_slice(payload);
        self.write_page(SUPERBLOCK_LPN, &buffer, self.page_size as u32)
    }

    /// Reads the superblock page.
    ///
    /// # Errors
    ///
    /// [`KvError::Corruption`] when no superblock was ever written; read errors
    /// pass through.
    pub fn read_superblock(&mut self) -> Result<Vec<u8>, KvError> {
        Ok(self.read_page(SUPERBLOCK_LPN)?.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vflash_ftl::{ConventionalFtl, FtlConfig};
    use vflash_nand::{NandConfig, NandDevice};

    fn store() -> FlashStore<ConventionalFtl> {
        let device = NandDevice::new(NandConfig::small());
        FlashStore::new(ConventionalFtl::new(device, FtlConfig::default()).unwrap())
    }

    #[test]
    fn append_then_read_round_trips_across_page_boundaries() {
        let mut store = store();
        let page = store.page_size();
        let mut file = SegmentFile::new();
        let data: Vec<u8> = (0..page * 2 + 100).map(|i| (i % 251) as u8).collect();
        // Append in uneven chunks so tail pages are rewritten.
        for chunk in data.chunks(page / 3 + 7) {
            store.append(&mut file, chunk, chunk.len() as u32).unwrap();
        }
        assert_eq!(file.len(), data.len() as u64);
        let read = store.read_range(&file, 0, data.len()).unwrap();
        assert_eq!(read, data);
        // An interior slice straddling a page boundary.
        let slice = store.read_range(&file, page as u64 - 10, 30).unwrap();
        assert_eq!(slice, &data[page - 10..page + 20]);
        assert!(store.clock() > Nanos::ZERO, "device time must be charged");
        assert!(store.io_stats().pages_written >= 3);
    }

    #[test]
    fn tail_page_rewrites_cost_extra_programs() {
        let mut store = store();
        let mut file = SegmentFile::new();
        for _ in 0..10 {
            store.append(&mut file, &[7u8; 16], 16).unwrap();
        }
        // Ten small appends into one page: ten programs of the same LPN.
        assert_eq!(store.io_stats().pages_written, 10);
        assert_eq!(file.pages(), 1);
    }

    #[test]
    fn alloc_free_coalesces_and_reuses() {
        let mut store = store();
        let total = store.free_pages();
        let a = store.alloc_run(4).unwrap();
        let b = store.alloc_run(4).unwrap();
        assert_eq!(store.free_pages(), total - 8);
        store.free_extents(&a);
        store.free_extents(&b);
        assert_eq!(store.free_pages(), total);
        assert_eq!(store.free.len(), 1, "adjacent frees must coalesce");
        // Allocating everything succeeds; one more page does not.
        let all = store.alloc_run(total).unwrap();
        assert!(matches!(store.alloc_run(1), Err(KvError::OutOfSpace)));
        store.free_extents(&all);
    }

    #[test]
    fn superblock_round_trips_and_marks_the_store_formatted() {
        let mut store = store();
        assert!(!store.has_superblock());
        store.write_superblock(b"vflash-kv superblock").unwrap();
        assert!(store.has_superblock());
        let payload = store.read_superblock().unwrap();
        assert_eq!(&payload[..20], b"vflash-kv superblock");
    }

    #[test]
    fn batched_io_round_trips_and_runs_faster_on_multiple_chips() {
        let multi_chip = || {
            let config = NandConfig::builder()
                .chips(4)
                .blocks_per_chip(16)
                .pages_per_block(16)
                .page_size_bytes(4096)
                .build()
                .unwrap();
            let device = NandDevice::new(config);
            FlashStore::new(ConventionalFtl::new(device, FtlConfig::default()).unwrap())
        };
        let data: Vec<u8> = (0..4096 * 12).map(|i| (i % 249) as u8).collect();

        let mut serial = multi_chip();
        let mut serial_file = SegmentFile::new();
        serial.append(&mut serial_file, &data, data.len() as u32).unwrap();
        let read_start = serial.clock();
        let serial_bytes = serial.read_range(&serial_file, 0, data.len()).unwrap();
        let serial_read_time = serial.clock() - read_start;

        let mut batched = multi_chip();
        batched.set_io_depth(8);
        let mut batched_file = SegmentFile::new();
        batched.append(&mut batched_file, &data, data.len() as u32).unwrap();
        let read_start = batched.clock();
        let batched_bytes = batched.read_range(&batched_file, 0, data.len()).unwrap();
        let batched_read_time = batched.clock() - read_start;

        assert_eq!(serial_bytes, data);
        assert_eq!(batched_bytes, data, "batching must not change the bytes");
        assert_eq!(
            batched.io_stats(),
            serial.io_stats(),
            "batching changes time accounting, not page traffic"
        );
        assert!(
            batched.clock() < serial.clock(),
            "4 chips at depth 8 must beat the serial clock ({} vs {})",
            batched.clock(),
            serial.clock()
        );
        assert!(batched_read_time < serial_read_time);
        let metrics = batched.ftl().metrics();
        assert!(metrics.batched_submissions > 0);
        assert_eq!(
            metrics.batched_pages,
            batched.io_stats().pages_written + batched.io_stats().pages_read,
            "every page of this run went through the batched path"
        );
        let serial_metrics = serial.ftl().metrics();
        assert_eq!(serial_metrics.batched_submissions, 0, "depth 1 never batches");
        // State evolution is identical: same physical traffic, same GC.
        assert_eq!(serial_metrics.host_writes, metrics.host_writes);
        assert_eq!(serial_metrics.gc_copied_pages, metrics.gc_copied_pages);
    }

    #[test]
    fn read_pages_concatenates_whole_pages() {
        let mut store = store();
        let page = store.page_size();
        let mut file = SegmentFile::new();
        let data: Vec<u8> = (0..page * 3).map(|i| (i % 241) as u8).collect();
        store.append(&mut file, &data, data.len() as u32).unwrap();
        let lpns: Vec<u64> = (0..3).map(|i| file.lpn_at(i).unwrap()).collect();
        assert_eq!(store.read_pages(&lpns).unwrap(), data);
        assert!(matches!(store.read_pages(&[9999]), Err(KvError::Corruption(_))));
    }

    #[test]
    fn reads_past_the_end_and_of_unwritten_pages_are_corruption() {
        let mut store = store();
        let mut file = SegmentFile::new();
        store.append(&mut file, &[1, 2, 3], 3).unwrap();
        assert!(matches!(store.read_range(&file, 0, 4), Err(KvError::Corruption(_))));
        assert!(matches!(store.read_page(5), Err(KvError::Corruption(_))));
    }
}
