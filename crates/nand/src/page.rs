//! Page state tracking.

use std::fmt;

/// The lifecycle state of a physical page.
///
/// NAND pages move `Free -> Valid -> Invalid` and only return to `Free` when their
/// whole block is erased (erase-before-write).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PageState {
    /// The page has been erased and not programmed since.
    #[default]
    Free,
    /// The page holds live data referenced by the mapping table.
    Valid,
    /// The page holds stale data superseded by an out-of-place update.
    Invalid,
}

impl PageState {
    /// A short human-readable label for diagnostics.
    pub const fn label(self) -> &'static str {
        match self {
            PageState::Free => "free",
            PageState::Valid => "valid",
            PageState::Invalid => "invalid",
        }
    }
}

impl fmt::Display for PageState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A physical page: currently just its state.
///
/// The device model deliberately does not store user data or logical addresses — the
/// FTL layers above own those mappings — so the per-page footprint stays minimal even
/// for multi-million-page devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Page {
    state: PageState,
}

impl Page {
    /// A freshly erased page.
    pub const fn new() -> Self {
        Page { state: PageState::Free }
    }

    /// Current state.
    pub const fn state(&self) -> PageState {
        self.state
    }

    /// Whether this page can still be programmed.
    pub const fn is_free(&self) -> bool {
        matches!(self.state, PageState::Free)
    }

    /// Whether this page holds live data.
    pub const fn is_valid(&self) -> bool {
        matches!(self.state, PageState::Valid)
    }

    /// Whether this page holds stale data.
    pub const fn is_invalid(&self) -> bool {
        matches!(self.state, PageState::Invalid)
    }

    pub(crate) fn set_state(&mut self, state: PageState) {
        self.state = state;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_page_is_free() {
        let page = Page::new();
        assert!(page.is_free());
        assert!(!page.is_valid());
        assert!(!page.is_invalid());
        assert_eq!(page.state(), PageState::Free);
    }

    #[test]
    fn state_transitions_reflected_by_predicates() {
        let mut page = Page::new();
        page.set_state(PageState::Valid);
        assert!(page.is_valid());
        page.set_state(PageState::Invalid);
        assert!(page.is_invalid());
        page.set_state(PageState::Free);
        assert!(page.is_free());
    }

    #[test]
    fn labels_are_lowercase() {
        assert_eq!(PageState::Free.to_string(), "free");
        assert_eq!(PageState::Valid.to_string(), "valid");
        assert_eq!(PageState::Invalid.to_string(), "invalid");
    }
}
