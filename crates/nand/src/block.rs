//! Physical block state: sequential programming, validity accounting and wear.

use std::fmt;

use crate::address::PageId;
use crate::error::NandError;
use crate::page::{Page, PageState};

/// Aggregate state of a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockState {
    /// All pages are free (the block was just erased or never programmed).
    Free,
    /// Some pages have been programmed and free pages remain.
    Open,
    /// Every page has been programmed (valid or invalid); the block must be erased
    /// before it can accept new writes.
    Full,
    /// The block was retired after a program/erase failure (or marked bad at the
    /// factory). Remaining valid pages stay readable and can still be
    /// invalidated, but the block can never be programmed, erased or allocated
    /// again.
    Bad,
}

impl fmt::Display for BlockState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = match self {
            BlockState::Free => "free",
            BlockState::Open => "open",
            BlockState::Full => "full",
            BlockState::Bad => "bad",
        };
        f.write_str(label)
    }
}

/// A physical erase block: an ordered run of pages sharing one vertical channel.
///
/// The block enforces the two fundamental NAND constraints:
///
/// * **sequential programming** — pages must be programmed in increasing page order
///   (`write_pointer` tracks the next programmable page), and
/// * **erase-before-write** — a page can only return to [`PageState::Free`] through a
///   whole-block erase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    pages: Vec<Page>,
    write_pointer: usize,
    valid_pages: usize,
    erase_count: u64,
    last_modified: u64,
    area_tag: Option<u8>,
    bad: bool,
}

impl Block {
    /// Creates an erased block with `pages_per_block` pages.
    ///
    /// # Panics
    ///
    /// Panics if `pages_per_block` is zero.
    pub fn new(pages_per_block: usize) -> Self {
        assert!(pages_per_block > 0, "a block needs at least one page");
        Block {
            pages: vec![Page::new(); pages_per_block],
            write_pointer: 0,
            valid_pages: 0,
            erase_count: 0,
            last_modified: 0,
            area_tag: None,
            bad: false,
        }
    }

    /// Number of pages in the block.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether the block holds zero pages. Always false for a constructed block; the
    /// method exists for API completeness alongside [`Block::len`].
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// The state of one page.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::PageOutOfRange`] if `page` is outside the block.
    pub fn page_state(&self, page: PageId) -> Result<PageState, NandError> {
        self.pages
            .get(page.0)
            .map(Page::state)
            .ok_or(NandError::PageOutOfRange { page, pages_per_block: self.pages.len() })
    }

    /// Aggregate block state. A retired block is [`BlockState::Bad`] no matter
    /// where its write pointer stopped.
    pub fn state(&self) -> BlockState {
        if self.bad {
            BlockState::Bad
        } else if self.write_pointer == 0 {
            BlockState::Free
        } else if self.write_pointer < self.pages.len() {
            BlockState::Open
        } else {
            BlockState::Full
        }
    }

    /// Whether the block has been retired as bad (see [`BlockState::Bad`]).
    pub fn is_bad(&self) -> bool {
        self.bad
    }

    /// Retires the block. Irreversible: erases are rejected at the device layer,
    /// so the block never returns to service. Page states are left as they are —
    /// surviving valid pages stay readable until the FTL relocates them.
    pub(crate) fn mark_bad(&mut self) {
        self.bad = true;
    }

    /// The next page that a program operation must target, or `None` if the block is
    /// full or has been retired as bad.
    pub fn next_page(&self) -> Option<PageId> {
        if self.bad {
            None
        } else if self.write_pointer < self.pages.len() {
            Some(PageId(self.write_pointer))
        } else {
            None
        }
    }

    /// Number of pages holding live data.
    pub fn valid_pages(&self) -> usize {
        self.valid_pages
    }

    /// Number of pages holding stale data.
    pub fn invalid_pages(&self) -> usize {
        self.write_pointer - self.valid_pages
    }

    /// Number of pages still available for programming.
    pub fn free_pages(&self) -> usize {
        self.pages.len() - self.write_pointer
    }

    /// How many times this block has been erased (wear).
    pub fn erase_count(&self) -> u64 {
        self.erase_count
    }

    /// The device's logical modification clock
    /// ([`NandDevice::mod_seq`](crate::NandDevice::mod_seq)) at the last program,
    /// invalidation or erase of this block. Cost-benefit garbage collection uses
    /// `mod_seq - last_modified` as the block's *age*: blocks whose contents have
    /// been stable for long are cheap to clean because their remaining valid data
    /// is unlikely to be invalidated soon.
    pub fn last_modified(&self) -> u64 {
        self.last_modified
    }

    /// Stamps the block with the device's current modification clock.
    pub(crate) fn touch(&mut self, seq: u64) {
        self.last_modified = seq;
    }

    /// The FTL-assigned data-area tag of this block, or `None` if the block has not
    /// been tagged since its last erase.
    ///
    /// The tag is an opaque host-side label (the PPB strategy uses it to mark
    /// blocks as hot-area or cold-area); the device only stores it and clears it on
    /// erase, mirroring how real SSD firmware keeps per-block metadata that dies
    /// with the block's contents. Hotness-aware garbage-collection victim policies
    /// read it through [`NandDevice::block`](crate::NandDevice::block).
    pub fn area_tag(&self) -> Option<u8> {
        self.area_tag
    }

    /// Sets or clears the data-area tag (see [`Block::area_tag`]).
    pub(crate) fn set_area_tag(&mut self, tag: Option<u8>) {
        self.area_tag = tag;
    }

    /// Whether every programmed page is stale, making the block an ideal, copy-free
    /// garbage-collection victim.
    pub fn is_fully_invalid(&self) -> bool {
        self.state() == BlockState::Full && self.valid_pages == 0
    }

    /// Programs the page at the write pointer, marking it valid.
    ///
    /// # Errors
    ///
    /// * [`NandError::BlockFull`]-like conditions are reported by the device layer,
    ///   which knows the block address; here a full block returns
    ///   `Err(NandError::PageOutOfRange)` only through [`Block::program`].
    pub(crate) fn program_next(&mut self) -> Option<PageId> {
        let page = self.next_page()?;
        self.pages[page.0].set_state(PageState::Valid);
        self.write_pointer += 1;
        self.valid_pages += 1;
        Some(page)
    }

    /// Marks a valid page as invalid (out-of-place update or relocation source).
    pub(crate) fn invalidate(&mut self, page: PageId) -> Result<(), PageState> {
        match self.pages[page.0].state() {
            PageState::Valid => {
                self.pages[page.0].set_state(PageState::Invalid);
                self.valid_pages -= 1;
                Ok(())
            }
            other => Err(other),
        }
    }

    /// Erases the block, freeing every page, incrementing the wear counter and
    /// clearing the data-area tag (tags describe contents, and the contents are
    /// gone).
    pub(crate) fn erase(&mut self) {
        for page in &mut self.pages {
            page.set_state(PageState::Free);
        }
        self.write_pointer = 0;
        self.valid_pages = 0;
        self.erase_count += 1;
        self.area_tag = None;
    }

    /// Iterates over page ids of valid pages (ascending).
    pub fn valid_page_ids(&self) -> impl Iterator<Item = PageId> + '_ {
        self.pages
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_valid())
            .map(|(i, _)| PageId(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_block_is_free() {
        let block = Block::new(8);
        assert_eq!(block.state(), BlockState::Free);
        assert_eq!(block.next_page(), Some(PageId(0)));
        assert_eq!(block.free_pages(), 8);
        assert_eq!(block.valid_pages(), 0);
        assert_eq!(block.erase_count(), 0);
    }

    #[test]
    fn programming_advances_write_pointer_in_order() {
        let mut block = Block::new(4);
        assert_eq!(block.program_next(), Some(PageId(0)));
        assert_eq!(block.program_next(), Some(PageId(1)));
        assert_eq!(block.state(), BlockState::Open);
        assert_eq!(block.program_next(), Some(PageId(2)));
        assert_eq!(block.program_next(), Some(PageId(3)));
        assert_eq!(block.state(), BlockState::Full);
        assert_eq!(block.program_next(), None);
    }

    #[test]
    fn invalidate_only_applies_to_valid_pages() {
        let mut block = Block::new(4);
        block.program_next();
        assert!(block.invalidate(PageId(0)).is_ok());
        assert_eq!(block.invalidate(PageId(0)), Err(PageState::Invalid));
        assert_eq!(block.invalidate(PageId(2)), Err(PageState::Free));
        assert_eq!(block.valid_pages(), 0);
        assert_eq!(block.invalid_pages(), 1);
    }

    #[test]
    fn erase_resets_state_and_counts_wear() {
        let mut block = Block::new(4);
        for _ in 0..4 {
            block.program_next();
        }
        for i in 0..4 {
            block.invalidate(PageId(i)).unwrap();
        }
        assert!(block.is_fully_invalid());
        block.erase();
        assert_eq!(block.state(), BlockState::Free);
        assert_eq!(block.erase_count(), 1);
        assert_eq!(block.free_pages(), 4);
        assert_eq!(block.page_state(PageId(0)).unwrap(), PageState::Free);
    }

    #[test]
    fn valid_page_ids_lists_only_live_pages() {
        let mut block = Block::new(6);
        for _ in 0..5 {
            block.program_next();
        }
        block.invalidate(PageId(1)).unwrap();
        block.invalidate(PageId(3)).unwrap();
        let ids: Vec<_> = block.valid_page_ids().collect();
        assert_eq!(ids, vec![PageId(0), PageId(2), PageId(4)]);
    }

    #[test]
    fn page_state_out_of_range_is_an_error() {
        let block = Block::new(4);
        assert!(matches!(
            block.page_state(PageId(4)),
            Err(NandError::PageOutOfRange { .. })
        ));
    }

    #[test]
    fn area_tags_stick_until_erase() {
        let mut block = Block::new(4);
        assert_eq!(block.area_tag(), None);
        block.set_area_tag(Some(1));
        block.program_next();
        block.invalidate(PageId(0)).unwrap();
        assert_eq!(block.area_tag(), Some(1), "programs and invalidations keep the tag");
        block.set_area_tag(Some(0));
        assert_eq!(block.area_tag(), Some(0), "retagging overwrites");
        block.erase();
        assert_eq!(block.area_tag(), None, "erase clears the tag with the contents");
    }

    #[test]
    fn bad_blocks_trump_every_other_state() {
        let mut block = Block::new(4);
        block.program_next();
        block.program_next();
        assert_eq!(block.state(), BlockState::Open);
        block.mark_bad();
        assert!(block.is_bad());
        assert_eq!(block.state(), BlockState::Bad);
        assert_eq!(block.next_page(), None, "bad blocks accept no programs");
        assert_eq!(block.program_next(), None);
        // Surviving data stays readable and invalidatable.
        assert_eq!(block.page_state(PageId(0)).unwrap(), PageState::Valid);
        assert!(block.invalidate(PageId(0)).is_ok());
        assert!(block.invalidate(PageId(1)).is_ok());
        assert!(!block.is_fully_invalid(), "bad blocks are not copy-free GC victims");
        assert_eq!(BlockState::Bad.to_string(), "bad");
    }

    #[test]
    fn counts_always_sum_to_len() {
        let mut block = Block::new(10);
        for _ in 0..7 {
            block.program_next();
        }
        block.invalidate(PageId(2)).unwrap();
        block.invalidate(PageId(5)).unwrap();
        assert_eq!(
            block.valid_pages() + block.invalid_pages() + block.free_pages(),
            block.len()
        );
    }
}
