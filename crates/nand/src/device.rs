//! The device: chips + latency model + flash state machine.

use crate::address::{BlockAddr, ChipId, PageAddr, PageId};
use crate::block::{Block, BlockState};
use crate::chip::Chip;
use crate::config::NandConfig;
use crate::error::NandError;
use crate::latency::LatencyModel;
use crate::stats::DeviceStats;
use crate::time::Nanos;

/// A 3D charge-trap NAND device: an array of chips with an asymmetric per-layer
/// latency model and cumulative statistics.
///
/// Every operation returns the latency it would take on real hardware, so callers
/// (FTLs, simulators) can account time without the device owning a clock.
///
/// # Example
///
/// ```
/// use vflash_nand::{NandConfig, NandDevice};
///
/// # fn main() -> Result<(), vflash_nand::NandError> {
/// let mut device = NandDevice::new(NandConfig::small());
/// let block = device.any_free_block().expect("fresh device");
/// let (page, latency) = device.program_next(block)?;
/// assert!(latency > vflash_nand::Nanos::ZERO);
/// device.invalidate(block.page(page))?;
/// let erase_latency = device.erase(block)?;
/// assert_eq!(erase_latency, device.config().erase_latency());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NandDevice {
    config: NandConfig,
    latency: LatencyModel,
    chips: Vec<Chip>,
    stats: DeviceStats,
}

impl NandDevice {
    /// Builds a device with every block erased.
    pub fn new(config: NandConfig) -> Self {
        let latency = config.latency_model();
        let chips = (0..config.chips())
            .map(|_| Chip::new(config.blocks_per_chip(), config.pages_per_block()))
            .collect();
        NandDevice { config, latency, chips, stats: DeviceStats::new() }
    }

    /// The configuration this device was built from.
    pub fn config(&self) -> &NandConfig {
        &self.config
    }

    /// The per-layer latency model.
    pub fn latency(&self) -> &LatencyModel {
        &self.latency
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// Resets the cumulative statistics to zero without touching flash state.
    pub fn reset_stats(&mut self) {
        self.stats = DeviceStats::new();
    }

    /// Immutable access to one chip.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::ChipOutOfRange`] for an invalid chip id.
    pub fn chip(&self, chip: ChipId) -> Result<&Chip, NandError> {
        self.chips
            .get(chip.0)
            .ok_or(NandError::ChipOutOfRange { chip: chip.0, chips: self.chips.len() })
    }

    /// Immutable access to one block.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::ChipOutOfRange`] or [`NandError::BlockOutOfRange`] for
    /// invalid addresses.
    pub fn block(&self, addr: BlockAddr) -> Result<&Block, NandError> {
        let chip = self.chip(addr.chip())?;
        chip.block(addr.index()).ok_or(NandError::BlockOutOfRange {
            block: addr,
            blocks_per_chip: self.config.blocks_per_chip(),
        })
    }

    fn block_mut(&mut self, addr: BlockAddr) -> Result<&mut Block, NandError> {
        let chips = self.chips.len();
        let blocks_per_chip = self.config.blocks_per_chip();
        let chip = self
            .chips
            .get_mut(addr.chip().0)
            .ok_or(NandError::ChipOutOfRange { chip: addr.chip().0, chips })?;
        chip.block_mut(addr.index())
            .ok_or(NandError::BlockOutOfRange { block: addr, blocks_per_chip })
    }

    /// Iterates over the addresses of all blocks in the device, chip by chip.
    pub fn block_addrs(&self) -> impl Iterator<Item = BlockAddr> + '_ {
        let blocks_per_chip = self.config.blocks_per_chip();
        (0..self.chips.len()).flat_map(move |c| {
            (0..blocks_per_chip).map(move |b| BlockAddr::new(ChipId(c), b))
        })
    }

    /// Returns the address of any block in the [`BlockState::Free`] state, scanning
    /// chips round-robin, or `None` if no free block exists.
    pub fn any_free_block(&self) -> Option<BlockAddr> {
        self.block_addrs().find(|&addr| {
            self.block(addr).map(|b| b.state() == BlockState::Free).unwrap_or(false)
        })
    }

    /// Number of blocks currently free (fully erased).
    pub fn free_block_count(&self) -> usize {
        self.chips.iter().map(Chip::free_blocks).sum()
    }

    /// Total erase operations performed across the device (total wear).
    pub fn total_erases(&self) -> u64 {
        self.chips.iter().map(Chip::total_erases).sum()
    }

    /// Reads a page, returning the latency (cell sensing + bus transfer).
    ///
    /// # Errors
    ///
    /// * Address errors for out-of-range chips/blocks/pages.
    /// * [`NandError::PageNotValid`] if the page does not hold live data.
    pub fn read(&mut self, addr: PageAddr) -> Result<Nanos, NandError> {
        let pages_per_block = self.config.pages_per_block();
        if addr.page().0 >= pages_per_block {
            return Err(NandError::PageOutOfRange { page: addr.page(), pages_per_block });
        }
        let block = self.block(addr.block())?;
        let state = block.page_state(addr.page())?;
        if !matches!(state, crate::page::PageState::Valid) {
            return Err(NandError::PageNotValid { page: addr, actual: state.label() });
        }
        let latency = self.latency.read_total(addr.page());
        self.stats.record_read(latency);
        Ok(latency)
    }

    /// Programs a specific page of a block, returning the latency.
    ///
    /// The page must be exactly the block's next free page; 3D NAND blocks are
    /// programmed strictly in layer order.
    ///
    /// # Errors
    ///
    /// * Address errors for out-of-range chips/blocks/pages.
    /// * [`NandError::BlockFull`] if the block has no free pages.
    /// * [`NandError::ProgramOrderViolation`] if `page` is not the next free page.
    pub fn program(&mut self, block: BlockAddr, page: PageId) -> Result<Nanos, NandError> {
        let pages_per_block = self.config.pages_per_block();
        if page.0 >= pages_per_block {
            return Err(NandError::PageOutOfRange { page, pages_per_block });
        }
        {
            let blk = self.block(block)?;
            match blk.next_page() {
                None => return Err(NandError::BlockFull { block }),
                Some(expected) if expected != page => {
                    return Err(NandError::ProgramOrderViolation {
                        block,
                        requested: page,
                        expected,
                    })
                }
                Some(_) => {}
            }
        }
        self.block_mut(block)?.program_next();
        let latency = self.latency.program_total(page);
        self.stats.record_program(latency);
        Ok(latency)
    }

    /// Programs the next free page of a block, returning the page id chosen and the
    /// latency.
    ///
    /// # Errors
    ///
    /// * Address errors for out-of-range chips/blocks.
    /// * [`NandError::BlockFull`] if the block has no free pages.
    pub fn program_next(&mut self, block: BlockAddr) -> Result<(PageId, Nanos), NandError> {
        let next = self
            .block(block)?
            .next_page()
            .ok_or(NandError::BlockFull { block })?;
        let latency = self.program(block, next)?;
        Ok((next, latency))
    }

    /// Marks a valid page as invalid (stale). This models the mapping-table update of
    /// an out-of-place write and takes no device time.
    ///
    /// # Errors
    ///
    /// * Address errors for out-of-range chips/blocks/pages.
    /// * [`NandError::PageNotValid`] if the page is free or already invalid.
    pub fn invalidate(&mut self, addr: PageAddr) -> Result<(), NandError> {
        let pages_per_block = self.config.pages_per_block();
        if addr.page().0 >= pages_per_block {
            return Err(NandError::PageOutOfRange { page: addr.page(), pages_per_block });
        }
        // Confirm the block exists first so the error is about addressing, not state.
        self.block(addr.block())?;
        let block = self.block_mut(addr.block())?;
        block
            .invalidate(addr.page())
            .map_err(|state| NandError::PageNotValid { page: addr, actual: state.label() })
    }

    /// Erases a block, returning the erase latency.
    ///
    /// The caller (normally the garbage collector) must have relocated or invalidated
    /// every valid page first; erasing live data is almost always an FTL bug, so it is
    /// rejected rather than silently performed.
    ///
    /// # Errors
    ///
    /// * Address errors for out-of-range chips/blocks.
    /// * [`NandError::EraseWithValidPages`] if live pages remain in the block.
    pub fn erase(&mut self, block: BlockAddr) -> Result<Nanos, NandError> {
        let valid = self.block(block)?.valid_pages();
        if valid > 0 {
            return Err(NandError::EraseWithValidPages { block, valid_pages: valid });
        }
        self.block_mut(block)?.erase();
        let latency = self.latency.erase_latency();
        self.stats.record_erase(latency);
        Ok(latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::SpeedProfile;

    fn small_device() -> NandDevice {
        let config = NandConfig::builder()
            .chips(2)
            .blocks_per_chip(4)
            .pages_per_block(4)
            .page_size_bytes(4096)
            .speed_ratio(4.0)
            .speed_profile(SpeedProfile::Linear)
            .build()
            .unwrap();
        NandDevice::new(config)
    }

    #[test]
    fn fresh_device_is_fully_free() {
        let device = small_device();
        assert_eq!(device.free_block_count(), 8);
        assert_eq!(device.total_erases(), 0);
        assert!(device.any_free_block().is_some());
        assert_eq!(device.block_addrs().count(), 8);
    }

    #[test]
    fn read_requires_valid_page() {
        let mut device = small_device();
        let block = device.any_free_block().unwrap();
        let err = device.read(block.page(PageId(0))).unwrap_err();
        assert!(matches!(err, NandError::PageNotValid { .. }));
        device.program(block, PageId(0)).unwrap();
        assert!(device.read(block.page(PageId(0))).is_ok());
    }

    #[test]
    fn program_enforces_layer_order() {
        let mut device = small_device();
        let block = device.any_free_block().unwrap();
        let err = device.program(block, PageId(2)).unwrap_err();
        assert!(matches!(err, NandError::ProgramOrderViolation { .. }));
        device.program(block, PageId(0)).unwrap();
        device.program(block, PageId(1)).unwrap();
        device.program(block, PageId(2)).unwrap();
        device.program(block, PageId(3)).unwrap();
        assert!(matches!(
            device.program(block, PageId(3)),
            Err(NandError::BlockFull { .. })
        ));
    }

    #[test]
    fn bottom_pages_are_faster_than_top_pages() {
        let mut device = small_device();
        let block = device.any_free_block().unwrap();
        let top = device.program(block, PageId(0)).unwrap();
        device.program(block, PageId(1)).unwrap();
        device.program(block, PageId(2)).unwrap();
        let bottom = device.program(block, PageId(3)).unwrap();
        assert!(bottom < top, "bottom program {bottom} should beat top {top}");

        let top_read = device.read(block.page(PageId(0))).unwrap();
        let bottom_read = device.read(block.page(PageId(3))).unwrap();
        assert!(bottom_read < top_read);
    }

    #[test]
    fn erase_rejects_blocks_with_live_data() {
        let mut device = small_device();
        let block = device.any_free_block().unwrap();
        device.program(block, PageId(0)).unwrap();
        assert!(matches!(
            device.erase(block),
            Err(NandError::EraseWithValidPages { valid_pages: 1, .. })
        ));
        device.invalidate(block.page(PageId(0))).unwrap();
        assert_eq!(device.erase(block).unwrap(), device.config().erase_latency());
        assert_eq!(device.total_erases(), 1);
        // The block is usable again.
        assert!(device.program(block, PageId(0)).is_ok());
    }

    #[test]
    fn invalidate_twice_is_an_error() {
        let mut device = small_device();
        let block = device.any_free_block().unwrap();
        device.program(block, PageId(0)).unwrap();
        device.invalidate(block.page(PageId(0))).unwrap();
        assert!(matches!(
            device.invalidate(block.page(PageId(0))),
            Err(NandError::PageNotValid { actual: "invalid", .. })
        ));
    }

    #[test]
    fn addressing_errors_are_reported() {
        let mut device = small_device();
        let bad_chip = BlockAddr::new(ChipId(9), 0);
        assert!(matches!(device.read(bad_chip.page(PageId(0))), Err(NandError::ChipOutOfRange { .. })));
        let bad_block = BlockAddr::new(ChipId(0), 99);
        assert!(matches!(device.program(bad_block, PageId(0)), Err(NandError::BlockOutOfRange { .. })));
        let good_block = device.any_free_block().unwrap();
        assert!(matches!(
            device.program(good_block, PageId(99)),
            Err(NandError::PageOutOfRange { .. })
        ));
    }

    #[test]
    fn stats_track_operations_and_time() {
        let mut device = small_device();
        let block = device.any_free_block().unwrap();
        let p = device.program(block, PageId(0)).unwrap();
        let r = device.read(block.page(PageId(0))).unwrap();
        device.invalidate(block.page(PageId(0))).unwrap();
        let e = device.erase(block).unwrap();
        let stats = device.stats();
        assert_eq!(stats.counts.reads, 1);
        assert_eq!(stats.counts.programs, 1);
        assert_eq!(stats.counts.erases, 1);
        assert_eq!(stats.busy_time(), p + r + e);
        device.reset_stats();
        assert_eq!(device.stats().counts.page_ops(), 0);
    }

    #[test]
    fn program_next_walks_the_block() {
        let mut device = small_device();
        let block = device.any_free_block().unwrap();
        for expected in 0..4 {
            let (page, _) = device.program_next(block).unwrap();
            assert_eq!(page, PageId(expected));
        }
        assert!(matches!(device.program_next(block), Err(NandError::BlockFull { .. })));
    }
}
