//! The device: chips + latency model + flash state machine.

use crate::address::{BlockAddr, ChipId, PageAddr, PageId};
use crate::block::Block;
use crate::chip::Chip;
use crate::config::NandConfig;
use crate::error::NandError;
use crate::fault::{FaultState, ReadFaultInfo};
use crate::latency::LatencyModel;
use crate::provenance::{OpKind, OpRecord, OpSpan};
use crate::stats::DeviceStats;
use crate::time::Nanos;

/// A 3D charge-trap NAND device: an array of chips with an asymmetric per-layer
/// latency model and cumulative statistics.
///
/// Every operation returns the latency it would take on real hardware, so callers
/// (FTLs, simulators) can account time without the device owning a clock.
///
/// # Free-block accounting
///
/// Each chip maintains a free-block pool and per-state counters, so
/// [`NandDevice::allocate_block`], [`NandDevice::any_free_block`],
/// [`NandDevice::free_block_count`] and [`NandDevice::available_blocks`] are O(1)
/// (amortised) instead of scanning every block, and
/// [`NandDevice::gc_candidates`] yields exactly the blocks a garbage collector can
/// reclaim with benefit (full, at least one invalid page) in O(candidates).
///
/// # Chip-level interleaving
///
/// Chips are independent dies behind a shared channel: operations on *different*
/// chips overlap in time, while operations on the same chip serialise. The device
/// models this with a per-chip busy clock — every operation adds its latency to
/// its chip's clock, and [`NandDevice::makespan`] (the maximum clock) is the time
/// at which a device servicing the whole operation stream with perfect chip
/// interleaving would go idle. The serial sum remains available as
/// [`DeviceStats::busy_time`]. [`NandDevice::allocate_block`] hands out blocks
/// round-robin across chips so consecutive writes actually land on different
/// chips and can overlap.
///
/// # Example
///
/// ```
/// use vflash_nand::{NandConfig, NandDevice};
///
/// # fn main() -> Result<(), vflash_nand::NandError> {
/// let mut device = NandDevice::new(NandConfig::small());
/// let block = device.any_free_block().expect("fresh device");
/// let (page, latency) = device.program_next(block)?;
/// assert!(latency > vflash_nand::Nanos::ZERO);
/// device.invalidate(block.page(page))?;
/// let erase_latency = device.erase(block)?;
/// assert_eq!(erase_latency, device.config().erase_latency());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NandDevice {
    config: NandConfig,
    latency: LatencyModel,
    chips: Vec<Chip>,
    stats: DeviceStats,
    /// Next chip to try for round-robin block allocation.
    next_alloc_chip: usize,
    /// Logical modification clock: incremented by every state-changing operation
    /// (program, invalidate, erase). Blocks record the clock at their last change,
    /// which is what cost-benefit garbage collection uses as block age.
    mod_seq: u64,
    /// Whether timed operations are recorded into `op_trace`.
    trace_ops: bool,
    /// The op arena: provenance of timed operations since the last
    /// [`NandDevice::clear_ops`], only populated while `trace_ops` is set.
    /// FTLs hand out [`OpSpan`] index ranges into this buffer instead of
    /// per-request vectors, so steady-state tracing never allocates.
    op_trace: Vec<OpRecord>,
    /// The deterministic fault model, present only when
    /// [`FaultConfig::enabled`](crate::FaultConfig::enabled) is set — so the
    /// fault-free hot paths cost one `Option` branch and stay bit-identical to
    /// their golden baselines.
    fault: Option<FaultState>,
    /// Fault outcome of the most recent read (see
    /// [`NandDevice::last_read_faults`]).
    last_read_faults: ReadFaultInfo,
}

impl NandDevice {
    /// Builds a device with every block erased.
    pub fn new(config: NandConfig) -> Self {
        let latency = config.latency_model();
        let chips = (0..config.chips())
            .map(|_| Chip::new(config.blocks_per_chip(), config.pages_per_block()))
            .collect();
        let fault = config
            .faults()
            .enabled
            .then(|| FaultState::new(*config.faults(), config.chips()));
        NandDevice {
            config,
            latency,
            chips,
            stats: DeviceStats::new(),
            next_alloc_chip: 0,
            mod_seq: 0,
            trace_ops: false,
            op_trace: Vec::new(),
            fault,
            last_read_faults: ReadFaultInfo::default(),
        }
    }

    /// The configuration this device was built from.
    pub fn config(&self) -> &NandConfig {
        &self.config
    }

    /// The per-layer latency model.
    pub fn latency(&self) -> &LatencyModel {
        &self.latency
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// Resets the cumulative statistics to zero without touching flash state.
    pub fn reset_stats(&mut self) {
        self.stats = DeviceStats::new();
    }

    /// The logical modification clock: a counter incremented by every
    /// state-changing operation (program, invalidate, erase). The difference
    /// between this and a block's [`Block::last_modified`] is the block's *age* in
    /// the cost-benefit garbage-collection sense.
    pub fn mod_seq(&self) -> u64 {
        self.mod_seq
    }

    /// Enables or disables op-provenance tracing (see [`OpRecord`]). Toggling
    /// clears the op arena, so the first span taken after enabling only covers
    /// operations performed since.
    ///
    /// Off by default: when disabled, operations cost one predictable branch,
    /// [`NandDevice::op_mark`] stays pinned at zero and every span is empty.
    pub fn set_op_tracing(&mut self, enabled: bool) {
        self.trace_ops = enabled;
        self.op_trace.clear();
    }

    /// Whether op-provenance tracing is currently enabled.
    pub fn op_tracing(&self) -> bool {
        self.trace_ops
    }

    /// The current high-water mark of the op arena. An FTL captures this at the
    /// top of a request and turns everything recorded since into a span with
    /// [`NandDevice::ops_since`].
    pub fn op_mark(&self) -> u32 {
        self.op_trace.len() as u32
    }

    /// The span of operations recorded since `mark` (a value previously taken
    /// from [`NandDevice::op_mark`]). Empty when tracing is disabled.
    pub fn ops_since(&self, mark: u32) -> OpSpan {
        OpSpan { start: mark, len: self.op_trace.len() as u32 - mark }
    }

    /// Resolves a span back to its records. The span must come from this device
    /// and the arena must not have been cleared since it was taken.
    ///
    /// # Panics
    ///
    /// Panics if the span reaches past the end of the arena (a stale span from
    /// before a [`NandDevice::clear_ops`], or one from a different device).
    pub fn ops(&self, span: OpSpan) -> &[OpRecord] {
        &self.op_trace[span.range()]
    }

    /// Releases the op arena. Replayers call this once a completion's records
    /// have been played; the backing buffer keeps its capacity, so steady-state
    /// tracing performs no allocation at all. All previously taken spans become
    /// stale.
    pub fn clear_ops(&mut self) {
        self.op_trace.clear();
    }

    fn record_op(&mut self, chip: ChipId, kind: OpKind, latency: Nanos) {
        if self.trace_ops {
            self.op_trace.push(OpRecord::new(chip, kind, latency));
        }
    }

    /// Immutable access to one chip.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::ChipOutOfRange`] for an invalid chip id.
    pub fn chip(&self, chip: ChipId) -> Result<&Chip, NandError> {
        self.chips
            .get(chip.0)
            .ok_or(NandError::ChipOutOfRange { chip: chip.0, chips: self.chips.len() })
    }

    /// Immutable access to one block.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::ChipOutOfRange`] or [`NandError::BlockOutOfRange`] for
    /// invalid addresses.
    pub fn block(&self, addr: BlockAddr) -> Result<&Block, NandError> {
        let chip = self.chip(addr.chip())?;
        chip.block(addr.index()).ok_or(NandError::BlockOutOfRange {
            block: addr,
            blocks_per_chip: self.config.blocks_per_chip(),
        })
    }

    /// Validates `addr` and returns the owning chip mutably.
    fn chip_for(&mut self, addr: BlockAddr) -> Result<&mut Chip, NandError> {
        let chips = self.chips.len();
        let blocks_per_chip = self.config.blocks_per_chip();
        let chip = self
            .chips
            .get_mut(addr.chip().0)
            .ok_or(NandError::ChipOutOfRange { chip: addr.chip().0, chips })?;
        if addr.index() >= chip.len() {
            return Err(NandError::BlockOutOfRange { block: addr, blocks_per_chip });
        }
        Ok(chip)
    }

    /// Iterates over the addresses of all blocks in the device, chip by chip.
    pub fn block_addrs(&self) -> impl Iterator<Item = BlockAddr> + '_ {
        let blocks_per_chip = self.config.blocks_per_chip();
        (0..self.chips.len()).flat_map(move |c| {
            (0..blocks_per_chip).map(move |b| BlockAddr::new(ChipId(c), b))
        })
    }

    /// Returns the address of an allocatable block in the [`BlockState::Free`](crate::BlockState::Free)
    /// state, or `None` if none exists. Amortised O(1): each chip keeps a free-block
    /// pool, so no block scan happens.
    ///
    /// Blocks leased out via [`NandDevice::allocate_block`] but not yet programmed
    /// are *not* returned, so repeated `allocate_block` calls and `any_free_block`
    /// agree on what is actually available.
    pub fn any_free_block(&self) -> Option<BlockAddr> {
        self.chips.iter().enumerate().find_map(|(chip, c)| {
            c.peek_free().map(|index| BlockAddr::new(ChipId(chip), index))
        })
    }

    /// Takes a free block out of the allocation pool, rotating round-robin across
    /// chips so consecutive allocations land on different chips (and their
    /// programs can overlap in time). O(chips) worst case, O(1) typically.
    ///
    /// The block remains in [`BlockState::Free`](crate::BlockState::Free) until programmed; it returns to
    /// the pool automatically when it is next erased.
    pub fn allocate_block(&mut self) -> Option<BlockAddr> {
        let chips = self.chips.len();
        for offset in 0..chips {
            let chip = (self.next_alloc_chip + offset) % chips;
            if let Some(index) = self.chips[chip].allocate() {
                self.next_alloc_chip = (chip + 1) % chips;
                return Some(BlockAddr::new(ChipId(chip), index));
            }
        }
        None
    }

    /// Number of blocks currently free (fully erased), including blocks leased out
    /// by [`NandDevice::allocate_block`] that have not been programmed yet. O(chips).
    pub fn free_block_count(&self) -> usize {
        self.chips.iter().map(Chip::free_blocks).sum()
    }

    /// Number of blocks available for allocation (free and not leased out). O(chips).
    pub fn available_blocks(&self) -> usize {
        self.chips.iter().map(Chip::available_blocks).sum()
    }

    /// Iterates over garbage-collection candidates: full blocks with at least one
    /// invalid page, i.e. exactly the blocks a greedy collector can reclaim with
    /// benefit. O(candidates); iteration order is maintenance order, so policies
    /// that need deterministic tie-breaking must compare addresses explicitly.
    pub fn gc_candidates(&self) -> impl Iterator<Item = BlockAddr> + '_ {
        self.chips.iter().enumerate().flat_map(|(chip, c)| {
            c.gc_candidates().map(move |index| BlockAddr::new(ChipId(chip), index))
        })
    }

    /// Sets or clears a block's data-area tag: an opaque host-side label the FTL
    /// attaches to a block (the PPB strategy marks blocks as hot-area or
    /// cold-area) so that hotness-aware garbage-collection victim policies can
    /// read it back via [`NandDevice::block`] + [`Block::area_tag`]. The device
    /// clears the tag automatically on erase; tagging is pure metadata and takes
    /// no device time, advances no clock and records no operation.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::ChipOutOfRange`] or [`NandError::BlockOutOfRange`] for
    /// invalid addresses.
    pub fn set_block_area_tag(
        &mut self,
        addr: BlockAddr,
        tag: Option<u8>,
    ) -> Result<(), NandError> {
        self.chip_for(addr)?.tag_block(addr.index(), tag);
        Ok(())
    }

    /// Total erase operations performed across the device (total wear). O(chips).
    pub fn total_erases(&self) -> u64 {
        self.chips.iter().map(Chip::total_erases).sum()
    }

    /// Number of blocks retired as bad across the device. O(chips).
    pub fn bad_block_count(&self) -> usize {
        self.chips.iter().map(Chip::bad_blocks).sum()
    }

    /// The fault outcome of the most recent [`NandDevice::read`]: retry steps
    /// taken, the latency they added, and whether the read was uncorrectable.
    /// All zeros with faults disabled.
    pub fn last_read_faults(&self) -> ReadFaultInfo {
        self.last_read_faults
    }

    /// Retires a block as bad without a failing operation, modelling
    /// factory-marked or externally detected bad blocks. The block leaves the
    /// allocation pool and the GC candidate index and will never accept a
    /// program or erase again; surviving valid pages remain readable.
    /// Idempotent, and takes no device time.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::ChipOutOfRange`] or [`NandError::BlockOutOfRange`]
    /// for invalid addresses.
    pub fn retire_block(&mut self, block: BlockAddr) -> Result<(), NandError> {
        if self.block(block)?.is_bad() {
            return Ok(());
        }
        let _ = self.retire_failed_block(block, |block| NandError::ProgramFailed { block });
        Ok(())
    }

    /// Retires a not-yet-bad block after a failed operation: marks it bad,
    /// fixes the chip accounting and stamps the modification clock (retirement
    /// is a state change — the block just left the usable pool).
    fn retire_failed_block(
        &mut self,
        block: BlockAddr,
        error: impl FnOnce(BlockAddr) -> NandError,
    ) -> NandError {
        self.chips[block.chip().0].retire_block(block.index());
        self.mod_seq += 1;
        self.chips[block.chip().0].touch_block(block.index(), self.mod_seq);
        error(block)
    }

    /// Total busy time of one chip.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::ChipOutOfRange`] for an invalid chip id.
    pub fn chip_busy_time(&self, chip: ChipId) -> Result<Nanos, NandError> {
        self.chip(chip).map(Chip::busy_time)
    }

    /// The time at which a device overlapping operations across its chips goes
    /// idle: the maximum per-chip busy time. For a single-chip device this equals
    /// [`DeviceStats::busy_time`](crate::DeviceStats::busy_time); for a multi-chip
    /// device with well-spread traffic it approaches `busy_time / chips`.
    pub fn makespan(&self) -> Nanos {
        self.chips.iter().map(Chip::busy_time).max().unwrap_or(Nanos::ZERO)
    }

    /// Reads a page, returning the latency (cell sensing + bus transfer).
    ///
    /// With faults enabled, the read may need retry-ladder steps whose
    /// configured penalty is folded into the returned latency (and into the op
    /// record, so replay engines charge it as ordinary service time); the
    /// per-read breakdown is available via [`NandDevice::last_read_faults`].
    ///
    /// # Errors
    ///
    /// * Address errors for out-of-range chips/blocks/pages.
    /// * [`NandError::PageNotValid`] if the page does not hold live data.
    /// * [`NandError::UncorrectableRead`] if the retry ladder was exhausted.
    ///   The device still charged the base-plus-full-ladder latency to the
    ///   chip's busy clock and recorded the op — the sensing happened, the data
    ///   is just gone.
    pub fn read(&mut self, addr: PageAddr) -> Result<Nanos, NandError> {
        let pages_per_block = self.config.pages_per_block();
        if addr.page().0 >= pages_per_block {
            return Err(NandError::PageOutOfRange { page: addr.page(), pages_per_block });
        }
        let (erase_count, last_modified) = {
            let block = self.block(addr.block())?;
            let state = block.page_state(addr.page())?;
            if !matches!(state, crate::page::PageState::Valid) {
                return Err(NandError::PageNotValid { page: addr, actual: state.label() });
            }
            (block.erase_count(), block.last_modified())
        };
        let base = self.latency.read_total(addr.page());
        let mut latency = base;
        let mut uncorrectable = false;
        self.last_read_faults = ReadFaultInfo::default();
        if let Some(fault) = self.fault.as_mut() {
            let retention_age = self.mod_seq.saturating_sub(last_modified);
            let page_bits = self.config.page_size_bytes() as u64 * 8;
            let outcome =
                fault.read_outcome(addr.block().chip().0, erase_count, retention_age, page_bits);
            // The retry ladder is open-ended penalty accumulation: use checked
            // arithmetic so a pathological configuration saturates loudly in
            // debug builds instead of wrapping silently.
            let retry_time = fault
                .config()
                .read_retry_penalty
                .checked_mul(u64::from(outcome.retries));
            debug_assert!(
                retry_time.and_then(|t| base.checked_add(t)).is_some(),
                "read-retry latency overflowed Nanos at page {addr}"
            );
            let retry_time = retry_time.unwrap_or(Nanos(u64::MAX));
            latency = base.saturating_add(retry_time);
            uncorrectable = outcome.uncorrectable;
            self.last_read_faults = ReadFaultInfo {
                retries: outcome.retries,
                retry_time,
                uncorrectable,
                total_time: latency,
            };
        }
        self.stats.record_read(latency);
        self.chips[addr.block().chip().0].add_busy(latency);
        self.record_op(addr.block().chip(), OpKind::Read, latency);
        if uncorrectable {
            return Err(NandError::UncorrectableRead { page: addr });
        }
        Ok(latency)
    }

    /// Programs a specific page of a block, returning the latency.
    ///
    /// The page must be exactly the block's next free page; 3D NAND blocks are
    /// programmed strictly in layer order.
    ///
    /// # Errors
    ///
    /// * Address errors for out-of-range chips/blocks/pages.
    /// * [`NandError::BlockFull`] if the block has no free pages.
    /// * [`NandError::ProgramOrderViolation`] if `page` is not the next free page.
    /// * [`NandError::ProgramFailed`] if the block is bad, or the fault model
    ///   fails the program — which retires the block. Failure detection is
    ///   modelled as instantaneous: no device time is charged and no op is
    ///   recorded; the successful re-drive carries the cost.
    pub fn program(&mut self, block: BlockAddr, page: PageId) -> Result<Nanos, NandError> {
        let pages_per_block = self.config.pages_per_block();
        if page.0 >= pages_per_block {
            return Err(NandError::PageOutOfRange { page, pages_per_block });
        }
        let erase_count = {
            let blk = self.block(block)?;
            if blk.is_bad() {
                return Err(NandError::ProgramFailed { block });
            }
            match blk.next_page() {
                None => return Err(NandError::BlockFull { block }),
                Some(expected) if expected != page => {
                    return Err(NandError::ProgramOrderViolation {
                        block,
                        requested: page,
                        expected,
                    })
                }
                Some(_) => {}
            }
            blk.erase_count()
        };
        if let Some(fault) = self.fault.as_mut() {
            if fault.program_fails(block.chip().0, erase_count) {
                return Err(self.retire_failed_block(block, |block| {
                    NandError::ProgramFailed { block }
                }));
            }
        }
        self.chip_for(block)?.program_block(block.index());
        let latency = self.latency.program_total(page);
        self.stats.record_program(latency);
        self.mod_seq += 1;
        let chip = &mut self.chips[block.chip().0];
        chip.add_busy(latency);
        chip.touch_block(block.index(), self.mod_seq);
        self.record_op(block.chip(), OpKind::Program, latency);
        Ok(latency)
    }

    /// Programs the next free page of a block, returning the page id chosen and the
    /// latency.
    ///
    /// # Errors
    ///
    /// * Address errors for out-of-range chips/blocks.
    /// * [`NandError::BlockFull`] if the block has no free pages.
    /// * [`NandError::ProgramFailed`] if the block is bad or the fault model
    ///   fails the program (see [`NandDevice::program`]).
    pub fn program_next(&mut self, block: BlockAddr) -> Result<(PageId, Nanos), NandError> {
        let blk = self.block(block)?;
        if blk.is_bad() {
            return Err(NandError::ProgramFailed { block });
        }
        let next = blk.next_page().ok_or(NandError::BlockFull { block })?;
        let latency = self.program(block, next)?;
        Ok((next, latency))
    }

    /// Marks a valid page as invalid (stale). This models the mapping-table update of
    /// an out-of-place write and takes no device time.
    ///
    /// # Errors
    ///
    /// * Address errors for out-of-range chips/blocks/pages.
    /// * [`NandError::PageNotValid`] if the page is free or already invalid.
    pub fn invalidate(&mut self, addr: PageAddr) -> Result<(), NandError> {
        let pages_per_block = self.config.pages_per_block();
        if addr.page().0 >= pages_per_block {
            return Err(NandError::PageOutOfRange { page: addr.page(), pages_per_block });
        }
        self.chip_for(addr.block())?
            .invalidate_page(addr.block().index(), addr.page())
            .map_err(|state| NandError::PageNotValid { page: addr, actual: state.label() })?;
        self.mod_seq += 1;
        self.chips[addr.block().chip().0].touch_block(addr.block().index(), self.mod_seq);
        Ok(())
    }

    /// Erases a block, returning the erase latency. The block re-enters the
    /// allocation pool of its chip, so no separate release step is needed after
    /// garbage collection.
    ///
    /// The caller (normally the garbage collector) must have relocated or invalidated
    /// every valid page first; erasing live data is almost always an FTL bug, so it is
    /// rejected rather than silently performed.
    ///
    /// # Errors
    ///
    /// * Address errors for out-of-range chips/blocks.
    /// * [`NandError::EraseWithValidPages`] if live pages remain in the block.
    /// * [`NandError::EraseFailed`] if the block is bad, or the fault model
    ///   fails the erase — which retires the block. Like failed programs,
    ///   failed erases charge no device time.
    pub fn erase(&mut self, block: BlockAddr) -> Result<Nanos, NandError> {
        let (valid, is_bad, erase_count) = {
            let blk = self.block(block)?;
            (blk.valid_pages(), blk.is_bad(), blk.erase_count())
        };
        if is_bad {
            return Err(NandError::EraseFailed { block });
        }
        if valid > 0 {
            return Err(NandError::EraseWithValidPages { block, valid_pages: valid });
        }
        if let Some(fault) = self.fault.as_mut() {
            if fault.erase_fails(block.chip().0, erase_count) {
                return Err(
                    self.retire_failed_block(block, |block| NandError::EraseFailed { block })
                );
            }
        }
        self.chip_for(block)?.erase_block(block.index());
        let latency = self.latency.erase_latency();
        self.stats.record_erase(latency);
        self.mod_seq += 1;
        let chip = &mut self.chips[block.chip().0];
        chip.add_busy(latency);
        chip.touch_block(block.index(), self.mod_seq);
        self.record_op(block.chip(), OpKind::Erase, latency);
        Ok(latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::SpeedProfile;

    fn small_device() -> NandDevice {
        let config = NandConfig::builder()
            .chips(2)
            .blocks_per_chip(4)
            .pages_per_block(4)
            .page_size_bytes(4096)
            .speed_ratio(4.0)
            .speed_profile(SpeedProfile::Linear)
            .build()
            .unwrap();
        NandDevice::new(config)
    }

    #[test]
    fn fresh_device_is_fully_free() {
        let device = small_device();
        assert_eq!(device.free_block_count(), 8);
        assert_eq!(device.total_erases(), 0);
        assert!(device.any_free_block().is_some());
        assert_eq!(device.block_addrs().count(), 8);
    }

    #[test]
    fn read_requires_valid_page() {
        let mut device = small_device();
        let block = device.any_free_block().unwrap();
        let err = device.read(block.page(PageId(0))).unwrap_err();
        assert!(matches!(err, NandError::PageNotValid { .. }));
        device.program(block, PageId(0)).unwrap();
        assert!(device.read(block.page(PageId(0))).is_ok());
    }

    #[test]
    fn program_enforces_layer_order() {
        let mut device = small_device();
        let block = device.any_free_block().unwrap();
        let err = device.program(block, PageId(2)).unwrap_err();
        assert!(matches!(err, NandError::ProgramOrderViolation { .. }));
        device.program(block, PageId(0)).unwrap();
        device.program(block, PageId(1)).unwrap();
        device.program(block, PageId(2)).unwrap();
        device.program(block, PageId(3)).unwrap();
        assert!(matches!(
            device.program(block, PageId(3)),
            Err(NandError::BlockFull { .. })
        ));
    }

    #[test]
    fn bottom_pages_are_faster_than_top_pages() {
        let mut device = small_device();
        let block = device.any_free_block().unwrap();
        let top = device.program(block, PageId(0)).unwrap();
        device.program(block, PageId(1)).unwrap();
        device.program(block, PageId(2)).unwrap();
        let bottom = device.program(block, PageId(3)).unwrap();
        assert!(bottom < top, "bottom program {bottom} should beat top {top}");

        let top_read = device.read(block.page(PageId(0))).unwrap();
        let bottom_read = device.read(block.page(PageId(3))).unwrap();
        assert!(bottom_read < top_read);
    }

    #[test]
    fn erase_rejects_blocks_with_live_data() {
        let mut device = small_device();
        let block = device.any_free_block().unwrap();
        device.program(block, PageId(0)).unwrap();
        assert!(matches!(
            device.erase(block),
            Err(NandError::EraseWithValidPages { valid_pages: 1, .. })
        ));
        device.invalidate(block.page(PageId(0))).unwrap();
        assert_eq!(device.erase(block).unwrap(), device.config().erase_latency());
        assert_eq!(device.total_erases(), 1);
        // The block is usable again.
        assert!(device.program(block, PageId(0)).is_ok());
    }

    #[test]
    fn invalidate_twice_is_an_error() {
        let mut device = small_device();
        let block = device.any_free_block().unwrap();
        device.program(block, PageId(0)).unwrap();
        device.invalidate(block.page(PageId(0))).unwrap();
        assert!(matches!(
            device.invalidate(block.page(PageId(0))),
            Err(NandError::PageNotValid { actual: "invalid", .. })
        ));
    }

    #[test]
    fn addressing_errors_are_reported() {
        let mut device = small_device();
        let bad_chip = BlockAddr::new(ChipId(9), 0);
        assert!(matches!(device.read(bad_chip.page(PageId(0))), Err(NandError::ChipOutOfRange { .. })));
        let bad_block = BlockAddr::new(ChipId(0), 99);
        assert!(matches!(device.program(bad_block, PageId(0)), Err(NandError::BlockOutOfRange { .. })));
        let good_block = device.any_free_block().unwrap();
        assert!(matches!(
            device.program(good_block, PageId(99)),
            Err(NandError::PageOutOfRange { .. })
        ));
    }

    #[test]
    fn stats_track_operations_and_time() {
        let mut device = small_device();
        let block = device.any_free_block().unwrap();
        let p = device.program(block, PageId(0)).unwrap();
        let r = device.read(block.page(PageId(0))).unwrap();
        device.invalidate(block.page(PageId(0))).unwrap();
        let e = device.erase(block).unwrap();
        let stats = device.stats();
        assert_eq!(stats.counts.reads, 1);
        assert_eq!(stats.counts.programs, 1);
        assert_eq!(stats.counts.erases, 1);
        assert_eq!(stats.busy_time(), p + r + e);
        device.reset_stats();
        assert_eq!(device.stats().counts.page_ops(), 0);
    }

    #[test]
    fn allocation_rotates_across_chips() {
        let mut device = small_device();
        let a = device.allocate_block().unwrap();
        let b = device.allocate_block().unwrap();
        let c = device.allocate_block().unwrap();
        assert_eq!(a, BlockAddr::new(ChipId(0), 0));
        assert_eq!(b, BlockAddr::new(ChipId(1), 0));
        assert_eq!(c, BlockAddr::new(ChipId(0), 1));
        // Leased blocks are still erased but no longer allocatable.
        assert_eq!(device.free_block_count(), 8);
        assert_eq!(device.available_blocks(), 5);
        assert_ne!(device.any_free_block(), Some(a));
    }

    #[test]
    fn allocation_pool_drains_and_refills_through_erase() {
        let mut device = small_device();
        let mut taken = Vec::new();
        while let Some(block) = device.allocate_block() {
            taken.push(block);
        }
        assert_eq!(taken.len(), 8);
        assert_eq!(device.available_blocks(), 0);
        assert!(device.any_free_block().is_none());
        // Erasing a (still free) leased block returns it to its chip's pool.
        device.erase(taken[0]).unwrap();
        assert_eq!(device.available_blocks(), 1);
        assert_eq!(device.allocate_block(), Some(taken[0]));
    }

    #[test]
    fn gc_candidates_list_full_blocks_with_invalid_pages() {
        let mut device = small_device();
        let block = device.any_free_block().unwrap();
        for _ in 0..4 {
            device.program_next(block).unwrap();
        }
        assert_eq!(device.gc_candidates().count(), 0, "fully valid blocks are kept");
        device.invalidate(block.page(PageId(1))).unwrap();
        assert_eq!(device.gc_candidates().collect::<Vec<_>>(), vec![block]);
        device.invalidate(block.page(PageId(0))).unwrap();
        device.invalidate(block.page(PageId(2))).unwrap();
        device.invalidate(block.page(PageId(3))).unwrap();
        device.erase(block).unwrap();
        assert_eq!(device.gc_candidates().count(), 0);
    }

    #[test]
    fn makespan_tracks_the_busiest_chip() {
        let mut device = small_device();
        let a = device.allocate_block().unwrap(); // chip 0
        let b = device.allocate_block().unwrap(); // chip 1
        assert_ne!(a.chip(), b.chip());
        let (_, first) = device.program_next(a).unwrap();
        let (_, second) = device.program_next(b).unwrap();
        // Both programs target page 0 of their block, so the chips are equally busy
        // and the makespan is one program, not two.
        assert_eq!(first, second);
        assert_eq!(device.makespan(), first);
        assert_eq!(device.stats().busy_time(), first + second);
        assert_eq!(device.chip_busy_time(a.chip()).unwrap(), first);
        // A second program on chip 0 makes it the busiest chip.
        let (_, third) = device.program_next(a).unwrap();
        assert_eq!(device.makespan(), first + third);
        assert!(matches!(
            device.chip_busy_time(ChipId(9)),
            Err(NandError::ChipOutOfRange { .. })
        ));
    }

    #[test]
    fn op_tracing_records_provenance_only_while_enabled() {
        let mut device = small_device();
        let block = device.any_free_block().unwrap();
        let mark = device.op_mark();
        device.program(block, PageId(0)).unwrap();
        assert!(device.ops_since(mark).is_empty(), "tracing is off by default");
        assert!(!device.op_tracing());

        device.set_op_tracing(true);
        assert!(device.op_tracing());
        let mark = device.op_mark();
        let program = device.program(block, PageId(1)).unwrap();
        let read = device.read(block.page(PageId(0))).unwrap();
        device.invalidate(block.page(PageId(0))).unwrap();
        let span = device.ops_since(mark);
        assert_eq!(
            device.ops(span),
            &[
                OpRecord::new(block.chip(), OpKind::Program, program),
                OpRecord::new(block.chip(), OpKind::Read, read),
            ],
            "invalidate takes no device time and must not be recorded"
        );

        // Later spans start after the earlier ones; both stay resolvable until
        // the arena is cleared.
        let mark = device.op_mark();
        device.invalidate(block.page(PageId(1))).unwrap();
        let erase = device.erase(block).unwrap();
        let erase_span = device.ops_since(mark);
        assert_eq!(erase_span.start, span.len);
        assert_eq!(device.ops(erase_span), &[OpRecord::new(block.chip(), OpKind::Erase, erase)]);
        assert_eq!(device.ops(span).len(), 2, "earlier spans remain valid");

        device.clear_ops();
        assert_eq!(device.op_mark(), 0, "clear releases the arena");

        device.set_op_tracing(false);
        let mark = device.op_mark();
        device.program(block, PageId(0)).unwrap();
        assert!(device.ops_since(mark).is_empty());
    }

    #[test]
    fn op_arena_keeps_its_capacity_across_clears() {
        let mut device = small_device();
        let block = device.any_free_block().unwrap();
        device.set_op_tracing(true);
        device.program(block, PageId(0)).unwrap();
        device.program(block, PageId(1)).unwrap();
        let capacity = device.op_trace.capacity();
        let pointer = device.op_trace.as_ptr();
        device.clear_ops();
        device.program(block, PageId(2)).unwrap();
        assert_eq!(device.op_trace.capacity(), capacity, "clear must not shrink the arena");
        assert_eq!(device.op_trace.as_ptr(), pointer, "same buffer, no reallocation");
        assert_eq!(device.ops_since(0).len(), 1);
    }

    #[test]
    fn toggling_op_tracing_clears_buffered_records() {
        let mut device = small_device();
        let block = device.any_free_block().unwrap();
        device.set_op_tracing(true);
        device.program(block, PageId(0)).unwrap();
        device.set_op_tracing(true);
        assert_eq!(device.op_mark(), 0, "re-enabling drops stale records");
    }

    #[test]
    fn mod_seq_advances_on_state_changes_and_stamps_blocks() {
        let mut device = small_device();
        assert_eq!(device.mod_seq(), 0);
        let block = device.any_free_block().unwrap();
        device.program(block, PageId(0)).unwrap();
        assert_eq!(device.mod_seq(), 1);
        assert_eq!(device.block(block).unwrap().last_modified(), 1);
        // Reads do not advance the clock.
        device.read(block.page(PageId(0))).unwrap();
        assert_eq!(device.mod_seq(), 1);
        device.invalidate(block.page(PageId(0))).unwrap();
        assert_eq!(device.mod_seq(), 2);
        assert_eq!(device.block(block).unwrap().last_modified(), 2);
        device.erase(block).unwrap();
        assert_eq!(device.mod_seq(), 3);
        assert_eq!(device.block(block).unwrap().last_modified(), 3);
        // Untouched blocks keep their stamp, so their age keeps growing.
        let other = device.any_free_block().unwrap();
        assert_eq!(device.block(other).unwrap().last_modified(), 0);
    }

    #[test]
    fn area_tags_round_trip_and_die_with_the_erase() {
        let mut device = small_device();
        let block = device.any_free_block().unwrap();
        let before = device.mod_seq();
        device.set_block_area_tag(block, Some(1)).unwrap();
        assert_eq!(device.block(block).unwrap().area_tag(), Some(1));
        assert_eq!(device.mod_seq(), before, "tagging is metadata, not a state change");
        device.program(block, PageId(0)).unwrap();
        device.invalidate(block.page(PageId(0))).unwrap();
        device.erase(block).unwrap();
        assert_eq!(device.block(block).unwrap().area_tag(), None);
        let bad = BlockAddr::new(ChipId(9), 0);
        assert!(matches!(
            device.set_block_area_tag(bad, Some(0)),
            Err(NandError::ChipOutOfRange { .. })
        ));
    }

    #[test]
    fn fault_free_reads_report_zero_fault_info() {
        let mut device = small_device();
        let block = device.any_free_block().unwrap();
        device.program(block, PageId(0)).unwrap();
        device.read(block.page(PageId(0))).unwrap();
        assert_eq!(device.last_read_faults(), crate::fault::ReadFaultInfo::default());
        assert_eq!(device.bad_block_count(), 0);
    }

    #[test]
    fn retired_blocks_reject_everything_but_reads_and_invalidations() {
        let mut device = small_device();
        let block = device.any_free_block().unwrap();
        device.program(block, PageId(0)).unwrap();
        device.program(block, PageId(1)).unwrap();
        let free_before = device.free_block_count();
        device.retire_block(block).unwrap();
        device.retire_block(block).unwrap(); // idempotent
        assert_eq!(device.bad_block_count(), 1);
        assert_eq!(device.free_block_count(), free_before);
        assert!(matches!(
            device.program(block, PageId(2)),
            Err(NandError::ProgramFailed { .. })
        ));
        assert!(matches!(device.program_next(block), Err(NandError::ProgramFailed { .. })));
        // Surviving data stays readable; invalidation still works; erase is out.
        assert!(device.read(block.page(PageId(0))).is_ok());
        device.invalidate(block.page(PageId(0))).unwrap();
        device.invalidate(block.page(PageId(1))).unwrap();
        assert!(matches!(device.erase(block), Err(NandError::EraseFailed { .. })));
        assert_eq!(device.gc_candidates().count(), 0, "bad blocks are never GC candidates");
        assert_ne!(device.any_free_block(), Some(block));
    }

    #[test]
    fn injected_program_failure_retires_the_block_without_charging_time() {
        let mut fault = crate::FaultConfig::enabled(11);
        fault.program_fail_base = 1.0; // every program fails
        fault.erase_fail_base = 0.0;
        fault.rber_scale = 0.0; // reads never retry
        let config = NandConfig::builder()
            .chips(1)
            .blocks_per_chip(4)
            .pages_per_block(2)
            .page_size_bytes(4096)
            .faults(fault)
            .build()
            .unwrap();
        let mut device = NandDevice::new(config);
        let block = device.any_free_block().unwrap();
        let busy_before = device.stats().busy_time();
        assert!(matches!(device.program_next(block), Err(NandError::ProgramFailed { .. })));
        assert_eq!(device.bad_block_count(), 1);
        assert_eq!(device.stats().busy_time(), busy_before, "failed programs are free");
        assert_eq!(device.stats().counts.programs, 0);
        // The device still has other blocks to offer.
        assert!(device.any_free_block().is_some());
    }

    #[test]
    fn retry_latency_is_folded_into_read_latency_and_op_records() {
        let mut fault = crate::FaultConfig::enabled(1);
        // Make every read need the ladder but never fail it.
        fault.rber_scale = 40.0;
        fault.ecc_correctable_bits = 0;
        fault.retry_extra_bits = 1_000_000;
        fault.max_read_retries = 4;
        fault.program_fail_base = 0.0;
        fault.erase_fail_base = 0.0;
        let config = NandConfig::builder()
            .chips(1)
            .blocks_per_chip(2)
            .pages_per_block(2)
            .page_size_bytes(16 * 1024)
            .faults(fault)
            .build()
            .unwrap();
        let mut device = NandDevice::new(config);
        device.set_op_tracing(true);
        let block = device.any_free_block().unwrap();
        device.program(block, PageId(0)).unwrap();
        let mut saw_retry = false;
        for _ in 0..50 {
            let mark = device.op_mark();
            let latency = device.read(block.page(PageId(0))).unwrap();
            let info = device.last_read_faults();
            assert_eq!(info.total_time, latency);
            let ops = device.ops(device.ops_since(mark));
            assert_eq!(ops.len(), 1);
            assert_eq!(ops[0].latency, latency, "op record must carry the retry penalty");
            if info.retries > 0 {
                saw_retry = true;
                assert_eq!(info.retry_time, fault.read_retry_penalty * u64::from(info.retries));
            }
        }
        assert!(saw_retry, "the RBER curve at 40x must trigger at least one retry in 50 reads");
    }

    #[test]
    fn fault_streams_replay_identically_per_device() {
        let mut fault = crate::FaultConfig::enabled(77);
        fault.rber_scale = 30.0;
        let config = NandConfig::builder()
            .chips(2)
            .blocks_per_chip(4)
            .pages_per_block(4)
            .page_size_bytes(8 * 1024)
            .faults(fault)
            .build()
            .unwrap();
        let run = |config: NandConfig| {
            let mut device = NandDevice::new(config);
            let mut log = Vec::new();
            for _ in 0..3 {
                let block = device.allocate_block().unwrap();
                for _ in 0..4 {
                    device.program_next(block).unwrap();
                }
                for page in 0..4 {
                    match device.read(block.page(PageId(page))) {
                        Ok(latency) => log.push(latency.as_nanos()),
                        Err(_) => log.push(u64::MAX),
                    }
                }
            }
            log
        };
        assert_eq!(run(config.clone()), run(config), "same seed, same outcome sequence");
    }

    #[test]
    fn program_next_walks_the_block() {
        let mut device = small_device();
        let block = device.any_free_block().unwrap();
        for expected in 0..4 {
            let (page, _) = device.program_next(block).unwrap();
            assert_eq!(page, PageId(expected));
        }
        assert!(matches!(device.program_next(block), Err(NandError::BlockFull { .. })));
    }
}
