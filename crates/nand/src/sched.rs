//! Per-chip ready clocks: the chip-parallel scheduling core.
//!
//! Chips are independent dies — operations on different chips overlap in time
//! while operations on the same chip serialise. Everything in the workspace
//! that turns a stream of timed device operations into wall-clock instants
//! (the replay engine's event calendar, the FTL batch-submission path) applies
//! the same rule: an op starts when both its predecessor in the request chain
//! and its chip are ready, and it advances the chip's clock to its end.
//! [`ChipClocks`] owns that rule so both consumers schedule identically.

use crate::time::Nanos;

/// Per-chip busy-until clocks with the chip-parallel scheduling rule.
///
/// The clocks are resource clocks, not events: an op asks for *its* chip's
/// availability by index, so the structure is a plain vector rather than a
/// heap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChipClocks {
    ready: Vec<Nanos>,
}

impl ChipClocks {
    /// Clocks for a device with `chips` chips, all ready at time zero.
    pub fn new(chips: usize) -> Self {
        ChipClocks { ready: vec![Nanos::ZERO; chips] }
    }

    /// Number of chips tracked.
    pub fn chips(&self) -> usize {
        self.ready.len()
    }

    /// The instant `chip` becomes free.
    pub fn ready_at(&self, chip: usize) -> Nanos {
        self.ready[chip]
    }

    /// Plays one timed device op: the op starts when both its predecessor
    /// (`now`, the request chain's clock) and its chip are ready, and advances
    /// the chip's clock. Returns the op's end time — the new `now` of the
    /// request chain.
    pub fn play_op(&mut self, chip: usize, now: Nanos, latency: Nanos) -> Nanos {
        let ready = self.ready[chip];
        let start = if ready > now { ready } else { now };
        let end = start + latency;
        self.ready[chip] = end;
        end
    }

    /// The latest busy-until instant across all chips — the completion time of
    /// everything scheduled so far under perfect chip interleaving.
    pub fn makespan(&self) -> Nanos {
        self.ready.iter().copied().max().unwrap_or(Nanos::ZERO)
    }

    /// Rewinds every chip to ready-at-zero (reuse across batches).
    pub fn reset(&mut self) {
        self.ready.fill(Nanos::ZERO);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_serialise_on_a_chip_and_overlap_across_chips() {
        let mut clocks = ChipClocks::new(2);
        assert_eq!(clocks.chips(), 2);
        // Two ops on chip 0 serialise.
        assert_eq!(clocks.play_op(0, Nanos(0), Nanos(100)), Nanos(100));
        assert_eq!(clocks.play_op(0, Nanos(0), Nanos(50)), Nanos(150), "chip 0 busy until 100");
        // Chip 1 is idle, so an op chained after `now` starts immediately.
        assert_eq!(clocks.play_op(1, Nanos(40), Nanos(10)), Nanos(50));
        assert_eq!(clocks.ready_at(0), Nanos(150));
        assert_eq!(clocks.ready_at(1), Nanos(50));
        assert_eq!(clocks.makespan(), Nanos(150));
    }

    #[test]
    fn reset_rewinds_every_chip() {
        let mut clocks = ChipClocks::new(3);
        clocks.play_op(2, Nanos(0), Nanos(7));
        assert_eq!(clocks.makespan(), Nanos(7));
        clocks.reset();
        assert_eq!(clocks.makespan(), Nanos::ZERO);
        assert_eq!(clocks, ChipClocks::new(3));
    }
}
