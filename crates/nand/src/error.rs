//! Error type for device-level operations.

use std::error::Error;
use std::fmt;

use crate::address::{BlockAddr, PageAddr, PageId};

/// Errors produced by the NAND device model.
///
/// Every variant corresponds to a violation of a physical constraint of NAND flash
/// (erase-before-write, sequential in-block programming, addressing limits) or an
/// invalid configuration. They are reported instead of silently "fixed" so that FTL
/// bugs surface in tests rather than being masked by the device model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NandError {
    /// The configuration is internally inconsistent (e.g. zero pages per block).
    InvalidConfig {
        /// Explanation of which parameter was rejected and why.
        reason: String,
    },
    /// A chip index was out of range.
    ChipOutOfRange {
        /// The offending chip index.
        chip: usize,
        /// The number of chips in the device.
        chips: usize,
    },
    /// A block address referenced a block index outside the chip.
    BlockOutOfRange {
        /// The offending block address.
        block: BlockAddr,
        /// The number of blocks per chip.
        blocks_per_chip: usize,
    },
    /// A page id referenced a page index outside the block.
    PageOutOfRange {
        /// The offending page id.
        page: PageId,
        /// The number of pages per block.
        pages_per_block: usize,
    },
    /// A program targeted a page other than the block's next free page.
    ///
    /// NAND flash must be programmed in page order within a block; 3D charge-trap
    /// blocks additionally tie page order to the gate-stack layer order, which the
    /// virtual-block lifecycle of the PPB strategy relies on.
    ProgramOrderViolation {
        /// The block being programmed.
        block: BlockAddr,
        /// The page the caller attempted to program.
        requested: PageId,
        /// The page the block expects to be programmed next.
        expected: PageId,
    },
    /// A program targeted a block with no free pages left.
    BlockFull {
        /// The full block.
        block: BlockAddr,
    },
    /// A page was read or invalidated while not holding valid data.
    PageNotValid {
        /// The offending page address.
        page: PageAddr,
        /// The state the page was actually in, as a human-readable label.
        actual: &'static str,
    },
    /// An erase targeted a block that still holds valid pages.
    EraseWithValidPages {
        /// The block that was asked to be erased.
        block: BlockAddr,
        /// How many valid pages it still holds.
        valid_pages: usize,
    },
    /// A program failed (injected fault or bad block); the block has been
    /// retired and the FTL must re-drive the write to a fresh block.
    ProgramFailed {
        /// The block whose program failed.
        block: BlockAddr,
    },
    /// An erase failed (injected fault or bad block); the block has been
    /// retired and can never be reused.
    EraseFailed {
        /// The block whose erase failed.
        block: BlockAddr,
    },
    /// A read exhausted the read-retry ladder without correcting: the data is
    /// lost. The device still charged the full base-plus-ladder latency.
    UncorrectableRead {
        /// The page whose data could not be corrected.
        page: PageAddr,
    },
}

impl fmt::Display for NandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NandError::InvalidConfig { reason } => {
                write!(f, "invalid nand configuration: {reason}")
            }
            NandError::ChipOutOfRange { chip, chips } => {
                write!(f, "chip index {chip} out of range (device has {chips} chips)")
            }
            NandError::BlockOutOfRange { block, blocks_per_chip } => write!(
                f,
                "block {block} out of range (chip has {blocks_per_chip} blocks)"
            ),
            NandError::PageOutOfRange { page, pages_per_block } => write!(
                f,
                "page {page} out of range (block has {pages_per_block} pages)"
            ),
            NandError::ProgramOrderViolation { block, requested, expected } => write!(
                f,
                "program order violation in block {block}: requested page {requested}, expected {expected}"
            ),
            NandError::BlockFull { block } => write!(f, "block {block} has no free pages"),
            NandError::PageNotValid { page, actual } => {
                write!(f, "page {page} does not hold valid data (state: {actual})")
            }
            NandError::EraseWithValidPages { block, valid_pages } => write!(
                f,
                "refusing to erase block {block} still holding {valid_pages} valid pages"
            ),
            NandError::ProgramFailed { block } => {
                write!(f, "program failed in block {block}; block retired as bad")
            }
            NandError::EraseFailed { block } => {
                write!(f, "erase failed in block {block}; block retired as bad")
            }
            NandError::UncorrectableRead { page } => {
                write!(f, "uncorrectable read at page {page}: retry ladder exhausted")
            }
        }
    }
}

impl Error for NandError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::ChipId;

    #[test]
    fn errors_render_useful_messages() {
        let err = NandError::ProgramOrderViolation {
            block: BlockAddr::new(ChipId(0), 3),
            requested: PageId(5),
            expected: PageId(2),
        };
        let text = err.to_string();
        assert!(text.contains("program order violation"));
        assert!(text.contains("requested page P5"));
        assert!(text.contains("expected P2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NandError>();
    }

    #[test]
    fn fault_errors_render_useful_messages() {
        let block = BlockAddr::new(ChipId(1), 7);
        assert!(NandError::ProgramFailed { block }.to_string().contains("retired as bad"));
        assert!(NandError::EraseFailed { block }.to_string().contains("erase failed"));
        let err = NandError::UncorrectableRead { page: block.page(PageId(3)) };
        assert!(err.to_string().contains("uncorrectable read"));
    }

    #[test]
    fn invalid_config_mentions_reason() {
        let err = NandError::InvalidConfig { reason: "pages_per_block must be even".into() };
        assert!(err.to_string().contains("pages_per_block must be even"));
    }
}
