//! Cumulative device statistics.

use crate::time::Nanos;

/// Raw operation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounts {
    /// Page reads issued.
    pub reads: u64,
    /// Page programs issued.
    pub programs: u64,
    /// Block erases issued.
    pub erases: u64,
}

impl OpCounts {
    /// Total number of page-granularity operations (reads + programs).
    pub fn page_ops(&self) -> u64 {
        self.reads + self.programs
    }
}

/// Cumulative counters and busy time maintained by [`crate::NandDevice`].
///
/// Busy time is the sum of the latencies charged for each operation, i.e. the total
/// time the flash array spent servicing requests (ignoring any queuing above it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeviceStats {
    /// Operation counts.
    pub counts: OpCounts,
    /// Total time spent in page reads (cell + transfer).
    pub read_time: Nanos,
    /// Total time spent in page programs (cell + transfer).
    pub program_time: Nanos,
    /// Total time spent erasing blocks.
    pub erase_time: Nanos,
}

impl DeviceStats {
    /// A zeroed statistics block.
    pub fn new() -> Self {
        DeviceStats::default()
    }

    /// Total busy time across all operation kinds.
    pub fn busy_time(&self) -> Nanos {
        self.read_time + self.program_time + self.erase_time
    }

    /// Mean read latency, or zero if no reads happened.
    pub fn mean_read_latency(&self) -> Nanos {
        if self.counts.reads == 0 {
            Nanos::ZERO
        } else {
            self.read_time / self.counts.reads
        }
    }

    /// Mean program latency, or zero if no programs happened.
    pub fn mean_program_latency(&self) -> Nanos {
        if self.counts.programs == 0 {
            Nanos::ZERO
        } else {
            self.program_time / self.counts.programs
        }
    }

    pub(crate) fn record_read(&mut self, latency: Nanos) {
        self.counts.reads += 1;
        self.read_time += latency;
    }

    pub(crate) fn record_program(&mut self, latency: Nanos) {
        self.counts.programs += 1;
        self.program_time += latency;
    }

    pub(crate) fn record_erase(&mut self, latency: Nanos) {
        self.counts.erases += 1;
        self.erase_time += latency;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_stats_are_zero() {
        let stats = DeviceStats::new();
        assert_eq!(stats.counts.page_ops(), 0);
        assert_eq!(stats.busy_time(), Nanos::ZERO);
        assert_eq!(stats.mean_read_latency(), Nanos::ZERO);
        assert_eq!(stats.mean_program_latency(), Nanos::ZERO);
    }

    #[test]
    fn recording_accumulates() {
        let mut stats = DeviceStats::new();
        stats.record_read(Nanos::from_micros(50));
        stats.record_read(Nanos::from_micros(30));
        stats.record_program(Nanos::from_micros(600));
        stats.record_erase(Nanos::from_millis(4));
        assert_eq!(stats.counts.reads, 2);
        assert_eq!(stats.counts.programs, 1);
        assert_eq!(stats.counts.erases, 1);
        assert_eq!(stats.read_time, Nanos::from_micros(80));
        assert_eq!(stats.mean_read_latency(), Nanos::from_micros(40));
        assert_eq!(stats.mean_program_latency(), Nanos::from_micros(600));
        assert_eq!(
            stats.busy_time(),
            Nanos::from_micros(80) + Nanos::from_micros(600) + Nanos::from_millis(4)
        );
    }
}
