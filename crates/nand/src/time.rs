//! Simulation time represented as integer nanoseconds.
//!
//! Latency arithmetic happens millions of times per simulated trace, so a compact
//! `Copy` newtype over `u64` nanoseconds is used instead of `std::time::Duration`
//! (which is twice as wide and lacks saturating arithmetic ergonomics for this use
//! case) or floating point (which accumulates rounding error over long traces).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span of simulated time in nanoseconds.
///
/// # Example
///
/// ```
/// use vflash_nand::Nanos;
///
/// let read = Nanos::from_micros(49);
/// let transfer = Nanos::from_micros(246);
/// assert_eq!((read + transfer).as_micros_f64(), 295.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(pub u64);

impl Nanos {
    /// Zero duration.
    pub const ZERO: Nanos = Nanos(0);

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Creates a duration from fractional microseconds, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `us` is negative or not finite.
    pub fn from_micros_f64(us: f64) -> Self {
        assert!(us.is_finite() && us >= 0.0, "duration must be non-negative and finite");
        Nanos((us * 1_000.0).round() as u64)
    }

    /// The raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This duration expressed in microseconds (lossy).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This duration expressed in milliseconds (lossy).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// This duration expressed in seconds (lossy).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction; returns [`Nanos::ZERO`] instead of underflowing.
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition; `None` on overflow. Use on paths that accumulate
    /// open-ended penalties (e.g. the read-retry ladder), where plain `+`
    /// would wrap silently in release builds.
    pub fn checked_add(self, rhs: Nanos) -> Option<Nanos> {
        self.0.checked_add(rhs.0).map(Nanos)
    }

    /// Saturating addition; clamps at `u64::MAX` nanoseconds instead of
    /// wrapping.
    pub fn saturating_add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_add(rhs.0))
    }

    /// Checked multiplication by a count; `None` on overflow.
    pub fn checked_mul(self, rhs: u64) -> Option<Nanos> {
        self.0.checked_mul(rhs).map(Nanos)
    }

    /// Multiplies the duration by a non-negative scale factor, rounding to the
    /// nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scale(self, factor: f64) -> Nanos {
        assert!(factor.is_finite() && factor >= 0.0, "scale factor must be non-negative");
        Nanos((self.0 as f64 * factor).round() as u64)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl SubAssign for Nanos {
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, |acc, x| acc + x)
    }
}

impl From<u64> for Nanos {
    fn from(ns: u64) -> Self {
        Nanos(ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Nanos::from_micros(1), Nanos(1_000));
        assert_eq!(Nanos::from_millis(1), Nanos(1_000_000));
        assert_eq!(Nanos::from_micros_f64(1.5), Nanos(1_500));
    }

    #[test]
    fn arithmetic_behaves() {
        let a = Nanos::from_micros(10);
        let b = Nanos::from_micros(4);
        assert_eq!(a + b, Nanos::from_micros(14));
        assert_eq!(a - b, Nanos::from_micros(6));
        assert_eq!(a * 3, Nanos::from_micros(30));
        assert_eq!(a / 2, Nanos::from_micros(5));
        assert_eq!(b.saturating_sub(a), Nanos::ZERO);
    }

    #[test]
    fn checked_and_saturating_ops_handle_overflow() {
        let max = Nanos(u64::MAX);
        assert_eq!(max.checked_add(Nanos(1)), None);
        assert_eq!(Nanos(1).checked_add(Nanos(2)), Some(Nanos(3)));
        assert_eq!(max.saturating_add(Nanos(5)), max);
        assert_eq!(max.checked_mul(2), None);
        assert_eq!(Nanos(3).checked_mul(4), Some(Nanos(12)));
    }

    #[test]
    fn scaling_rounds_to_nearest() {
        assert_eq!(Nanos(10).scale(0.25), Nanos(3)); // 2.5 rounds up
        assert_eq!(Nanos(1_000).scale(2.0), Nanos(2_000));
    }

    #[test]
    fn conversions_are_consistent() {
        let t = Nanos::from_micros(600);
        assert_eq!(t.as_micros_f64(), 600.0);
        assert_eq!(t.as_millis_f64(), 0.6);
        assert!((t.as_secs_f64() - 0.0006).abs() < 1e-12);
    }

    #[test]
    fn sum_of_durations() {
        let total: Nanos = [Nanos(1), Nanos(2), Nanos(3)].into_iter().sum();
        assert_eq!(total, Nanos(6));
    }

    #[test]
    fn display_uses_readable_units() {
        assert_eq!(Nanos(500).to_string(), "500ns");
        assert_eq!(Nanos::from_micros(49).to_string(), "49.000us");
        assert_eq!(Nanos::from_millis(4).to_string(), "4.000ms");
        assert_eq!(Nanos::from_millis(4_000).to_string(), "4.000s");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_micros_panics() {
        let _ = Nanos::from_micros_f64(-1.0);
    }
}
