//! Deterministic fault injection: RBER-driven read retries, wear-dependent
//! program/erase failures and bad-block retirement.
//!
//! Real 3D charge-trap NAND does not fail all at once: the raw bit-error rate
//! (RBER) of a page climbs with the block's erase count (wear) and with how long
//! the data has sat since it was written (retention). ECC absorbs the first few
//! bit errors for free; past the correction strength the controller walks a
//! **read-retry ladder** — re-sensing with shifted reference voltages, each step
//! costing extra latency — and past the ladder the read is uncorrectable.
//! Programs and erases fail outright with a (much smaller) wear-dependent
//! probability, at which point firmware retires the block as *bad* and remaps
//! the write elsewhere.
//!
//! This module models that lifecycle deterministically. [`FaultConfig`] holds
//! the knobs (all off by default, so the fault-free simulator stays
//! bit-identical to its golden baselines); [`FaultState`] holds one independent
//! splitmix64 stream **per chip**, so the outcome of every operation depends
//! only on the seed and that chip's own operation history — never on how work
//! on other chips is interleaved. That is what keeps the work-stealing parallel
//! grid runner bit-reproducible at any worker count with faults enabled.
//!
//! Each fault query consumes exactly one draw from its chip's stream,
//! regardless of outcome, so outcome sequences are trivially reproducible.

use crate::time::Nanos;

/// Knobs of the deterministic fault model. All off by default.
///
/// The RBER curve is linear in wear and retention age:
///
/// ```text
/// rber = rber_base * rber_scale
///      * (1 + erase_count    * rber_wear_slope)
///      * (1 + retention_age  * rber_retention_slope)
/// ```
///
/// A read draws a bit-error count around `rber * page_bits`; ECC corrects up to
/// [`ecc_correctable_bits`](FaultConfig::ecc_correctable_bits) for free, each
/// retry step corrects [`retry_extra_bits`](FaultConfig::retry_extra_bits) more
/// at a cost of [`read_retry_penalty`](FaultConfig::read_retry_penalty), and a
/// read needing more than [`max_read_retries`](FaultConfig::max_read_retries)
/// steps is uncorrectable. Programs and erases fail with probability
/// `*_fail_base * (1 + erase_count * fail_wear_slope)`, retiring the block.
///
/// # Example
///
/// ```
/// use vflash_nand::FaultConfig;
///
/// let faults = FaultConfig::enabled(42);
/// assert!(faults.enabled);
/// assert_eq!(FaultConfig::default(), FaultConfig::disabled());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Master switch. When false the device never consults the fault model and
    /// behaves bit-identically to a fault-free build.
    pub enabled: bool,
    /// Seed of the per-chip fault streams.
    pub seed: u64,
    /// Multiplier on the whole RBER curve (the sweep axis of the fault
    /// experiments).
    pub rber_scale: f64,
    /// Raw bit-error rate of a fresh, just-written page.
    pub rber_base: f64,
    /// Relative RBER increase per erase of the block.
    pub rber_wear_slope: f64,
    /// Relative RBER increase per unit of retention age (device modification
    /// ticks since the block was last touched).
    pub rber_retention_slope: f64,
    /// Bit errors per page the ECC corrects without any retry.
    pub ecc_correctable_bits: u32,
    /// Maximum read-retry steps before a read is declared uncorrectable.
    pub max_read_retries: u32,
    /// Additional bit errors each retry step can correct.
    pub retry_extra_bits: u32,
    /// Latency added to the read for every retry step taken.
    pub read_retry_penalty: Nanos,
    /// Failure probability of a program on a fresh block.
    pub program_fail_base: f64,
    /// Failure probability of an erase on a fresh block.
    pub erase_fail_base: f64,
    /// Relative program/erase failure increase per erase of the block.
    pub fail_wear_slope: f64,
}

impl FaultConfig {
    /// The fault-free configuration: the model is never consulted.
    pub const fn disabled() -> Self {
        FaultConfig {
            enabled: false,
            seed: 0,
            rber_scale: 1.0,
            rber_base: 5e-5,
            rber_wear_slope: 0.02,
            rber_retention_slope: 1e-6,
            ecc_correctable_bits: 8,
            max_read_retries: 4,
            retry_extra_bits: 8,
            read_retry_penalty: Nanos::from_micros(25),
            program_fail_base: 1e-4,
            erase_fail_base: 5e-5,
            fail_wear_slope: 0.05,
        }
    }

    /// Enables the fault model with its default curve under the given seed.
    pub const fn enabled(seed: u64) -> Self {
        FaultConfig { enabled: true, seed, ..FaultConfig::disabled() }
    }

    /// Validates the knob combination, returning the reason a value is rejected.
    ///
    /// Probabilities must lie in `[0, 1]`; scales and slopes must be finite and
    /// non-negative; when retries are allowed, each step must correct at least
    /// one extra bit (otherwise the ladder cannot make progress).
    pub fn validate(&self) -> Result<(), &'static str> {
        for (value, name) in [
            (self.rber_scale, "rber_scale must be finite and non-negative"),
            (self.rber_base, "rber_base must be finite and non-negative"),
            (self.rber_wear_slope, "rber_wear_slope must be finite and non-negative"),
            (
                self.rber_retention_slope,
                "rber_retention_slope must be finite and non-negative",
            ),
        ] {
            if !value.is_finite() || value < 0.0 {
                return Err(name);
            }
        }
        for (value, name) in [
            (self.program_fail_base, "program_fail_base must be a probability in [0, 1]"),
            (self.erase_fail_base, "erase_fail_base must be a probability in [0, 1]"),
        ] {
            if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                return Err(name);
            }
        }
        if !self.fail_wear_slope.is_finite() || self.fail_wear_slope < 0.0 {
            return Err("fail_wear_slope must be finite and non-negative");
        }
        if self.max_read_retries > 0 && self.retry_extra_bits == 0 {
            return Err("retry_extra_bits must be positive when retries are allowed");
        }
        Ok(())
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::disabled()
    }
}

/// The outcome of the fault model for one page read.
///
/// Returned by [`NandDevice::last_read_faults`](crate::NandDevice::last_read_faults)
/// after every read; all zeros when faults are disabled or the read passed ECC
/// on the first sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReadFaultInfo {
    /// Read-retry steps the read needed.
    pub retries: u32,
    /// Latency the retries added on top of the base read.
    pub retry_time: Nanos,
    /// Whether the read exhausted the retry ladder without correcting.
    pub uncorrectable: bool,
    /// Total device time the read consumed (base latency + retries).
    pub total_time: Nanos,
}

/// splitmix64 finalizer: the same mix `ParallelRunner` uses for per-cell seeds,
/// so fault streams inherit its avalanche quality.
fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-device fault state: the knobs plus one splitmix64 stream per chip.
///
/// Chips draw from independent streams so an operation's outcome depends only
/// on the seed and the chip's own operation count — deterministic under any
/// cross-chip interleaving.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    config: FaultConfig,
    /// splitmix64 counters, one per chip; each draw advances by the golden
    /// gamma and finalizes.
    streams: Vec<u64>,
}

impl FaultState {
    pub(crate) fn new(config: FaultConfig, chips: usize) -> Self {
        let streams = (0..chips as u64)
            .map(|chip| splitmix64(config.seed ^ chip.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
            .collect();
        FaultState { config, streams }
    }

    pub(crate) fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// One uniform draw in `[0, 1)` from the chip's stream.
    fn unit(&mut self, chip: usize) -> f64 {
        let state = &mut self.streams[chip];
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let bits = splitmix64(*state);
        // 53 high bits -> [0, 1) with full double precision.
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Draws the retry/uncorrectable outcome for one read.
    ///
    /// The bit-error count is exponential noise around the RBER expectation
    /// (`expected * -ln(1 - u)` has mean `expected`), so occasional reads spike
    /// far above the mean — which is what exercises the ladder.
    pub(crate) fn read_outcome(
        &mut self,
        chip: usize,
        erase_count: u64,
        retention_age: u64,
        page_bits: u64,
    ) -> ReadFaultInfo {
        let c = self.config;
        let rber = c.rber_base
            * c.rber_scale
            * (1.0 + erase_count as f64 * c.rber_wear_slope)
            * (1.0 + retention_age as f64 * c.rber_retention_slope);
        let expected = rber * page_bits as f64;
        let u = self.unit(chip);
        let bit_errors = (expected * -(1.0 - u).ln()).round();
        let over = bit_errors - f64::from(c.ecc_correctable_bits);
        if over <= 0.0 {
            return ReadFaultInfo::default();
        }
        let steps = (over / f64::from(c.retry_extra_bits.max(1))).ceil();
        if steps > f64::from(c.max_read_retries) {
            ReadFaultInfo {
                retries: c.max_read_retries,
                uncorrectable: true,
                ..ReadFaultInfo::default()
            }
        } else {
            ReadFaultInfo { retries: steps as u32, ..ReadFaultInfo::default() }
        }
    }

    /// Whether this program attempt fails (retiring the block).
    pub(crate) fn program_fails(&mut self, chip: usize, erase_count: u64) -> bool {
        let p = self.config.program_fail_base
            * (1.0 + erase_count as f64 * self.config.fail_wear_slope);
        self.unit(chip) < p
    }

    /// Whether this erase attempt fails (retiring the block).
    pub(crate) fn erase_fails(&mut self, chip: usize, erase_count: u64) -> bool {
        let p = self.config.erase_fail_base
            * (1.0 + erase_count as f64 * self.config.fail_wear_slope);
        self.unit(chip) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled_with_sane_curve() {
        let c = FaultConfig::default();
        assert!(!c.enabled);
        assert_eq!(c, FaultConfig::disabled());
        assert!(c.validate().is_ok());
        assert!(FaultConfig::enabled(7).enabled);
        assert_eq!(FaultConfig::enabled(7).seed, 7);
    }

    #[test]
    fn validate_rejects_bad_knobs() {
        let mut c = FaultConfig::enabled(1);
        c.rber_scale = -1.0;
        assert!(c.validate().is_err());
        let mut c = FaultConfig::enabled(1);
        c.program_fail_base = 1.5;
        assert!(c.validate().is_err());
        let mut c = FaultConfig::enabled(1);
        c.erase_fail_base = f64::NAN;
        assert!(c.validate().is_err());
        let mut c = FaultConfig::enabled(1);
        c.retry_extra_bits = 0;
        assert!(c.validate().is_err());
        c.max_read_retries = 0;
        assert!(c.validate().is_ok(), "ladder disabled: step size irrelevant");
    }

    #[test]
    fn streams_are_deterministic_and_chip_independent() {
        let config = FaultConfig::enabled(42);
        let mut a = FaultState::new(config, 2);
        let mut b = FaultState::new(config, 2);
        // Interleave chips differently in the two replicas; per-chip sequences
        // must still agree draw by draw.
        let a_seq: Vec<f64> = (0..8).map(|_| a.unit(0)).collect();
        for _ in 0..8 {
            b.unit(1);
        }
        let b_seq: Vec<f64> = (0..8).map(|_| b.unit(0)).collect();
        assert_eq!(a_seq, b_seq, "chip 0 stream must not see chip 1 draws");
        assert!(a_seq.iter().all(|u| (0.0..1.0).contains(u)));
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let mut a = FaultState::new(FaultConfig::enabled(1), 1);
        let mut b = FaultState::new(FaultConfig::enabled(2), 1);
        let a_seq: Vec<u64> = (0..4).map(|_| (a.unit(0) * 1e9) as u64).collect();
        let b_seq: Vec<u64> = (0..4).map(|_| (b.unit(0) * 1e9) as u64).collect();
        assert_ne!(a_seq, b_seq);
    }

    #[test]
    fn read_outcome_scales_with_wear_and_retention() {
        let config = FaultConfig::enabled(9);
        let mut fresh = FaultState::new(config, 1);
        let mut worn = FaultState::new(config, 1);
        let page_bits = 16 * 1024 * 8;
        let fresh_retries: u32 =
            (0..200).map(|_| fresh.read_outcome(0, 0, 0, page_bits).retries).sum();
        let worn_retries: u32 =
            (0..200).map(|_| worn.read_outcome(0, 500, 10_000, page_bits).retries).sum();
        assert!(
            worn_retries > fresh_retries,
            "worn blocks must retry more ({worn_retries} vs {fresh_retries})"
        );
    }

    #[test]
    fn extreme_rber_is_uncorrectable() {
        let mut config = FaultConfig::enabled(3);
        config.rber_scale = 1e6;
        let mut state = FaultState::new(config, 1);
        let outcome = state.read_outcome(0, 100, 0, 16 * 1024 * 8);
        assert!(outcome.uncorrectable);
        assert_eq!(outcome.retries, config.max_read_retries);
    }

    #[test]
    fn failure_probabilities_respect_the_draw() {
        let mut config = FaultConfig::enabled(5);
        config.program_fail_base = 1.0;
        config.erase_fail_base = 0.0;
        let mut state = FaultState::new(config, 1);
        assert!(state.program_fails(0, 0));
        assert!(!state.erase_fails(0, 0), "zero probability never fails");
    }
}
