//! The asymmetric per-layer latency model.
//!
//! The vertical channel of a 3D charge-trap block is etched from the top of the gate
//! stack, so its diameter shrinks towards the bottom layers. A narrower channel
//! concentrates the electric field, which makes program and read operations on the
//! bottom layers faster. The paper reports the bottom layer being **2x to 5x** faster
//! than the top layer depending on the layer count.
//!
//! [`LatencyModel`] turns that physical observation into numbers: given a page index
//! (equivalently, its gate-stack layer), it produces the read/program latency for that
//! page by scaling the nominal datasheet latency with a per-layer speed factor derived
//! from a [`SpeedProfile`].
//!
//! Convention used throughout the workspace: **page 0 is the top layer (slowest)** and
//! the last page of the block is the bottom layer (fastest), matching the paper's
//! "the last page of one block could be much faster than the first page".

use crate::address::PageId;
use crate::time::Nanos;

/// How the per-layer speed factor varies across the gate stack.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum SpeedProfile {
    /// Latency shrinks linearly from the top layer to the bottom layer.
    ///
    /// This is the default and the profile used for the paper-reproduction
    /// experiments.
    Linear,
    /// Latency shrinks geometrically, modelling a channel diameter that tapers
    /// exponentially with etch depth.
    Exponential,
    /// The linear profile quantised into `steps` equal-latency groups of adjacent
    /// layers, modelling string-stacked devices where a few decks share one etch.
    Stepped {
        /// Number of distinct latency plateaus (at least 1).
        steps: usize,
    },
    /// Every layer has the nominal latency. This is the "conventional" symmetric
    /// assumption; useful as an ablation baseline.
    Uniform,
}

#[allow(clippy::derivable_impls)] // spelled out so the default choice is documented
impl Default for SpeedProfile {
    fn default() -> Self {
        SpeedProfile::Linear
    }
}

/// A group of adjacent layers with similar access speed.
///
/// Class 0 is the **slowest** group (top of the stack); higher classes are faster.
/// The PPB virtual-block concept groups the pages of one physical block into such
/// classes (two by default: slow half and fast half).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SpeedClass(pub usize);

impl SpeedClass {
    /// Computes the speed class of a page when the block is divided into
    /// `classes` equal groups of adjacent layers.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is zero or `pages_per_block` is zero.
    pub fn of(page: PageId, pages_per_block: usize, classes: usize) -> SpeedClass {
        assert!(classes > 0, "classes must be positive");
        assert!(pages_per_block > 0, "pages_per_block must be positive");
        let group_size = pages_per_block.div_ceil(classes);
        SpeedClass((page.0 / group_size).min(classes - 1))
    }

    /// Whether this is the slowest class.
    pub const fn is_slowest(self) -> bool {
        self.0 == 0
    }
}

/// Per-layer latency model for one block geometry.
///
/// # Example
///
/// ```
/// use vflash_nand::{LatencyModel, Nanos, PageId, SpeedProfile};
///
/// let model = LatencyModel::new(
///     Nanos::from_micros(49),   // nominal read
///     Nanos::from_micros(600),  // nominal program
///     Nanos::from_millis(4),    // erase
///     Nanos::from_micros(246),  // bus transfer of one page
///     64,                       // pages (layers) per block
///     4.0,                      // bottom layer is 4x faster than top layer
///     SpeedProfile::Linear,
/// );
/// let top = model.read_latency(PageId(0));
/// let bottom = model.read_latency(PageId(63));
/// assert_eq!(top, Nanos::from_micros(49));
/// assert_eq!(top.as_nanos(), bottom.as_nanos() * 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyModel {
    nominal_read: Nanos,
    nominal_program: Nanos,
    erase: Nanos,
    transfer: Nanos,
    pages_per_block: usize,
    speed_ratio: f64,
    profile: SpeedProfile,
    /// Pre-computed per-page latency multiplier in `[1/speed_ratio, 1.0]`.
    factors: Vec<f64>,
    /// Pre-computed `read_latency + transfer` per page: the device charges one
    /// of these on every read, so the float scale happens once at build time.
    read_totals: Vec<Nanos>,
    /// Pre-computed `program_latency + transfer` per page.
    program_totals: Vec<Nanos>,
}

impl LatencyModel {
    /// Builds a latency model.
    ///
    /// `speed_ratio` is the top-layer/bottom-layer latency ratio (2.0–5.0 in the
    /// paper). The nominal latencies apply to the *slowest* (top) layer; faster layers
    /// scale down from there.
    ///
    /// # Panics
    ///
    /// Panics if `pages_per_block` is zero, `speed_ratio < 1.0`, or a stepped profile
    /// specifies zero steps.
    pub fn new(
        nominal_read: Nanos,
        nominal_program: Nanos,
        erase: Nanos,
        transfer: Nanos,
        pages_per_block: usize,
        speed_ratio: f64,
        profile: SpeedProfile,
    ) -> Self {
        assert!(pages_per_block > 0, "pages_per_block must be positive");
        assert!(
            speed_ratio.is_finite() && speed_ratio >= 1.0,
            "speed_ratio must be >= 1.0"
        );
        if let SpeedProfile::Stepped { steps } = profile {
            assert!(steps > 0, "stepped profile needs at least one step");
        }
        let factors: Vec<f64> = (0..pages_per_block)
            .map(|i| Self::factor_at(i, pages_per_block, speed_ratio, profile))
            .collect();
        let read_totals =
            factors.iter().map(|&factor| nominal_read.scale(factor) + transfer).collect();
        let program_totals =
            factors.iter().map(|&factor| nominal_program.scale(factor) + transfer).collect();
        LatencyModel {
            nominal_read,
            nominal_program,
            erase,
            transfer,
            pages_per_block,
            speed_ratio,
            profile,
            factors,
            read_totals,
            program_totals,
        }
    }

    fn factor_at(index: usize, pages: usize, ratio: f64, profile: SpeedProfile) -> f64 {
        if pages == 1 {
            return 1.0;
        }
        let fastest = 1.0 / ratio;
        let position = index as f64 / (pages - 1) as f64; // 0.0 = top/slow, 1.0 = bottom/fast
        match profile {
            SpeedProfile::Uniform => 1.0,
            SpeedProfile::Linear => 1.0 - position * (1.0 - fastest),
            SpeedProfile::Exponential => fastest.powf(position),
            SpeedProfile::Stepped { steps } => {
                // Constructors reject `steps == 0`; catch an unvalidated call
                // path loudly in debug builds, and clamp in release so the
                // subtraction below can never underflow.
                debug_assert!(steps > 0, "stepped profile needs at least one step");
                let steps = steps.max(1);
                let step = ((position * steps as f64).floor() as usize).min(steps - 1);
                let step_position = if steps == 1 {
                    0.0
                } else {
                    step as f64 / (steps - 1) as f64
                };
                1.0 - step_position * (1.0 - fastest)
            }
        }
    }

    /// The per-page latency multiplier in `[1/speed_ratio, 1.0]`.
    ///
    /// # Panics
    ///
    /// Panics if `page` is outside the block.
    pub fn speed_factor(&self, page: PageId) -> f64 {
        self.factors[page.0]
    }

    /// Cell read latency of `page` (excluding bus transfer).
    ///
    /// # Panics
    ///
    /// Panics if `page` is outside the block.
    pub fn read_latency(&self, page: PageId) -> Nanos {
        self.nominal_read.scale(self.speed_factor(page))
    }

    /// Cell program latency of `page` (excluding bus transfer).
    ///
    /// # Panics
    ///
    /// Panics if `page` is outside the block.
    pub fn program_latency(&self, page: PageId) -> Nanos {
        self.nominal_program.scale(self.speed_factor(page))
    }

    /// Block erase latency. Erase operates on the whole vertical channel at once, so
    /// it does not vary per layer.
    pub fn erase_latency(&self) -> Nanos {
        self.erase
    }

    /// Time to move one page of data over the chip interface. Bus speed does not
    /// depend on the layer.
    pub fn transfer_latency(&self) -> Nanos {
        self.transfer
    }

    /// Total latency of servicing a page read: cell sensing plus bus transfer.
    /// Pre-computed per page, so the hot path is a table lookup.
    pub fn read_total(&self, page: PageId) -> Nanos {
        self.read_totals[page.0]
    }

    /// Total latency of servicing a page program: bus transfer plus cell programming.
    /// Pre-computed per page, so the hot path is a table lookup.
    pub fn program_total(&self, page: PageId) -> Nanos {
        self.program_totals[page.0]
    }

    /// Number of pages (layers) per block this model was built for.
    pub fn pages_per_block(&self) -> usize {
        self.pages_per_block
    }

    /// The configured top/bottom speed ratio.
    pub fn speed_ratio(&self) -> f64 {
        self.speed_ratio
    }

    /// The configured speed profile.
    pub fn profile(&self) -> SpeedProfile {
        self.profile
    }

    /// The speed class of `page` when the block is divided into `classes` groups.
    pub fn speed_class(&self, page: PageId, classes: usize) -> SpeedClass {
        SpeedClass::of(page, self.pages_per_block, classes)
    }

    /// Mean speed factor across all pages of a block: useful for reasoning about the
    /// aggregate bandwidth a block can deliver.
    pub fn mean_speed_factor(&self) -> f64 {
        self.factors.iter().sum::<f64>() / self.factors.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(pages: usize, ratio: f64, profile: SpeedProfile) -> LatencyModel {
        LatencyModel::new(
            Nanos::from_micros(49),
            Nanos::from_micros(600),
            Nanos::from_millis(4),
            Nanos::from_micros(246),
            pages,
            ratio,
            profile,
        )
    }

    #[test]
    fn linear_endpoints_match_ratio() {
        let m = model(384, 4.0, SpeedProfile::Linear);
        assert_eq!(m.speed_factor(PageId(0)), 1.0);
        assert!((m.speed_factor(PageId(383)) - 0.25).abs() < 1e-12);
        assert_eq!(m.read_latency(PageId(0)), Nanos::from_micros(49));
    }

    #[test]
    fn factors_monotonically_decrease_towards_bottom() {
        for profile in [
            SpeedProfile::Linear,
            SpeedProfile::Exponential,
            SpeedProfile::Stepped { steps: 4 },
        ] {
            let m = model(64, 3.0, profile);
            for i in 1..64 {
                assert!(
                    m.speed_factor(PageId(i)) <= m.speed_factor(PageId(i - 1)) + 1e-12,
                    "profile {profile:?} not monotone at page {i}"
                );
            }
        }
    }

    #[test]
    fn uniform_profile_has_no_spread() {
        let m = model(64, 5.0, SpeedProfile::Uniform);
        assert_eq!(m.speed_factor(PageId(0)), 1.0);
        assert_eq!(m.speed_factor(PageId(63)), 1.0);
        assert_eq!(m.read_latency(PageId(63)), Nanos::from_micros(49));
    }

    #[test]
    fn exponential_endpoints_match_ratio() {
        let m = model(100, 2.0, SpeedProfile::Exponential);
        assert!((m.speed_factor(PageId(0)) - 1.0).abs() < 1e-12);
        assert!((m.speed_factor(PageId(99)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stepped_profile_produces_exactly_n_distinct_factors() {
        let m = model(384, 4.0, SpeedProfile::Stepped { steps: 4 });
        let mut distinct: Vec<f64> = (0..384).map(|i| m.speed_factor(PageId(i))).collect();
        distinct.dedup();
        assert_eq!(distinct.len(), 4);
        assert_eq!(distinct[0], 1.0);
        assert!((distinct[3] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn single_page_block_is_nominal() {
        let m = model(1, 5.0, SpeedProfile::Linear);
        assert_eq!(m.speed_factor(PageId(0)), 1.0);
    }

    #[test]
    fn totals_include_transfer() {
        let m = model(8, 2.0, SpeedProfile::Linear);
        assert_eq!(
            m.read_total(PageId(0)),
            Nanos::from_micros(49) + Nanos::from_micros(246)
        );
        assert_eq!(
            m.program_total(PageId(0)),
            Nanos::from_micros(600) + Nanos::from_micros(246)
        );
    }

    #[test]
    fn erase_is_layer_independent() {
        let m = model(8, 5.0, SpeedProfile::Linear);
        assert_eq!(m.erase_latency(), Nanos::from_millis(4));
    }

    #[test]
    fn speed_class_partitions_block_in_half() {
        assert_eq!(SpeedClass::of(PageId(0), 384, 2), SpeedClass(0));
        assert_eq!(SpeedClass::of(PageId(191), 384, 2), SpeedClass(0));
        assert_eq!(SpeedClass::of(PageId(192), 384, 2), SpeedClass(1));
        assert_eq!(SpeedClass::of(PageId(383), 384, 2), SpeedClass(1));
    }

    #[test]
    fn speed_class_handles_uneven_division() {
        // 10 pages into 4 classes: group size ceil(10/4) = 3 -> classes 0,0,0,1,1,1,2,2,2,3
        assert_eq!(SpeedClass::of(PageId(2), 10, 4), SpeedClass(0));
        assert_eq!(SpeedClass::of(PageId(3), 10, 4), SpeedClass(1));
        assert_eq!(SpeedClass::of(PageId(9), 10, 4), SpeedClass(3));
    }

    #[test]
    fn mean_speed_factor_between_extremes() {
        let m = model(64, 4.0, SpeedProfile::Linear);
        let mean = m.mean_speed_factor();
        assert!(mean > 0.25 && mean < 1.0);
        assert!((mean - 0.625).abs() < 0.01); // linear average of 1.0 and 0.25
    }

    #[test]
    #[should_panic(expected = "speed_ratio")]
    fn ratio_below_one_rejected() {
        let _ = model(8, 0.5, SpeedProfile::Linear);
    }

    /// Regression test: `Stepped { steps: 0 }` must be rejected with the documented
    /// construction panic, not an arithmetic underflow inside `factor_at` (the
    /// `steps - 1` at the heart of the stepped profile).
    #[test]
    #[should_panic(expected = "at least one step")]
    fn stepped_zero_steps_rejected_at_construction() {
        let _ = model(8, 2.0, SpeedProfile::Stepped { steps: 0 });
    }

    /// A single plateau is the degenerate-but-valid edge of the stepped profile:
    /// every layer keeps the nominal latency (equivalent to `Uniform`).
    #[test]
    fn stepped_single_step_is_uniform() {
        let m = model(8, 4.0, SpeedProfile::Stepped { steps: 1 });
        for i in 0..8 {
            assert_eq!(m.speed_factor(PageId(i)), 1.0, "page {i} should be nominal");
        }
    }

    /// More steps than pages must not push any factor outside `[1/ratio, 1]`.
    #[test]
    fn stepped_more_steps_than_pages_stays_bounded() {
        let m = model(2, 4.0, SpeedProfile::Stepped { steps: 8 });
        assert_eq!(m.speed_factor(PageId(0)), 1.0);
        assert!((m.speed_factor(PageId(1)) - 0.25).abs() < 1e-12);
    }
}
