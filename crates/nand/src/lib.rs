//! # vflash-nand
//!
//! A behavioural model of **3D charge-trap NAND flash** with the *asymmetric feature
//! process size* characteristic described in the DAC 2017 paper
//! "Boosting the Performance of 3D Charge Trap NAND Flash with Asymmetric Feature
//! Process Size Characteristic".
//!
//! 3D charge-trap NAND is built by stacking gate layers and etching vertical,
//! cylindrical channels through the stack. Because the etch erodes a wider opening at
//! the top of the stack than at the bottom, the electric field — and therefore the page
//! access speed — differs per layer: pages on the bottom layers are typically **2x–5x
//! faster** than pages on the top layers. In the FTL view, a vertical channel maps to a
//! *block* and each gate-stack layer maps to a *page*, so pages within one block have
//! heterogeneous access latency.
//!
//! This crate models that device faithfully enough for FTL research:
//!
//! * [`NandConfig`] — geometry and timing parameters (defaults follow Table 1 of the
//!   paper: 64 GB, 16 KB pages, 384 pages/block, 600 µs program, 49 µs read,
//!   533 MB/s transfer, 4 ms erase).
//! * [`LatencyModel`] / [`SpeedProfile`] — per-layer asymmetric latency (2x–5x).
//! * [`NandDevice`] — chips, blocks and pages with the flash state machine
//!   (erase-before-write, in-order page programming, valid/invalid/free pages) and
//!   cumulative timing/wear statistics.
//!
//! # Chip-level interleaving
//!
//! Chips (dies) are independent: operations on different chips overlap in time,
//! while operations on the same chip serialise. Each [`Chip`] therefore carries a
//! busy clock that accumulates the latency of every operation it services, and
//! [`NandDevice::makespan`] — the maximum clock across chips — is the completion
//! time of the whole operation stream under perfect chip interleaving (the serial
//! sum remains available via [`DeviceStats::busy_time`]). To make the overlap real,
//! [`NandDevice::allocate_block`] hands out free blocks round-robin across chips,
//! so consecutive writes land on different dies. Free blocks, per-state counts and
//! garbage-collection candidates are tracked per chip in O(1) — see [`Chip`].
//!
//! # Example
//!
//! ```
//! use vflash_nand::{NandConfig, NandDevice, PageId};
//!
//! # fn main() -> Result<(), vflash_nand::NandError> {
//! // A small device: 1 chip, 16 blocks, 8 pages (= layers) per block, 3x speed difference.
//! let config = NandConfig::builder()
//!     .chips(1)
//!     .blocks_per_chip(16)
//!     .pages_per_block(8)
//!     .speed_ratio(3.0)
//!     .build()?;
//! let mut device = NandDevice::new(config);
//!
//! let block = device.any_free_block().expect("fresh device has free blocks");
//! // Programming the first (top-layer, slow) page takes longer than reading it back.
//! let program = device.program(block, PageId(0))?;
//! let read = device.read(block.page(PageId(0)))?;
//! assert!(program > read);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod address;
mod block;
mod chip;
mod config;
mod device;
mod error;
mod fault;
mod latency;
mod page;
mod provenance;
mod sched;
mod stats;
mod time;

pub use address::{BlockAddr, ChipId, LayerId, PageAddr, PageId};
pub use block::{Block, BlockState};
pub use chip::Chip;
pub use config::{NandConfig, NandConfigBuilder};
pub use device::NandDevice;
pub use error::NandError;
pub use fault::{FaultConfig, ReadFaultInfo};
pub use latency::{LatencyModel, SpeedClass, SpeedProfile};
pub use page::{Page, PageState};
pub use provenance::{OpKind, OpRecord, OpSpan};
pub use sched::ChipClocks;
pub use stats::{DeviceStats, OpCounts};
pub use time::Nanos;
