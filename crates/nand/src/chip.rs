//! A flash chip (die): an array of erase blocks.

use crate::block::{Block, BlockState};

/// One NAND die holding `blocks_per_chip` blocks.
///
/// The chip is a thin container; timing and state-machine enforcement live in
/// [`crate::NandDevice`], which also knows the latency model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chip {
    blocks: Vec<Block>,
}

impl Chip {
    /// Creates a chip of erased blocks.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(blocks_per_chip: usize, pages_per_block: usize) -> Self {
        assert!(blocks_per_chip > 0, "a chip needs at least one block");
        Chip { blocks: (0..blocks_per_chip).map(|_| Block::new(pages_per_block)).collect() }
    }

    /// Number of blocks on the chip.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the chip holds zero blocks (never true for a constructed chip).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Immutable access to a block by index.
    pub fn block(&self, index: usize) -> Option<&Block> {
        self.blocks.get(index)
    }

    pub(crate) fn block_mut(&mut self, index: usize) -> Option<&mut Block> {
        self.blocks.get_mut(index)
    }

    /// Iterates over the chip's blocks in index order.
    pub fn iter(&self) -> std::slice::Iter<'_, Block> {
        self.blocks.iter()
    }

    /// Number of blocks currently in the [`BlockState::Free`] state.
    pub fn free_blocks(&self) -> usize {
        self.blocks.iter().filter(|b| b.state() == BlockState::Free).count()
    }

    /// Sum of erase counts over all blocks (total wear of the chip).
    pub fn total_erases(&self) -> u64 {
        self.blocks.iter().map(Block::erase_count).sum()
    }
}

impl<'a> IntoIterator for &'a Chip {
    type Item = &'a Block;
    type IntoIter = std::slice::Iter<'a, Block>;

    fn into_iter(self) -> Self::IntoIter {
        self.blocks.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_chip_has_all_free_blocks() {
        let chip = Chip::new(8, 4);
        assert_eq!(chip.len(), 8);
        assert_eq!(chip.free_blocks(), 8);
        assert_eq!(chip.total_erases(), 0);
        assert!(!chip.is_empty());
    }

    #[test]
    fn block_access_is_bounds_checked() {
        let chip = Chip::new(2, 4);
        assert!(chip.block(1).is_some());
        assert!(chip.block(2).is_none());
    }

    #[test]
    fn iteration_covers_every_block() {
        let chip = Chip::new(5, 2);
        assert_eq!(chip.iter().count(), 5);
        assert_eq!((&chip).into_iter().count(), 5);
    }

    #[test]
    fn free_block_count_tracks_programming() {
        let mut chip = Chip::new(3, 2);
        chip.block_mut(0).unwrap().program_next();
        assert_eq!(chip.free_blocks(), 2);
    }
}
