//! A flash chip (die): an array of erase blocks with O(1) free-block accounting
//! and an independent busy clock.
//!
//! The chip is no longer a thin container: it owns the bookkeeping that makes the
//! device's hot paths constant-time —
//!
//! * a **free-block pool** (FIFO with lazy deletion) so allocation pops in O(1)
//!   instead of scanning every block,
//! * **per-state counters** so occupancy queries (`free_blocks`) and wear totals
//!   (`total_erases`) are O(1),
//! * a **garbage-collection candidate index** (full blocks holding at least one
//!   invalid page, position-mapped for O(1) insert/remove) so victim selection is
//!   O(candidates) instead of O(blocks), and
//! * a **busy clock** accumulating the device time this chip spent servicing
//!   operations. Chips service operations independently, so the device-level
//!   makespan (`max` over chip busy times) models chip-level interleaving: a
//!   multi-chip device finishes a batch of operations as soon as its busiest chip
//!   does, not after the serial sum.
//!
//! Timing and state-machine *enforcement* still live in [`crate::NandDevice`],
//! which knows the latency model; the chip only maintains the accounting.

use std::collections::VecDeque;

use crate::address::PageId;
use crate::block::{Block, BlockState};
use crate::page::PageState;
use crate::time::Nanos;

/// Sentinel for "not currently in the candidate index".
const NO_CANDIDATE: usize = usize::MAX;

/// One NAND die holding `blocks_per_chip` blocks.
///
/// Equality is structural and includes the free-pool order: two chips whose blocks
/// are in identical states but whose pools were built by different operation
/// histories hand out blocks in different orders, so they are genuinely different
/// states and compare unequal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chip {
    blocks: Vec<Block>,
    /// FIFO of block indices available for allocation. Entries are lazily deleted:
    /// `in_pool` is the source of truth, and stale entries are skipped on pop.
    free_pool: VecDeque<usize>,
    /// Whether each block is logically in `free_pool`.
    in_pool: Vec<bool>,
    /// Number of logically pooled (allocatable) blocks.
    available: usize,
    /// Number of blocks in [`BlockState::Free`] (including allocated-but-unwritten
    /// blocks leased out via the crate-internal `Chip::allocate`).
    free_count: usize,
    /// Indices of full blocks with at least one invalid page — exactly the blocks a
    /// greedy garbage collector can reclaim with benefit.
    candidates: Vec<usize>,
    /// Position of each block in `candidates`, or [`NO_CANDIDATE`].
    candidate_pos: Vec<usize>,
    /// Total erases performed on this chip.
    erases: u64,
    /// Blocks retired as bad on this chip.
    bad_blocks: usize,
    /// Total simulated time this chip spent busy servicing operations.
    busy_time: Nanos,
}

impl Chip {
    /// Creates a chip of erased blocks, all pooled for allocation.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(blocks_per_chip: usize, pages_per_block: usize) -> Self {
        assert!(blocks_per_chip > 0, "a chip needs at least one block");
        Chip {
            blocks: (0..blocks_per_chip).map(|_| Block::new(pages_per_block)).collect(),
            free_pool: (0..blocks_per_chip).collect(),
            in_pool: vec![true; blocks_per_chip],
            available: blocks_per_chip,
            free_count: blocks_per_chip,
            candidates: Vec::new(),
            candidate_pos: vec![NO_CANDIDATE; blocks_per_chip],
            erases: 0,
            bad_blocks: 0,
            busy_time: Nanos::ZERO,
        }
    }

    /// Number of blocks on the chip.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the chip holds zero blocks (never true for a constructed chip).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Immutable access to a block by index.
    pub fn block(&self, index: usize) -> Option<&Block> {
        self.blocks.get(index)
    }

    /// Iterates over the chip's blocks in index order.
    pub fn iter(&self) -> std::slice::Iter<'_, Block> {
        self.blocks.iter()
    }

    /// Number of blocks currently in the [`BlockState::Free`] state. O(1).
    pub fn free_blocks(&self) -> usize {
        self.free_count
    }

    /// Number of blocks available for allocation. O(1).
    ///
    /// This differs from [`Chip::free_blocks`] by the blocks that have been handed
    /// out via the crate-internal `Chip::allocate` but not programmed yet: those are still erased but
    /// no longer allocatable.
    pub fn available_blocks(&self) -> usize {
        self.available
    }

    /// Sum of erase counts over all blocks (total wear of the chip). O(1).
    pub fn total_erases(&self) -> u64 {
        self.erases
    }

    /// Number of blocks retired as bad on this chip. O(1).
    pub fn bad_blocks(&self) -> usize {
        self.bad_blocks
    }

    /// Total simulated time this chip has spent servicing reads, programs and
    /// erases. Chips operate independently, so the device-wide makespan is the
    /// maximum of these, not the sum.
    pub fn busy_time(&self) -> Nanos {
        self.busy_time
    }

    /// Pops a free block from the pool, or `None` if none is allocatable.
    ///
    /// The block stays in [`BlockState::Free`] until programmed but will not be
    /// handed out again until an erase returns it to the pool.
    pub(crate) fn allocate(&mut self) -> Option<usize> {
        while let Some(index) = self.free_pool.pop_front() {
            if self.in_pool[index] {
                self.in_pool[index] = false;
                self.available -= 1;
                self.drop_stale_front();
                return Some(index);
            }
            // Stale entry: the block left the pool logically (direct program) and
            // its queue slot is only dropped now.
        }
        None
    }

    /// Drops stale entries from the front of the pool so [`Chip::peek_free`] finds a
    /// live entry in O(1). Amortised free: every dropped entry was pushed exactly
    /// once, and direct programs (the only source of staleness) go stale at the
    /// front in the peek-then-program idiom.
    fn drop_stale_front(&mut self) {
        while let Some(&front) = self.free_pool.front() {
            if self.in_pool[front] {
                break;
            }
            self.free_pool.pop_front();
        }
    }

    /// The index of some allocatable free block without removing it from the pool.
    ///
    /// Amortised O(1): mutations keep the front of the pool live, so stale entries
    /// are only walked when they appear mid-queue (a block programmed directly
    /// without being peeked or allocated first) — and each such entry is dropped by
    /// a later mutation.
    pub fn peek_free(&self) -> Option<usize> {
        self.free_pool.iter().copied().find(|&index| self.in_pool[index])
    }

    /// Iterates over garbage-collection candidates: full blocks with at least one
    /// invalid page. Order is maintenance order, not address order — callers that
    /// need deterministic tie-breaking should compare addresses explicitly.
    pub fn gc_candidates(&self) -> impl Iterator<Item = usize> + '_ {
        self.candidates.iter().copied()
    }

    /// Accumulates operation latency on this chip's busy clock.
    pub(crate) fn add_busy(&mut self, latency: Nanos) {
        self.busy_time += latency;
    }

    /// Stamps a block with the device's modification clock (see
    /// [`Block::last_modified`]).
    pub(crate) fn touch_block(&mut self, index: usize, seq: u64) {
        self.blocks[index].touch(seq);
    }

    /// Sets or clears a block's data-area tag (see [`Block::area_tag`]).
    pub(crate) fn tag_block(&mut self, index: usize, tag: Option<u8>) {
        self.blocks[index].set_area_tag(tag);
    }

    /// Programs the next free page of a block, maintaining the accounting.
    pub(crate) fn program_block(&mut self, index: usize) -> Option<PageId> {
        let was_free = self.blocks[index].state() == BlockState::Free;
        let page = self.blocks[index].program_next()?;
        if was_free {
            self.free_count -= 1;
            if self.in_pool[index] {
                // Programmed without allocation (tests, tools): logical removal now,
                // the queue entry is skipped lazily.
                self.in_pool[index] = false;
                self.available -= 1;
                self.drop_stale_front();
            }
        }
        self.maybe_add_candidate(index);
        Some(page)
    }

    /// Invalidates a page, maintaining the candidate index.
    pub(crate) fn invalidate_page(
        &mut self,
        index: usize,
        page: PageId,
    ) -> Result<(), PageState> {
        self.blocks[index].invalidate(page)?;
        self.maybe_add_candidate(index);
        Ok(())
    }

    /// Erases a block, returning it to the free pool and candidate-delisting it.
    pub(crate) fn erase_block(&mut self, index: usize) {
        let was_free = self.blocks[index].state() == BlockState::Free;
        self.blocks[index].erase();
        self.erases += 1;
        if !was_free {
            self.free_count += 1;
        }
        self.remove_candidate(index);
        if !self.in_pool[index] {
            self.in_pool[index] = true;
            self.available += 1;
            self.free_pool.push_back(index);
        }
        self.drop_stale_front();
    }

    /// Retires a block as bad, pulling it out of every index: the free pool (it
    /// can never be allocated), the free count (it is no longer erased capacity)
    /// and the GC candidate list (it can never be erased). Idempotent at the
    /// device layer, which only calls this for blocks not yet bad.
    pub(crate) fn retire_block(&mut self, index: usize) {
        let was_free = self.blocks[index].state() == BlockState::Free;
        self.blocks[index].mark_bad();
        if was_free {
            self.free_count -= 1;
        }
        if self.in_pool[index] {
            self.in_pool[index] = false;
            self.available -= 1;
        }
        self.remove_candidate(index);
        self.drop_stale_front();
        self.bad_blocks += 1;
    }

    fn maybe_add_candidate(&mut self, index: usize) {
        let block = &self.blocks[index];
        if block.state() == BlockState::Full
            && block.invalid_pages() > 0
            && self.candidate_pos[index] == NO_CANDIDATE
        {
            self.candidate_pos[index] = self.candidates.len();
            self.candidates.push(index);
        }
    }

    fn remove_candidate(&mut self, index: usize) {
        let pos = self.candidate_pos[index];
        if pos == NO_CANDIDATE {
            return;
        }
        self.candidates.swap_remove(pos);
        self.candidate_pos[index] = NO_CANDIDATE;
        if let Some(&moved) = self.candidates.get(pos) {
            self.candidate_pos[moved] = pos;
        }
    }
}

impl<'a> IntoIterator for &'a Chip {
    type Item = &'a Block;
    type IntoIter = std::slice::Iter<'a, Block>;

    fn into_iter(self) -> Self::IntoIter {
        self.blocks.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force recount of blocks in the `Free` state.
    fn recount_free(chip: &Chip) -> usize {
        chip.iter().filter(|b| b.state() == BlockState::Free).count()
    }

    fn fill_block(chip: &mut Chip, index: usize, pages: usize) {
        for _ in 0..pages {
            chip.program_block(index).unwrap();
        }
    }

    #[test]
    fn new_chip_has_all_free_blocks() {
        let chip = Chip::new(8, 4);
        assert_eq!(chip.len(), 8);
        assert_eq!(chip.free_blocks(), 8);
        assert_eq!(chip.available_blocks(), 8);
        assert_eq!(chip.total_erases(), 0);
        assert_eq!(chip.busy_time(), Nanos::ZERO);
        assert!(!chip.is_empty());
    }

    #[test]
    fn block_access_is_bounds_checked() {
        let chip = Chip::new(2, 4);
        assert!(chip.block(1).is_some());
        assert!(chip.block(2).is_none());
    }

    #[test]
    fn iteration_covers_every_block() {
        let chip = Chip::new(5, 2);
        assert_eq!(chip.iter().count(), 5);
        assert_eq!((&chip).into_iter().count(), 5);
    }

    #[test]
    fn free_block_count_tracks_programming() {
        let mut chip = Chip::new(3, 2);
        chip.program_block(0).unwrap();
        assert_eq!(chip.free_blocks(), 2);
        assert_eq!(chip.free_blocks(), recount_free(&chip));
        assert_eq!(chip.available_blocks(), 2, "directly programmed block leaves the pool");
    }

    #[test]
    fn allocation_is_fifo_and_exhaustible() {
        let mut chip = Chip::new(3, 2);
        assert_eq!(chip.allocate(), Some(0));
        assert_eq!(chip.allocate(), Some(1));
        assert_eq!(chip.allocate(), Some(2));
        assert_eq!(chip.allocate(), None);
        // All blocks are still erased; only the pool is empty.
        assert_eq!(chip.free_blocks(), 3);
        assert_eq!(chip.available_blocks(), 0);
    }

    #[test]
    fn erase_returns_blocks_to_the_back_of_the_pool() {
        let mut chip = Chip::new(2, 1);
        let a = chip.allocate().unwrap();
        chip.program_block(a).unwrap();
        chip.invalidate_page(a, PageId(0)).unwrap();
        chip.erase_block(a);
        assert_eq!(chip.total_erases(), 1);
        // Block 1 was never taken, so it is handed out before the recycled block 0.
        assert_eq!(chip.allocate(), Some(1));
        assert_eq!(chip.allocate(), Some(0));
    }

    #[test]
    fn stale_pool_entries_are_skipped() {
        let mut chip = Chip::new(3, 2);
        // Program block 1 directly (never allocated): its queue entry goes stale.
        chip.program_block(1).unwrap();
        assert_eq!(chip.allocate(), Some(0));
        assert_eq!(chip.allocate(), Some(2), "stale entry for block 1 must be skipped");
        assert_eq!(chip.allocate(), None);
    }

    #[test]
    fn peek_free_skips_stale_entries_without_mutating() {
        let mut chip = Chip::new(2, 2);
        chip.program_block(0).unwrap();
        assert_eq!(chip.peek_free(), Some(1));
        assert_eq!(chip.peek_free(), Some(1), "peek must not consume");
        chip.program_block(1).unwrap();
        assert_eq!(chip.peek_free(), None);
    }

    #[test]
    fn peek_then_program_never_accumulates_stale_front_entries() {
        // The classic `any_free_block()` + `program_next()` idiom: each program goes
        // stale at the front of the pool and must be compacted away immediately so
        // a device fill stays O(blocks), not O(blocks^2).
        let mut chip = Chip::new(64, 1);
        for expected in 0..64 {
            let peeked = chip.peek_free().unwrap();
            assert_eq!(peeked, expected);
            chip.program_block(peeked).unwrap();
            assert_eq!(chip.free_pool.front().is_some(), expected + 1 < 64);
            if let Some(&front) = chip.free_pool.front() {
                assert!(chip.in_pool[front], "front of the pool must stay live");
            }
        }
        assert_eq!(chip.peek_free(), None);
        assert!(chip.free_pool.is_empty(), "all stale entries were compacted");
    }

    #[test]
    fn gc_candidates_track_full_blocks_with_invalid_pages() {
        let mut chip = Chip::new(3, 2);
        assert_eq!(chip.gc_candidates().count(), 0);
        fill_block(&mut chip, 0, 2);
        // Full but fully valid: not a candidate.
        assert_eq!(chip.gc_candidates().count(), 0);
        chip.invalidate_page(0, PageId(0)).unwrap();
        assert_eq!(chip.gc_candidates().collect::<Vec<_>>(), vec![0]);
        // A second invalidation must not duplicate the entry.
        chip.invalidate_page(0, PageId(1)).unwrap();
        assert_eq!(chip.gc_candidates().collect::<Vec<_>>(), vec![0]);
        chip.erase_block(0);
        assert_eq!(chip.gc_candidates().count(), 0);
    }

    #[test]
    fn invalidating_an_open_block_defers_candidacy_until_full() {
        let mut chip = Chip::new(2, 3);
        chip.program_block(0).unwrap();
        chip.invalidate_page(0, PageId(0)).unwrap();
        assert_eq!(chip.gc_candidates().count(), 0, "open blocks are not candidates");
        chip.program_block(0).unwrap();
        chip.program_block(0).unwrap();
        assert_eq!(
            chip.gc_candidates().collect::<Vec<_>>(),
            vec![0],
            "filling the block must promote it to candidacy"
        );
    }

    #[test]
    fn candidate_removal_keeps_positions_consistent() {
        let mut chip = Chip::new(4, 1);
        for index in 0..4 {
            fill_block(&mut chip, index, 1);
            chip.invalidate_page(index, PageId(0)).unwrap();
        }
        assert_eq!(chip.gc_candidates().count(), 4);
        // Remove from the middle (swap_remove moves the last entry into the hole).
        chip.erase_block(1);
        let mut left: Vec<_> = chip.gc_candidates().collect();
        left.sort_unstable();
        assert_eq!(left, vec![0, 2, 3]);
        chip.erase_block(3);
        let mut left: Vec<_> = chip.gc_candidates().collect();
        left.sort_unstable();
        assert_eq!(left, vec![0, 2]);
    }

    #[test]
    fn retiring_a_pooled_block_removes_it_from_allocation() {
        let mut chip = Chip::new(3, 2);
        chip.retire_block(1);
        assert_eq!(chip.bad_blocks(), 1);
        assert_eq!(chip.free_blocks(), 2);
        assert_eq!(chip.available_blocks(), 2);
        assert_eq!(chip.allocate(), Some(0));
        assert_eq!(chip.allocate(), Some(2), "bad block 1 must be skipped");
        assert_eq!(chip.allocate(), None);
        assert_eq!(chip.free_blocks(), recount_free(&chip));
    }

    #[test]
    fn retiring_a_candidate_delists_it() {
        let mut chip = Chip::new(2, 1);
        fill_block(&mut chip, 0, 1);
        chip.invalidate_page(0, PageId(0)).unwrap();
        assert_eq!(chip.gc_candidates().collect::<Vec<_>>(), vec![0]);
        chip.retire_block(0);
        assert_eq!(chip.gc_candidates().count(), 0);
        assert_eq!(chip.bad_blocks(), 1);
        // Further invalidations in the bad block never resurrect candidacy.
        assert_eq!(chip.free_blocks(), recount_free(&chip));
    }

    #[test]
    fn busy_time_accumulates() {
        let mut chip = Chip::new(1, 1);
        chip.add_busy(Nanos::from_micros(10));
        chip.add_busy(Nanos::from_micros(5));
        assert_eq!(chip.busy_time(), Nanos::from_micros(15));
    }

    #[test]
    fn counters_match_brute_force_through_a_lifecycle() {
        let mut chip = Chip::new(4, 2);
        let a = chip.allocate().unwrap();
        fill_block(&mut chip, a, 2);
        chip.program_block(1).unwrap();
        assert_eq!(chip.free_blocks(), recount_free(&chip));
        chip.invalidate_page(a, PageId(0)).unwrap();
        chip.invalidate_page(a, PageId(1)).unwrap();
        chip.erase_block(a);
        assert_eq!(chip.free_blocks(), recount_free(&chip));
        assert_eq!(chip.free_blocks(), 3);
        assert_eq!(chip.available_blocks(), 3, "block 1 is open; a, 2 and 3 are pooled");
    }
}
