//! Op-provenance records: which chip serviced which operation, and for how long.
//!
//! The queued replayer in `vflash-sim` models queue-depth > 1 by overlapping
//! requests that land on different chips. To do that it must know, for every host
//! request the FTL serves, **which chip clocks the request advanced** — including
//! the garbage-collection reads, programs and erases the FTL performed on the
//! request's behalf. The device records that provenance when
//! [`NandDevice::set_op_tracing`](crate::NandDevice::set_op_tracing) is enabled,
//! and FTLs drain it into each completion via
//! [`NandDevice::drain_ops`](crate::NandDevice::drain_ops).
//!
//! Tracing is off by default and costs a single predictable branch per operation
//! when disabled, so the scalar replay hot path is unaffected.

use crate::address::ChipId;
use crate::time::Nanos;

/// The kind of a timed device operation.
///
/// Mapping-table updates ([`NandDevice::invalidate`](crate::NandDevice::invalidate))
/// take no device time and therefore produce no record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// A page read (sensing + transfer).
    Read,
    /// A page program.
    Program,
    /// A block erase.
    Erase,
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            OpKind::Read => "read",
            OpKind::Program => "program",
            OpKind::Erase => "erase",
        })
    }
}

/// One timed device operation: the chip whose busy clock it advanced, what it was,
/// and how long it took.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpRecord {
    /// The chip that serviced the operation.
    pub chip: ChipId,
    /// What the operation was.
    pub kind: OpKind,
    /// How long the chip was busy with it.
    pub latency: Nanos,
}

impl OpRecord {
    /// Creates a record.
    pub fn new(chip: ChipId, kind: OpKind, latency: Nanos) -> Self {
        OpRecord { chip, kind, latency }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_carry_their_fields() {
        let record = OpRecord::new(ChipId(3), OpKind::Erase, Nanos::from_millis(4));
        assert_eq!(record.chip, ChipId(3));
        assert_eq!(record.kind, OpKind::Erase);
        assert_eq!(record.latency, Nanos::from_millis(4));
        assert_eq!(OpKind::Read.to_string(), "read");
        assert_eq!(OpKind::Program.to_string(), "program");
        assert_eq!(OpKind::Erase.to_string(), "erase");
    }
}
