//! Op-provenance records: which chip serviced which operation, and for how long.
//!
//! The queued replayer in `vflash-sim` models queue-depth > 1 by overlapping
//! requests that land on different chips. To do that it must know, for every host
//! request the FTL serves, **which chip clocks the request advanced** — including
//! the garbage-collection reads, programs and erases the FTL performed on the
//! request's behalf. The device records that provenance into a device-owned
//! **op arena** when [`NandDevice::set_op_tracing`](crate::NandDevice::set_op_tracing)
//! is enabled; FTLs hand each completion an [`OpSpan`] — a small copyable index
//! range into the arena — instead of a per-request `Vec`, so the submit path
//! allocates nothing in steady state. Consumers resolve a span back to records
//! with [`NandDevice::ops`](crate::NandDevice::ops) and release the arena with
//! [`NandDevice::clear_ops`](crate::NandDevice::clear_ops) once a request's
//! records have been played.
//!
//! Tracing is off by default and costs a single predictable branch per operation
//! when disabled, so the scalar replay hot path is unaffected.

use crate::address::ChipId;
use crate::time::Nanos;

/// The kind of a timed device operation.
///
/// Mapping-table updates ([`NandDevice::invalidate`](crate::NandDevice::invalidate))
/// take no device time and therefore produce no record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// A page read (sensing + transfer).
    Read,
    /// A page program.
    Program,
    /// A block erase.
    Erase,
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            OpKind::Read => "read",
            OpKind::Program => "program",
            OpKind::Erase => "erase",
        })
    }
}

/// One timed device operation: the chip whose busy clock it advanced, what it was,
/// and how long it took.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpRecord {
    /// The chip that serviced the operation.
    pub chip: ChipId,
    /// What the operation was.
    pub kind: OpKind,
    /// How long the chip was busy with it.
    pub latency: Nanos,
}

impl OpRecord {
    /// Creates a record.
    pub fn new(chip: ChipId, kind: OpKind, latency: Nanos) -> Self {
        OpRecord { chip, kind, latency }
    }
}

/// A contiguous range of [`OpRecord`]s inside the device's op arena.
///
/// Completions carry one of these instead of an owned `Vec<OpRecord>`: two
/// `u32`s that identify the request's records by position. Spans are only
/// meaningful against the device that issued them, and only until the arena is
/// cleared ([`NandDevice::clear_ops`](crate::NandDevice::clear_ops)) or
/// tracing is toggled — exactly the lifetime of "the completion I am currently
/// consuming", which is the only way replayers use op provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct OpSpan {
    /// Index of the first record in the arena.
    pub start: u32,
    /// Number of records in the span.
    pub len: u32,
}

impl OpSpan {
    /// The empty span (what untraced completions carry).
    pub const EMPTY: OpSpan = OpSpan { start: 0, len: 0 };

    /// Number of records in the span.
    #[allow(clippy::len_without_is_empty)] // is_empty is defined right below
    pub fn len(self) -> usize {
        self.len as usize
    }

    /// Whether the span holds no records.
    pub fn is_empty(self) -> bool {
        self.len == 0
    }

    /// The arena index range this span covers.
    pub fn range(self) -> std::ops::Range<usize> {
        let start = self.start as usize;
        start..start + self.len as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_carry_their_fields() {
        let record = OpRecord::new(ChipId(3), OpKind::Erase, Nanos::from_millis(4));
        assert_eq!(record.chip, ChipId(3));
        assert_eq!(record.kind, OpKind::Erase);
        assert_eq!(record.latency, Nanos::from_millis(4));
        assert_eq!(OpKind::Read.to_string(), "read");
        assert_eq!(OpKind::Program.to_string(), "program");
        assert_eq!(OpKind::Erase.to_string(), "erase");
    }
}
