//! Typed physical addresses.
//!
//! The FTL juggles several integer-like quantities (chip indices, block indices,
//! page offsets, gate-stack layers, logical block addresses). Newtypes keep them from
//! being mixed up at compile time ([C-NEWTYPE]).
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;

/// Index of a flash chip (die) within the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ChipId(pub usize);

impl fmt::Display for ChipId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// Index of a page *within a block* (0 = first programmed page = top gate-stack layer).
///
/// In 3D charge-trap NAND the page index inside a block corresponds directly to the
/// gate-stack layer of the vertical channel: page 0 sits at the top of the stack where
/// the etched channel is widest (weakest field, slowest access) and the last page sits
/// at the bottom where the channel is narrowest (strongest field, fastest access).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageId(pub usize);

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Index of a gate-stack layer. Identical numeric range as [`PageId`] but used where
/// the *physical* layer is meant rather than the programming order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LayerId(pub usize);

impl fmt::Display for LayerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl From<PageId> for LayerId {
    fn from(page: PageId) -> Self {
        LayerId(page.0)
    }
}

/// Address of a physical block: a chip plus the block index within that chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr {
    chip: ChipId,
    index: usize,
}

impl BlockAddr {
    /// Creates a block address from a chip and a block index within that chip.
    pub const fn new(chip: ChipId, index: usize) -> Self {
        BlockAddr { chip, index }
    }

    /// The chip this block resides on.
    pub const fn chip(self) -> ChipId {
        self.chip
    }

    /// The block index within its chip.
    pub const fn index(self) -> usize {
        self.index
    }

    /// The address of a page within this block.
    pub const fn page(self, page: PageId) -> PageAddr {
        PageAddr { block: self, page }
    }

    /// Flattens the address to a device-wide block ordinal, given the number of blocks
    /// per chip. Useful as a dense map key.
    pub const fn flat_index(self, blocks_per_chip: usize) -> usize {
        self.chip.0 * blocks_per_chip + self.index
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/B{}", self.chip, self.index)
    }
}

/// Address of a physical page: a block plus the page index within that block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageAddr {
    block: BlockAddr,
    page: PageId,
}

impl PageAddr {
    /// Creates a page address.
    pub const fn new(block: BlockAddr, page: PageId) -> Self {
        PageAddr { block, page }
    }

    /// The block containing this page.
    pub const fn block(self) -> BlockAddr {
        self.block
    }

    /// The page index within the block.
    pub const fn page(self) -> PageId {
        self.page
    }

    /// The gate-stack layer this page occupies.
    pub const fn layer(self) -> LayerId {
        LayerId(self.page.0)
    }
}

impl fmt::Display for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.block, self.page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_addr_accessors() {
        let block = BlockAddr::new(ChipId(2), 7);
        assert_eq!(block.chip(), ChipId(2));
        assert_eq!(block.index(), 7);
        assert_eq!(block.flat_index(10), 27);
    }

    #[test]
    fn page_addr_composition() {
        let block = BlockAddr::new(ChipId(1), 3);
        let page = block.page(PageId(5));
        assert_eq!(page.block(), block);
        assert_eq!(page.page(), PageId(5));
        assert_eq!(page.layer(), LayerId(5));
    }

    #[test]
    fn display_formats_are_compact() {
        let page = BlockAddr::new(ChipId(0), 12).page(PageId(3));
        assert_eq!(page.to_string(), "C0/B12/P3");
        assert_eq!(LayerId(4).to_string(), "L4");
    }

    #[test]
    fn layer_from_page_preserves_index() {
        assert_eq!(LayerId::from(PageId(9)), LayerId(9));
    }

    #[test]
    fn ordering_is_lexicographic_chip_block_page() {
        let a = BlockAddr::new(ChipId(0), 5).page(PageId(9));
        let b = BlockAddr::new(ChipId(1), 0).page(PageId(0));
        assert!(a < b);
        let c = BlockAddr::new(ChipId(0), 5).page(PageId(10));
        assert!(a < c);
    }
}
