//! Device configuration.

use crate::error::NandError;
use crate::fault::FaultConfig;
use crate::latency::{LatencyModel, SpeedProfile};
use crate::time::Nanos;

/// Geometry and timing parameters of a 3D charge-trap NAND device.
///
/// The default values follow Table 1 of the paper (Samsung V-NAND derived): 64 GB
/// capacity, 16 KB pages, 384 pages per block, 600 µs page program, 49 µs page read,
/// a 533 MB/s interface (Table 1's "533 Mbps" per-pin toggle rate across the 8-bit
/// bus) and 4 ms block erase. Use [`NandConfig::builder`] to scale the geometry down
/// for unit tests or up for capacity studies.
///
/// # Example
///
/// ```
/// use vflash_nand::NandConfig;
///
/// # fn main() -> Result<(), vflash_nand::NandError> {
/// let config = NandConfig::builder()
///     .chips(2)
///     .blocks_per_chip(64)
///     .pages_per_block(32)
///     .page_size_bytes(8 * 1024)
///     .speed_ratio(2.0)
///     .build()?;
/// assert_eq!(config.total_blocks(), 128);
/// assert_eq!(config.capacity_bytes(), 128 * 32 * 8 * 1024);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NandConfig {
    chips: usize,
    blocks_per_chip: usize,
    pages_per_block: usize,
    page_size_bytes: usize,
    read_latency: Nanos,
    program_latency: Nanos,
    erase_latency: Nanos,
    transfer_rate_mb_s: f64,
    speed_ratio: f64,
    speed_profile: SpeedProfile,
    faults: FaultConfig,
}

impl NandConfig {
    /// Starts building a configuration from the Table 1 defaults.
    pub fn builder() -> NandConfigBuilder {
        NandConfigBuilder::default()
    }

    /// The full-size configuration of Table 1 of the paper: 4 chips x 2730 blocks x
    /// 384 pages x 16 KB ≈ 64 GB, 49 µs read, 600 µs program, 4 ms erase, 533 Mbps.
    ///
    /// The paper's 64 GB does not divide evenly into 6 MB blocks, so this uses the
    /// nearest block count below it (10 920 blocks ≈ 63.98 GB).
    pub fn table1() -> Self {
        NandConfig::builder()
            .build()
            .expect("table 1 defaults are valid")
    }

    /// A deliberately small configuration (1 chip, 64 blocks, 16 pages, 4 KB pages)
    /// for unit tests and doc examples where simulating a 64 GB device would be
    /// wasteful.
    pub fn small() -> Self {
        NandConfig::builder()
            .chips(1)
            .blocks_per_chip(64)
            .pages_per_block(16)
            .page_size_bytes(4 * 1024)
            .build()
            .expect("small test configuration is valid")
    }

    /// Number of chips (dies).
    pub fn chips(&self) -> usize {
        self.chips
    }

    /// Number of blocks per chip.
    pub fn blocks_per_chip(&self) -> usize {
        self.blocks_per_chip
    }

    /// Number of pages per block (equal to the number of gate-stack layers).
    pub fn pages_per_block(&self) -> usize {
        self.pages_per_block
    }

    /// Page size in bytes.
    pub fn page_size_bytes(&self) -> usize {
        self.page_size_bytes
    }

    /// Nominal (slowest-layer) page read latency.
    pub fn read_latency(&self) -> Nanos {
        self.read_latency
    }

    /// Nominal (slowest-layer) page program latency.
    pub fn program_latency(&self) -> Nanos {
        self.program_latency
    }

    /// Block erase latency.
    pub fn erase_latency(&self) -> Nanos {
        self.erase_latency
    }

    /// Interface data rate in megabytes per second.
    ///
    /// The paper's Table 1 lists "533 Mbps", which is the per-pin signalling rate of
    /// the Samsung V-NAND toggle interface; across the 8-bit bus that corresponds to
    /// 533 MB/s, which is the figure that matters for page transfer time.
    pub fn transfer_rate_mb_s(&self) -> f64 {
        self.transfer_rate_mb_s
    }

    /// Top-layer/bottom-layer access speed ratio (2.0–5.0 in the paper).
    pub fn speed_ratio(&self) -> f64 {
        self.speed_ratio
    }

    /// The per-layer latency profile.
    pub fn speed_profile(&self) -> SpeedProfile {
        self.speed_profile
    }

    /// The fault-injection knobs (disabled by default — see [`FaultConfig`]).
    pub fn faults(&self) -> &FaultConfig {
        &self.faults
    }

    /// Returns this configuration with the given fault model, validating the
    /// knobs. Convenience for enabling faults on an already-built configuration
    /// (e.g. one produced by an experiment scale).
    ///
    /// # Errors
    ///
    /// Returns [`NandError::InvalidConfig`] if the fault knobs are out of range
    /// (probabilities outside `[0, 1]`, negative or non-finite curve
    /// parameters, a zero-width retry step with retries allowed).
    pub fn with_faults(mut self, faults: FaultConfig) -> Result<Self, NandError> {
        faults
            .validate()
            .map_err(|reason| NandError::InvalidConfig { reason: reason.to_string() })?;
        self.faults = faults;
        Ok(self)
    }

    /// Total number of blocks in the device.
    pub fn total_blocks(&self) -> usize {
        self.chips * self.blocks_per_chip
    }

    /// Total number of pages in the device.
    pub fn total_pages(&self) -> usize {
        self.total_blocks() * self.pages_per_block
    }

    /// Raw capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_pages() as u64 * self.page_size_bytes as u64
    }

    /// Time to move one page over the chip interface at the configured data rate.
    pub fn transfer_latency(&self) -> Nanos {
        let seconds = self.page_size_bytes as f64 / (self.transfer_rate_mb_s * 1_000_000.0);
        Nanos::from_micros_f64(seconds * 1_000_000.0)
    }

    /// Builds the per-layer latency model for this configuration.
    pub fn latency_model(&self) -> LatencyModel {
        LatencyModel::new(
            self.read_latency,
            self.program_latency,
            self.erase_latency,
            self.transfer_latency(),
            self.pages_per_block,
            self.speed_ratio,
            self.speed_profile,
        )
    }
}

impl Default for NandConfig {
    fn default() -> Self {
        NandConfig::table1()
    }
}

/// Builder for [`NandConfig`].
///
/// All setters take and return the builder by value so calls can be chained; `build`
/// validates the combination.
#[derive(Debug, Clone)]
pub struct NandConfigBuilder {
    chips: usize,
    blocks_per_chip: usize,
    pages_per_block: usize,
    page_size_bytes: usize,
    read_latency: Nanos,
    program_latency: Nanos,
    erase_latency: Nanos,
    transfer_rate_mb_s: f64,
    speed_ratio: f64,
    speed_profile: SpeedProfile,
    faults: FaultConfig,
}

impl Default for NandConfigBuilder {
    fn default() -> Self {
        // Table 1 of the paper.
        NandConfigBuilder {
            chips: 4,
            blocks_per_chip: 2730,
            pages_per_block: 384,
            page_size_bytes: 16 * 1024,
            read_latency: Nanos::from_micros(49),
            program_latency: Nanos::from_micros(600),
            erase_latency: Nanos::from_millis(4),
            transfer_rate_mb_s: 533.0,
            speed_ratio: 2.0,
            speed_profile: SpeedProfile::Linear,
            faults: FaultConfig::disabled(),
        }
    }
}

impl NandConfigBuilder {
    /// Sets the number of chips (dies).
    pub fn chips(mut self, chips: usize) -> Self {
        self.chips = chips;
        self
    }

    /// Sets the number of blocks per chip.
    pub fn blocks_per_chip(mut self, blocks: usize) -> Self {
        self.blocks_per_chip = blocks;
        self
    }

    /// Sets the number of pages per block (= gate-stack layers).
    pub fn pages_per_block(mut self, pages: usize) -> Self {
        self.pages_per_block = pages;
        self
    }

    /// Sets the page size in bytes.
    pub fn page_size_bytes(mut self, bytes: usize) -> Self {
        self.page_size_bytes = bytes;
        self
    }

    /// Sets the nominal (slowest-layer) page read latency.
    pub fn read_latency(mut self, latency: Nanos) -> Self {
        self.read_latency = latency;
        self
    }

    /// Sets the nominal (slowest-layer) page program latency.
    pub fn program_latency(mut self, latency: Nanos) -> Self {
        self.program_latency = latency;
        self
    }

    /// Sets the block erase latency.
    pub fn erase_latency(mut self, latency: Nanos) -> Self {
        self.erase_latency = latency;
        self
    }

    /// Sets the interface data rate in megabytes per second.
    pub fn transfer_rate_mb_s(mut self, mb_per_second: f64) -> Self {
        self.transfer_rate_mb_s = mb_per_second;
        self
    }

    /// Sets the top/bottom layer speed ratio (>= 1.0).
    pub fn speed_ratio(mut self, ratio: f64) -> Self {
        self.speed_ratio = ratio;
        self
    }

    /// Sets the per-layer latency profile.
    pub fn speed_profile(mut self, profile: SpeedProfile) -> Self {
        self.speed_profile = profile;
        self
    }

    /// Sets the fault-injection knobs (see [`FaultConfig`]; disabled by default).
    pub fn faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Validates the parameters and produces a [`NandConfig`].
    ///
    /// # Errors
    ///
    /// Returns [`NandError::InvalidConfig`] if any dimension is zero, the speed ratio
    /// is below 1.0 or not finite, the transfer rate is not positive, or a stepped
    /// profile has zero steps.
    pub fn build(self) -> Result<NandConfig, NandError> {
        fn invalid(reason: &str) -> NandError {
            NandError::InvalidConfig { reason: reason.to_string() }
        }
        if self.chips == 0 {
            return Err(invalid("chips must be positive"));
        }
        if self.blocks_per_chip == 0 {
            return Err(invalid("blocks_per_chip must be positive"));
        }
        if self.pages_per_block == 0 {
            return Err(invalid("pages_per_block must be positive"));
        }
        if self.page_size_bytes == 0 {
            return Err(invalid("page_size_bytes must be positive"));
        }
        if !self.speed_ratio.is_finite() || self.speed_ratio < 1.0 {
            return Err(invalid("speed_ratio must be finite and >= 1.0"));
        }
        if !self.transfer_rate_mb_s.is_finite() || self.transfer_rate_mb_s <= 0.0 {
            return Err(invalid("transfer_rate_mb_s must be finite and positive"));
        }
        if let SpeedProfile::Stepped { steps } = self.speed_profile {
            if steps == 0 {
                return Err(invalid("stepped speed profile needs at least one step"));
            }
        }
        self.faults.validate().map_err(invalid)?;
        Ok(NandConfig {
            chips: self.chips,
            blocks_per_chip: self.blocks_per_chip,
            pages_per_block: self.pages_per_block,
            page_size_bytes: self.page_size_bytes,
            read_latency: self.read_latency,
            program_latency: self.program_latency,
            erase_latency: self.erase_latency,
            transfer_rate_mb_s: self.transfer_rate_mb_s,
            speed_ratio: self.speed_ratio,
            speed_profile: self.speed_profile,
            faults: self.faults,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::PageId;

    #[test]
    fn table1_matches_paper_parameters() {
        let c = NandConfig::table1();
        assert_eq!(c.pages_per_block(), 384);
        assert_eq!(c.page_size_bytes(), 16 * 1024);
        assert_eq!(c.read_latency(), Nanos::from_micros(49));
        assert_eq!(c.program_latency(), Nanos::from_micros(600));
        assert_eq!(c.erase_latency(), Nanos::from_millis(4));
        assert_eq!(c.transfer_rate_mb_s(), 533.0);
        // 16 KiB at 533 MB/s ≈ 30.7 µs
        let transfer_us = c.transfer_latency().as_micros_f64();
        assert!((transfer_us - 30.7).abs() < 0.2, "transfer latency was {transfer_us} us");
        // ~64 GB
        let gb = c.capacity_bytes() as f64 / (1024.0 * 1024.0 * 1024.0);
        assert!(gb > 63.0 && gb < 64.5, "capacity was {gb} GB");
    }

    #[test]
    fn default_is_table1() {
        assert_eq!(NandConfig::default(), NandConfig::table1());
    }

    #[test]
    fn transfer_latency_follows_data_rate() {
        let c = NandConfig::builder()
            .page_size_bytes(8 * 1024)
            .transfer_rate_mb_s(400.0)
            .build()
            .unwrap();
        // 8 KiB at 400 MB/s = 20.48 us
        let us = c.transfer_latency().as_micros_f64();
        assert!((us - 20.48).abs() < 0.1, "transfer latency was {us} us");
    }

    #[test]
    fn latency_model_inherits_geometry() {
        let c = NandConfig::small();
        let m = c.latency_model();
        assert_eq!(m.pages_per_block(), c.pages_per_block());
        assert_eq!(m.read_latency(PageId(0)), c.read_latency());
    }

    #[test]
    fn zero_dimensions_are_rejected() {
        for (name, builder) in [
            ("chips", NandConfig::builder().chips(0)),
            ("blocks", NandConfig::builder().blocks_per_chip(0)),
            ("pages", NandConfig::builder().pages_per_block(0)),
            ("page size", NandConfig::builder().page_size_bytes(0)),
        ] {
            assert!(
                matches!(builder.build(), Err(NandError::InvalidConfig { .. })),
                "{name} = 0 should be rejected"
            );
        }
    }

    #[test]
    fn bad_speed_ratio_rejected() {
        assert!(NandConfig::builder().speed_ratio(0.9).build().is_err());
        assert!(NandConfig::builder().speed_ratio(f64::NAN).build().is_err());
    }

    /// Regression test for the `Stepped { steps: 0 }` underflow: the builder must
    /// return a clean configuration error, never reach the per-layer factor math.
    #[test]
    fn stepped_zero_steps_rejected() {
        let result = NandConfig::builder()
            .speed_profile(SpeedProfile::Stepped { steps: 0 })
            .build();
        assert!(matches!(result, Err(NandError::InvalidConfig { .. })));
    }

    #[test]
    fn bad_transfer_rate_rejected() {
        assert!(NandConfig::builder().transfer_rate_mb_s(0.0).build().is_err());
        assert!(NandConfig::builder().transfer_rate_mb_s(-5.0).build().is_err());
    }

    #[test]
    fn faults_default_off_and_validate_on_the_way_in() {
        assert!(!NandConfig::table1().faults().enabled);
        let enabled = NandConfig::small().with_faults(FaultConfig::enabled(7)).unwrap();
        assert!(enabled.faults().enabled);
        assert_eq!(enabled.faults().seed, 7);

        let mut bad = FaultConfig::enabled(1);
        bad.program_fail_base = 2.0;
        assert!(matches!(
            NandConfig::small().with_faults(bad),
            Err(NandError::InvalidConfig { .. })
        ));
        assert!(matches!(
            NandConfig::builder().faults(bad).build(),
            Err(NandError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn capacity_math() {
        let c = NandConfig::builder()
            .chips(2)
            .blocks_per_chip(10)
            .pages_per_block(4)
            .page_size_bytes(4096)
            .build()
            .unwrap();
        assert_eq!(c.total_blocks(), 20);
        assert_eq!(c.total_pages(), 80);
        assert_eq!(c.capacity_bytes(), 80 * 4096);
    }
}
